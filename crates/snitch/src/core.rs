//! The Snitch core model: single-issue, single-stage, register scoreboard,
//! configurable outstanding memory operations.

use crate::profile::CoreProfile;
use crate::{DataRequest, DataRequestKind, DataResponse, Fetch};
use mempool_riscv::{csr, CsrOp, Instr, LoadOp, Reg};

/// Static configuration of one core.
///
/// # Examples
///
/// ```
/// use mempool_snitch::SnitchConfig;
///
/// let cfg = SnitchConfig { hartid: 3, ..SnitchConfig::default() };
/// assert_eq!(cfg.outstanding, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnitchConfig {
    /// The core's hart ID (readable via the `mhartid` CSR).
    pub hartid: u32,
    /// Number of outstanding memory operations (LSU / reorder-buffer slots).
    /// The paper: "Snitch supports a configurable number of outstanding load
    /// instructions, which is useful to hide the SPM access latency."
    pub outstanding: usize,
    /// Latency of the serial divider in cycles (`div`, `divu`, `rem`,
    /// `remu`).
    pub div_latency: u32,
    /// Extra cycles lost on a taken branch or jump (pipeline refetch).
    pub branch_penalty: u32,
}

impl Default for SnitchConfig {
    fn default() -> Self {
        SnitchConfig {
            hartid: 0,
            outstanding: 8,
            div_latency: 18,
            branch_penalty: 1,
        }
    }
}

/// Why the core could not retire an instruction this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// A source or destination register is waiting on an outstanding load.
    Scoreboard,
    /// All LSU slots are in flight.
    LsuFull,
    /// The data port refused the request this cycle (network backpressure).
    PortBusy,
    /// Instruction fetch stalled (I-cache miss).
    Fetch,
    /// A `fence` is draining outstanding memory operations.
    Fence,
    /// The multi-cycle divider (or branch refetch bubble) is busy.
    ExecBusy,
}

/// Retirement and stall counters of one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub instret: u64,
    /// Cycles executed.
    pub cycles: u64,
    /// Loads issued (including LR).
    pub loads: u64,
    /// Stores issued (including SC).
    pub stores: u64,
    /// AMOs issued.
    pub amos: u64,
    /// Integer multiply instructions retired.
    pub muls: u64,
    /// Divide/remainder instructions retired.
    pub divs: u64,
    /// Taken branches and jumps.
    pub taken_branches: u64,
    /// Stall cycles: scoreboard (load-use) hazards.
    pub stall_scoreboard: u64,
    /// Stall cycles: LSU full.
    pub stall_lsu_full: u64,
    /// Stall cycles: data port backpressure.
    pub stall_port: u64,
    /// Stall cycles: instruction fetch.
    pub stall_fetch: u64,
    /// Stall cycles: fence drains.
    pub stall_fence: u64,
    /// Stall cycles: divider / branch bubble.
    pub stall_exec: u64,
    /// Cycles spent halted (after `ecall`/`ebreak`/`wfi` or a fault) while
    /// the cluster clock kept running. Together with `instret` and the
    /// stall counters this accounts for every simulated cycle:
    /// `cycles == instret + total_stalls() + halted_cycles` (in runs
    /// without injected instruction-skip faults).
    pub halted_cycles: u64,
}

impl CoreStats {
    /// Total stall cycles across all causes (halted cycles are not stalls).
    pub fn total_stalls(&self) -> u64 {
        self.stall_scoreboard
            + self.stall_lsu_full
            + self.stall_port
            + self.stall_fetch
            + self.stall_fence
            + self.stall_exec
    }

    /// Every counter as `(name, value)`, in declaration order — the
    /// per-core scope of the observability metrics registry.
    pub fn counters(&self) -> [(&'static str, u64); 15] {
        [
            ("instret", self.instret),
            ("cycles", self.cycles),
            ("loads", self.loads),
            ("stores", self.stores),
            ("amos", self.amos),
            ("muls", self.muls),
            ("divs", self.divs),
            ("taken_branches", self.taken_branches),
            ("stall_scoreboard", self.stall_scoreboard),
            ("stall_lsu_full", self.stall_lsu_full),
            ("stall_port", self.stall_port),
            ("stall_fetch", self.stall_fetch),
            ("stall_fence", self.stall_fence),
            ("stall_exec", self.stall_exec),
            ("halted_cycles", self.halted_cycles),
        ]
    }

    fn count(&mut self, cause: StallCause) {
        match cause {
            StallCause::Scoreboard => self.stall_scoreboard += 1,
            StallCause::LsuFull => self.stall_lsu_full += 1,
            StallCause::PortBusy => self.stall_port += 1,
            StallCause::Fetch => self.stall_fetch += 1,
            StallCause::Fence => self.stall_fence += 1,
            StallCause::ExecBusy => self.stall_exec += 1,
        }
    }
}

/// One retired instruction in a core's trace ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle at which the instruction retired.
    pub cycle: u64,
    /// Its program counter.
    pub pc: u32,
    /// The instruction.
    pub instr: Instr,
}

#[derive(Debug, Clone, Copy)]
struct LsuSlot {
    dest: Option<Reg>,
    load: Option<LoadOp>,
    byte_offset: u32,
}

/// One in-flight LSU slot in a [`SnitchState`] image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsuSlotState {
    /// Destination register awaiting the response, if any.
    pub dest: Option<Reg>,
    /// The load operation whose sub-word extraction applies on delivery
    /// (`None` for AMO / SC results, delivered verbatim).
    pub load: Option<LoadOp>,
    /// Byte offset within the word for sub-word loads.
    pub byte_offset: u32,
}

/// A plain-data image of a core's complete dynamic state, for
/// checkpoint/restore. Static configuration and the (diagnostic) retirement
/// trace are not part of the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnitchState {
    /// Program counter.
    pub pc: u32,
    /// Architectural register file.
    pub regs: [u32; 32],
    /// Scoreboard bitmask of registers with outstanding load results.
    pub scoreboard: u32,
    /// LSU slots, one per outstanding tag (`None` = free).
    pub lsu: Vec<Option<LsuSlotState>>,
    /// Whether the core has halted.
    pub halted: bool,
    /// Whether the core halted on a fault.
    pub faulted: bool,
    /// Remaining divider / branch-bubble busy cycles.
    pub exec_busy: u32,
    /// Whether a `fence` is draining the LSU.
    pub fencing: bool,
    /// The `mscratch` CSR.
    pub mscratch: u32,
    /// The `mregion` CSR (current profiler region).
    pub region: u32,
    /// Retirement and stall counters.
    pub stats: CoreStats,
    /// The per-PC/per-region profile, when profiling is enabled.
    pub profile: Option<CoreProfile>,
}

/// A cycle-accurate Snitch core (RV32IMA).
///
/// The core is externally clocked: the cluster delivers completed memory
/// responses with [`deliver`](SnitchCore::deliver), then advances the core
/// one cycle with [`step`](SnitchCore::step). Responses delivered in the
/// same cycle unblock dependent instructions immediately, which gives the
/// 1-cycle load-use latency of a local SPM bank.
///
/// # Examples
///
/// Run a register-only program to completion on a perfect fetch port:
///
/// ```
/// use mempool_riscv::{assemble, Reg, Instr};
/// use mempool_snitch::{Fetch, SnitchConfig, SnitchCore};
///
/// let program = assemble("li a0, 6\nli a1, 7\nmul a2, a0, a1\necall\n")?;
/// let image: Vec<Instr> = program
///     .words()
///     .iter()
///     .map(|&w| mempool_riscv::decode(w).unwrap())
///     .collect();
/// let mut core = SnitchCore::new(SnitchConfig::default());
/// while !core.halted() {
///     let fetch = image
///         .get((core.pc() / 4) as usize)
///         .map_or(Fetch::Fault, |&i| Fetch::Ready(i));
///     core.step(fetch, true);
/// }
/// assert_eq!(core.reg(Reg::A2), 42);
/// # Ok::<(), mempool_riscv::AsmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SnitchCore {
    config: SnitchConfig,
    pc: u32,
    regs: [u32; 32],
    /// Bit *i* set = register *i* has an outstanding load result pending.
    scoreboard: u32,
    lsu: Vec<Option<LsuSlot>>,
    lsu_in_flight: usize,
    halted: bool,
    faulted: bool,
    /// Remaining busy cycles of the divider or a branch refetch bubble.
    exec_busy: u32,
    /// Set while a `fence` waits for the LSU to drain.
    fencing: bool,
    mscratch: u32,
    /// The `mregion` CSR: current profiler region ID (always writable, so
    /// programs behave identically whether or not profiling is on).
    region: u32,
    stats: CoreStats,
    /// Per-PC/per-region profile (None = profiling off).
    profile: Option<Box<CoreProfile>>,
    /// Retirement trace ring buffer (None = tracing off).
    trace: Option<std::collections::VecDeque<TraceEntry>>,
    trace_depth: usize,
}

impl SnitchCore {
    /// Creates a core with PC 0 and zeroed registers.
    ///
    /// # Panics
    ///
    /// Panics if `config.outstanding` is 0 or exceeds 256 (tags are 8-bit).
    pub fn new(config: SnitchConfig) -> Self {
        assert!(
            (1..=256).contains(&config.outstanding),
            "outstanding slots must be in 1..=256"
        );
        SnitchCore {
            config,
            pc: 0,
            regs: [0; 32],
            scoreboard: 0,
            lsu: vec![None; config.outstanding],
            lsu_in_flight: 0,
            halted: false,
            faulted: false,
            exec_busy: 0,
            fencing: false,
            mscratch: 0,
            region: 0,
            stats: CoreStats::default(),
            profile: None,
            trace: None,
            trace_depth: 0,
        }
    }

    /// Starts per-PC/per-region profiling, attributing every subsequent
    /// cycle (see [`profile`](crate::profile)). `max_pcs` bounds the
    /// distinct (region, PC) pairs tracked; further pairs spill into an
    /// overflow bucket. Off by default and zero-cost while off.
    pub fn enable_profile(&mut self, max_pcs: usize) {
        self.profile = Some(Box::new(CoreProfile::new(max_pcs)));
    }

    /// The recorded profile (None while profiling is off).
    pub fn profile(&self) -> Option<&CoreProfile> {
        self.profile.as_deref()
    }

    /// The current `mregion` CSR value (profiler region ID).
    pub fn region(&self) -> u32 {
        self.region
    }

    /// Starts recording the last `depth` retired instructions (pc +
    /// decoded form + retirement cycle). Costs a ring-buffer push per
    /// retirement; off by default.
    pub fn enable_trace(&mut self, depth: usize) {
        self.trace = Some(std::collections::VecDeque::with_capacity(depth.max(1)));
        self.trace_depth = depth.max(1);
    }

    /// The recorded trace, oldest first (empty when tracing is off).
    pub fn trace(&self) -> impl Iterator<Item = &TraceEntry> {
        self.trace.iter().flatten()
    }

    /// The core's configuration.
    pub fn config(&self) -> &SnitchConfig {
        &self.config
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter (e.g. to a per-hart entry point).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Reads an architectural register.
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs[reg.index() as usize]
    }

    /// Writes an architectural register (test setup; `x0` writes are
    /// ignored).
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        if !reg.is_zero() {
            self.regs[reg.index() as usize] = value;
        }
    }

    /// Whether the core has executed `ecall`/`ebreak`/`wfi` or faulted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether the core halted due to a fault (bad fetch or a memory
    /// request outside L1).
    pub fn faulted(&self) -> bool {
        self.faulted
    }

    /// Halts the core with a fault (used by the cluster when the core
    /// issues an unserviceable memory request).
    pub fn force_fault(&mut self) {
        self.halted = true;
        self.faulted = true;
    }

    /// Fault injection: spuriously retires the instruction at the current
    /// program counter without executing it (the *silent instruction skip*
    /// failure mode). No-op once the core has halted.
    pub fn skip_instruction(&mut self) {
        if self.halted {
            return;
        }
        self.pc = self.pc.wrapping_add(4);
        self.stats.instret += 1;
    }

    /// Whether any memory operations are still in flight.
    pub fn has_outstanding(&self) -> bool {
        self.lsu_in_flight > 0
    }

    /// Whether the core will consume an instruction fetch this cycle.
    ///
    /// `false` while halted, while the divider / branch bubble is busy, or
    /// while a `fence` is draining — cycles in which the front-end does not
    /// access the I-cache.
    pub fn needs_fetch(&self) -> bool {
        !self.halted
            && self.exec_busy == 0
            && !(self.fencing && self.lsu_in_flight > 0)
    }

    /// Retirement/stall counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Captures the core's complete dynamic state (checkpointing).
    pub fn save_state(&self) -> SnitchState {
        SnitchState {
            pc: self.pc,
            regs: self.regs,
            scoreboard: self.scoreboard,
            lsu: self
                .lsu
                .iter()
                .map(|slot| {
                    slot.map(|s| LsuSlotState {
                        dest: s.dest,
                        load: s.load,
                        byte_offset: s.byte_offset,
                    })
                })
                .collect(),
            halted: self.halted,
            faulted: self.faulted,
            exec_busy: self.exec_busy,
            fencing: self.fencing,
            mscratch: self.mscratch,
            region: self.region,
            stats: self.stats,
            profile: self.profile.as_deref().cloned(),
        }
    }

    /// Restores a state image captured by [`save_state`](SnitchCore::save_state)
    /// onto a core with the same configuration. The retirement trace (a
    /// diagnostic channel) is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if the image's LSU depth disagrees with this core's
    /// `outstanding` configuration.
    pub fn restore_state(&mut self, state: &SnitchState) {
        assert_eq!(
            state.lsu.len(),
            self.lsu.len(),
            "LSU depth mismatch: state {} vs core {}",
            state.lsu.len(),
            self.lsu.len()
        );
        self.pc = state.pc;
        self.regs = state.regs;
        self.scoreboard = state.scoreboard;
        for (slot, s) in self.lsu.iter_mut().zip(&state.lsu) {
            *slot = s.map(|s| LsuSlot {
                dest: s.dest,
                load: s.load,
                byte_offset: s.byte_offset,
            });
        }
        self.lsu_in_flight = self.lsu.iter().filter(|s| s.is_some()).count();
        self.halted = state.halted;
        self.faulted = state.faulted;
        self.exec_busy = state.exec_busy;
        self.fencing = state.fencing;
        self.mscratch = state.mscratch;
        self.region = state.region;
        self.stats = state.stats;
        self.profile = state.profile.clone().map(Box::new);
    }

    /// Delivers a completed memory response (call before
    /// [`step`](SnitchCore::step) in the same cycle).
    ///
    /// # Panics
    ///
    /// Panics if the tag does not match an in-flight LSU slot — that would
    /// be a routing bug in the interconnect model.
    pub fn deliver(&mut self, response: DataResponse) {
        let slot = self.lsu[response.tag as usize]
            .take()
            .expect("response tag matches an in-flight LSU slot");
        self.lsu_in_flight -= 1;
        if let Some(dest) = slot.dest {
            let value = match slot.load {
                Some(op) => op.extract(response.data, slot.byte_offset),
                None => response.data, // AMO old value / SC status
            };
            self.regs[dest.index() as usize] = value;
            self.scoreboard &= !(1 << dest.index());
        }
    }

    /// Advances the core one cycle.
    ///
    /// `fetch` is this cycle's instruction fetch result for [`pc`]
    /// (pre-decoded by the tile's I-cache owner); `request_ready` tells the
    /// core whether its data port accepts a request this cycle. Returns the
    /// memory request issued this cycle, if any.
    ///
    /// [`pc`]: SnitchCore::pc
    pub fn step(&mut self, fetch: Fetch, request_ready: bool) -> Option<DataRequest> {
        self.stats.cycles += 1;
        if self.halted {
            self.stats.halted_cycles += 1;
            return None;
        }
        if self.exec_busy > 0 {
            self.exec_busy -= 1;
            self.stall(StallCause::ExecBusy);
            return None;
        }
        if self.fencing {
            if self.lsu_in_flight > 0 {
                self.stall(StallCause::Fence);
                return None;
            }
            self.fencing = false;
        }
        let instr = match fetch {
            Fetch::Ready(instr) => instr,
            Fetch::Stall => {
                self.stall(StallCause::Fetch);
                return None;
            }
            Fetch::Fault => {
                self.halted = true;
                self.faulted = true;
                // The faulting cycle retires nothing and stalls on nothing;
                // account it as halted so cycle accounting stays closed.
                self.stats.halted_cycles += 1;
                return None;
            }
        };
        // Scoreboard: all sources and the destination must be free.
        let mut blocked = false;
        for src in instr.sources().into_iter().flatten() {
            blocked |= self.scoreboard & (1 << src.index()) != 0;
        }
        if let Some(dest) = instr.dest() {
            blocked |= self.scoreboard & (1 << dest.index()) != 0;
        }
        if blocked {
            self.stall(StallCause::Scoreboard);
            return None;
        }
        if instr.is_memory() {
            if self.lsu_in_flight == self.lsu.len() {
                self.stall(StallCause::LsuFull);
                return None;
            }
            if !request_ready {
                self.stall(StallCause::PortBusy);
                return None;
            }
        }
        if let Some(profile) = &mut self.profile {
            profile.record_retire(self.region, self.pc);
        }
        if let Some(trace) = &mut self.trace {
            if trace.len() == self.trace_depth {
                trace.pop_front();
            }
            trace.push_back(TraceEntry {
                cycle: self.stats.cycles,
                pc: self.pc,
                instr,
            });
        }
        self.execute(instr)
    }

    /// Counts a stall cycle, attributing it to the current PC/region when
    /// profiling is on.
    fn stall(&mut self, cause: StallCause) {
        self.stats.count(cause);
        if let Some(profile) = &mut self.profile {
            profile.record_stall(self.region, self.pc, cause);
        }
    }

    fn rs(&self, reg: Reg) -> u32 {
        self.regs[reg.index() as usize]
    }

    fn write(&mut self, rd: Reg, value: u32) {
        if !rd.is_zero() {
            self.regs[rd.index() as usize] = value;
        }
    }

    fn retire(&mut self) {
        self.stats.instret += 1;
        self.pc = self.pc.wrapping_add(4);
    }

    fn take_branch(&mut self, target: u32) {
        self.stats.instret += 1;
        self.stats.taken_branches += 1;
        self.pc = target;
        self.exec_busy += self.config.branch_penalty;
    }

    fn execute(&mut self, instr: Instr) -> Option<DataRequest> {
        match instr {
            Instr::Lui { rd, imm } => {
                self.write(rd, imm);
                self.retire();
            }
            Instr::Auipc { rd, imm } => {
                self.write(rd, self.pc.wrapping_add(imm));
                self.retire();
            }
            Instr::Jal { rd, offset } => {
                let link = self.pc.wrapping_add(4);
                let target = self.pc.wrapping_add(offset as u32);
                self.write(rd, link);
                self.take_branch(target);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let link = self.pc.wrapping_add(4);
                let target = self.rs(rs1).wrapping_add(offset as u32) & !1;
                self.write(rd, link);
                self.take_branch(target);
            }
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                if op.taken(self.rs(rs1), self.rs(rs2)) {
                    let target = self.pc.wrapping_add(offset as u32);
                    self.take_branch(target);
                } else {
                    self.retire();
                }
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let value = alu(op, self.rs(rs1), imm as u32);
                self.write(rd, value);
                self.retire();
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let value = alu(op, self.rs(rs1), self.rs(rs2));
                self.write(rd, value);
                self.retire();
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                let a = self.rs(rs1);
                let b = self.rs(rs2);
                let value = muldiv(op, a, b);
                self.write(rd, value);
                if op.is_division() {
                    self.stats.divs += 1;
                    self.exec_busy += self.config.div_latency;
                } else {
                    self.stats.muls += 1;
                }
                self.retire();
            }
            Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.rs(rs1).wrapping_add(offset as u32);
                let req = self.issue_mem(
                    addr,
                    DataRequestKind::Load(op),
                    Some(rd).filter(|r| !r.is_zero()),
                    Some(op),
                    addr & 3,
                );
                self.stats.loads += 1;
                self.retire();
                return req;
            }
            Instr::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.rs(rs1).wrapping_add(offset as u32);
                let data = self.rs(rs2);
                let req = self.issue_mem(
                    addr,
                    DataRequestKind::Store { op, data },
                    None,
                    None,
                    addr & 3,
                );
                self.stats.stores += 1;
                self.retire();
                return req;
            }
            Instr::Amo { op, rd, rs1, rs2 } => {
                let addr = self.rs(rs1);
                let operand = self.rs(rs2);
                let req = self.issue_mem(
                    addr,
                    DataRequestKind::Amo { op, operand },
                    Some(rd).filter(|r| !r.is_zero()),
                    None,
                    0,
                );
                self.stats.amos += 1;
                self.retire();
                return req;
            }
            Instr::LrW { rd, rs1 } => {
                let addr = self.rs(rs1);
                let req = self.issue_mem(
                    addr,
                    DataRequestKind::LoadReserved,
                    Some(rd).filter(|r| !r.is_zero()),
                    None,
                    0,
                );
                self.stats.loads += 1;
                self.retire();
                return req;
            }
            Instr::ScW { rd, rs1, rs2 } => {
                let addr = self.rs(rs1);
                let data = self.rs(rs2);
                let req = self.issue_mem(
                    addr,
                    DataRequestKind::StoreConditional { data },
                    Some(rd).filter(|r| !r.is_zero()),
                    None,
                    0,
                );
                self.stats.stores += 1;
                self.retire();
                return req;
            }
            Instr::Csr { op, rd, rs1, csr } => {
                let old = self.read_csr(csr);
                let src = self.rs(rs1);
                self.apply_csr(op, csr, src, rs1.is_zero());
                self.write(rd, old);
                self.retire();
            }
            Instr::CsrImm { op, rd, imm, csr } => {
                let old = self.read_csr(csr);
                self.apply_csr(op, csr, u32::from(imm), imm == 0);
                self.write(rd, old);
                self.retire();
            }
            Instr::Fence => {
                self.fencing = true;
                self.retire();
            }
            Instr::FenceI => {
                self.retire();
            }
            Instr::Ecall | Instr::Ebreak | Instr::Wfi => {
                self.stats.instret += 1;
                self.halted = true;
            }
        }
        None
    }

    fn issue_mem(
        &mut self,
        addr: u32,
        kind: DataRequestKind,
        dest: Option<Reg>,
        load: Option<LoadOp>,
        byte_offset: u32,
    ) -> Option<DataRequest> {
        let tag = self
            .lsu
            .iter()
            .position(Option::is_none)
            .expect("caller checked a free LSU slot") as u8;
        self.lsu[tag as usize] = Some(LsuSlot {
            dest,
            load,
            byte_offset,
        });
        self.lsu_in_flight += 1;
        if let Some(dest) = dest {
            self.scoreboard |= 1 << dest.index();
        }
        Some(DataRequest { tag, addr, kind })
    }

    fn read_csr(&self, addr: u16) -> u32 {
        match addr {
            csr::MHARTID => self.config.hartid,
            csr::MCYCLE => self.stats.cycles as u32,
            csr::MCYCLEH => (self.stats.cycles >> 32) as u32,
            csr::MINSTRET => self.stats.instret as u32,
            csr::MINSTRETH => (self.stats.instret >> 32) as u32,
            csr::MSCRATCH => self.mscratch,
            csr::MREGION => self.region,
            _ => 0,
        }
    }

    fn apply_csr(&mut self, op: CsrOp, addr: u16, src: u32, src_is_zero: bool) {
        // Only mscratch and the profiler's mregion are writable in this
        // model; set/clear with a zero source are architectural no-ops.
        let reg = match addr {
            csr::MSCRATCH => &mut self.mscratch,
            csr::MREGION => &mut self.region,
            _ => return,
        };
        match op {
            CsrOp::Rw => *reg = src,
            CsrOp::Rs if !src_is_zero => *reg |= src,
            CsrOp::Rc if !src_is_zero => *reg &= !src,
            _ => {}
        }
    }
}

pub use semantics::{alu, muldiv};

/// Pure RV32IM operation semantics, shared by the cycle-accurate core and
/// any functional (untimed) interpreter built on top of this crate.
pub mod semantics {
    use mempool_riscv::{AluOp, MulOp};

    /// Evaluates an RV32I ALU operation.
    pub fn alu(op: AluOp, a: u32, b: u32) -> u32 {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            AluOp::Or => a | b,
            AluOp::And => a & b,
        }
    }

    /// Evaluates an RV32M multiply/divide with the spec's division-by-zero
    /// and overflow semantics.
    // RISC-V division-by-zero semantics are explicit values, not checked ops.
    #[allow(clippy::manual_is_multiple_of, clippy::manual_checked_ops)]
    pub fn muldiv(op: MulOp, a: u32, b: u32) -> u32 {
        match op {
            MulOp::Mul => a.wrapping_mul(b),
            MulOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
            MulOp::Mulhsu => (((a as i32 as i64) * (b as i64)) >> 32) as u32,
            MulOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
            MulOp::Div => {
                if b == 0 {
                    u32::MAX
                } else if a == 0x8000_0000 && b == u32::MAX {
                    a
                } else {
                    ((a as i32) / (b as i32)) as u32
                }
            }
            MulOp::Divu => {
                if b == 0 {
                    u32::MAX
                } else {
                    a / b
                }
            }
            MulOp::Rem => {
                if b == 0 {
                    a
                } else if a == 0x8000_0000 && b == u32::MAX {
                    0
                } else {
                    ((a as i32) % (b as i32)) as u32
                }
            }
            MulOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool_riscv::{assemble, decode, MulOp};

    /// A perfect single-cycle memory for unit-testing the core alone.
    struct Harness {
        core: SnitchCore,
        image: Vec<Instr>,
        mem: Vec<u32>,
        pending: Vec<(u64, DataResponse)>,
        latency: u64,
        now: u64,
    }

    impl Harness {
        fn new(source: &str, config: SnitchConfig, latency: u64) -> Self {
            let program = assemble(source).expect("test program assembles");
            let image = program
                .words()
                .iter()
                .map(|&w| decode(w).unwrap_or(Instr::NOP))
                .collect();
            Harness {
                core: SnitchCore::new(config),
                image,
                mem: vec![0u32; 1024],
                pending: Vec::new(),
                latency,
                now: 0,
            }
        }

        fn run(&mut self, max_cycles: u64) {
            while (!self.core.halted() || self.core.has_outstanding()) && self.now < max_cycles {
                self.cycle();
            }
            assert!(self.core.halted(), "program did not halt");
            assert!(!self.core.has_outstanding(), "responses still in flight");
        }

        fn cycle(&mut self) {
            self.now += 1;
            let due: Vec<DataResponse> = {
                let now = self.now;
                let mut due = Vec::new();
                self.pending.retain(|&(at, resp)| {
                    if at <= now {
                        due.push(resp);
                        false
                    } else {
                        true
                    }
                });
                due
            };
            for resp in due {
                self.core.deliver(resp);
            }
            let fetch = self
                .image
                .get((self.core.pc() / 4) as usize)
                .map_or(Fetch::Fault, |&i| Fetch::Ready(i));
            if let Some(req) = self.core.step(fetch, true) {
                let row = (req.addr / 4) as usize;
                let data = match req.kind {
                    DataRequestKind::Load(_) | DataRequestKind::LoadReserved => self.mem[row],
                    DataRequestKind::Store { op, data } => {
                        self.mem[row] = op.merge(self.mem[row], data, req.addr & 3);
                        0
                    }
                    DataRequestKind::Amo { op, operand } => {
                        let old = self.mem[row];
                        self.mem[row] = op.apply(old, operand);
                        old
                    }
                    DataRequestKind::StoreConditional { data } => {
                        self.mem[row] = data;
                        0
                    }
                };
                self.pending.push((
                    self.now + self.latency,
                    DataResponse { tag: req.tag, data },
                ));
            }
        }
    }

    #[test]
    fn arithmetic_program() {
        let mut h = Harness::new(
            "li a0, 6\nli a1, 7\nmul a2, a0, a1\naddi a2, a2, -2\necall\n",
            SnitchConfig::default(),
            1,
        );
        h.run(100);
        assert_eq!(h.core.reg(Reg::A2), 40);
    }

    #[test]
    fn load_use_latency_one_cycle() {
        // With a 1-cycle memory, a load followed by a dependent add costs
        // exactly 2 cycles (issue + use) — no bubble.
        let mut h = Harness::new(
            "lw a0, 16(zero)\naddi a0, a0, 1\necall\n",
            SnitchConfig::default(),
            1,
        );
        h.mem[4] = 99;
        h.run(100);
        assert_eq!(h.core.reg(Reg::A0), 100);
        // 3 instructions, zero stall cycles beyond the in-order flow.
        assert_eq!(h.core.stats().stall_scoreboard, 0);
    }

    #[test]
    fn load_use_hazard_stalls_with_slow_memory() {
        let mut h = Harness::new(
            "lw a0, 16(zero)\naddi a0, a0, 1\necall\n",
            SnitchConfig::default(),
            5,
        );
        h.mem[4] = 10;
        h.run(100);
        assert_eq!(h.core.reg(Reg::A0), 11);
        assert_eq!(h.core.stats().stall_scoreboard, 4);
    }

    #[test]
    fn independent_loads_overlap() {
        // Two independent loads issue back to back; total time is latency +
        // 1, not 2×latency (the point of outstanding loads).
        let src = "lw a0, 16(zero)\nlw a1, 20(zero)\nadd a2, a0, a1\necall\n";
        let mut slow = Harness::new(src, SnitchConfig::default(), 8);
        slow.mem[4] = 3;
        slow.mem[5] = 4;
        slow.run(100);
        assert_eq!(slow.core.reg(Reg::A2), 7);
        let overlapped = slow.core.stats().cycles;

        let mut single = Harness::new(
            src,
            SnitchConfig {
                outstanding: 1,
                ..SnitchConfig::default()
            },
            8,
        );
        single.mem[4] = 3;
        single.mem[5] = 4;
        single.run(100);
        assert_eq!(single.core.reg(Reg::A2), 7);
        assert!(
            overlapped + 6 <= single.core.stats().cycles,
            "outstanding loads did not hide latency: {} vs {}",
            overlapped,
            single.core.stats().cycles
        );
    }

    #[test]
    fn store_then_fence_drains() {
        let mut h = Harness::new(
            "li a0, 42\nsw a0, 32(zero)\nfence\nlw a1, 32(zero)\necall\n",
            SnitchConfig::default(),
            6,
        );
        h.run(200);
        assert_eq!(h.core.reg(Reg::A1), 42);
        assert!(h.core.stats().stall_fence > 0);
    }

    #[test]
    fn amo_returns_old_value() {
        let mut h = Harness::new(
            "li a0, 64\nli a1, 5\namoadd.w a2, a1, (a0)\nfence\nlw a3, 64(zero)\necall\n",
            SnitchConfig::default(),
            2,
        );
        h.mem[16] = 100;
        h.run(200);
        assert_eq!(h.core.reg(Reg::A2), 100);
        assert_eq!(h.core.reg(Reg::A3), 105);
    }

    #[test]
    fn branch_loop_and_penalty() {
        let mut h = Harness::new(
            "li a0, 4\nli a1, 0\nloop: add a1, a1, a0\naddi a0, a0, -1\nbnez a0, loop\necall\n",
            SnitchConfig::default(),
            1,
        );
        h.run(200);
        assert_eq!(h.core.reg(Reg::A1), 4 + 3 + 2 + 1);
        assert_eq!(h.core.stats().taken_branches, 3);
        assert_eq!(h.core.stats().stall_exec, 3); // one bubble per taken branch
    }

    #[test]
    fn divider_is_multi_cycle() {
        let cfg = SnitchConfig {
            div_latency: 10,
            ..SnitchConfig::default()
        };
        let mut h = Harness::new("li a0, 100\nli a1, 7\ndiv a2, a0, a1\necall\n", cfg, 1);
        h.run(100);
        assert_eq!(h.core.reg(Reg::A2), 14);
        assert_eq!(h.core.stats().stall_exec, 10);
    }

    #[test]
    fn division_edge_cases() {
        assert_eq!(muldiv(MulOp::Div, 7, 0), u32::MAX);
        assert_eq!(muldiv(MulOp::Divu, 7, 0), u32::MAX);
        assert_eq!(muldiv(MulOp::Rem, 7, 0), 7);
        assert_eq!(muldiv(MulOp::Remu, 7, 0), 7);
        assert_eq!(muldiv(MulOp::Div, 0x8000_0000, u32::MAX), 0x8000_0000);
        assert_eq!(muldiv(MulOp::Rem, 0x8000_0000, u32::MAX), 0);
        assert_eq!(muldiv(MulOp::Mulh, 0x8000_0000, 2), 0xffff_ffff);
        assert_eq!(muldiv(MulOp::Mulhu, 0x8000_0000, 2), 1);
    }

    #[test]
    fn csr_reads() {
        let cfg = SnitchConfig {
            hartid: 77,
            ..SnitchConfig::default()
        };
        let mut h = Harness::new(
            "csrr a0, mhartid\nli a1, 123\ncsrw mscratch, a1\ncsrr a2, mscratch\n\
             csrr a3, mcycle\ncsrr a4, mcycleh\ncsrr a5, minstreth\necall\n",
            cfg,
            1,
        );
        h.run(100);
        assert_eq!(h.core.reg(Reg::A0), 77);
        assert_eq!(h.core.reg(Reg::A2), 123);
        assert!(h.core.reg(Reg::A3) > 0, "cycle counter runs");
        assert_eq!(h.core.reg(Reg::A4), 0, "high halves are zero early on");
        assert_eq!(h.core.reg(Reg::A5), 0);
    }

    #[test]
    fn fetch_fault_halts() {
        let mut h = Harness::new("nop\n", SnitchConfig::default(), 1);
        // After the single nop, pc runs past the image end -> fault.
        for _ in 0..10 {
            h.cycle();
        }
        assert!(h.core.halted());
        assert!(h.core.faulted());
    }

    #[test]
    fn lsu_full_backpressure() {
        let cfg = SnitchConfig {
            outstanding: 2,
            ..SnitchConfig::default()
        };
        // Four independent loads: the 3rd must wait for a slot.
        let mut h = Harness::new(
            "lw a0, 0(zero)\nlw a1, 4(zero)\nlw a2, 8(zero)\nlw a3, 12(zero)\necall\n",
            cfg,
            10,
        );
        h.run(200);
        assert!(h.core.stats().stall_lsu_full > 0);
    }

    #[test]
    fn byte_and_half_loads_extend() {
        let mut h = Harness::new(
            "li a0, 16\nlb a1, 3(a0)\nlbu a2, 3(a0)\nlh a3, 2(a0)\nlhu a4, 2(a0)\necall\n",
            SnitchConfig::default(),
            1,
        );
        h.mem[4] = 0x80f1_0000;
        h.run(100);
        assert_eq!(h.core.reg(Reg::A1), 0xffff_ff80);
        assert_eq!(h.core.reg(Reg::A2), 0x80);
        assert_eq!(h.core.reg(Reg::A3), 0xffff_80f1);
        assert_eq!(h.core.reg(Reg::A4), 0x80f1);
    }

    #[test]
    fn trace_records_retired_instructions_in_order() {
        let mut h = Harness::new(
            "li a0, 1\nli a1, 2\nadd a2, a0, a1\necall\n",
            SnitchConfig::default(),
            1,
        );
        h.core.enable_trace(8);
        h.run(100);
        let trace: Vec<_> = h.core.trace().collect();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0].pc, 0);
        assert_eq!(trace[2].instr.to_string(), "add a2, a0, a1");
        assert!(trace.windows(2).all(|w| w[0].cycle < w[1].cycle));
    }

    #[test]
    fn trace_ring_buffer_keeps_newest() {
        let mut h = Harness::new(
            "li a0, 8\nloop: addi a0, a0, -1\nbnez a0, loop\necall\n",
            SnitchConfig::default(),
            1,
        );
        h.core.enable_trace(3);
        h.run(200);
        let trace: Vec<_> = h.core.trace().collect();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[2].instr, Instr::Ecall);
    }

    #[test]
    fn halted_core_ignores_steps() {
        let mut core = SnitchCore::new(SnitchConfig::default());
        core.step(Fetch::Ready(Instr::Ecall), true);
        assert!(core.halted());
        let pc = core.pc();
        core.step(Fetch::Ready(Instr::NOP), true);
        assert_eq!(core.pc(), pc);
        assert_eq!(core.stats().halted_cycles, 1);
    }

    #[test]
    fn every_cycle_is_accounted() {
        let mut h = Harness::new(
            "li a0, 100\nli a1, 7\ndiv a2, a0, a1\nlw a3, 16(zero)\n\
             addi a3, a3, 1\nsw a3, 16(zero)\nfence\necall\n",
            SnitchConfig::default(),
            5,
        );
        h.run(500);
        // Step a halted core a few more times, as the cluster's drain does.
        for _ in 0..3 {
            h.cycle();
        }
        let s = h.core.stats();
        assert_eq!(s.cycles, s.instret + s.total_stalls() + s.halted_cycles);
        assert_eq!(s.halted_cycles, 3);
    }

    #[test]
    fn mregion_csr_reads_back_and_defaults_to_zero() {
        let mut h = Harness::new(
            "csrr a0, mregion\nli a1, 3\ncsrw mregion, a1\ncsrr a2, mregion\necall\n",
            SnitchConfig::default(),
            1,
        );
        h.run(100);
        assert_eq!(h.core.reg(Reg::A0), 0);
        assert_eq!(h.core.reg(Reg::A2), 3);
        assert_eq!(h.core.region(), 3);
    }

    #[test]
    fn profile_attribution_sums_to_the_stat_counters() {
        let mut h = Harness::new(
            "li a0, 1\ncsrw mregion, a0\nlw a1, 16(zero)\naddi a1, a1, 1\n\
             li a0, 2\ncsrw mregion, a0\nsw a1, 20(zero)\nfence\necall\n",
            SnitchConfig::default(),
            6,
        );
        h.core.enable_profile(64);
        h.run(200);
        let p = h.core.profile().expect("profiling on");
        let s = h.core.stats();
        let total = p.total();
        assert_eq!(total.retired, s.instret);
        assert_eq!(total.stall_cycles(), s.total_stalls());
        // The load-use stall landed in region 1, the fence drain in 2.
        assert!(p.regions()[1].stalls[crate::profile::stall_index(StallCause::Scoreboard)] > 0);
        assert!(p.regions()[2].stalls[crate::profile::stall_index(StallCause::Fence)] > 0);
    }

    #[test]
    fn profile_survives_save_restore() {
        let mut h = Harness::new(
            "li a0, 1\ncsrw mregion, a0\nlw a1, 16(zero)\naddi a1, a1, 1\necall\n",
            SnitchConfig::default(),
            4,
        );
        h.core.enable_profile(64);
        h.run(100);
        let state = h.core.save_state();
        let mut other = SnitchCore::new(SnitchConfig::default());
        other.restore_state(&state);
        assert_eq!(other.profile(), h.core.profile());
        assert_eq!(other.region(), h.core.region());
        assert_eq!(other.stats(), h.core.stats());
    }
}
