//! # mempool-snitch
//!
//! A cycle-accurate model of the **Snitch** core as instantiated in the
//! MemPool cluster (DATE 2021): a 21 kGE single-issue, single-stage RV32IMA
//! core whose small area allows massive replication, with a register
//! scoreboard and a configurable number of outstanding memory operations to
//! hide SPM access latency.
//!
//! The core is externally clocked, which lets the `mempool` cluster crate
//! interleave core execution with interconnect and bank activity at cycle
//! granularity:
//!
//! 1. [`SnitchCore::deliver`] — completed memory responses (identified by
//!    their reorder-buffer tag) write back and clear the scoreboard;
//! 2. [`SnitchCore::step`] — the core retires at most one instruction, and
//!    may emit one [`DataRequest`] on its data port.
//!
//! Timing model highlights (all configurable via [`SnitchConfig`]):
//!
//! * loads/stores/AMOs allocate an LSU slot and complete out of order (the
//!   tag routes the response to the right slot — the tile ROB of the paper);
//! * `fence` drains all outstanding operations (MemPool's interconnect does
//!   not order transactions, so inter-core handshakes fence explicitly);
//! * the divider is serial (multi-cycle); multiplies are single-cycle;
//! * taken branches pay a refetch bubble.
//!
//! # Examples
//!
//! See [`SnitchCore`] for a runnable example.

#![warn(missing_docs)]

mod core;
mod port;
pub mod profile;

pub use crate::core::semantics;
pub use crate::core::{
    CoreStats, LsuSlotState, SnitchConfig, SnitchCore, SnitchState, StallCause, TraceEntry,
};
pub use port::{DataRequest, DataRequestKind, DataResponse, Fetch};
pub use profile::{CoreProfile, PcCounters, RegionCounters};
