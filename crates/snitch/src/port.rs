//! The core's two ports: instruction fetch and data memory.

use mempool_riscv::{AmoOp, Instr, LoadOp, StoreOp};

/// Result of an instruction fetch attempt this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetch {
    /// The instruction is available (I-cache hit; pre-decoded by the owner
    /// of the program image).
    Ready(Instr),
    /// The I-cache missed (or the fetch port is busy); the core stalls.
    Stall,
    /// The PC points outside the program image; the core halts with a
    /// fault.
    Fault,
}

/// A memory operation leaving the core's data port.
///
/// The `tag` identifies the reorder-buffer (LSU) slot; responses carry it
/// back so out-of-order completions land in the right slot — this is the
/// per-core metadata the paper's request interconnect transports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataRequest {
    /// LSU slot / reorder-buffer tag.
    pub tag: u8,
    /// Byte address in the core's (pre-scramble) view of L1.
    pub addr: u32,
    /// Operation kind and payload.
    pub kind: DataRequestKind,
}

/// The operation performed at the target bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataRequestKind {
    /// Load of the given width.
    Load(LoadOp),
    /// Store of the given width; `data` is already shifted to its lanes.
    Store {
        /// Width.
        op: StoreOp,
        /// Register value to store (unshifted).
        data: u32,
    },
    /// RV32A read-modify-write.
    Amo {
        /// Operation.
        op: AmoOp,
        /// Source operand.
        operand: u32,
    },
    /// Load-reserved word.
    LoadReserved,
    /// Store-conditional word.
    StoreConditional {
        /// Data to write on success.
        data: u32,
    },
}

impl DataRequestKind {
    /// Whether the operation writes memory.
    pub fn is_write(&self) -> bool {
        !matches!(self, DataRequestKind::Load(_) | DataRequestKind::LoadReserved)
    }

    /// Whether the response carries data the core writes to a register.
    pub fn has_result(&self) -> bool {
        !matches!(self, DataRequestKind::Store { .. })
    }
}

/// A completed memory operation returning to the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataResponse {
    /// The LSU tag from the matching [`DataRequest`].
    pub tag: u8,
    /// Response payload: load data, AMO old value, or SC status.
    pub data: u32,
}
