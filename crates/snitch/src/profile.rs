//! Opt-in per-PC / per-region execution profile of one core.
//!
//! When enabled (see [`SnitchCore::enable_profile`]), every cycle the core
//! spends is attributed twice:
//!
//! * to the **program counter** it was fetching/retiring at (bounded table,
//!   spill into an overflow bucket), split into retired instructions and
//!   per-[`StallCause`] stall cycles;
//! * to the current **region** — a kernel phase ID the program writes into
//!   the custom `mregion` CSR (see `mempool_riscv::csr::MREGION`), so
//!   init/compute/barrier/writeback phases are first-class.
//!
//! The profile is plain integer state updated deterministically inside
//! [`SnitchCore::step`]; it is part of the core's dynamic state image and
//! therefore survives checkpoint/restore and is engine-independent.
//!
//! [`SnitchCore::enable_profile`]: crate::SnitchCore::enable_profile
//! [`SnitchCore::step`]: crate::SnitchCore::step

use crate::StallCause;
use std::collections::BTreeMap;

/// Number of distinct region slots tracked; region IDs at or above
/// `REGION_SLOTS - 1` fold into the last ("other") slot.
pub const REGION_SLOTS: usize = 8;

/// Canonical region names, indexed by slot. Slots 0–3 are the kernel-phase
/// convention emitted by `mempool_kernels::emit_region`; the rest are free
/// for ad-hoc instrumentation.
pub const REGION_NAMES: [&str; REGION_SLOTS] = [
    "init",
    "compute",
    "barrier",
    "writeback",
    "region4",
    "region5",
    "region6",
    "other",
];

/// Region ID written by `emit_region` for the init phase.
pub const REGION_INIT: u32 = 0;
/// Region ID for the compute phase.
pub const REGION_COMPUTE: u32 = 1;
/// Region ID for barrier/synchronization code.
pub const REGION_BARRIER: u32 = 2;
/// Region ID for the writeback phase.
pub const REGION_WRITEBACK: u32 = 3;

/// Maps a raw `mregion` CSR value to its bounded slot index.
pub fn region_slot(region: u32) -> usize {
    (region as usize).min(REGION_SLOTS - 1)
}

/// Human-readable name for a raw `mregion` CSR value.
pub fn region_name(region: u32) -> &'static str {
    REGION_NAMES[region_slot(region)]
}

/// All stall causes in canonical (declaration) order — the index of a cause
/// in this array is its slot in [`PcCounters::stalls`] /
/// [`RegionCounters::stalls`].
pub const STALL_CAUSES: [StallCause; 6] = [
    StallCause::Scoreboard,
    StallCause::LsuFull,
    StallCause::PortBusy,
    StallCause::Fetch,
    StallCause::Fence,
    StallCause::ExecBusy,
];

/// Canonical index of a stall cause (see [`STALL_CAUSES`]).
pub fn stall_index(cause: StallCause) -> usize {
    match cause {
        StallCause::Scoreboard => 0,
        StallCause::LsuFull => 1,
        StallCause::PortBusy => 2,
        StallCause::Fetch => 3,
        StallCause::Fence => 4,
        StallCause::ExecBusy => 5,
    }
}

/// Short machine-friendly name of a stall cause (folded-stack frames,
/// metrics counter suffixes).
pub fn stall_name(cause: StallCause) -> &'static str {
    match cause {
        StallCause::Scoreboard => "scoreboard",
        StallCause::LsuFull => "lsu_full",
        StallCause::PortBusy => "port_busy",
        StallCause::Fetch => "fetch",
        StallCause::Fence => "fence",
        StallCause::ExecBusy => "exec_busy",
    }
}

/// Cycle attribution of one (region, PC) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcCounters {
    /// Instructions retired at this PC.
    pub retired: u64,
    /// Stall cycles charged to this PC, indexed by [`STALL_CAUSES`].
    pub stalls: [u64; STALL_CAUSES.len()],
}

impl PcCounters {
    /// Total stall cycles across all causes.
    pub fn stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Total cycles attributed (one per retirement, one per stall).
    pub fn cycles(&self) -> u64 {
        self.retired + self.stall_cycles()
    }
}

/// Cycle attribution of one region slot, summed over all PCs (exact even
/// when the PC table overflows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionCounters {
    /// Instructions retired while the region was current.
    pub retired: u64,
    /// Stall cycles while the region was current, indexed by
    /// [`STALL_CAUSES`].
    pub stalls: [u64; STALL_CAUSES.len()],
}

impl RegionCounters {
    /// Total stall cycles across all causes.
    pub fn stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Total cycles attributed to the region.
    pub fn cycles(&self) -> u64 {
        self.retired + self.stall_cycles()
    }
}

fn key(region: u32, pc: u32) -> u64 {
    ((region_slot(region) as u64) << 32) | u64::from(pc)
}

/// One core's bounded per-PC / per-region profile (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreProfile {
    max_pcs: usize,
    pcs: BTreeMap<u64, PcCounters>,
    overflow: PcCounters,
    regions: [RegionCounters; REGION_SLOTS],
}

impl CoreProfile {
    /// Creates an empty profile tracking at most `max_pcs` distinct
    /// (region, PC) pairs; further pairs are folded into the overflow
    /// bucket (region attribution stays exact regardless).
    pub fn new(max_pcs: usize) -> Self {
        CoreProfile {
            max_pcs: max_pcs.max(1),
            pcs: BTreeMap::new(),
            overflow: PcCounters::default(),
            regions: [RegionCounters::default(); REGION_SLOTS],
        }
    }

    /// The configured (region, PC)-pair bound.
    pub fn max_pcs(&self) -> usize {
        self.max_pcs
    }

    fn entry(&mut self, region: u32, pc: u32) -> &mut PcCounters {
        let k = key(region, pc);
        if self.pcs.len() >= self.max_pcs && !self.pcs.contains_key(&k) {
            return &mut self.overflow;
        }
        self.pcs.entry(k).or_default()
    }

    /// Attributes one retired instruction to `(region, pc)`. Called by the
    /// core every retirement; public so aggregation code can be tested
    /// against hand-built profiles.
    pub fn record_retire(&mut self, region: u32, pc: u32) {
        self.entry(region, pc).retired += 1;
        self.regions[region_slot(region)].retired += 1;
    }

    /// Attributes one stall cycle to `(region, pc)`.
    pub fn record_stall(&mut self, region: u32, pc: u32, cause: StallCause) {
        let i = stall_index(cause);
        self.entry(region, pc).stalls[i] += 1;
        self.regions[region_slot(region)].stalls[i] += 1;
    }

    /// Iterates the tracked `(region_slot, pc, counters)` triples in
    /// canonical (region, PC) order.
    pub fn pcs(&self) -> impl Iterator<Item = (u32, u32, &PcCounters)> {
        self.pcs
            .iter()
            .map(|(&k, c)| ((k >> 32) as u32, k as u32, c))
    }

    /// Number of tracked (region, PC) pairs.
    pub fn tracked_pcs(&self) -> usize {
        self.pcs.len()
    }

    /// Attribution that spilled past the PC-table bound.
    pub fn overflow(&self) -> &PcCounters {
        &self.overflow
    }

    /// Per-region aggregation (always exact).
    pub fn regions(&self) -> &[RegionCounters; REGION_SLOTS] {
        &self.regions
    }

    /// Sum over all regions.
    pub fn total(&self) -> RegionCounters {
        let mut t = RegionCounters::default();
        for r in &self.regions {
            t.retired += r.retired;
            for (acc, &s) in t.stalls.iter_mut().zip(&r.stalls) {
                *acc += s;
            }
        }
        t
    }

    /// Rebuilds a profile from its serialized parts (checkpoint restore).
    /// `entries` are `(region_slot, pc, counters)` triples.
    pub fn from_parts(
        max_pcs: usize,
        entries: Vec<(u32, u32, PcCounters)>,
        overflow: PcCounters,
        regions: [RegionCounters; REGION_SLOTS],
    ) -> Self {
        CoreProfile {
            max_pcs: max_pcs.max(1),
            pcs: entries
                .into_iter()
                .map(|(region, pc, c)| (key(region, pc), c))
                .collect(),
            overflow,
            regions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_attribution_is_exact_past_the_pc_bound() {
        let mut p = CoreProfile::new(2);
        p.record_retire(1, 0x10);
        p.record_retire(1, 0x14);
        p.record_retire(1, 0x18); // spills
        p.record_stall(1, 0x1c, StallCause::Fetch); // spills
        assert_eq!(p.tracked_pcs(), 2);
        assert_eq!(p.overflow().retired, 1);
        assert_eq!(p.overflow().stalls[stall_index(StallCause::Fetch)], 1);
        assert_eq!(p.regions()[1].retired, 3);
        assert_eq!(p.regions()[1].stall_cycles(), 1);
        assert_eq!(p.total().cycles(), 4);
    }

    #[test]
    fn out_of_range_regions_fold_into_other() {
        let mut p = CoreProfile::new(16);
        p.record_retire(42, 0x10);
        assert_eq!(p.regions()[REGION_SLOTS - 1].retired, 1);
        assert_eq!(region_name(42), "other");
    }

    #[test]
    fn roundtrips_through_parts() {
        let mut p = CoreProfile::new(8);
        p.record_retire(0, 0x0);
        p.record_stall(1, 0x4, StallCause::Scoreboard);
        let entries: Vec<_> = p.pcs().map(|(r, pc, c)| (r, pc, *c)).collect();
        let q = CoreProfile::from_parts(p.max_pcs(), entries, *p.overflow(), *p.regions());
        assert_eq!(p, q);
    }
}
