//! Differential testing: the cycle-accurate Snitch core must compute the
//! same architectural results as a simple functional RV32IMA interpreter,
//! for random programs, regardless of memory latency. Programs come from a
//! seeded PRNG so every failing case replays from its iteration index.

use mempool_riscv::{AluOp, Instr, LoadOp, MulOp, Reg, StoreOp};
use mempool_rng::{Rng, SeedableRng, StdRng};
use mempool_snitch::{DataRequestKind, DataResponse, Fetch, SnitchConfig, SnitchCore};

/// A functional (untimed) RV32IMA reference.
struct Reference {
    regs: [u32; 32],
    mem: Vec<u32>,
}

impl Reference {
    fn new(mem_words: usize) -> Self {
        Reference {
            regs: [0; 32],
            mem: vec![0; mem_words],
        }
    }

    fn run(&mut self, program: &[Instr]) {
        let mut pc = 0usize;
        while let Some(&instr) = program.get(pc) {
            pc += 1;
            let r = |reg: Reg| self.regs[reg.index() as usize];
            match instr {
                Instr::OpImm { op, rd, rs1, imm } => {
                    let v = eval_alu(op, r(rs1), imm as u32);
                    self.write(rd, v);
                }
                Instr::Op { op, rd, rs1, rs2 } => {
                    let v = eval_alu(op, r(rs1), r(rs2));
                    self.write(rd, v);
                }
                Instr::MulDiv { op, rd, rs1, rs2 } => {
                    let v = eval_muldiv(op, r(rs1), r(rs2));
                    self.write(rd, v);
                }
                Instr::Lui { rd, imm } => self.write(rd, imm),
                Instr::Load { op, rd, rs1, offset } => {
                    let addr = r(rs1).wrapping_add(offset as u32);
                    let word = self.mem[(addr / 4) as usize % self.mem.len()];
                    self.write(rd, op.extract(word, addr & 3));
                }
                Instr::Store { op, rs2, rs1, offset } => {
                    let addr = r(rs1).wrapping_add(offset as u32);
                    let idx = (addr / 4) as usize % self.mem.len();
                    self.mem[idx] = op.merge(self.mem[idx], r(rs2), addr & 3);
                }
                Instr::Fence => {} // no timing in the reference
                Instr::Ecall => return,
                _ => unreachable!("generator does not emit {instr:?}"),
            }
        }
    }

    fn write(&mut self, rd: Reg, value: u32) {
        if !rd.is_zero() {
            self.regs[rd.index() as usize] = value;
        }
    }
}

fn eval_alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

#[allow(clippy::manual_checked_ops)] // RISC-V div-by-zero returns -1, not None
fn eval_muldiv(op: MulOp, a: u32, b: u32) -> u32 {
    match op {
        MulOp::Mul => a.wrapping_mul(b),
        MulOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        MulOp::Mulhsu => (((a as i32 as i64) * (b as i64)) >> 32) as u32,
        MulOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
        MulOp::Div => match (a as i32, b as i32) {
            (_, 0) => u32::MAX,
            (i32::MIN, -1) => a,
            (x, y) => (x / y) as u32,
        },
        MulOp::Divu => {
            if b == 0 {
                u32::MAX
            } else {
                a / b
            }
        }
        MulOp::Rem => match (a as i32, b as i32) {
            (_, 0) => a,
            (i32::MIN, -1) => 0,
            (x, y) => (x % y) as u32,
        },
        MulOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

const MEM_WORDS: usize = 64;

const ALU_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
];
const MUL_OPS: [MulOp; 8] = [
    MulOp::Mul,
    MulOp::Mulh,
    MulOp::Mulhsu,
    MulOp::Mulhu,
    MulOp::Div,
    MulOp::Divu,
    MulOp::Rem,
    MulOp::Remu,
];

fn any_reg(rng: &mut StdRng) -> Reg {
    Reg::new(rng.gen_range(0u8..32)).unwrap()
}

/// Random straight-line instruction: ALU, mul/div, loads/stores into a small
/// wrapped memory window (addresses kept in range by construction).
fn any_straightline(rng: &mut StdRng) -> Instr {
    match rng.gen_range(0u8..8) {
        0 => {
            let op = loop {
                let op = ALU_OPS[rng.gen_range(0usize..ALU_OPS.len())];
                if op.has_imm_form() {
                    break op;
                }
            };
            let imm = rng.gen_range(-2048i32..2048);
            let imm = if op.is_shift() { imm.rem_euclid(32) } else { imm };
            Instr::OpImm {
                op,
                rd: any_reg(rng),
                rs1: any_reg(rng),
                imm,
            }
        }
        1 => Instr::Op {
            op: ALU_OPS[rng.gen_range(0usize..ALU_OPS.len())],
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        2 => Instr::MulDiv {
            op: MUL_OPS[rng.gen_range(0usize..MUL_OPS.len())],
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        3 => Instr::Lui {
            rd: any_reg(rng),
            imm: rng.gen_range(0u32..0x1000) << 12,
        },
        // Loads/stores relative to x0 within the memory window (word
        // aligned so sub-word extraction offsets stay in range).
        4 => Instr::Load {
            op: LoadOp::Lw,
            rd: any_reg(rng),
            rs1: Reg::ZERO,
            offset: rng.gen_range(0i32..MEM_WORDS as i32) * 4,
        },
        5 => Instr::Load {
            op: LoadOp::Lbu,
            rd: any_reg(rng),
            rs1: Reg::ZERO,
            offset: rng.gen_range(0i32..MEM_WORDS as i32) * 4 + rng.gen_range(0i32..4),
        },
        6 => Instr::Store {
            op: StoreOp::Sw,
            rs2: any_reg(rng),
            rs1: Reg::ZERO,
            offset: rng.gen_range(0i32..MEM_WORDS as i32) * 4,
        },
        _ => Instr::Store {
            op: StoreOp::Sb,
            rs2: any_reg(rng),
            rs1: Reg::ZERO,
            offset: rng.gen_range(0i32..MEM_WORDS as i32) * 4 + rng.gen_range(0i32..4),
        },
    }
}

/// Runs the cycle-accurate core on `program` with the given fixed memory
/// latency and an in-order-response memory; returns (registers, memory).
fn run_timed(program: &[Instr], latency: u64, outstanding: usize) -> ([u32; 32], Vec<u32>) {
    let mut core = SnitchCore::new(SnitchConfig {
        outstanding,
        div_latency: 3,
        ..SnitchConfig::default()
    });
    let mut mem = vec![0u32; MEM_WORDS];
    let mut pending: Vec<(u64, DataResponse)> = Vec::new();
    let mut now = 0u64;
    let budget = 200_000;
    while (!core.halted() || core.has_outstanding()) && now < budget {
        now += 1;
        let mut i = 0;
        while i < pending.len() {
            if pending[i].0 <= now {
                let (_, resp) = pending.remove(i);
                core.deliver(resp);
            } else {
                i += 1;
            }
        }
        let fetch = program
            .get((core.pc() / 4) as usize)
            .map_or(Fetch::Fault, |&i| Fetch::Ready(i));
        if let Some(req) = core.step(fetch, true) {
            let idx = (req.addr / 4) as usize % MEM_WORDS;
            let data = match req.kind {
                DataRequestKind::Load(_) | DataRequestKind::LoadReserved => mem[idx],
                DataRequestKind::Store { op, data } => {
                    mem[idx] = op.merge(mem[idx], data, req.addr & 3);
                    0
                }
                DataRequestKind::Amo { op, operand } => {
                    let old = mem[idx];
                    mem[idx] = op.apply(old, operand);
                    old
                }
                DataRequestKind::StoreConditional { data } => {
                    mem[idx] = data;
                    0
                }
            };
            pending.push((now + latency, DataResponse { tag: req.tag, data }));
        }
    }
    assert!(core.halted(), "timed run exceeded cycle budget");
    let mut regs = [0u32; 32];
    for r in Reg::all() {
        regs[r.index() as usize] = core.reg(r);
    }
    (regs, mem)
}

/// Architectural equivalence with the functional reference, across memory
/// latencies and LSU depths. Memory responses may return while later
/// independent instructions already executed — the scoreboard must make
/// that invisible.
#[test]
fn timed_core_matches_reference() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x901d_e000 ^ case);
        let len = rng.gen_range(1usize..60);
        let mut program: Vec<Instr> = (0..len).map(|_| any_straightline(&mut rng)).collect();
        let latency = rng.gen_range(1u64..12);
        let outstanding = rng.gen_range(1usize..9);
        program.push(Instr::Fence);
        program.push(Instr::Ecall);

        let mut reference = Reference::new(MEM_WORDS);
        reference.run(&program);

        let (regs, mem) = run_timed(&program, latency, outstanding);
        assert_eq!(
            regs, reference.regs,
            "case {case} latency={latency} lsu={outstanding}"
        );
        assert_eq!(mem, reference.mem, "case {case}");
    }
}
