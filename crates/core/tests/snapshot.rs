//! Checkpoint/restore contract tests: restoring a mid-run snapshot and
//! continuing is cycle-for-cycle bit-identical to never snapshotting — with
//! and without an active fault plan — the canonical state digest is stable
//! across identical runs, serialized snapshots survive the disk roundtrip
//! (and corruption is detected), and the divergence bisector localizes the
//! first cycle at which a faulted run departs from a clean one.

use mempool::{
    bisect_divergence, Cluster, ClusterConfig, ClusterSnapshot, FaultPlan, FaultSpec,
    ResilienceConfig, SnapshotError, Topology,
};
use mempool_riscv::assemble;

/// Every core, after a short delay, fills its own 16-word slice of
/// `0x10000..` with its hart ID and reads it back — loads and stores only,
/// so injected-fault retries are idempotent.
fn store_load_program() -> mempool_riscv::Program {
    assemble(
        "csrr t0, mhartid\n\
         li   t1, 60\n\
         delay:\n\
         addi t1, t1, -1\n\
         bnez t1, delay\n\
         li   t2, 0x10000\n\
         slli t3, t0, 6\n\
         add  t3, t3, t2\n\
         li   t4, 16\n\
         loop:\n\
         sw   t0, 0(t3)\n\
         lw   t5, 0(t3)\n\
         addi t3, t3, 4\n\
         addi t4, t4, -1\n\
         bnez t4, loop\n\
         ecall\n",
    )
    .expect("test program assembles")
}

fn resilient(topology: Topology) -> ClusterConfig {
    let mut config = ClusterConfig::small(topology);
    config.resilience = ResilienceConfig::standard();
    config
}

fn snitch_cluster(
    config: ClusterConfig,
    plan: Option<FaultPlan>,
) -> Cluster<mempool_snitch::SnitchCore> {
    let mut cluster = Cluster::snitch(config).expect("valid config");
    cluster.load_program(&store_load_program()).expect("program loads");
    cluster.install_fault_plan(plan);
    cluster
}

/// The core invariant: snapshot at `mid`, restore into a *fresh* cluster,
/// continue — final digest, L1 contents, and full `ClusterStats` must be
/// bit-identical to the uninterrupted run.
fn assert_roundtrip(config: ClusterConfig, plan: Option<FaultSpec>, mid: u64, total: u64) {
    let plan_of = |spec: &Option<FaultSpec>| spec.map(|s| FaultPlan::new(5, s));

    let mut uninterrupted = snitch_cluster(config, plan_of(&plan));
    uninterrupted.step_cycles(total);

    let mut original = snitch_cluster(config, plan_of(&plan));
    original.step_cycles(mid);
    let snap = original.snapshot();
    assert_eq!(snap.cycle(), mid);
    assert_eq!(snap.state_digest(), original.state_digest());
    original.step_cycles(total - mid);

    // The fresh cluster gets no fault plan of its own: the snapshot must
    // carry the plan (and the scheduled-failure cursor) across.
    let mut restored = snitch_cluster(config, None);
    restored.restore(&snap).expect("snapshot restores");
    assert_eq!(restored.now(), mid);
    assert_eq!(restored.state_digest(), snap.state_digest());
    restored.step_cycles(total - mid);

    assert_eq!(original.state_digest(), uninterrupted.state_digest());
    assert_eq!(restored.state_digest(), uninterrupted.state_digest());
    assert_eq!(restored.l1_digest(), uninterrupted.l1_digest());
    assert_eq!(restored.stats(), uninterrupted.stats());
    assert_eq!(restored.now(), uninterrupted.now());
}

#[test]
fn roundtrip_is_bit_identical_fault_free() {
    for topology in [Topology::Ideal, Topology::Top1, Topology::TopH] {
        assert_roundtrip(ClusterConfig::small(topology), None, 700, 2_000);
    }
}

#[test]
fn roundtrip_is_bit_identical_under_active_fault_plan() {
    let spec: FaultSpec = "bank_fail=2,bank_stall=0.01,link_stall=0.01,link_drop=0.002,\
                           link_corrupt=0.002,core_lockup=0.001,spurious_retire=0.001"
        .parse()
        .expect("valid spec");
    for topology in [Topology::Top1, Topology::TopH] {
        let config = resilient(topology);
        // Snapshot cycles straddle the scheduled bank failures and the
        // retry machinery's busiest window.
        for mid in [150, 900, 2_500] {
            assert_roundtrip(config, Some(spec), mid, 4_000);
        }
        // Sanity: the plan demonstrably injected something in this window.
        let mut cluster = snitch_cluster(config, Some(FaultPlan::new(5, spec)));
        cluster.step_cycles(4_000);
        assert!(cluster.stats().faults.total_injected() > 0);
    }
}

/// Property-style sweep: random specs and random snapshot points, all
/// seeded, never diverge and never panic.
#[test]
fn roundtrip_property_sweep() {
    let specs: [FaultSpec; 3] = [
        "bank_fail=1".parse().expect("valid spec"),
        "link_drop=0.005,link_corrupt=0.003".parse().expect("valid spec"),
        "bank_stall=0.05,core_lockup=0.002".parse().expect("valid spec"),
    ];
    for (i, spec) in specs.into_iter().enumerate() {
        let mid = 300 + 617 * i as u64; // arbitrary, spec-dependent
        assert_roundtrip(resilient(Topology::TopH), Some(spec), mid, 2_400);
    }
}

#[test]
fn state_digest_is_stable_across_identical_runs() {
    let run = || {
        let mut cluster = snitch_cluster(ClusterConfig::small(Topology::TopH), None);
        let mut digests = Vec::new();
        for _ in 0..8 {
            cluster.step_cycles(250);
            digests.push(cluster.state_digest());
        }
        digests
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical runs must digest identically at every probe");
    // And the digest actually evolves with the machine state.
    assert!(a.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn snapshot_bytes_roundtrip_and_detect_corruption() {
    let mut cluster = snitch_cluster(ClusterConfig::small(Topology::Top1), None);
    cluster.step_cycles(500);
    let snap = cluster.snapshot();

    let parsed = ClusterSnapshot::from_bytes(snap.as_bytes()).expect("roundtrips");
    assert_eq!(parsed, snap);

    // Flip one byte in the state section: digest check must catch it.
    let mut corrupt = snap.as_bytes().to_vec();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x40;
    assert_eq!(
        ClusterSnapshot::from_bytes(&corrupt),
        Err(SnapshotError::DigestMismatch)
    );

    // A foreign file is rejected by magic, a short one by length.
    assert_eq!(
        ClusterSnapshot::from_bytes(&[0x55u8; 64]),
        Err(SnapshotError::BadMagic)
    );
    assert_eq!(
        ClusterSnapshot::from_bytes(&snap.as_bytes()[..20]),
        Err(SnapshotError::Truncated)
    );
}

#[test]
fn snapshot_file_roundtrip() {
    let mut cluster = snitch_cluster(ClusterConfig::small(Topology::TopH), None);
    cluster.step_cycles(300);
    let snap = cluster.snapshot();
    let path = std::env::temp_dir().join(format!(
        "mempool-snapshot-test-{}.ckpt",
        std::process::id()
    ));
    snap.write_file(&path).expect("snapshot writes");
    let loaded = ClusterSnapshot::read_file(&path).expect("snapshot reads back");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, snap);
}

#[test]
fn restore_rejects_mismatched_config_and_image() {
    let mut cluster = snitch_cluster(ClusterConfig::small(Topology::TopH), None);
    cluster.step_cycles(100);
    let snap = cluster.snapshot();

    let mut other_topology = snitch_cluster(ClusterConfig::small(Topology::Top1), None);
    assert_eq!(
        other_topology.restore(&snap),
        Err(SnapshotError::ConfigMismatch)
    );

    let mut other_program = Cluster::snitch(ClusterConfig::small(Topology::TopH))
        .expect("valid config");
    other_program
        .load_program(&assemble("ecall\n").expect("assembles"))
        .expect("program loads");
    assert_eq!(
        other_program.restore(&snap),
        Err(SnapshotError::ImageMismatch)
    );
}

/// The bisector pinpoints the first cycle a faulted run departs from a
/// clean one: the first scheduled bank failure. The fault-plan *parameters*
/// are excluded from the digest by design, so the two runs agree bitwise up
/// to that cycle.
#[test]
fn bisector_localizes_first_injected_fault() {
    let config = resilient(Topology::TopH);
    let spec: FaultSpec = "bank_fail=2".parse().expect("valid spec");
    let plan = FaultPlan::new(9, spec);
    let first_failure = plan
        .bank_failures(config.num_tiles as u32, config.banks_per_tile as u32)
        .iter()
        .map(|f| f.cycle)
        .min()
        .expect("plan schedules failures");

    let mut clean = snitch_cluster(config, None);
    let mut faulted = snitch_cluster(config, Some(plan));
    let report = bisect_divergence(&mut clean, &mut faulted, first_failure + 1_000, 256)
        .expect("runs must diverge at the injected failure");

    // `Cluster::cycle` advances `now` and then applies scheduled faults, so
    // the first post-step digest exposing the failure is at exactly its
    // scheduled cycle.
    assert_eq!(report.cycle, first_failure);
    assert!(!report.components.is_empty());
    let names: Vec<&str> = report.components.iter().map(|c| c.component.as_str()).collect();
    assert!(
        names.iter().any(|n| *n == "quarantine" || *n == "fault-log" || n.starts_with("tile")),
        "diff must name the faulted structure, got {names:?}"
    );
    // Both clusters are left parked at the divergent cycle.
    assert_eq!(clean.now(), report.cycle);
    assert_eq!(faulted.now(), report.cycle);
    // The report renders.
    assert!(format!("{report}").contains("first divergence at cycle"));
}

/// Identical runs never "diverge".
#[test]
fn bisector_reports_none_for_identical_runs() {
    let config = ClusterConfig::small(Topology::Top1);
    let mut a = snitch_cluster(config, None);
    let mut b = snitch_cluster(config, None);
    assert_eq!(bisect_divergence(&mut a, &mut b, 1_500, 128), None);
    assert_eq!(a.now(), 1_500);
    assert_eq!(a.state_digest(), b.state_digest());
}
