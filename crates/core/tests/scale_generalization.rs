//! The latency contract and basic correctness must hold at every legal
//! cluster scale, not just the paper's 64 tiles — TopH generalizes to any
//! 4-group arrangement with a power-of-radix group size.

use mempool::{Cluster, ClusterConfig, Topology};
use mempool_riscv::assemble;

fn config_with_tiles(topology: Topology, num_tiles: usize) -> ClusterConfig {
    ClusterConfig {
        num_tiles,
        ..ClusterConfig::paper(topology)
    }
}

/// One remote load from hart 0; returns the measured latency.
fn probe(config: ClusterConfig, addr: u32) -> u64 {
    let mut config = config;
    config.seq_region_bytes = None;
    let source = format!(
        "csrr t0, mhartid\nbnez t0, out\nli t1, {addr:#x}\nlw a0, (t1)\nfence\nout: ecall\n"
    );
    let program = assemble(&source).unwrap();
    let mut cluster = Cluster::snitch(config).unwrap();
    cluster.load_program(&program).unwrap();
    cluster.run(100_000).unwrap();
    cluster.stats().latency.max().expect("one sample")
}

#[test]
fn toph_contract_holds_at_16_and_256_tiles() {
    for tiles in [16usize, 256] {
        let cfg = config_with_tiles(Topology::TopH, tiles);
        cfg.validate().unwrap();
        let tpg = cfg.tiles_per_group() as u32;
        let addr_of_tile = |t: u32| t << 6; // row 0, bank 0 of tile t
        assert_eq!(probe(cfg, addr_of_tile(0)), 1, "{tiles} tiles: local");
        assert_eq!(probe(cfg, addr_of_tile(1)), 3, "{tiles} tiles: in-group");
        assert_eq!(probe(cfg, addr_of_tile(tpg)), 5, "{tiles} tiles: cross-group");
        assert_eq!(
            probe(cfg, addr_of_tile(3 * tpg)),
            5,
            "{tiles} tiles: diagonal group"
        );
    }
}

#[test]
fn top1_contract_scales_with_butterfly_depth() {
    // 16 tiles: 2-layer butterfly still gets the mid register -> 5 cycles.
    assert_eq!(probe(config_with_tiles(Topology::Top1, 16), 1 << 6), 5);
    // 4 tiles: a single-layer network has no mid register in either
    // direction -> 3 cycles (tile req reg + bank + tile resp reg).
    assert_eq!(probe(config_with_tiles(Topology::Top1, 4), 1 << 6), 3);
}

#[test]
fn amo_reduction_works_at_1024_cores() {
    let cfg = config_with_tiles(Topology::TopH, 256);
    let source = "li t0, 0x100000\ncsrr t1, mhartid\namoadd.w zero, t1, (t0)\nfence\necall\n";
    let program = assemble(source).unwrap();
    let mut cluster = Cluster::snitch(cfg).unwrap();
    cluster.load_program(&program).unwrap();
    cluster.run(5_000_000).unwrap();
    let n = cfg.num_cores() as u64;
    assert_eq!(
        cluster.read_word(0x100000).map(u64::from),
        Some(n * (n - 1) / 2)
    );
}

#[test]
fn odd_cores_per_tile_configurations_run() {
    // 8 cores per tile (Top4 gets 8 ports) — geometry beyond the paper.
    let mut cfg = ClusterConfig::small(Topology::Top4);
    cfg.cores_per_tile = 8;
    cfg.validate().unwrap();
    let program = assemble("csrr a0, mhartid\necall\n").unwrap();
    let mut cluster = Cluster::snitch(cfg).unwrap();
    cluster.load_program(&program).unwrap();
    cluster.run(100_000).unwrap();
    assert_eq!(
        cluster.cores()[127].reg(mempool_riscv::Reg::A0),
        127,
        "128-core cluster with 8 lanes per tile"
    );
}
