//! Differential tests for the tile-parallel engine: stepping a cluster
//! with `set_workers(n)` must be **bit-identical** to the serial engine —
//! same `state_digest`, same L1 contents, same statistics — after any
//! number of cycles, on every topology, with and without an active fault
//! plan, at any worker count. The snapshot subsystem is the oracle.

use mempool::{
    Cluster, ClusterConfig, FaultPlan, FaultSpec, ResilienceConfig, Topology,
};
use mempool_riscv::assemble;

/// Every core hammers its own 16-word slice of `0x10000..` forever —
/// loads and stores only (idempotent under injected-fault retries), no
/// halt, so the memory system stays busy for the whole differential
/// window.
fn hammer_program() -> mempool_riscv::Program {
    assemble(
        "csrr t0, mhartid\n\
         li   t2, 0x10000\n\
         slli t3, t0, 6\n\
         add  t3, t3, t2\n\
         forever:\n\
         mv   t6, t3\n\
         li   t4, 16\n\
         loop:\n\
         sw   t0, 0(t6)\n\
         lw   t5, 0(t6)\n\
         add  t0, t0, t5\n\
         addi t6, t6, 4\n\
         addi t4, t4, -1\n\
         bnez t4, loop\n\
         csrr t0, mhartid\n\
         j    forever\n",
    )
    .expect("test program assembles")
}

fn resilient(topology: Topology) -> ClusterConfig {
    let mut config = ClusterConfig::small(topology);
    config.resilience = ResilienceConfig::standard();
    config
}

fn cluster_with(
    config: ClusterConfig,
    plan: Option<FaultPlan>,
    workers: usize,
) -> Cluster<mempool_snitch::SnitchCore> {
    let mut cluster = Cluster::snitch(config).expect("valid config");
    cluster.load_program(&hammer_program()).expect("program loads");
    cluster.install_fault_plan(plan);
    cluster.set_workers(workers);
    cluster
}

/// Steps a serial reference and one parallel cluster per worker count for
/// `cycles`, asserting full architectural equality at the end.
fn assert_engines_agree(config: ClusterConfig, spec: Option<FaultSpec>, cycles: u64) {
    let plan = |spec: &Option<FaultSpec>| spec.map(|s| FaultPlan::new(11, s));
    let mut serial = cluster_with(config, plan(&spec), 0);
    serial.step_cycles(cycles);
    for workers in [1, 4, 32] {
        let mut parallel = cluster_with(config, plan(&spec), workers);
        assert!(parallel.parallelism() >= 1);
        parallel.step_cycles(cycles);
        assert_eq!(
            parallel.state_digest(),
            serial.state_digest(),
            "digest diverged: {:?} spec={spec:?} workers={workers}",
            config.topology
        );
        assert_eq!(parallel.l1_digest(), serial.l1_digest());
        assert_eq!(parallel.stats(), serial.stats());
        assert_eq!(parallel.in_flight(), serial.in_flight());
    }
}

#[test]
fn parallel_matches_serial_fault_free_10k() {
    for topology in Topology::all() {
        assert_engines_agree(ClusterConfig::small(topology), None, 10_000);
    }
}

#[test]
fn parallel_matches_serial_under_fault_plan_10k() {
    let spec: FaultSpec = "bank_fail=2,bank_stall=0.01,link_stall=0.01,link_drop=0.002,\
                           link_corrupt=0.002,core_lockup=0.001,spurious_retire=0.001"
        .parse()
        .expect("valid spec");
    for topology in Topology::all() {
        let config = resilient(topology);
        assert_engines_agree(config, Some(spec), 10_000);
        // Sanity: the plan demonstrably injected faults in this window.
        let mut probe = cluster_with(config, Some(FaultPlan::new(11, spec)), 2);
        probe.step_cycles(10_000);
        assert!(probe.stats().faults.total_injected() > 0);
    }
}

/// Switching engines at arbitrary cycle boundaries leaves no trace: a run
/// that flips serial → parallel → serial matches a pure serial run.
#[test]
fn engine_switch_mid_run_is_invisible() {
    let config = ClusterConfig::small(Topology::TopH);
    let mut reference = cluster_with(config, None, 0);
    reference.step_cycles(3_000);

    let mut switching = cluster_with(config, None, 0);
    switching.step_cycles(700);
    switching.set_workers(3);
    assert_eq!(switching.parallelism(), 3);
    switching.step_cycles(1_500);
    switching.set_workers(0);
    assert_eq!(switching.parallelism(), 0);
    switching.step_cycles(800);

    assert_eq!(switching.state_digest(), reference.state_digest());
    assert_eq!(switching.stats(), reference.stats());
}

/// Checkpoint/restore under the parallel engine (the PR-2 oracle, crossed
/// with PR-3): a snapshot taken mid-run from a parallel cluster restores
/// into a serial cluster (and vice versa) and both continuations land on
/// the uninterrupted run's digest.
#[test]
fn checkpoint_roundtrip_crosses_engines() {
    let spec: FaultSpec = "bank_fail=1,link_drop=0.002".parse().expect("valid spec");
    let config = resilient(Topology::TopH);
    let plan = || Some(FaultPlan::new(11, spec));
    let (mid, total) = (900, 4_000);

    let mut uninterrupted = cluster_with(config, plan(), 0);
    uninterrupted.step_cycles(total);

    // Parallel run up to `mid`, snapshot, then restore into a *serial*
    // cluster and a *parallel* cluster and continue both.
    let mut original = cluster_with(config, plan(), 4);
    original.step_cycles(mid);
    let snap = original.snapshot();
    assert_eq!(snap.cycle(), mid);
    assert_eq!(snap.state_digest(), original.state_digest());

    let mut to_serial = cluster_with(config, None, 0);
    to_serial.restore(&snap).expect("snapshot restores");
    to_serial.step_cycles(total - mid);

    let mut to_parallel = cluster_with(config, None, 8);
    to_parallel.restore(&snap).expect("snapshot restores");
    to_parallel.step_cycles(total - mid);

    assert_eq!(to_serial.state_digest(), uninterrupted.state_digest());
    assert_eq!(to_parallel.state_digest(), uninterrupted.state_digest());
    assert_eq!(to_parallel.l1_digest(), uninterrupted.l1_digest());
    assert_eq!(to_parallel.stats(), uninterrupted.stats());
}

/// The memory trace recorder sees the identical event stream from either
/// engine (per-tile staging is merged in canonical order).
#[test]
fn traces_are_identical_across_engines() {
    let run = |workers: usize| {
        let mut cluster = cluster_with(ClusterConfig::small(Topology::Top4), None, workers);
        cluster.begin_trace();
        cluster.step_cycles(1_200);
        cluster.take_trace().expect("trace was started")
    };
    let serial = run(0);
    let parallel = run(6);
    for core in 0..serial.num_cores() {
        assert_eq!(
            serial.core(core),
            parallel.core(core),
            "trace diverged on core {core}"
        );
    }
}
