//! Determinism and accounting contracts of the program-level profiler:
//! the folded-stack export, the power-window series, and the per-core
//! cycle attribution must be bit-identical across execution engines and
//! checkpoint/restore, and every core cycle must be accounted for.

use mempool::{
    ClusterConfig, ClusterSnapshot, ProfileConfig, SimError, SimSession, Topology,
};

const TOPOLOGIES: [Topology; 3] = [Topology::Ideal, Topology::Top4, Topology::TopH];

/// An all-cores program with contention, region markers, and every stall
/// source the profiler attributes: an AMO on a shared counter, striped
/// stores/loads, and a fence with traffic in flight.
fn program() -> mempool_riscv::Program {
    mempool_riscv::assemble(
        "li t1, 0\n\
         csrw mregion, t1\n\
         csrr t0, mhartid\n\
         li a0, 0x8000\n\
         li a1, 1\n\
         li t1, 1\n\
         csrw mregion, t1\n\
         amoadd.w a2, a1, (a0)\n\
         slli t1, t0, 2\n\
         li t2, 0x10000\n\
         add t1, t1, t2\n\
         sw t0, 0(t1)\n\
         lw t3, 0(t1)\n\
         slli t4, t0, 2\n\
         add t4, t4, t2\n\
         li t1, 3\n\
         csrw mregion, t1\n\
         sw t3, 0x100(t4)\n\
         fence\n\
         ecall\n",
    )
    .expect("valid program")
}

fn profiled_run(topo: Topology, workers: usize) -> (u64, String, String, String) {
    let mut session = SimSession::builder(ClusterConfig::small(topo))
        .workers(workers)
        .profile(ProfileConfig::with_power_window(64))
        .build_snitch()
        .expect("valid config");
    session.load_program(&program()).expect("loads");
    session.run(100_000).expect("finishes");
    let windows = session.power_windows().expect("profiling enabled");
    (
        session.cluster().state_digest(),
        session.profile_folded().expect("profiling enabled"),
        format!("{windows:?}"),
        session.metrics_registry().to_json(),
    )
}

#[test]
fn profile_identical_across_engines_and_worker_counts() {
    for topo in TOPOLOGIES {
        let (digest, folded, windows, metrics) = profiled_run(topo, 0);
        assert!(!folded.is_empty(), "{topo}: empty folded export");
        for workers in [1, 3] {
            let (d, f, w, m) = profiled_run(topo, workers);
            assert_eq!(d, digest, "{topo}: state digest diverged at {workers} workers");
            assert_eq!(f, folded, "{topo}: folded stacks diverged at {workers} workers");
            assert_eq!(w, windows, "{topo}: power windows diverged at {workers} workers");
            assert_eq!(m, metrics, "{topo}: metrics diverged at {workers} workers");
        }
    }
}

#[test]
fn profile_survives_mid_run_checkpoint_restore() {
    for topo in TOPOLOGIES {
        let (_, folded, windows, metrics) = profiled_run(topo, 0);

        // Interrupted run: stop mid-flight, snapshot, restore into a fresh
        // session built *without* profiling (the snapshot is authoritative),
        // and finish there.
        let mut first = SimSession::builder(ClusterConfig::small(topo))
            .profile(ProfileConfig::with_power_window(64))
            .build_snitch()
            .expect("valid config");
        first.load_program(&program()).expect("loads");
        match first.run(40) {
            Err(e) => assert!(
                matches!(e, mempool::Error::Sim(SimError::Timeout(_))),
                "{topo}: expected a mid-run timeout, got {e}"
            ),
            Ok(_) => panic!("{topo}: program finished before the checkpoint point"),
        }
        assert!(
            first
                .cluster()
                .component_digests()
                .iter()
                .any(|(name, _)| name == "profile"),
            "{topo}: the component digests must cover `profile`"
        );
        let snap = first.snapshot();

        let mut resumed = SimSession::builder(ClusterConfig::small(topo))
            .build_snitch()
            .expect("valid config");
        resumed.load_program(&program()).expect("loads");
        resumed.restore(&snap).expect("snapshot restores");
        assert!(
            resumed.cluster().profiling_enabled(),
            "{topo}: restore must revive the profiler"
        );
        resumed.run(100_000).expect("finishes");
        let w = resumed.power_windows().expect("profiling enabled");
        assert_eq!(
            resumed.profile_folded().expect("profiling enabled"),
            folded,
            "{topo}: folded stacks after checkpoint/restore diverged"
        );
        assert_eq!(format!("{w:?}"), windows, "{topo}: power windows diverged");
        assert_eq!(
            resumed.metrics_registry().to_json(),
            metrics,
            "{topo}: metrics diverged"
        );
    }
}

#[test]
fn profile_roundtrips_through_the_snapshot_file() {
    let dir = std::env::temp_dir().join(format!(
        "mempool-profile-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("profile.ckpt");

    let mut session = SimSession::builder(ClusterConfig::small(Topology::TopH))
        .profile(ProfileConfig::with_power_window(64))
        .build_snitch()
        .expect("valid config");
    session.load_program(&program()).expect("loads");
    session.run(100_000).expect("finishes");
    session.snapshot().write_file(&path).expect("writes");

    let snap = ClusterSnapshot::read_file(&path).expect("reads back");
    let mut restored = SimSession::builder(ClusterConfig::small(Topology::TopH))
        .build_snitch()
        .expect("valid config");
    restored.load_program(&program()).expect("loads");
    restored.restore(&snap).expect("restores");
    assert_eq!(
        restored.profile_folded().expect("profiling enabled"),
        session.profile_folded().expect("profiling enabled"),
        "folded stacks must survive the file roundtrip"
    );
    assert_eq!(
        format!("{:?}", restored.power_windows()),
        format!("{:?}", session.power_windows()),
        "power windows must survive the file roundtrip"
    );
    assert_eq!(restored.cluster().state_digest(), session.cluster().state_digest());

    std::fs::remove_dir_all(&dir).ok();
}

/// Every cycle of every core is accounted for:
/// `cycles == instret + total_stalls() + halted_cycles`, per core, on
/// both engines and all topologies (fault-free runs).
#[test]
fn every_core_cycle_is_attributed() {
    for topo in TOPOLOGIES {
        for workers in [0, 2] {
            let mut session = SimSession::builder(ClusterConfig::small(topo))
                .workers(workers)
                .profile(ProfileConfig::attribution_only())
                .build_snitch()
                .expect("valid config");
            session.load_program(&program()).expect("loads");
            session.run(100_000).expect("finishes");
            for (i, core) in session.cluster().cores().iter().enumerate() {
                let s = core.stats();
                assert_eq!(
                    s.cycles,
                    s.instret + s.total_stalls() + s.halted_cycles,
                    "{topo}/{workers} workers: core {i} has unattributed cycles \
                     ({} cycles, {} retired, {} stalled, {} halted)",
                    s.cycles,
                    s.instret,
                    s.total_stalls(),
                    s.halted_cycles
                );
                // The profile's region totals must agree with the same
                // stat counters (retired + per-cause stalls).
                let total = core.profile().expect("profiling enabled").total();
                assert_eq!(total.retired, s.instret, "{topo}: core {i} retired");
                assert_eq!(
                    total.stall_cycles(),
                    s.total_stalls(),
                    "{topo}: core {i} stall attribution"
                );
            }
        }
    }
}

/// Profiling changes no architectural state: the digest of a profiled run
/// equals the digest of an unprofiled one... except that the profile is
/// itself digested state once enabled — so compare the shared components.
#[test]
fn profiling_does_not_perturb_the_simulation() {
    let mut plain = SimSession::builder(ClusterConfig::small(Topology::TopH))
        .build_snitch()
        .expect("valid config");
    plain.load_program(&program()).expect("loads");
    let plain_cycles = plain.run(100_000).expect("finishes");

    let mut profiled = SimSession::builder(ClusterConfig::small(Topology::TopH))
        .profile(ProfileConfig::default())
        .build_snitch()
        .expect("valid config");
    profiled.load_program(&program()).expect("loads");
    let profiled_cycles = profiled.run(100_000).expect("finishes");

    assert_eq!(plain_cycles, profiled_cycles, "profiling changed the timing");
    assert_eq!(
        plain.cluster().l1_digest(),
        profiled.cluster().l1_digest(),
        "profiling changed memory contents"
    );
    // All state components except `profile` (and the per-core state
    // images, which embed the profile tables) must be byte-identical.
    let a = plain.cluster().component_digests();
    let b = profiled.cluster().component_digests();
    assert_eq!(a.len(), b.len());
    for ((name_a, da), (name_b, db)) in a.iter().zip(b.iter()) {
        assert_eq!(name_a, name_b);
        if name_a == "profile" || name_a.starts_with("core") {
            continue;
        }
        assert_eq!(da, db, "profiling perturbed the `{name_a}` component");
    }
}
