//! Property and scenario tests for fault injection and resilience:
//! arbitrary seeded fault plans never panic, the whole machine is
//! deterministic under faults, the watchdog converts deadlocks into typed
//! diagnostics, and quarantine plus retries recover real programs.

use mempool::{
    Cluster, ClusterConfig, FaultPlan, FaultSpec, ResilienceConfig, SimError, Topology,
};
use mempool_riscv::assemble;

/// Every core, after a delay that outlasts the bank-failure window, fills
/// its own 16-word slice of `0x8000..` with its hart ID and reads it back.
/// Uses only loads and stores, so retries are idempotent.
fn store_load_program() -> mempool_riscv::Program {
    assemble(
        "csrr t0, mhartid\n\
         li   t1, 200\n\
         delay:\n\
         addi t1, t1, -1\n\
         bnez t1, delay\n\
         li   t2, 0x10000\n\
         slli t3, t0, 6\n\
         add  t3, t3, t2\n\
         li   t4, 16\n\
         loop:\n\
         sw   t0, 0(t3)\n\
         lw   t5, 0(t3)\n\
         addi t3, t3, 4\n\
         addi t4, t4, -1\n\
         bnez t4, loop\n\
         ecall\n",
    )
    .expect("test program assembles")
}

/// One remote-leaning store per core, no delay — the minimal program whose
/// requests can strand in a faulted interconnect.
fn single_store_program() -> mempool_riscv::Program {
    assemble(
        "csrr t0, mhartid\n\
         slli t1, t0, 2\n\
         li   t2, 0x8000\n\
         add  t1, t1, t2\n\
         sw   t0, 0(t1)\n\
         ecall\n",
    )
    .expect("test program assembles")
}

fn resilient(topology: Topology) -> ClusterConfig {
    let mut config = ClusterConfig::small(topology);
    config.resilience = ResilienceConfig {
        request_timeout: 256,
        max_retries: 8,
        watchdog_cycles: 8192,
    };
    config
}

/// Property: any seeded plan over a broad mixed fault spec either completes
/// or returns a typed `SimError` — never a panic, on every topology.
#[test]
fn arbitrary_fault_plans_never_panic() {
    let spec: FaultSpec = "bank_fail=2,bank_stall=0.01,link_stall=0.01,link_drop=0.002,\
                           link_corrupt=0.002,ring_stall=0.01,ring_drop=0.001,\
                           core_lockup=0.001,spurious_retire=0.001"
        .parse()
        .expect("valid spec");
    let program = store_load_program();
    for topology in [Topology::Ideal, Topology::Top1, Topology::TopH] {
        for seed in 0..4u64 {
            let mut cluster =
                Cluster::snitch(resilient(topology)).expect("valid config");
            cluster.load_program(&program).expect("program loads");
            cluster.install_fault_plan(Some(FaultPlan::new(seed, spec)));
            match cluster.run(300_000) {
                Ok(_) | Err(SimError::Timeout(_)) | Err(SimError::Deadlock(_)) => {}
                // No cancel token is installed in this test.
                Err(SimError::Cancelled(c)) => panic!("unexpected cancellation: {c}"),
            }
            // The injection machinery demonstrably ran.
            assert!(
                cluster.stats().faults.total_injected() > 0,
                "{topology:?} seed {seed}: no faults injected"
            );
        }
    }
}

/// Property: the faulted simulator stays bit-for-bit deterministic — the
/// same seed replays the identical fault trace, statistics, and final L1
/// image.
#[test]
fn same_seed_replays_identically() {
    let spec: FaultSpec = "bank_fail=2,link_stall=0.02,link_drop=0.005,link_corrupt=0.002,\
                           core_lockup=0.002,spurious_retire=0.001"
        .parse()
        .expect("valid spec");
    let program = store_load_program();
    let run = |seed: u64| {
        let mut cluster = Cluster::snitch(resilient(Topology::Top1)).expect("valid config");
        cluster.load_program(&program).expect("program loads");
        cluster.install_fault_plan(Some(FaultPlan::new(seed, spec)));
        let outcome = cluster.run(300_000);
        let kind = match outcome {
            Ok(cycles) => format!("ok:{cycles}"),
            Err(e) => format!("err:{e}"),
        };
        (
            kind,
            cluster.stats().clone(),
            cluster.fault_log().clone(),
            cluster.l1_digest(),
        )
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.0, b.0, "outcome must replay");
    assert_eq!(a.1, b.1, "statistics must replay");
    assert_eq!(a.2, b.2, "fault log must replay");
    assert_eq!(a.3, b.3, "final L1 contents must replay");
    // A different seed takes a different trajectory.
    let c = run(43);
    assert_ne!((a.1, a.3), (c.1, c.3), "seed must matter");
}

/// A fully stalled interconnect strands remote requests; with retries off,
/// the watchdog must report a typed deadlock with a per-tile dump instead
/// of hanging until the cycle budget dies.
#[test]
fn watchdog_reports_deadlock_with_diagnostic() {
    let mut config = ClusterConfig::small(Topology::Top1);
    config.resilience = ResilienceConfig {
        request_timeout: 0,
        max_retries: 0,
        watchdog_cycles: 400,
    };
    let mut cluster = Cluster::snitch(config).expect("valid config");
    cluster
        .load_program(&single_store_program())
        .expect("program loads");
    cluster.install_fault_plan(Some(FaultPlan::new(1, "link_stall=1".parse().expect("valid"))));
    let err = cluster.run(50_000).expect_err("must not complete");
    let SimError::Deadlock(diag) = err else {
        panic!("expected a deadlock, got {err}");
    };
    assert!(diag.idle_cycles >= 400);
    assert!(diag.in_flight > 0);
    assert!(!diag.tiles.is_empty(), "dump must name stuck tiles");
    let text = diag.to_string();
    assert!(text.contains("deadlock"), "{text}");
    assert!(text.contains("tile"), "{text}");
}

/// Retries recover a lossy interconnect: with a moderate drop rate the
/// program still completes with correct memory contents, and the retry
/// counters prove the mechanism fired.
#[test]
fn retries_recover_from_link_drops() {
    let program = store_load_program();
    let mut cluster = Cluster::snitch(resilient(Topology::Top1)).expect("valid config");
    cluster.load_program(&program).expect("program loads");
    cluster.install_fault_plan(Some(FaultPlan::new(
        9,
        "link_drop=0.01".parse().expect("valid"),
    )));
    cluster.run(400_000).expect("retries must recover every drop");
    let faults = cluster.stats().faults;
    assert!(faults.link_drops > 0, "{faults}");
    assert!(faults.request_retries > 0, "{faults}");
    assert_eq!(faults.requests_abandoned, 0, "{faults}");
    for core in 0..cluster.config().num_cores() as u32 {
        let got = cluster
            .read_words(0x10000 + core * 64, 16)
            .expect("range in L1");
        assert_eq!(got, vec![core; 16], "core {core} slice");
    }
}

/// Permanent bank failures degrade gracefully: traffic is quarantined onto
/// live banks, the program completes, and the remapped data reads back
/// correctly through the host helpers.
#[test]
fn bank_failures_quarantine_and_complete() {
    let program = store_load_program();
    let mut cluster = Cluster::snitch(resilient(Topology::TopH)).expect("valid config");
    cluster.load_program(&program).expect("program loads");
    cluster.install_fault_plan(Some(FaultPlan::new(
        5,
        "bank_fail=3".parse().expect("valid"),
    )));
    cluster.run(400_000).expect("quarantine must keep the cluster alive");
    let faults = cluster.stats().faults;
    assert_eq!(faults.banks_failed, 3, "{faults}");
    assert_eq!(faults.banks_quarantined, 3, "{faults}");
    assert_eq!(cluster.quarantined_banks(), 3);
    assert!(faults.quarantine_remaps > 0, "{faults}");
    assert_eq!(cluster.fault_log().len(), 3, "one event per failure");
    for core in 0..cluster.config().num_cores() as u32 {
        let got = cluster
            .read_words(0x10000 + core * 64, 16)
            .expect("range in L1");
        assert_eq!(got, vec![core; 16], "core {core} slice");
    }
}

/// An installed-but-empty fault plan must not change the machine: same
/// cycle count, same statistics, same L1 image as a plain run.
#[test]
fn empty_plan_is_transparent() {
    let program = store_load_program();
    let run = |plan: Option<FaultPlan>| {
        let mut cluster = Cluster::snitch(ClusterConfig::small(Topology::TopH))
            .expect("valid config");
        cluster.load_program(&program).expect("program loads");
        cluster.install_fault_plan(plan);
        let cycles = cluster.run(300_000).expect("completes");
        (cycles, cluster.l1_digest())
    };
    let plain = run(None);
    let empty = run(Some(FaultPlan::new(7, FaultSpec::default())));
    assert_eq!(plain, empty);
}
