//! The zero-load latency contract of the paper (§III):
//!
//! | access                              | cycles |
//! |-------------------------------------|--------|
//! | same-tile bank                      | 1      |
//! | ideal crossbar baseline, any bank   | 1      |
//! | TopH, same local group              | 3      |
//! | TopH, remote group                  | 5      |
//! | Top1 / Top4, any remote tile        | 5      |
//!
//! These numbers must drop out of the modeled register placement.

use mempool::{Cluster, ClusterConfig, Topology};
use mempool_riscv::assemble;

/// Runs a single load from hart 0 to `addr` on an otherwise idle paper-size
/// cluster and returns the measured round-trip latency.
fn single_load_latency(topology: Topology, addr: u32) -> u64 {
    let mut config = ClusterConfig::paper(topology);
    // Keep the interleaved map pure so target tiles are easy to address.
    config.seq_region_bytes = None;
    let source = format!(
        "csrr t0, mhartid\n\
         bnez t0, out\n\
         li   t1, {addr:#x}\n\
         lw   a0, (t1)\n\
         fence\n\
         out: ecall\n"
    );
    let program = assemble(&source).expect("test program assembles");
    let mut cluster = Cluster::snitch(config).expect("valid config");
    cluster.load_program(&program).expect("decodes");
    cluster.write_word(addr, 0xc0de).expect("in range");
    cluster.run(100_000).expect("finishes");
    assert_eq!(cluster.cores()[0].reg(mempool_riscv::Reg::A0), 0xc0de);
    let stats = cluster.stats();
    assert_eq!(stats.latency.count(), 1, "exactly one memory request");
    stats.latency.max().expect("one sample")
}

/// Byte address of row 16 in bank 0 of `tile` (paper geometry: 16 banks,
/// 64 tiles).
fn addr_in_tile(tile: u32) -> u32 {
    (16 << 12) | (tile << 6)
}

#[test]
fn local_bank_is_one_cycle() {
    for topo in [Topology::Ideal, Topology::Top1, Topology::Top4, Topology::TopH] {
        assert_eq!(
            single_load_latency(topo, addr_in_tile(0)),
            1,
            "{topo}: hart 0 accessing its own tile"
        );
    }
}

#[test]
fn ideal_baseline_reaches_any_bank_in_one_cycle() {
    assert_eq!(single_load_latency(Topology::Ideal, addr_in_tile(63)), 1);
    assert_eq!(single_load_latency(Topology::Ideal, addr_in_tile(17)), 1);
}

#[test]
fn toph_same_group_is_three_cycles() {
    // Tiles 0..16 form local group 0.
    assert_eq!(single_load_latency(Topology::TopH, addr_in_tile(1)), 3);
    assert_eq!(single_load_latency(Topology::TopH, addr_in_tile(15)), 3);
}

#[test]
fn toph_remote_group_is_five_cycles() {
    // Tile 16 is in group 1 (east), 32 in group 2 (north), 48 in group 3.
    assert_eq!(single_load_latency(Topology::TopH, addr_in_tile(16)), 5);
    assert_eq!(single_load_latency(Topology::TopH, addr_in_tile(32)), 5);
    assert_eq!(single_load_latency(Topology::TopH, addr_in_tile(48)), 5);
    assert_eq!(single_load_latency(Topology::TopH, addr_in_tile(63)), 5);
}

#[test]
fn top1_remote_is_five_cycles() {
    assert_eq!(single_load_latency(Topology::Top1, addr_in_tile(1)), 5);
    assert_eq!(single_load_latency(Topology::Top1, addr_in_tile(63)), 5);
}

#[test]
fn top4_remote_is_five_cycles() {
    assert_eq!(single_load_latency(Topology::Top4, addr_in_tile(1)), 5);
    assert_eq!(single_load_latency(Topology::Top4, addr_in_tile(63)), 5);
}

#[test]
fn scrambled_stack_access_is_local_and_one_cycle() {
    // With the hybrid addressing scheme on, an access into the core's own
    // sequential region must resolve to the local tile: 1 cycle, even on
    // TopH where a remote access would cost 3 or 5.
    let config = ClusterConfig::paper(Topology::TopH);
    let seq_bytes = config.seq_region_bytes.unwrap();
    let source = format!(
        "csrr t0, mhartid\n\
         bnez t0, out\n\
         li   t1, {}\n\
         lw   a0, (t1)\n\
         fence\n\
         out: ecall\n",
        // Hart 0 is in tile 0: its sequential region starts at 0.
        seq_bytes / 2
    );
    let program = assemble(&source).unwrap();
    let mut cluster = Cluster::snitch(config).unwrap();
    cluster.load_program(&program).unwrap();
    cluster.run(100_000).unwrap();
    let stats = cluster.stats();
    assert_eq!(stats.latency.max(), Some(1));
    assert_eq!(stats.local_requests, 1);
    assert_eq!(stats.remote_requests, 0);
}

#[test]
fn simulation_is_deterministic() {
    // Same program, same configuration: bit-identical L1 and cycle count on
    // every run (guards against map-iteration or uninitialized-state
    // nondeterminism anywhere in the stack).
    let run = || {
        let program = assemble(
            "csrr t0, mhartid\nslli t1, t0, 2\nli t2, 0x10000\nadd t1, t1, t2\n\
             mul t3, t0, t0\nsw t3, (t1)\nli t4, 0x20000\namoadd.w zero, t0, (t4)\n\
             fence\necall\n",
        )
        .unwrap();
        let mut cluster = Cluster::snitch(ClusterConfig::paper(Topology::TopH)).unwrap();
        cluster.load_program(&program).unwrap();
        cluster.run(1_000_000).unwrap();
        (cluster.l1_digest(), cluster.now())
    };
    assert_eq!(run(), run());
}

#[test]
fn toph_direction_counters_match_uniform_geometry() {
    // All cores sweep the whole address space once: of the remote
    // requests, 15/63 stay in the local group and 16/63 go to each of
    // N/NE/E.
    let mut config = ClusterConfig::paper(Topology::TopH);
    config.seq_region_bytes = None; // pure interleaved map: tile = addr[6..12]
    // Each core loads one word from every tile: addresses (hartid*64 + i*64)
    // mod 4096 walk the 64 tiles exactly once.
    let source = "csrr t0, mhartid\nslli t1, t0, 6\nslli t1, t1, 20\nsrli t1, t1, 20\n\
                  li t2, 64\nli t3, 4096\n\
                  loop: lw a0, (t1)\naddi t1, t1, 64\nblt t1, t3, cont\nsub t1, t1, t3\n\
                  cont: addi t2, t2, -1\nbnez t2, loop\nfence\necall\n";
    let program = assemble(source).unwrap();
    let mut cluster = Cluster::snitch(config).unwrap();
    cluster.load_program(&program).unwrap();
    cluster.run(10_000_000).unwrap();
    let stats = cluster.stats();
    let remote = stats.remote_requests as f64;
    assert!(remote > 0.0);
    let group_share = stats.group_local_requests as f64 / remote;
    assert!((group_share - 15.0 / 63.0).abs() < 0.05, "L share {group_share}");
    for (i, name) in ["N", "NE", "E"].iter().enumerate() {
        let share = stats.direction_requests[i] as f64 / remote;
        assert!((share - 16.0 / 63.0).abs() < 0.05, "{name} share {share}");
    }
}

#[test]
fn describe_summarizes_the_configuration() {
    let cluster = Cluster::snitch(ClusterConfig::paper(Topology::TopH)).unwrap();
    let text = cluster.describe();
    assert!(text.contains("256 cores in 64 tiles"));
    assert!(text.contains("1024 KiB"));
    assert!(text.contains("N/NE/E"));
    assert!(text.contains("3 cycles in-group, 5 cycles cross-group"));
    let ideal = Cluster::snitch(ClusterConfig::paper(Topology::Ideal)).unwrap();
    assert!(ideal.describe().contains("idealized"));
}
