//! Determinism contract of the observability layer: the metrics registry
//! must be bit-identical across execution engines (serial vs. any worker
//! count), across checkpoint/restore, and across the deprecated shim
//! surface vs. the canonical `SimSession` builder.

use mempool::{
    ClusterConfig, ClusterSnapshot, ObsConfig, SimError, SimSession, Topology,
};

const TOPOLOGIES: [Topology; 3] = [Topology::Ideal, Topology::Top4, Topology::TopH];

/// An all-cores program with real memory contention: every core
/// atomically bumps a shared counter, then reads a striped word.
fn program() -> mempool_riscv::Program {
    mempool_riscv::assemble(
        "csrr t0, mhartid\n\
         li a0, 0x8000\n\
         li a1, 1\n\
         amoadd.w a2, a1, (a0)\n\
         slli t1, t0, 2\n\
         li t2, 0x10000\n\
         add t1, t1, t2\n\
         sw t0, 0(t1)\n\
         lw t3, 0(t1)\n\
         fence\n\
         ecall\n",
    )
    .expect("valid program")
}

fn run_with_workers(topo: Topology, workers: usize) -> (u64, String, String) {
    let mut session = SimSession::builder(ClusterConfig::small(topo))
        .workers(workers)
        .observability(ObsConfig::with_trace(8))
        .build_snitch()
        .expect("valid config");
    session.load_program(&program()).expect("loads");
    session.run(100_000).expect("finishes");
    let trace = session.timeline().expect("tracing enabled");
    (
        session.cluster().state_digest(),
        session.metrics_registry().to_json(),
        trace.to_chrome_json(),
    )
}

#[test]
fn metrics_identical_across_engines_and_worker_counts() {
    for topo in TOPOLOGIES {
        let (digest, metrics, trace) = run_with_workers(topo, 0);
        for workers in [1, 3] {
            let (d, m, t) = run_with_workers(topo, workers);
            assert_eq!(d, digest, "{topo}: state digest diverged at {workers} workers");
            assert_eq!(
                m, metrics,
                "{topo}: metrics diverged between serial and {workers} workers"
            );
            assert_eq!(
                t, trace,
                "{topo}: timeline diverged between serial and {workers} workers"
            );
        }
    }
}

#[test]
fn metrics_survive_mid_run_checkpoint_restore() {
    for topo in TOPOLOGIES {
        // Uninterrupted reference run.
        let (_, reference, _) = run_with_workers(topo, 0);

        // Interrupted run: stop mid-flight, snapshot, restore into a fresh
        // session (which has observability *disabled* — the snapshot is
        // authoritative), and finish there.
        let mut first = SimSession::builder(ClusterConfig::small(topo))
            .observability(ObsConfig::with_trace(8))
            .build_snitch()
            .expect("valid config");
        first.load_program(&program()).expect("loads");
        match first.run(40) {
            Err(e) => assert!(
                matches!(
                    e,
                    mempool::Error::Sim(SimError::Timeout(_))
                ),
                "{topo}: expected a mid-run timeout, got {e}"
            ),
            Ok(_) => panic!("{topo}: program finished before the checkpoint point"),
        }
        let snap = first.snapshot();

        let mut resumed = SimSession::builder(ClusterConfig::small(topo))
            .build_snitch()
            .expect("valid config");
        resumed.load_program(&program()).expect("loads");
        resumed.restore(&snap).expect("snapshot restores");
        assert!(
            resumed.cluster().observability_enabled(),
            "{topo}: restore must revive the recorder"
        );
        resumed.run(100_000).expect("finishes");
        assert_eq!(
            resumed.metrics_registry().to_json(),
            reference,
            "{topo}: metrics after checkpoint/restore diverged from the \
             uninterrupted run"
        );
    }
}

#[test]
fn snapshot_roundtrip_preserves_metrics_bytes() {
    // Serialize through the on-disk format, not just in-memory state.
    let dir = std::env::temp_dir().join(format!(
        "mempool-obs-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("obs.ckpt");

    let mut session = SimSession::builder(ClusterConfig::small(Topology::TopH))
        .observability(ObsConfig::with_trace(4))
        .build_snitch()
        .expect("valid config");
    session.load_program(&program()).expect("loads");
    session.run(100_000).expect("finishes");
    session.snapshot().write_file(&path).expect("writes");

    let snap = ClusterSnapshot::read_file(&path).expect("reads back");
    let mut restored = SimSession::builder(ClusterConfig::small(Topology::TopH))
        .build_snitch()
        .expect("valid config");
    restored.load_program(&program()).expect("loads");
    restored.restore(&snap).expect("restores");
    assert_eq!(
        restored.metrics_registry().to_json(),
        session.metrics_registry().to_json()
    );
    let (a, b) = (
        restored.timeline().expect("restored trace"),
        session.timeline().expect("original trace"),
    );
    assert_eq!(a, b, "timeline must survive the file roundtrip");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chrome_trace_is_well_formed() {
    let mut session = SimSession::builder(ClusterConfig::small(Topology::TopH))
        .observability(ObsConfig::with_trace(4))
        .build_snitch()
        .expect("valid config");
    session.load_program(&program()).expect("loads");
    session.run(100_000).expect("finishes");
    let trace = session.timeline().expect("tracing enabled");
    assert!(!trace.spans.is_empty(), "no spans sampled");

    let json = trace.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    // The generator emits no braces or brackets inside strings, so
    // balanced delimiters are a real structural check here.
    let count = |c: char| json.chars().filter(|&x| x == c).count();
    assert_eq!(count('{'), count('}'), "unbalanced braces");
    assert_eq!(count('['), count(']'), "unbalanced brackets");
    // One complete ("X") event per retained span.
    assert_eq!(json.matches("\"ph\":\"X\"").count(), trace.spans.len());
    // Metadata names every process (tile) that appears.
    assert!(json.contains("\"process_name\""));
    assert!(json.contains("\"thread_name\""));
}

#[test]
#[allow(deprecated)]
fn deprecated_shims_delegate_to_the_canonical_names() {
    let config = ClusterConfig::small(Topology::Top4);

    let mut canonical = mempool::Cluster::snitch(config).expect("valid config");
    canonical.set_workers(2);
    canonical.install_fault_plan(None);
    canonical.begin_trace();
    canonical.load_program(&program()).expect("loads");
    canonical.run(100_000).expect("finishes");

    let mut shimmed = mempool::Cluster::snitch(config).expect("valid config");
    shimmed.set_parallel(2);
    shimmed.set_fault_plan(None);
    shimmed.start_trace();
    shimmed.load_program(&program()).expect("loads");
    shimmed.run(100_000).expect("finishes");

    assert_eq!(canonical.state_digest(), shimmed.state_digest());
    let (a, b) = (
        canonical.take_trace().expect("trace recorded"),
        shimmed.take_trace().expect("trace recorded"),
    );
    assert_eq!(a.len(), b.len(), "shimmed trace differs");
}
