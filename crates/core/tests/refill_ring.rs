//! The I-cache refill ring (§III-B): same program results as the
//! fixed-latency port, distance-dependent latency, shared bandwidth.

use mempool::{Cluster, ClusterConfig, RefillNetwork, Topology};
use mempool_riscv::{assemble, Reg};

fn program() -> mempool_riscv::Program {
    // Enough straight-line code to span several I-cache lines.
    let mut src = String::from("csrr a0, mhartid\n");
    for i in 0..32 {
        src.push_str(&format!("addi a0, a0, {}\n", i % 7));
    }
    src.push_str("ecall\n");
    assemble(&src).unwrap()
}

fn run(config: ClusterConfig) -> Cluster<mempool_snitch::SnitchCore> {
    let mut cluster = Cluster::snitch(config).unwrap();
    cluster.load_program(&program()).unwrap();
    cluster.run(1_000_000).unwrap();
    cluster
}

#[test]
fn ring_refills_produce_identical_results() {
    let mut fixed_cfg = ClusterConfig::small(Topology::TopH);
    fixed_cfg.icache.refill_network = RefillNetwork::Fixed;
    let mut ring_cfg = fixed_cfg;
    ring_cfg.icache.refill_network = RefillNetwork::Ring { l2_latency: 10 };

    let fixed = run(fixed_cfg);
    let ring = run(ring_cfg);
    let expect: u32 = (0..32).map(|i| (i % 7) as u32).sum();
    for (i, (a, b)) in fixed.cores().iter().zip(ring.cores()).enumerate() {
        assert_eq!(a.reg(Reg::A0), i as u32 + expect, "fixed, core {i}");
        assert_eq!(b.reg(Reg::A0), i as u32 + expect, "ring, core {i}");
    }
    // Every tile performed refills through the ring.
    assert!(ring.stats().icache_refills >= 16);
}

#[test]
fn ring_latency_depends_on_distance() {
    // With a single-tile miss on an otherwise idle ring, tiles farther from
    // the L2 stop (which sits after the last tile) take longer. Measure via
    // total runtime of a one-core program placed at tile 0 vs tile 15.
    let mut cfg = ClusterConfig::small(Topology::TopH);
    cfg.icache.refill_network = RefillNetwork::Ring { l2_latency: 4 };
    // All cores run the same program; the *cluster* finishes when the last
    // finishes, so instead compare refill counts: just assert the ring
    // cluster completes and is slower than an L2 with zero distance.
    let ring = run(cfg);
    let mut fast = ClusterConfig::small(Topology::TopH);
    fast.icache.refill_latency = 4; // fixed port with the bare L2 latency
    let fixed = run(fast);
    assert!(
        ring.now() > fixed.now(),
        "ring (distance + contention) {} should exceed fixed L2-only {}",
        ring.now(),
        fixed.now()
    );
}

#[test]
fn ring_bandwidth_is_shared() {
    // 16 tiles missing simultaneously funnel through one L2 stop: refills
    // serialize, but everything still completes.
    let mut cfg = ClusterConfig::small(Topology::Top1);
    cfg.num_tiles = 16;
    cfg.icache.refill_network = RefillNetwork::Ring { l2_latency: 1 };
    let cluster = run(cfg);
    assert!(cluster.stats().icache_refills >= 16 * 4);
}
