//! Differential property test: random memory/ALU programs run on *every*
//! topology (with all 64 cores hammering the interconnect concurrently)
//! must produce exactly the state a simple sequential reference predicts.
//!
//! Each core executes the same operation trace against its own private
//! 16-word block and its own register seed, so the final state is
//! deterministic regardless of how the network interleaves requests —
//! any packet loss, duplication, misrouting, or tag mix-up shows up as a
//! state divergence. Traces come from a seeded PRNG so failures replay.

use mempool::{Cluster, ClusterConfig, Topology};
use mempool_riscv::assemble;
use mempool_rng::{Rng, SeedableRng, StdRng};

const BLOCK_WORDS: usize = 16;
const REGS: usize = 6; // a0..a5
const CASES: u64 = 16;

/// One step of the generated trace.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `regs[dst] = mem[idx]`
    Load { dst: usize, idx: usize },
    /// `mem[idx] = regs[src]`
    Store { src: usize, idx: usize },
    /// `regs[dst] = amoadd(mem[idx], regs[src])` (old value)
    AmoAdd { dst: usize, src: usize, idx: usize },
    /// `regs[dst] = amoxor(mem[idx], regs[src])` (old value)
    AmoXor { dst: usize, src: usize, idx: usize },
    /// `regs[dst] = zero-extended byte load from byte `off` of word `idx``
    LoadByte { dst: usize, idx: usize, off: usize },
    /// Store the low byte of `regs[src]` at byte `off` of word `idx`
    StoreByte { src: usize, idx: usize, off: usize },
    /// `regs[dst] = regs[a] + regs[b]`
    Add { dst: usize, a: usize, b: usize },
    /// `regs[dst] = regs[a] * regs[b]`
    Mul { dst: usize, a: usize, b: usize },
    /// `regs[dst] ^= regs[a]`
    Xor { dst: usize, a: usize },
}

fn any_op(rng: &mut StdRng) -> Op {
    let reg = |rng: &mut StdRng| rng.gen_range(0usize..REGS);
    let idx = |rng: &mut StdRng| rng.gen_range(0usize..BLOCK_WORDS);
    match rng.gen_range(0u8..9) {
        0 => Op::Load {
            dst: reg(rng),
            idx: idx(rng),
        },
        1 => Op::Store {
            src: reg(rng),
            idx: idx(rng),
        },
        2 => Op::AmoAdd {
            dst: reg(rng),
            src: reg(rng),
            idx: idx(rng),
        },
        3 => Op::AmoXor {
            dst: reg(rng),
            src: reg(rng),
            idx: idx(rng),
        },
        4 => Op::LoadByte {
            dst: reg(rng),
            idx: idx(rng),
            off: rng.gen_range(0usize..4),
        },
        5 => Op::StoreByte {
            src: reg(rng),
            idx: idx(rng),
            off: rng.gen_range(0usize..4),
        },
        6 => Op::Add {
            dst: reg(rng),
            a: reg(rng),
            b: reg(rng),
        },
        7 => Op::Mul {
            dst: reg(rng),
            a: reg(rng),
            b: reg(rng),
        },
        _ => Op::Xor {
            dst: reg(rng),
            a: reg(rng),
        },
    }
}

/// Emits the trace as assembly. Register map: a0..a5 = trace registers,
/// s4 = the core's block base.
fn emit(trace: &[Op], data_base: u32) -> String {
    let mut src = String::new();
    src.push_str(&format!(
        "csrr s0, mhartid\n\
         li   s4, {data_base}\n\
         slli t0, s0, {shift}\n\
         add  s4, s4, t0\n",
        shift = (BLOCK_WORDS * 4).trailing_zeros(),
    ));
    // Seed registers from the hart ID.
    for r in 0..REGS {
        src.push_str(&format!(
            "li   t0, {mult}\nmul  a{r}, s0, t0\naddi a{r}, a{r}, {r}\n",
            mult = 31 + r as u32,
        ));
    }
    for op in trace {
        match *op {
            Op::Load { dst, idx } => {
                src.push_str(&format!("lw   a{dst}, {}(s4)\n", idx * 4));
            }
            Op::Store { src: s, idx } => {
                src.push_str(&format!("sw   a{s}, {}(s4)\n", idx * 4));
            }
            Op::AmoAdd { dst, src: s, idx } => {
                src.push_str(&format!(
                    "addi t0, s4, {}\namoadd.w a{dst}, a{s}, (t0)\n",
                    idx * 4
                ));
            }
            Op::AmoXor { dst, src: s, idx } => {
                src.push_str(&format!(
                    "addi t0, s4, {}\namoxor.w a{dst}, a{s}, (t0)\n",
                    idx * 4
                ));
            }
            Op::LoadByte { dst, idx, off } => {
                src.push_str(&format!("lbu  a{dst}, {}(s4)\n", idx * 4 + off));
            }
            Op::StoreByte { src: s, idx, off } => {
                src.push_str(&format!("sb   a{s}, {}(s4)\n", idx * 4 + off));
            }
            Op::Add { dst, a, b } => src.push_str(&format!("add  a{dst}, a{a}, a{b}\n")),
            Op::Mul { dst, a, b } => src.push_str(&format!("mul  a{dst}, a{a}, a{b}\n")),
            Op::Xor { dst, a } => src.push_str(&format!("xor  a{dst}, a{dst}, a{a}\n")),
        }
    }
    src.push_str("fence\necall\n");
    src
}

/// Sequential reference for one hart.
fn reference(trace: &[Op], hart: u32) -> ([u32; REGS], [u32; BLOCK_WORDS]) {
    let mut regs = [0u32; REGS];
    let mut mem = [0u32; BLOCK_WORDS];
    for (r, reg) in regs.iter_mut().enumerate() {
        *reg = hart.wrapping_mul(31 + r as u32).wrapping_add(r as u32);
    }
    for op in trace {
        match *op {
            Op::Load { dst, idx } => regs[dst] = mem[idx],
            Op::Store { src, idx } => mem[idx] = regs[src],
            Op::AmoAdd { dst, src, idx } => {
                let old = mem[idx];
                mem[idx] = old.wrapping_add(regs[src]);
                regs[dst] = old;
            }
            Op::AmoXor { dst, src, idx } => {
                let old = mem[idx];
                mem[idx] = old ^ regs[src];
                regs[dst] = old;
            }
            Op::LoadByte { dst, idx, off } => {
                regs[dst] = (mem[idx] >> (8 * off)) & 0xff;
            }
            Op::StoreByte { src, idx, off } => {
                let shift = 8 * off;
                mem[idx] = (mem[idx] & !(0xff << shift)) | ((regs[src] & 0xff) << shift);
            }
            Op::Add { dst, a, b } => regs[dst] = regs[a].wrapping_add(regs[b]),
            Op::Mul { dst, a, b } => regs[dst] = regs[a].wrapping_mul(regs[b]),
            Op::Xor { dst, a } => regs[dst] ^= regs[a],
        }
    }
    (regs, mem)
}

#[test]
fn all_topologies_match_reference() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xd1ff_0000 ^ case);
        let len = rng.gen_range(1usize..48);
        let trace: Vec<Op> = (0..len).map(|_| any_op(&mut rng)).collect();
        // Blocks live in the interleaved region: maximum network traffic.
        let data_base = 16 * 4096u32;
        let source = emit(&trace, data_base);
        let program = assemble(&source).expect("generated program assembles");
        for topo in Topology::all() {
            let config = ClusterConfig::small(topo);
            let mut cluster = Cluster::snitch(config).expect("valid config");
            cluster.load_program(&program).expect("decodes");
            cluster.run(5_000_000).expect("finishes");
            for hart in 0..config.num_cores() as u32 {
                let (regs, mem) = reference(&trace, hart);
                let base = data_base + hart * (BLOCK_WORDS * 4) as u32;
                let got_mem = cluster.read_words(base, BLOCK_WORDS).expect("in L1");
                assert_eq!(
                    &got_mem[..],
                    &mem[..],
                    "case {case} {topo} hart {hart} memory"
                );
                let core = &cluster.cores()[hart as usize];
                for (r, &expect) in regs.iter().enumerate() {
                    let reg = mempool_riscv::Reg::new(10 + r as u8).expect("a-register");
                    assert_eq!(core.reg(reg), expect, "case {case} {topo} hart {hart} a{r}");
                }
            }
        }
    }
}
