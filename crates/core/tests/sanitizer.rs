//! The cycle-level invariant sanitizer: a clean differential matrix
//! (serial/parallel engines × topologies × faults on/off) must report
//! zero violations, and each seeded mutation — dropped response,
//! duplicated response, per-bank FIFO reorder, global pipeline stall —
//! must raise exactly the violation kind it was designed to trip.

use mempool::{
    Cluster, ClusterConfig, FaultPlan, FaultSpec, ResilienceConfig, SanitizerConfig,
    SanitizerReport, Topology, ViolationKind,
};
use mempool_riscv::assemble;

/// Every core, after a settle delay, fills its own 16-word slice of
/// `0x10000..` and reads it back. Loads and stores only, so retries are
/// idempotent under faults.
fn store_load_program() -> mempool_riscv::Program {
    assemble(
        "csrr t0, mhartid\n\
         li   t1, 200\n\
         delay:\n\
         addi t1, t1, -1\n\
         bnez t1, delay\n\
         li   t2, 0x10000\n\
         slli t3, t0, 6\n\
         add  t3, t3, t2\n\
         li   t4, 16\n\
         loop:\n\
         sw   t0, 0(t3)\n\
         lw   t5, 0(t3)\n\
         addi t3, t3, 4\n\
         addi t4, t4, -1\n\
         bnez t4, loop\n\
         ecall\n",
    )
    .expect("test program assembles")
}

fn resilient(topology: Topology) -> ClusterConfig {
    let mut config = ClusterConfig::small(topology);
    config.resilience = ResilienceConfig {
        request_timeout: 256,
        max_retries: 8,
        watchdog_cycles: 8192,
    };
    config
}

const ALL_TOPOLOGIES: [Topology; 4] =
    [Topology::Ideal, Topology::Top1, Topology::Top4, Topology::TopH];

/// Runs the store/load workload with the sanitizer attached and returns
/// `(digest, report)`. `workers == 0` selects the serial engine.
fn sanitized_run(
    config: ClusterConfig,
    plan: Option<FaultPlan>,
    workers: usize,
) -> (u64, SanitizerReport) {
    let mut cluster = Cluster::snitch(config).expect("valid config");
    cluster.load_program(&store_load_program()).expect("program loads");
    cluster.install_fault_plan(plan);
    if workers > 0 {
        cluster.set_workers(workers);
    }
    cluster.enable_sanitizer(SanitizerConfig::default());
    cluster.run(400_000).expect("workload completes");
    let report = cluster.sanitizer_report().expect("sanitizer attached").clone();
    (cluster.state_digest(), report)
}

/// Differential matrix: every topology × faults off/on × serial and
/// parallel engines. The sanitizer must stay silent everywhere, observe
/// real traffic, and (being pure checking) must not perturb the digest —
/// serial and parallel runs of the same point stay bit-identical with it
/// attached.
#[test]
fn differential_matrix_is_clean() {
    let spec: FaultSpec = "bank_fail=2,link_drop=0.005,link_stall=0.01"
        .parse()
        .expect("valid spec");
    for topology in ALL_TOPOLOGIES {
        for faulted in [false, true] {
            let config = if faulted {
                resilient(topology)
            } else {
                ClusterConfig::small(topology)
            };
            let plan = faulted.then(|| FaultPlan::new(11, spec));
            let (serial_digest, serial_report) = sanitized_run(config, plan, 0);
            let ctx = format!("{topology:?} faulted={faulted}");
            assert!(
                serial_report.is_clean(),
                "{ctx}: serial violations: {:?}",
                serial_report.violations
            );
            assert!(serial_report.completions > 0, "{ctx}: no traffic observed");
            assert_eq!(serial_report.dropped, 0, "{ctx}: violations overflowed");
            for workers in [4, 32] {
                let config = if faulted {
                    resilient(topology)
                } else {
                    ClusterConfig::small(topology)
                };
                let plan = faulted.then(|| FaultPlan::new(11, spec));
                let (par_digest, par_report) = sanitized_run(config, plan, workers);
                assert!(
                    par_report.is_clean(),
                    "{ctx} workers={workers}: violations: {:?}",
                    par_report.violations
                );
                assert_eq!(
                    par_digest, serial_digest,
                    "{ctx} workers={workers}: engines diverged under sanitizer"
                );
                assert_eq!(
                    par_report.completions, serial_report.completions,
                    "{ctx} workers={workers}: sanitizer observed different traffic"
                );
            }
        }
    }
}

/// The sanitizer is pure checking: attaching it must not change the
/// simulation outcome (cycle count or state digest) of a faulted run.
#[test]
fn sanitizer_does_not_perturb_results() {
    let spec: FaultSpec = "link_drop=0.01".parse().expect("valid spec");
    let run = |sanitize: bool| {
        let mut cluster = Cluster::snitch(resilient(Topology::Top1)).expect("valid config");
        cluster.load_program(&store_load_program()).expect("program loads");
        cluster.install_fault_plan(Some(FaultPlan::new(9, spec)));
        if sanitize {
            cluster.enable_sanitizer(SanitizerConfig::default());
        }
        let cycles = cluster.run(400_000).expect("retries recover");
        (cycles, cluster.state_digest())
    };
    assert_eq!(run(false), run(true));
}

/// Seeded mutation: silently dropping a delivered response must age into
/// a conservation leak (`ResponseLeak`) once the response stays missing
/// past `leak_after`.
#[test]
fn dropped_response_raises_conservation_leak() {
    let mut cluster =
        Cluster::snitch(ClusterConfig::small(Topology::Top1)).expect("valid config");
    cluster.load_program(&store_load_program()).expect("program loads");
    cluster.enable_sanitizer(SanitizerConfig {
        leak_after: 64,
        liveness_cycles: 0,
        ..SanitizerConfig::default()
    });
    cluster.debug_drop_next_delivery();
    // The victim core can never retire its access, so the run times out;
    // the leak must be flagged long before the budget dies either way.
    let _ = cluster.run(20_000);
    let report = cluster.sanitizer_report().expect("attached");
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::ResponseLeak { age, .. } if age >= 64)),
        "expected a ResponseLeak, got {:?}",
        report.violations
    );
}

/// Seeded mutation: duplicating a delivered response must raise
/// `DuplicateResponse`. Run with request tracking on so the retry
/// layer's stale filter shields the core from the double delivery — the
/// sanitizer observes deliveries *before* that filter.
#[test]
fn duplicated_response_raises_duplicate_violation() {
    let mut cluster = Cluster::snitch(resilient(Topology::Top1)).expect("valid config");
    cluster.load_program(&store_load_program()).expect("program loads");
    cluster.enable_sanitizer(SanitizerConfig {
        liveness_cycles: 0,
        ..SanitizerConfig::default()
    });
    cluster.debug_duplicate_next_delivery();
    // The duplicate inflates the in-flight count by one forever, so the
    // run ends in a watchdog deadlock rather than a clean drain.
    let _ = cluster.run(40_000);
    let report = cluster.sanitizer_report().expect("attached");
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::DuplicateResponse { .. })),
        "expected a DuplicateResponse, got {:?}",
        report.violations
    );
    // The stale filter absorbed the duplicate before the core saw it.
    assert!(cluster.stats().faults.stale_responses > 0);
}

/// Seeded mutation: withholding the first of two same-bank responses
/// until after the second lands must trip the per-core/per-bank FIFO
/// ordering check (`FifoReorder`).
#[test]
fn held_response_raises_fifo_reorder() {
    let mut config = ClusterConfig::small(Topology::Top1);
    // Pure interleaved map so `tile << 6` addresses bank 0 of that tile.
    config.seq_region_bytes = None;
    let program = assemble(
        "csrr t0, mhartid\n\
         bnez t0, out\n\
         li   t1, 0x200\n\
         sw   t0, 0(t1)\n\
         sw   t0, 0(t1)\n\
         out: ecall\n",
    )
    .expect("test program assembles");
    let mut cluster = Cluster::snitch(config).expect("valid config");
    cluster.load_program(&program).expect("program loads");
    cluster.enable_sanitizer(SanitizerConfig::default());
    cluster.debug_hold_delivery(0, 30);
    cluster.run(20_000).expect("held response is re-injected");
    let report = cluster.sanitizer_report().expect("attached");
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::FifoReorder { core: 0, .. })),
        "expected a FifoReorder for core 0, got {:?}",
        report.violations
    );
}

/// Seeded mutation: freezing every core (a stalled barrier, in effect)
/// must raise `LivenessStall` once no progress signal moves for the
/// configured window.
#[test]
fn stalled_cores_raise_liveness_violation() {
    let mut cluster =
        Cluster::snitch(ClusterConfig::small(Topology::TopH)).expect("valid config");
    cluster.load_program(&store_load_program()).expect("program loads");
    cluster.enable_sanitizer(SanitizerConfig {
        liveness_cycles: 64,
        ..SanitizerConfig::default()
    });
    cluster.debug_lock_all_cores(10_000);
    let _ = cluster.run(2_000);
    let report = cluster.sanitizer_report().expect("attached");
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::LivenessStall { idle_cycles, .. }
                if idle_cycles >= 64)),
        "expected a LivenessStall, got {:?}",
        report.violations
    );
}

/// Violations carry their cycle stamp and a per-tile diagnostic dump on
/// the severe kinds, so a campaign log pinpoints *when* and *where* the
/// invariant broke.
#[test]
fn violations_are_cycle_stamped_with_diagnostics() {
    let mut cluster =
        Cluster::snitch(ClusterConfig::small(Topology::Top1)).expect("valid config");
    cluster.load_program(&store_load_program()).expect("program loads");
    cluster.enable_sanitizer(SanitizerConfig {
        leak_after: 64,
        liveness_cycles: 0,
        ..SanitizerConfig::default()
    });
    cluster.debug_drop_next_delivery();
    let _ = cluster.run(20_000);
    let report = cluster.sanitizer_report().expect("attached");
    let leak = report
        .violations
        .iter()
        .find(|v| matches!(v.kind, ViolationKind::ResponseLeak { .. }))
        .expect("leak recorded");
    assert!(leak.cycle > 0, "violation must carry its cycle");
    let text = leak.to_string();
    assert!(text.contains("cycle"), "{text}");
    assert!(text.contains("leak"), "{text}");
}
