//! The program-level profiler: per-PC stall attribution, kernel region
//! breakdowns, and the windowed activity series behind power timelines.
//!
//! The per-core half lives in `mempool_snitch::profile` — each
//! [`SnitchCore`](mempool_snitch::SnitchCore) with profiling enabled
//! attributes every cycle it spends to a `(region, PC)` pair. This module
//! adds the cluster half:
//!
//! * [`ProfileConfig`] — one knob bundle: the per-core PC-table bound and
//!   the power-sampling window length.
//! * The windowed **activity sampler**: every `power_window` cycles the
//!   cluster latches integer deltas of its activity counters into a
//!   [`PowerWindow`] (per-tile instruction/access mix plus the cluster-wide
//!   local/remote split). `mempool-physical` turns the series into the
//!   `mempool-power-v1` power-over-time document; keeping the simulator
//!   side integer-only keeps it snapshot- and digest-friendly.
//! * The **folded-stack exporter** ([`folded_stacks`]): per-core profiles
//!   rendered as collapsed-stack lines
//!   (`tile0;core1;compute;0x00000040;stall_scoreboard 55`) that standard
//!   flamegraph tooling consumes directly.
//!
//! Like the observability recorder, the profiler is `Option`-gated: absent
//! by default (zero cost), and architectural state once enabled — it is
//! snapshotted (the `profile` component), digested, and bit-identical
//! across the serial and tile-parallel engines and checkpoint/restore.
//! Sampling happens in [`finish_cycle`], the serial end-of-cycle step both
//! engines share.
//!
//! [`finish_cycle`]: crate::Cluster::cycle

use mempool_snitch::profile::{
    region_name, stall_index, CoreProfile, RegionCounters, REGION_SLOTS, STALL_CAUSES,
};
use std::fmt::Write as _;

/// Metrics-counter names for per-region stall cycles, indexed like
/// [`STALL_CAUSES`] (`stall_` + `mempool_snitch::profile::stall_name`).
pub const STALL_COUNTER_NAMES: [&str; STALL_CAUSES.len()] = [
    "stall_scoreboard",
    "stall_lsu_full",
    "stall_port_busy",
    "stall_fetch",
    "stall_fence",
    "stall_exec_busy",
];

/// Profiler configuration: what the cluster records while profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Per-core bound on tracked `(region, PC)` pairs; attribution past the
    /// bound folds into an overflow bucket (region totals stay exact).
    pub max_pcs: usize,
    /// Power-sampling window length in cycles (`0` disables the activity
    /// sampler; per-PC/per-region attribution still runs).
    pub power_window: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            max_pcs: 4096,
            power_window: 1024,
        }
    }
}

impl ProfileConfig {
    /// Per-PC/per-region attribution only, no power windows.
    pub fn attribution_only() -> ProfileConfig {
        ProfileConfig {
            power_window: 0,
            ..ProfileConfig::default()
        }
    }

    /// Default attribution plus power windows of `window` cycles.
    pub fn with_power_window(window: u64) -> ProfileConfig {
        ProfileConfig {
            power_window: window,
            ..ProfileConfig::default()
        }
    }
}

/// Integer activity of one tile over one power window (deltas of the
/// cluster's cumulative counters between the window edges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileActivity {
    /// Instructions retired by the tile's cores.
    pub instret: u64,
    /// Multiply instructions retired.
    pub muls: u64,
    /// Divide/remainder instructions retired.
    pub divs: u64,
    /// Memory instructions retired (loads + stores + atomics).
    pub memory_ops: u64,
    /// I-cache lookups (hits + misses) by the tile's cores.
    pub icache_fetches: u64,
    /// I-cache line refills completed by the tile.
    pub icache_refills: u64,
    /// SPM bank accesses served by the tile's banks.
    pub bank_accesses: u64,
}

impl TileActivity {
    pub(crate) fn delta(cur: &TileActivity, prev: &TileActivity) -> TileActivity {
        TileActivity {
            instret: cur.instret - prev.instret,
            muls: cur.muls - prev.muls,
            divs: cur.divs - prev.divs,
            memory_ops: cur.memory_ops - prev.memory_ops,
            icache_fetches: cur.icache_fetches - prev.icache_fetches,
            icache_refills: cur.icache_refills - prev.icache_refills,
            bank_accesses: cur.bank_accesses - prev.bank_accesses,
        }
    }
}

/// One power-sampling window: `[start, end)` in cycles, with per-tile
/// activity deltas and the cluster-wide locality split for the
/// interconnect-energy share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerWindow {
    /// First cycle of the window.
    pub start: u64,
    /// One past the last cycle of the window (`end - start` = length).
    pub end: u64,
    /// Per-tile activity deltas, indexed by tile.
    pub tiles: Vec<TileActivity>,
    /// Memory accesses that stayed in the issuing tile.
    pub local_requests: u64,
    /// Memory accesses that crossed tiles.
    pub remote_requests: u64,
}

/// Cumulative counters latched at the last window edge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct ActivityMark {
    pub(crate) tiles: Vec<TileActivity>,
    pub(crate) local_requests: u64,
    pub(crate) remote_requests: u64,
}

/// The live cluster-side profiler state (the per-core tables live inside
/// the cores). Deterministic architectural state: snapshotted as the
/// `profile` component and covered by the state digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Profiler {
    pub(crate) config: ProfileConfig,
    /// Closed power windows, in time order.
    pub(crate) windows: Vec<PowerWindow>,
    /// First cycle of the currently open window.
    pub(crate) window_start: u64,
    /// Cumulative counters at `window_start`.
    pub(crate) mark: ActivityMark,
}

impl Profiler {
    pub(crate) fn new(config: ProfileConfig, num_tiles: usize) -> Profiler {
        Profiler {
            config,
            windows: Vec::new(),
            window_start: 0,
            mark: ActivityMark {
                tiles: vec![TileActivity::default(); num_tiles],
                ..ActivityMark::default()
            },
        }
    }

    /// Whether the open window closes once `completed` cycles have been
    /// simulated in total.
    pub(crate) fn window_closes(&self, completed: u64) -> bool {
        self.config.power_window > 0 && completed >= self.window_start + self.config.power_window
    }

    /// Closes the open window at `end` given the current cumulative
    /// counters, and re-arms the mark.
    pub(crate) fn close_window(&mut self, end: u64, cum: ActivityMark) {
        let tiles = cum
            .tiles
            .iter()
            .zip(&self.mark.tiles)
            .map(|(cur, prev)| TileActivity::delta(cur, prev))
            .collect();
        self.windows.push(PowerWindow {
            start: self.window_start,
            end,
            tiles,
            local_requests: cum.local_requests - self.mark.local_requests,
            remote_requests: cum.remote_requests - self.mark.remote_requests,
        });
        self.window_start = end;
        self.mark = cum;
    }
}

/// Renders per-core profiles as collapsed-stack ("folded") lines, the
/// input format of standard flamegraph tooling: one
/// `frame;frame;...;frame count` line per distinct stack, where the frames
/// are `tile{t};core{c};{region};0x{pc:08x}` and the leaf is either the
/// retire count or a `stall_*` frame with its cycle count. Table overflow
/// appears under a `[overflow]` frame so folded totals still sum to every
/// attributed cycle. Lines are emitted in canonical (core, region, PC)
/// order, so identical profiles render byte-identically.
pub fn folded_stacks<'a>(
    cores: impl Iterator<Item = (u32, u32, &'a CoreProfile)>,
) -> String {
    let mut out = String::new();
    for (tile, core, profile) in cores {
        for (region, pc, c) in profile.pcs() {
            let name = region_name(region);
            if c.retired > 0 {
                let _ = writeln!(out, "tile{tile};core{core};{name};0x{pc:08x} {}", c.retired);
            }
            for (i, cause) in STALL_CAUSES.iter().enumerate() {
                if c.stalls[i] > 0 {
                    let _ = writeln!(
                        out,
                        "tile{tile};core{core};{name};0x{pc:08x};{} {}",
                        STALL_COUNTER_NAMES[stall_index(*cause)],
                        c.stalls[i]
                    );
                }
            }
        }
        let o = profile.overflow();
        if o.retired > 0 {
            let _ = writeln!(out, "tile{tile};core{core};[overflow] {}", o.retired);
        }
        for (i, _) in STALL_CAUSES.iter().enumerate() {
            if o.stalls[i] > 0 {
                let _ = writeln!(
                    out,
                    "tile{tile};core{core};[overflow];{} {}",
                    STALL_COUNTER_NAMES[i], o.stalls[i]
                );
            }
        }
    }
    out
}

/// Sums region counters across cores into one cluster-wide per-region
/// table.
pub fn aggregate_regions<'a>(
    profiles: impl Iterator<Item = &'a CoreProfile>,
) -> [RegionCounters; REGION_SLOTS] {
    let mut total = [RegionCounters::default(); REGION_SLOTS];
    for p in profiles {
        for (acc, r) in total.iter_mut().zip(p.regions()) {
            acc.retired += r.retired;
            for (a, &s) in acc.stalls.iter_mut().zip(&r.stalls) {
                *a += s;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool_snitch::StallCause;

    #[test]
    fn windows_are_deltas_between_marks() {
        let mut p = Profiler::new(ProfileConfig::with_power_window(4), 2);
        assert!(!p.window_closes(3));
        assert!(p.window_closes(4));
        let cum = ActivityMark {
            tiles: vec![
                TileActivity {
                    instret: 10,
                    ..TileActivity::default()
                },
                TileActivity {
                    instret: 6,
                    bank_accesses: 3,
                    ..TileActivity::default()
                },
            ],
            local_requests: 5,
            remote_requests: 2,
        };
        p.close_window(4, cum.clone());
        let mut cum2 = cum.clone();
        cum2.tiles[0].instret = 25;
        cum2.local_requests = 9;
        p.close_window(8, cum2);
        assert_eq!(p.windows.len(), 2);
        assert_eq!((p.windows[0].start, p.windows[0].end), (0, 4));
        assert_eq!(p.windows[0].tiles[1].bank_accesses, 3);
        assert_eq!(p.windows[0].local_requests, 5);
        assert_eq!((p.windows[1].start, p.windows[1].end), (4, 8));
        assert_eq!(p.windows[1].tiles[0].instret, 15);
        assert_eq!(p.windows[1].tiles[1].instret, 0);
        assert_eq!(p.windows[1].local_requests, 4);
        assert_eq!(p.windows[1].remote_requests, 0);
    }

    #[test]
    fn zero_window_disables_sampling() {
        let p = Profiler::new(ProfileConfig::attribution_only(), 1);
        assert!(!p.window_closes(0));
        assert!(!p.window_closes(u64::MAX - 1));
    }

    #[test]
    fn folded_output_is_flamegraph_shaped() {
        let mut a = CoreProfile::new(8);
        a.record_retire(1, 0x40);
        a.record_retire(1, 0x40);
        a.record_stall(1, 0x40, StallCause::Scoreboard);
        let mut b = CoreProfile::new(1);
        b.record_retire(0, 0x0);
        b.record_retire(0, 0x4); // spills
        let cores = [(0u32, 1u32, &a), (2u32, 8u32, &b)];
        let out = folded_stacks(cores.iter().map(|&(t, c, p)| (t, c, p)));
        assert!(out.contains("tile0;core1;compute;0x00000040 2\n"), "{out}");
        assert!(
            out.contains("tile0;core1;compute;0x00000040;stall_scoreboard 1\n"),
            "{out}"
        );
        assert!(out.contains("tile2;core8;init;0x00000000 1\n"), "{out}");
        assert!(out.contains("tile2;core8;[overflow] 1\n"), "{out}");
        // Every line is `frames count`.
        for line in out.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("space-separated");
            assert!(stack.contains(';'), "{line}");
            assert!(count.parse::<u64>().is_ok(), "{line}");
        }
        // Total attributed cycles survive the rendering.
        let total: u64 = out
            .lines()
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, a.total().cycles() + b.total().cycles());
    }

    #[test]
    fn aggregate_regions_sums_cores() {
        let mut a = CoreProfile::new(8);
        a.record_retire(1, 0x40);
        a.record_stall(2, 0x44, StallCause::Fence);
        let mut b = CoreProfile::new(8);
        b.record_retire(1, 0x40);
        let total = aggregate_regions([&a, &b].into_iter());
        assert_eq!(total[1].retired, 2);
        assert_eq!(total[2].stalls[stall_index(StallCause::Fence)], 1);
        assert_eq!(total.iter().map(|r| r.cycles()).sum::<u64>(), 3);
    }
}
