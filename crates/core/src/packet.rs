//! The packets that travel the request and response interconnects, and
//! recorded memory traces.

use mempool_snitch::DataRequestKind;

/// One recorded memory request of a core (programmer-view address, i.e.
/// before hybrid-addressing scrambling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the request left the core.
    pub cycle: u64,
    /// Virtual (pre-scramble) byte address.
    pub addr: u32,
    /// Whether the request wrote memory.
    pub write: bool,
}

/// A per-core memory trace captured by
/// [`Cluster::begin_trace`](crate::Cluster::begin_trace) — the raw material
/// for trace-driven network studies (replay the same memory schedule on a
/// different topology without re-executing the program).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryTrace {
    per_core: Vec<Vec<TraceEvent>>,
}

impl MemoryTrace {
    /// Creates an empty trace for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        MemoryTrace {
            per_core: vec![Vec::new(); num_cores],
        }
    }

    /// Records an event for `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn record(&mut self, core: usize, event: TraceEvent) {
        self.per_core[core].push(event);
    }

    /// Number of cores the trace covers.
    pub fn num_cores(&self) -> usize {
        self.per_core.len()
    }

    /// The events of one core, in issue order.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core(&self, core: usize) -> &[TraceEvent] {
        &self.per_core[core]
    }

    /// Total recorded events.
    pub fn len(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A memory request in flight, carrying the routing metadata the paper's
/// interconnect transports: the issuing core (for the return path) and the
/// reorder-buffer tag (for response matching).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Global core index of the issuer.
    pub core: u32,
    /// The issuer's reorder-buffer tag.
    pub tag: u8,
    /// *Physical* byte address (after hybrid-addressing scrambling).
    pub addr: u32,
    /// Operation.
    pub kind: DataRequestKind,
    /// Cycle at which the request left the core (for latency statistics).
    pub issued_at: u64,
}

/// A memory response in flight back to its core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Global core index of the original issuer (routing destination).
    pub core: u32,
    /// The issuer's reorder-buffer tag.
    pub tag: u8,
    /// Payload: load data / AMO old value / SC status; 0 for store acks.
    pub data: u32,
    /// Cycle at which the original request left the core.
    pub issued_at: u64,
    /// Whether the original request was a write (for statistics).
    pub is_write: bool,
}
