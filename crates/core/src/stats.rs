//! Cluster-level statistics: latency distributions, throughput, locality.

use std::fmt;

/// An online latency distribution (count, sum, min, max, and a coarse
/// power-of-two histogram for percentiles).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// `buckets[i]` counts samples with `latency == i` for i < 64; the tail
    /// bucket counts everything larger.
    buckets: Vec<u64>,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats::new()
    }
}

const EXACT_BUCKETS: usize = 64;

impl LatencyStats {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        LatencyStats {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; EXACT_BUCKETS + 1],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        let idx = (latency as usize).min(EXACT_BUCKETS);
        self.buckets[idx] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (for exact mean reconstruction in exports).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The raw histogram: `bucket_counts()[i]` counts samples with
    /// `latency == i` for `i < 64`; the last bucket is the `>= 64` tail.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Arithmetic mean, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`None` with no samples).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` with no samples).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (0.0–1.0) from the histogram; exact below 64 cycles,
    /// saturating to "≥64" above.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Some(if i == EXACT_BUCKETS { self.max } else { i as u64 });
            }
        }
        Some(self.max)
    }

    /// Serializes the distribution into `out` in the canonical checkpoint
    /// encoding (also the digest encoding).
    pub fn save_state(&self, out: &mut dyn crate::snapshot::StateSink) {
        out.put_u64(self.count);
        out.put_u64(self.sum);
        out.put_u64(self.min);
        out.put_u64(self.max);
        out.put_u64(self.buckets.len() as u64);
        for &b in &self.buckets {
            out.put_u64(b);
        }
    }

    /// Restores the distribution from its [`save_state`] encoding.
    ///
    /// [`save_state`]: LatencyStats::save_state
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`](crate::snapshot::SnapshotError) when the
    /// bytes are truncated or malformed.
    pub fn load_state(
        &mut self,
        r: &mut crate::snapshot::ByteReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        self.count = r.take_u64()?;
        self.sum = r.take_u64()?;
        self.min = r.take_u64()?;
        self.max = r.take_u64()?;
        let n = r.take_u64()? as usize;
        if n != EXACT_BUCKETS + 1 {
            return Err(crate::snapshot::SnapshotError::Corrupt(
                "latency histogram bucket count",
            ));
        }
        self.buckets.clear();
        for _ in 0..n {
            self.buckets.push(r.take_u64()?);
        }
        Ok(())
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; EXACT_BUCKETS + 1];
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "no samples");
        }
        write!(
            f,
            "n={} mean={:.2} min={} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.min,
            self.quantile(0.5).unwrap_or(0),
            self.quantile(0.99).unwrap_or(0),
            self.max
        )
    }
}

/// Counters of injected faults and the resilience machinery's reactions.
///
/// Split from the performance counters so fault campaigns can report the
/// two separately: everything here is zero in a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Cycles in which a bank refused requests due to an injected stall.
    pub bank_stalls: u64,
    /// Permanent bank failures activated.
    pub banks_failed: u64,
    /// Banks successfully quarantined (traffic redirected).
    pub banks_quarantined: u64,
    /// Requests whose target bank was substituted by the quarantine map.
    pub quarantine_remaps: u64,
    /// In-flight requests discarded because their target bank was dead.
    pub requests_dropped: u64,
    /// Link-cycles an interconnect register stage spent stall-gated.
    pub link_stalls: u64,
    /// Flits silently dropped from interconnect register stages.
    pub link_drops: u64,
    /// Response payloads corrupted in interconnect register stages.
    pub link_corruptions: u64,
    /// Slot-cycles the refill ring spent stall-gated.
    pub ring_stalls: u64,
    /// Refill-ring flits lost in flight.
    pub ring_drops: u64,
    /// Core lockups injected.
    pub core_lockups: u64,
    /// Instructions spuriously retired (skipped) by injected faults.
    pub spurious_retires: u64,
    /// Requests that exceeded the per-request timeout.
    pub request_timeouts: u64,
    /// Requests re-issued by the retry layer.
    pub request_retries: u64,
    /// Requests abandoned after exhausting the retry budget.
    pub requests_abandoned: u64,
    /// Responses discarded as stale (a retry's original answer arrived
    /// after the request had already been re-issued or abandoned).
    pub stale_responses: u64,
}

impl FaultStats {
    /// Total fault injections (not counting the resilience layer's own
    /// reactions like retries and remaps).
    pub fn total_injected(&self) -> u64 {
        self.bank_stalls
            + self.banks_failed
            + self.link_stalls
            + self.link_drops
            + self.link_corruptions
            + self.ring_stalls
            + self.ring_drops
            + self.core_lockups
            + self.spurious_retires
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Accumulates `other` into `self` (for campaign-level aggregation).
    pub fn merge(&mut self, other: &FaultStats) {
        self.bank_stalls += other.bank_stalls;
        self.banks_failed += other.banks_failed;
        self.banks_quarantined += other.banks_quarantined;
        self.quarantine_remaps += other.quarantine_remaps;
        self.requests_dropped += other.requests_dropped;
        self.link_stalls += other.link_stalls;
        self.link_drops += other.link_drops;
        self.link_corruptions += other.link_corruptions;
        self.ring_stalls += other.ring_stalls;
        self.ring_drops += other.ring_drops;
        self.core_lockups += other.core_lockups;
        self.spurious_retires += other.spurious_retires;
        self.request_timeouts += other.request_timeouts;
        self.request_retries += other.request_retries;
        self.requests_abandoned += other.requests_abandoned;
        self.stale_responses += other.stale_responses;
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bank_stalls={} banks_failed={} banks_quarantined={} quarantine_remaps={} \
             requests_dropped={} link_stalls={} link_drops={} link_corruptions={} \
             ring_stalls={} ring_drops={} core_lockups={} spurious_retires={} \
             request_timeouts={} request_retries={} requests_abandoned={} stale_responses={}",
            self.bank_stalls,
            self.banks_failed,
            self.banks_quarantined,
            self.quarantine_remaps,
            self.requests_dropped,
            self.link_stalls,
            self.link_drops,
            self.link_corruptions,
            self.ring_stalls,
            self.ring_drops,
            self.core_lockups,
            self.spurious_retires,
            self.request_timeouts,
            self.request_retries,
            self.requests_abandoned,
            self.stale_responses,
        )
    }
}

/// Aggregate counters of one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Requests that left a core.
    pub requests_issued: u64,
    /// Requests served by a bank.
    pub bank_accesses: u64,
    /// Responses delivered back to cores.
    pub responses_delivered: u64,
    /// Requests whose target bank was in the issuing core's own tile.
    pub local_requests: u64,
    /// Requests that crossed to a remote tile.
    pub remote_requests: u64,
    /// Remote requests that stayed within the local group (TopH only).
    pub group_local_requests: u64,
    /// Remote requests per inter-group direction `[N, NE, E]` (TopH only).
    pub direction_requests: [u64; 3],
    /// Round-trip latency distribution (issue → response delivery).
    pub latency: LatencyStats,
    /// I-cache refills performed (all tiles).
    pub icache_refills: u64,
    /// Requests dropped because their address fell outside L1 (the issuing
    /// core is halted with a fault).
    pub memory_faults: u64,
    /// Sum over cycles of occupied global-interconnect register slots
    /// (divide by `cycles` for the mean occupancy).
    pub net_occupancy_sum: u64,
    /// Total global-interconnect register slots (constant per topology).
    pub net_register_slots: u64,
    /// Bank accesses served per tile (activity heat map).
    pub tile_accesses: Vec<u64>,
    /// Injected-fault and resilience counters (all zero without a fault
    /// plan).
    pub faults: FaultStats,
}

impl ClusterStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        ClusterStats {
            latency: LatencyStats::new(),
            ..ClusterStats::default()
        }
    }

    /// Creates zeroed statistics with a per-tile access counter per tile.
    pub fn with_tiles(num_tiles: usize) -> Self {
        ClusterStats {
            tile_accesses: vec![0; num_tiles],
            ..ClusterStats::new()
        }
    }

    /// Delivered requests per core per cycle.
    pub fn throughput(&self, num_cores: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.responses_delivered as f64 / (self.cycles as f64 * num_cores as f64)
        }
    }

    /// The hottest tile and its share of all bank accesses (`None` with no
    /// accesses).
    pub fn hottest_tile(&self) -> Option<(usize, f64)> {
        let total: u64 = self.tile_accesses.iter().sum();
        if total == 0 {
            return None;
        }
        let (tile, &max) = self
            .tile_accesses
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)?;
        Some((tile, max as f64 / total as f64))
    }

    /// Mean fraction of occupied global-interconnect registers per cycle
    /// (0.0 for the ideal topology, which has no registers).
    pub fn net_occupancy(&self) -> f64 {
        if self.cycles == 0 || self.net_register_slots == 0 {
            0.0
        } else {
            self.net_occupancy_sum as f64 / (self.cycles * self.net_register_slots) as f64
        }
    }

    /// Fraction of requests that stayed in the issuing tile.
    pub fn locality(&self) -> f64 {
        let total = self.local_requests + self.remote_requests;
        if total == 0 {
            0.0
        } else {
            self.local_requests as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_basic_moments() {
        let mut l = LatencyStats::new();
        for v in [1u64, 3, 5, 5, 10] {
            l.record(v);
        }
        assert_eq!(l.count(), 5);
        assert_eq!(l.min(), Some(1));
        assert_eq!(l.max(), Some(10));
        assert!((l.mean() - 4.8).abs() < 1e-12);
        assert_eq!(l.quantile(0.5), Some(5));
        assert_eq!(l.quantile(1.0), Some(10));
    }

    #[test]
    fn latency_empty() {
        let l = LatencyStats::new();
        assert_eq!(l.mean(), 0.0);
        assert_eq!(l.min(), None);
        assert_eq!(l.quantile(0.5), None);
        assert_eq!(l.to_string(), "no samples");
    }

    #[test]
    fn latency_merge() {
        let mut a = LatencyStats::new();
        a.record(2);
        let mut b = LatencyStats::new();
        b.record(8);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(100));
        assert_eq!(a.min(), Some(2));
    }

    #[test]
    fn big_samples_saturate_histogram() {
        let mut l = LatencyStats::new();
        l.record(1000);
        assert_eq!(l.quantile(0.5), Some(1000)); // tail bucket reports max
    }

    #[test]
    fn throughput_and_locality() {
        let mut s = ClusterStats::new();
        s.cycles = 100;
        s.responses_delivered = 50;
        s.local_requests = 30;
        s.remote_requests = 10;
        assert!((s.throughput(2) - 0.25).abs() < 1e-12);
        assert!((s.locality() - 0.75).abs() < 1e-12);
    }
}
