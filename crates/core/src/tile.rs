//! The MemPool tile: cores' local memory island — 16 SPM banks, the tile
//! request/response crossbars, K remote port latches, and the shared L1
//! instruction cache with its refill port (Figure 2 of the paper).

use crate::{ClusterConfig, Request, Response};
use mempool_mem::{AddressMap, BankOp, ICache, SpmBank};
use mempool_noc::{ElasticBuffer, Fabric, Offer};
use mempool_riscv::{Instr, StoreOp};
use mempool_snitch::{DataRequestKind, Fetch};
use std::collections::VecDeque;

/// The pre-decoded instruction image shared by all tiles (instructions live
/// in a separate address space backed by L2; the tile I-caches model fetch
/// *timing*).
#[derive(Debug, Clone, Default)]
pub struct ProgramImage {
    base: u32,
    instrs: Vec<Instr>,
}

impl ProgramImage {
    /// Pre-decodes an assembled program.
    ///
    /// # Errors
    ///
    /// Returns the decode error of the first malformed word. Data words
    /// embedded in the text section decode as garbage or fail — keep data in
    /// the L1 address space instead.
    pub fn from_program(program: &mempool_riscv::Program) -> Result<Self, mempool_riscv::DecodeError> {
        let instrs = program
            .words()
            .iter()
            .map(|&w| mempool_riscv::decode(w))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ProgramImage {
            base: program.base(),
            instrs,
        })
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `pc`, if in range and aligned.
    pub fn at(&self, pc: u32) -> Option<Instr> {
        if pc < self.base || !pc.is_multiple_of(4) {
            return None;
        }
        self.instrs.get(((pc - self.base) / 4) as usize).copied()
    }

    /// FNV-1a digest over the image's base address and decoded
    /// instructions — lets a checkpoint verify it is restored against the
    /// same program it was taken from.
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(&self.base.to_le_bytes());
        for instr in &self.instrs {
            mix(format!("{instr:?}").as_bytes());
        }
        hash
    }
}

#[derive(Debug, Clone)]
pub(crate) struct RefillUnit {
    /// Missing lines registered but not yet installed (the MSHRs).
    pub(crate) pending: Vec<u32>,
    /// Misses waiting to enter the refill transport.
    pub(crate) outbox: VecDeque<u32>,
    /// Line in flight on the fixed-latency port and its completion cycle
    /// (unused when the cluster routes refills over the ring).
    pub(crate) in_flight: Option<(u32, u64)>,
    pub(crate) latency: u32,
    pub(crate) refills: u64,
}

/// Per-bank fault gate consulted by the tile request crossbar each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BankGate {
    /// Bank operates normally.
    Ready,
    /// Transient stall: the bank refuses requests this cycle; they wait in
    /// their latches and retry next cycle.
    Stalled,
    /// Permanent failure: requests addressed here are granted and silently
    /// discarded (the timeout/retry layer recovers them). Dropping instead
    /// of stalling keeps dead banks from permanently clogging the
    /// interconnect's elastic buffers.
    Dead,
}

/// One tile: banks, crossbars, remote-port latches, I-cache.
#[derive(Debug, Clone)]
pub(crate) struct Tile {
    pub banks: Vec<SpmBank>,
    /// Per-bank response register (the SPM output register).
    pub bank_resp: Vec<ElasticBuffer<Response>>,
    /// Tile request crossbar: (cores + K remote slaves) × banks.
    pub(crate) req_fabric: Fabric,
    /// Tile response crossbar: banks × (cores + K remote ports).
    pub(crate) resp_fabric: Fabric,
    /// Inbound remote requests (wire latches at the K slave ports).
    pub slave_req: Vec<Option<Request>>,
    /// Outbound remote responses (wire latches at the K response ports).
    pub resp_out: Vec<Option<Response>>,
    pub(crate) icache: ICache,
    pub(crate) refill: RefillUnit,
    cores_per_tile: usize,
}

impl Tile {
    pub fn new(config: &ClusterConfig) -> Self {
        let ports = config.topology.remote_ports(config.cores_per_tile);
        let masters = config.cores_per_tile + ports;
        let banks = config.banks_per_tile;
        Tile {
            banks: (0..banks).map(|_| SpmBank::new(config.rows_per_bank)).collect(),
            bank_resp: (0..banks).map(|_| ElasticBuffer::new(2)).collect(),
            req_fabric: Fabric::crossbar(masters.max(1), banks).expect("validated geometry"),
            resp_fabric: Fabric::crossbar(banks, masters.max(1)).expect("validated geometry"),
            slave_req: vec![None; ports],
            resp_out: vec![None; ports],
            icache: ICache::new(
                config.icache.size_bytes,
                config.icache.ways,
                config.icache.line_bytes,
            )
            .expect("validated geometry"),
            refill: RefillUnit {
                pending: Vec::new(),
                outbox: VecDeque::new(),
                in_flight: None,
                latency: config.icache.refill_latency,
                refills: 0,
            },
            cores_per_tile: config.cores_per_tile,
        }
    }

    /// I-cache hit/miss statistics.
    pub fn icache_stats(&self) -> mempool_mem::CacheStats {
        self.icache.stats()
    }

    /// Number of completed I-cache refills.
    pub fn refills(&self) -> u64 {
        self.refill.refills
    }

    /// Fixed-latency refill port: completes an in-flight refill and starts
    /// the next queued one. (Ring mode drives refills from the cluster via
    /// [`Tile::take_refill_request`] / [`Tile::complete_refill`] instead.)
    pub fn refill_tick(&mut self, now: u64) {
        if let Some((line, done_at)) = self.refill.in_flight {
            if done_at <= now {
                self.complete_refill(line);
                self.refill.in_flight = None;
            }
        }
        if self.refill.in_flight.is_none() {
            if let Some(line) = self.refill.outbox.pop_front() {
                self.refill.in_flight = Some((line, now + u64::from(self.refill.latency)));
            }
        }
    }

    /// The oldest miss waiting to enter the refill network (peek).
    pub fn peek_refill_request(&self) -> Option<u32> {
        self.refill.outbox.front().copied()
    }

    /// Removes the oldest waiting miss (call after the transport accepted
    /// it).
    pub fn take_refill_request(&mut self) -> Option<u32> {
        self.refill.outbox.pop_front()
    }

    /// Installs a refilled line (transport completion).
    pub fn complete_refill(&mut self, line: u32) {
        self.icache.fill(line);
        self.refill.refills += 1;
        self.refill.pending.retain(|&l| l != line);
    }

    /// One core's instruction fetch this cycle.
    pub fn fetch(&mut self, pc: u32, image: &ProgramImage, _now: u64) -> Fetch {
        let Some(instr) = image.at(pc) else {
            return Fetch::Fault;
        };
        if self.icache.probe(pc) {
            return Fetch::Ready(instr);
        }
        let line = self.icache.line_base(pc);
        if !self.refill.pending.contains(&line) {
            self.refill.pending.push(line);
            self.refill.outbox.push_back(line);
        }
        Fetch::Stall
    }

    /// Number of I-cache lines requested but not yet installed (outstanding
    /// refill work, however far along the transport it is).
    pub fn pending_refills(&self) -> usize {
        self.refill.pending.len()
    }

    /// Resolves the tile request crossbar and performs the granted bank
    /// accesses. Masters are the tile's cores (their output latches, when
    /// the request targets this tile) and the K slave-port latches.
    ///
    /// `gate` is the fault-injection view of each bank this cycle; requests
    /// granted to a [`BankGate::Dead`] bank are discarded and counted in
    /// `dropped`.
    ///
    /// Returns the number of bank accesses performed.
    pub fn accept_requests(
        &mut self,
        tile_index: usize,
        core_latches: &mut [Option<Request>],
        map: &AddressMap,
        now: u64,
        gate: &dyn Fn(u32) -> BankGate,
        dropped: &mut u64,
    ) -> u64 {
        debug_assert_eq!(core_latches.len(), self.cores_per_tile);
        let mut offers: Vec<Offer> = Vec::with_capacity(core_latches.len() + self.slave_req.len());
        let mut sources: Vec<usize> = Vec::with_capacity(offers.capacity());
        for (lane, latch) in core_latches.iter().enumerate() {
            if let Some(req) = latch {
                let at = map.decode(req.addr).expect("request addresses are validated at issue");
                if at.tile as usize == tile_index {
                    offers.push(Offer {
                        input: lane,
                        dest: at.bank as usize,
                    });
                    sources.push(lane);
                }
            }
        }
        let cores = self.cores_per_tile;
        for (port, latch) in self.slave_req.iter().enumerate() {
            if let Some(req) = latch {
                let at = map.decode(req.addr).expect("routed request stays in range");
                debug_assert_eq!(at.tile as usize, tile_index, "misrouted request");
                offers.push(Offer {
                    input: cores + port,
                    dest: at.bank as usize,
                });
                sources.push(cores + port);
            }
        }
        if offers.is_empty() {
            return 0;
        }
        let bank_resp = &self.bank_resp;
        let granted = self.req_fabric.resolve(&offers, &mut |bank| {
            match gate(bank as u32) {
                BankGate::Ready => bank_resp[bank].can_push(),
                BankGate::Stalled => false,
                BankGate::Dead => true, // grants are discarded below
            }
        });
        let mut accesses = 0;
        for (i, &g) in granted.iter().enumerate() {
            if !g {
                continue;
            }
            let src = sources[i];
            let req = if src < cores {
                core_latches[src].take().expect("granted offer had a request")
            } else {
                self.slave_req[src - cores].take().expect("granted offer had a request")
            };
            let at = map.decode(req.addr).expect("validated above");
            if gate(at.bank) == BankGate::Dead {
                *dropped += 1;
                continue;
            }
            let response = bank_access(&mut self.banks[at.bank as usize], &req, at.row, at.byte);
            let _ = now;
            self.bank_resp[at.bank as usize].push(response);
            accesses += 1;
        }
        accesses
    }

    /// Resolves the tile response crossbar: bank response registers route to
    /// local cores (delivered into `deliveries`) or to the K outbound
    /// response-port latches. `port_for` maps a remote response to its port.
    pub fn route_responses(
        &mut self,
        tile_index: usize,
        cores_per_tile: usize,
        deliveries: &mut Vec<Response>,
        port_for: &dyn Fn(&Response) -> usize,
    ) {
        let mut offers: Vec<Offer> = Vec::new();
        let mut which: Vec<usize> = Vec::new();
        for (bank, reg) in self.bank_resp.iter().enumerate() {
            if let Some(resp) = reg.head() {
                let core_tile = resp.core as usize / cores_per_tile;
                let dest = if core_tile == tile_index {
                    resp.core as usize % cores_per_tile
                } else {
                    cores_per_tile + port_for(resp)
                };
                offers.push(Offer { input: bank, dest });
                which.push(bank);
            }
        }
        if offers.is_empty() {
            return;
        }
        let resp_out = &self.resp_out;
        let granted = self.resp_fabric.resolve(&offers, &mut |port| {
            if port < cores_per_tile {
                true // local cores always sink responses (LSU slot reserved)
            } else {
                resp_out[port - cores_per_tile].is_none()
            }
        });
        for (i, &g) in granted.iter().enumerate() {
            if !g {
                continue;
            }
            let resp = self.bank_resp[which[i]].pop().expect("head existed");
            let core_tile = resp.core as usize / cores_per_tile;
            if core_tile == tile_index {
                deliveries.push(resp);
            } else {
                let port = port_for(&resp);
                debug_assert!(self.resp_out[port].is_none());
                self.resp_out[port] = Some(resp);
            }
        }
    }

    /// End-of-cycle commit of the tile's elastic registers.
    pub fn commit(&mut self) {
        for reg in &mut self.bank_resp {
            reg.commit();
        }
    }

    /// Clears all transient state (latches, response registers, refill
    /// machinery) while keeping SPM contents and the warm I-cache — used by
    /// [`Cluster::reset`](crate::Cluster::reset) between program phases.
    pub fn clear_transient(&mut self) {
        for reg in &mut self.bank_resp {
            reg.clear();
        }
        self.slave_req.iter_mut().for_each(|l| *l = None);
        self.resp_out.iter_mut().for_each(|l| *l = None);
        self.refill.pending.clear();
        self.refill.outbox.clear();
        self.refill.in_flight = None;
    }
}

/// Bank access entry point for the ideal-crossbar baseline (which bypasses
/// the tile request fabric).
pub(crate) fn ideal_bank_access(
    tile: &mut Tile,
    req: &Request,
    at: mempool_mem::BankAddress,
) -> Response {
    bank_access(&mut tile.banks[at.bank as usize], req, at.row, at.byte)
}

/// Executes one request at a bank and builds its response.
fn bank_access(bank: &mut SpmBank, req: &Request, row: u32, byte: u32) -> Response {
    let op = match req.kind {
        DataRequestKind::Load(_) => BankOp::Load,
        DataRequestKind::Store { op, data } => {
            let (data, strobe) = match op {
                StoreOp::Sw => (data, 0xf),
                StoreOp::Sh => (data << (8 * byte), 0b11 << byte),
                StoreOp::Sb => (data << (8 * byte), 1 << byte),
            };
            BankOp::Store { data, strobe }
        }
        DataRequestKind::Amo { op, operand } => BankOp::Amo { op, operand },
        DataRequestKind::LoadReserved => BankOp::LoadReserved { hart: req.core },
        DataRequestKind::StoreConditional { data } => BankOp::StoreConditional {
            hart: req.core,
            data,
        },
    };
    let data = bank.access(row, op).expect("row decoded within bank");
    Response {
        core: req.core,
        tag: req.tag,
        data,
        issued_at: req.issued_at,
        is_write: req.kind.is_write(),
    }
}
