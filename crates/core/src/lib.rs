//! # mempool
//!
//! A cycle-accurate simulator of **MemPool** (DATE 2021): a 256-core RISC-V
//! cluster in which all cores share a global view of 1 MiB of L1 scratchpad
//! memory, reachable within at most 5 cycles through a physically-aware
//! hierarchical interconnect.
//!
//! The crate reproduces the paper's architecture at the granularity its
//! evaluation needs:
//!
//! * **Tiles** (§III-B): 4 Snitch cores, 16 SPM banks with single-cycle
//!   local access, tile request/response crossbars, a shared 2 KiB L1
//!   I-cache with a serialized refill port, and K remote port pairs with
//!   register boundaries.
//! * **Topologies** (§III-C): [`Topology::Top1`] (one 64×64 radix-4
//!   butterfly), [`Topology::Top4`] (four parallel butterflies, one per
//!   core), [`Topology::TopH`] (four local groups with fully-connected
//!   16×16 crossbars plus N/NE/E inter-group butterflies), and the
//!   non-implementable [`Topology::Ideal`] crossbar baseline of §V-C.
//! * **Hybrid addressing** (§IV): the bijective scrambler that keeps each
//!   core's private data (e.g. its stack) in its own tile's banks.
//!
//! Zero-load round-trip latencies drop out of the register placement rather
//! than being hard-coded: 1 cycle to a local bank, 3 cycles within a TopH
//! local group, 5 cycles to a remote group or across the Top1/Top4
//! butterflies.
//!
//! Two execution backends share one programming surface: the cycle-accurate
//! [`Cluster`] and the untimed [`FunctionalSim`] reference interpreter, both
//! reachable through the [`L1Memory`] trait for data setup and verification.
//!
//! # Examples
//!
//! Every core increments a shared counter with an atomic and halts:
//!
//! ```
//! use mempool::{Cluster, ClusterConfig, Topology};
//! use mempool_riscv::assemble;
//!
//! let program = assemble(
//!     "li a0, 0x8000\n\
//!      li a1, 1\n\
//!      amoadd.w a2, a1, (a0)\n\
//!      fence\n\
//!      ecall\n",
//! )?;
//! let config = ClusterConfig::small(Topology::TopH);
//! let mut cluster = mempool::Cluster::snitch(config)?;
//! cluster.load_program(&program)?;
//! cluster.run(100_000)?;
//! assert_eq!(cluster.read_word(0x8000), Some(64)); // 64 cores
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cancel;
mod cluster;
mod config;
mod error;
pub mod faults;
mod functional;
mod net;
pub mod obs;
mod packet;
mod par;
pub mod profile;
pub mod sanitize;
mod session;
pub mod snapshot;
mod stats;
mod tile;

pub use cancel::{CancelCause, CancelToken, CancelledError};
pub use cluster::{Cluster, CoreLocation, RunTimeoutError};
pub use error::Error;
pub use faults::{
    BankFailure, BusError, DeadlockDiagnostic, FaultEvent, FaultLog, FaultPlan, FaultSpec,
    LinkFaultKind, ParseFaultSpecError, PendingDump, SimError, TileDiagnostic,
};
pub use functional::{FunctionalSim, FunctionalTimeoutError};
pub use config::{
    ClusterConfig, IcacheConfig, RefillNetwork, ResilienceConfig, Topology, ValidateConfigError,
};
pub use obs::{
    HistogramSnapshot, MetricScope, MetricsError, MetricsRegistry, ObsConfig, TimelineTrace,
    TraceSpan, METRICS_SCHEMA,
};
pub use packet::{MemoryTrace, Request, Response, TraceEvent};
pub use profile::{
    aggregate_regions, folded_stacks, PowerWindow, ProfileConfig, TileActivity,
    STALL_COUNTER_NAMES,
};
pub use sanitize::{
    SanitizerConfig, SanitizerReport, SanitizerViolation, ViolationKind,
};
pub use session::{SimSession, SimSessionBuilder};
pub use snapshot::{
    bisect_divergence, ByteReader, ClusterSnapshot, ComponentDiff, CoreState, DivergenceReport,
    Fnv, SnapshotError, StateSink,
};
pub use stats::{ClusterStats, FaultStats, LatencyStats};
pub use tile::ProgramImage;

use mempool_snitch::{DataRequest, DataResponse, Fetch};

/// Word-granular access to L1 through the programmer-view (pre-scramble)
/// address space — implemented by both the cycle-accurate [`Cluster`] and
/// the untimed [`FunctionalSim`], so data initialization and verification
/// code runs unchanged against either backend.
pub trait L1Memory {
    /// Reads a word; `None` when `vaddr` lies outside L1.
    fn read_word(&self, vaddr: u32) -> Option<u32>;

    /// Writes a word; `None` when `vaddr` lies outside L1.
    fn write_word(&mut self, vaddr: u32, value: u32) -> Option<()>;

    /// Bulk read of consecutive words. Returns a [`BusError`] naming the
    /// first address that falls outside L1.
    fn read_words(&self, vaddr: u32, len: usize) -> Result<Vec<u32>, BusError> {
        (0..len)
            .map(|i| {
                let addr = vaddr + 4 * i as u32;
                self.read_word(addr).ok_or(BusError { addr })
            })
            .collect()
    }

    /// Bulk write of consecutive words. Returns a [`BusError`] naming the
    /// first address that falls outside L1; words before it are written.
    fn write_words(&mut self, vaddr: u32, values: &[u32]) -> Result<(), BusError> {
        for (i, &v) in values.iter().enumerate() {
            let addr = vaddr + 4 * i as u32;
            self.write_word(addr, v).ok_or(BusError { addr })?;
        }
        Ok(())
    }
}

impl<C: Core> L1Memory for Cluster<C> {
    fn read_word(&self, vaddr: u32) -> Option<u32> {
        Cluster::read_word(self, vaddr)
    }

    fn write_word(&mut self, vaddr: u32, value: u32) -> Option<()> {
        Cluster::write_word(self, vaddr, value)
    }
}

/// A core model pluggable into the [`Cluster`]: the cycle-accurate
/// [`SnitchCore`](mempool_snitch::SnitchCore) for program execution, or a
/// synthetic traffic generator for the network analysis of §V-A/§V-B.
///
/// `Send` is a supertrait so the tile-parallel engine
/// ([`Cluster::set_workers`]) can step each tile's cores on a worker
/// thread; core models are plain data, so this costs implementors nothing.
pub trait Core: Send {
    /// Delivers a completed memory response (called before [`step`] within
    /// the same cycle, so same-cycle wakeups model 1-cycle local loads).
    ///
    /// [`step`]: Core::step
    fn deliver(&mut self, response: DataResponse);

    /// Advances one cycle. `fetch` resolves an instruction fetch through
    /// the tile's I-cache (traffic generators simply ignore it);
    /// `request_ready` is the data-port backpressure signal. At most one
    /// request may be issued per cycle, and only when `request_ready`.
    fn step(
        &mut self,
        fetch: &mut dyn FnMut(u32) -> Fetch,
        request_ready: bool,
    ) -> Option<DataRequest>;

    /// Whether this core has finished its work (halted / exhausted its
    /// workload). [`Cluster::run`] completes when all cores are done and
    /// the network has drained.
    fn done(&self) -> bool;

    /// Kills the core after it issued an unserviceable request (e.g. an
    /// address outside L1). The default does nothing; core models that can
    /// halt should do so.
    fn fault(&mut self) {}

    /// Injected fault: the core retires its current instruction without
    /// executing it (a spurious retire). The default does nothing; traffic
    /// generators have no program counter to skip.
    fn spurious_retire(&mut self) {}

    /// The core's observability counters as `(name, value)` pairs — the
    /// `cluster/tile{t}/core{c}` scope of the metrics registry. The default
    /// reports nothing; core models with performance counters should
    /// return them in a stable declaration order.
    fn metric_counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Turns on this core's execution profile (per-PC / per-region cycle
    /// attribution), tracking at most `max_pcs` distinct pairs. The default
    /// does nothing; core models without a program counter have nothing to
    /// profile.
    fn enable_profile(&mut self, _max_pcs: usize) {}

    /// The core's execution profile, when one is enabled. The default
    /// reports none.
    fn core_profile(&self) -> Option<&mempool_snitch::CoreProfile> {
        None
    }
}

impl Core for mempool_snitch::SnitchCore {
    fn deliver(&mut self, response: DataResponse) {
        mempool_snitch::SnitchCore::deliver(self, response);
    }

    fn step(
        &mut self,
        fetch: &mut dyn FnMut(u32) -> Fetch,
        request_ready: bool,
    ) -> Option<DataRequest> {
        let f = if self.needs_fetch() {
            fetch(self.pc())
        } else {
            Fetch::Stall
        };
        mempool_snitch::SnitchCore::step(self, f, request_ready)
    }

    fn done(&self) -> bool {
        self.halted()
    }

    fn fault(&mut self) {
        self.force_fault();
    }

    fn spurious_retire(&mut self) {
        self.skip_instruction();
    }

    fn metric_counters(&self) -> Vec<(&'static str, u64)> {
        self.stats().counters().to_vec()
    }

    fn enable_profile(&mut self, max_pcs: usize) {
        mempool_snitch::SnitchCore::enable_profile(self, max_pcs);
    }

    fn core_profile(&self) -> Option<&mempool_snitch::CoreProfile> {
        self.profile()
    }
}
