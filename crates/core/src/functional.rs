//! A functional (untimed) reference simulator of the whole cluster.
//!
//! [`FunctionalSim`] executes the same programs as the cycle-accurate
//! [`Cluster`](crate::Cluster) — same ISA, same hybrid address map, same
//! shared-L1 semantics — but with zero timing: one instruction per live
//! core per round-robin step, memory served instantly and sequentially
//! consistent. Use it for fast golden runs, kernel bring-up, and as a
//! differential target for the timed model.

use crate::tile::ProgramImage;
use crate::{ClusterConfig, L1Memory, ValidateConfigError};
use mempool_mem::{AddressMap, Scrambler};
use mempool_riscv::{csr, CsrOp, Instr, Reg};
use mempool_snitch::semantics;
use std::fmt;

/// Error returned by [`FunctionalSim::run`] when cores do not halt within
/// the step budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalTimeoutError {
    budget: u64,
}

impl fmt::Display for FunctionalTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program did not halt within {} functional steps", self.budget)
    }
}

impl std::error::Error for FunctionalTimeoutError {}

#[derive(Debug, Clone)]
struct FuncCore {
    pc: u32,
    regs: [u32; 32],
    halted: bool,
    faulted: bool,
    mscratch: u32,
    instret: u64,
}

impl FuncCore {
    fn new() -> Self {
        FuncCore {
            pc: 0,
            regs: [0; 32],
            halted: false,
            faulted: false,
            mscratch: 0,
            instret: 0,
        }
    }
}

/// The untimed whole-cluster interpreter.
///
/// # Examples
///
/// ```
/// use mempool::{ClusterConfig, FunctionalSim, L1Memory, Topology};
/// use mempool_riscv::assemble;
///
/// let program = assemble(
///     "li a0, 0x8000\nli a1, 1\namoadd.w a2, a1, (a0)\necall\n",
/// )?;
/// let mut sim = FunctionalSim::new(ClusterConfig::small(Topology::TopH))?;
/// sim.load_program(&program)?;
/// sim.run(1_000_000)?;
/// assert_eq!(sim.read_word(0x8000), Some(64)); // 64 cores
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct FunctionalSim {
    config: ClusterConfig,
    map: AddressMap,
    scrambler: Option<Scrambler>,
    /// Flat physical L1, word-addressed.
    mem: Vec<u32>,
    /// LR reservations: per core, the physical word address reserved.
    reservations: Vec<Option<u32>>,
    cores: Vec<FuncCore>,
    image: ProgramImage,
    steps: u64,
}

impl FunctionalSim {
    /// Builds the functional simulator for a configuration (topology is
    /// irrelevant to results and ignored by the model).
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateConfigError`] on inconsistent geometry.
    pub fn new(config: ClusterConfig) -> Result<Self, ValidateConfigError> {
        config.validate()?;
        let map = config.address_map()?;
        Ok(FunctionalSim {
            map,
            scrambler: config.scrambler()?,
            mem: vec![0; (map.size_bytes() / 4) as usize],
            reservations: vec![None; config.num_cores()],
            cores: (0..config.num_cores()).map(|_| FuncCore::new()).collect(),
            image: ProgramImage::default(),
            steps: 0,
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Instructions retired in total.
    pub fn instret(&self) -> u64 {
        self.cores.iter().map(|c| c.instret).sum()
    }

    /// Round-robin steps executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether any core halted with a fault.
    pub fn any_faulted(&self) -> bool {
        self.cores.iter().any(|c| c.faulted)
    }

    /// Reads an architectural register of a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn reg(&self, core: usize, reg: Reg) -> u32 {
        self.cores[core].regs[reg.index() as usize]
    }

    /// Loads (pre-decodes) a program.
    ///
    /// # Errors
    ///
    /// Returns the first decode error.
    pub fn load_program(
        &mut self,
        program: &mempool_riscv::Program,
    ) -> Result<(), mempool_riscv::DecodeError> {
        self.image = ProgramImage::from_program(program)?;
        Ok(())
    }

    /// Physical word index of a programmer-view address, or `None` when
    /// out of L1.
    fn phys_word(&self, vaddr: u32) -> Option<usize> {
        let phys = self.scrambler.map_or(vaddr, |s| s.scramble(vaddr));
        if u64::from(phys) >= self.map.size_bytes() {
            return None;
        }
        Some((phys / 4) as usize)
    }

    /// Runs until every core halts, interleaving one instruction per live
    /// core per round. Returns the number of rounds executed.
    ///
    /// # Errors
    ///
    /// Returns [`FunctionalTimeoutError`] when the budget expires first.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, FunctionalTimeoutError> {
        let start = self.steps;
        while self.cores.iter().any(|c| !c.halted) {
            if self.steps - start >= max_steps {
                return Err(FunctionalTimeoutError { budget: max_steps });
            }
            self.steps += 1;
            for core in 0..self.cores.len() {
                if !self.cores[core].halted {
                    self.step_core(core);
                }
            }
        }
        Ok(self.steps - start)
    }

    fn step_core(&mut self, core: usize) {
        let pc = self.cores[core].pc;
        let Some(instr) = self.image.at(pc) else {
            self.cores[core].halted = true;
            self.cores[core].faulted = true;
            return;
        };
        let r = |c: &FuncCore, reg: Reg| c.regs[reg.index() as usize];
        let mut next_pc = pc.wrapping_add(4);
        // Split borrows: copy the core state out, write back after.
        let mut c = self.cores[core].clone();
        match instr {
            Instr::Lui { rd, imm } => write(&mut c, rd, imm),
            Instr::Auipc { rd, imm } => write(&mut c, rd, pc.wrapping_add(imm)),
            Instr::Jal { rd, offset } => {
                write(&mut c, rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(offset as u32);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = r(&c, rs1).wrapping_add(offset as u32) & !1;
                write(&mut c, rd, pc.wrapping_add(4));
                next_pc = target;
            }
            Instr::Branch { op, rs1, rs2, offset } => {
                if op.taken(r(&c, rs1), r(&c, rs2)) {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let v = semantics::alu(op, r(&c, rs1), imm as u32);
                write(&mut c, rd, v);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let v = semantics::alu(op, r(&c, rs1), r(&c, rs2));
                write(&mut c, rd, v);
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                let v = semantics::muldiv(op, r(&c, rs1), r(&c, rs2));
                write(&mut c, rd, v);
            }
            Instr::Load { op, rd, rs1, offset } => {
                let addr = r(&c, rs1).wrapping_add(offset as u32);
                match self.phys_word(addr) {
                    Some(w) => {
                        let v = op.extract(self.mem[w], addr & 3);
                        write(&mut c, rd, v);
                    }
                    None => fault(&mut c),
                }
            }
            Instr::Store { op, rs2, rs1, offset } => {
                let addr = r(&c, rs1).wrapping_add(offset as u32);
                match self.phys_word(addr) {
                    Some(w) => {
                        self.mem[w] = op.merge(self.mem[w], r(&c, rs2), addr & 3);
                        self.invalidate_reservations(w as u32, None);
                    }
                    None => fault(&mut c),
                }
            }
            Instr::Amo { op, rd, rs1, rs2 } => {
                let addr = r(&c, rs1);
                match self.phys_word(addr) {
                    Some(w) => {
                        let old = self.mem[w];
                        self.mem[w] = op.apply(old, r(&c, rs2));
                        self.invalidate_reservations(w as u32, None);
                        write(&mut c, rd, old);
                    }
                    None => fault(&mut c),
                }
            }
            Instr::LrW { rd, rs1 } => {
                let addr = r(&c, rs1);
                match self.phys_word(addr) {
                    Some(w) => {
                        self.reservations[core] = Some(w as u32);
                        let v = self.mem[w];
                        write(&mut c, rd, v);
                    }
                    None => fault(&mut c),
                }
            }
            Instr::ScW { rd, rs1, rs2 } => {
                let addr = r(&c, rs1);
                match self.phys_word(addr) {
                    Some(w) => {
                        if self.reservations[core] == Some(w as u32) {
                            self.mem[w] = r(&c, rs2);
                            self.invalidate_reservations(w as u32, Some(core));
                            self.reservations[core] = None;
                            write(&mut c, rd, 0);
                        } else {
                            write(&mut c, rd, 1);
                        }
                    }
                    None => fault(&mut c),
                }
            }
            Instr::Csr { op, rd, rs1, csr: addr } => {
                let old = self.read_csr(&c, core, addr);
                let src = r(&c, rs1);
                apply_csr(&mut c, op, addr, src, rs1.is_zero());
                write(&mut c, rd, old);
            }
            Instr::CsrImm { op, rd, imm, csr: addr } => {
                let old = self.read_csr(&c, core, addr);
                apply_csr(&mut c, op, addr, u32::from(imm), imm == 0);
                write(&mut c, rd, old);
            }
            Instr::Fence | Instr::FenceI => {}
            Instr::Ecall | Instr::Ebreak | Instr::Wfi => c.halted = true,
        }
        c.instret += 1;
        if !c.halted {
            c.pc = next_pc;
        }
        self.cores[core] = c;
    }

    fn read_csr(&self, c: &FuncCore, core: usize, addr: u16) -> u32 {
        match addr {
            csr::MHARTID => core as u32,
            csr::MCYCLE => self.steps as u32,
            csr::MCYCLEH => (self.steps >> 32) as u32,
            csr::MINSTRET => c.instret as u32,
            csr::MINSTRETH => (c.instret >> 32) as u32,
            csr::MSCRATCH => c.mscratch,
            _ => 0,
        }
    }

    fn invalidate_reservations(&mut self, word: u32, keep: Option<usize>) {
        for (i, res) in self.reservations.iter_mut().enumerate() {
            if *res == Some(word) && keep != Some(i) {
                *res = None;
            }
        }
    }
}

fn write(c: &mut FuncCore, rd: Reg, value: u32) {
    if !rd.is_zero() {
        c.regs[rd.index() as usize] = value;
    }
}

fn fault(c: &mut FuncCore) {
    c.halted = true;
    c.faulted = true;
}

fn apply_csr(c: &mut FuncCore, op: CsrOp, addr: u16, src: u32, src_is_zero: bool) {
    if addr != csr::MSCRATCH {
        return;
    }
    match op {
        CsrOp::Rw => c.mscratch = src,
        CsrOp::Rs if !src_is_zero => c.mscratch |= src,
        CsrOp::Rc if !src_is_zero => c.mscratch &= !src,
        _ => {}
    }
}

impl L1Memory for FunctionalSim {
    fn read_word(&self, vaddr: u32) -> Option<u32> {
        self.phys_word(vaddr).map(|w| self.mem[w])
    }

    fn write_word(&mut self, vaddr: u32, value: u32) -> Option<()> {
        let w = self.phys_word(vaddr)?;
        self.mem[w] = value;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;
    use mempool_riscv::assemble;

    fn sim() -> FunctionalSim {
        FunctionalSim::new(ClusterConfig::small(Topology::TopH)).unwrap()
    }

    #[test]
    fn hartid_and_arithmetic() {
        let program = assemble("csrr t0, mhartid\nmul a0, t0, t0\necall\n").unwrap();
        let mut s = sim();
        s.load_program(&program).unwrap();
        s.run(10_000).unwrap();
        assert_eq!(s.reg(5, Reg::A0), 25);
        assert_eq!(s.reg(63, Reg::A0), 63 * 63);
        assert!(!s.any_faulted());
    }

    #[test]
    fn amo_reduction_matches_closed_form() {
        let program =
            assemble("li t0, 0x8000\ncsrr t1, mhartid\namoadd.w zero, t1, (t0)\necall\n").unwrap();
        let mut s = sim();
        s.load_program(&program).unwrap();
        s.run(10_000).unwrap();
        assert_eq!(s.read_word(0x8000), Some(64 * 63 / 2));
    }

    #[test]
    fn spin_barrier_terminates_under_round_robin() {
        // A counting barrier with a spin loop must make progress because
        // every live core steps each round.
        let program = assemble(
            "li t0, 0x8000\nli t1, 1\namoadd.w zero, t1, (t0)\n\
             spin: lw t2, (t0)\nli t3, 64\nblt t2, t3, spin\necall\n",
        )
        .unwrap();
        let mut s = sim();
        s.load_program(&program).unwrap();
        s.run(100_000).unwrap();
        assert_eq!(s.read_word(0x8000), Some(64));
    }

    #[test]
    fn lr_sc_contention_is_serializable() {
        // Every core increments via LR/SC retry loops.
        let program = assemble(
            "li t0, 0x8000\n\
             retry: lr.w t1, (t0)\naddi t1, t1, 1\nsc.w t2, t1, (t0)\nbnez t2, retry\necall\n",
        )
        .unwrap();
        let mut s = sim();
        s.load_program(&program).unwrap();
        s.run(1_000_000).unwrap();
        assert_eq!(s.read_word(0x8000), Some(64));
    }

    #[test]
    fn out_of_range_access_faults() {
        let program = assemble("li t0, 0x7f000000\nlw a0, (t0)\necall\n").unwrap();
        let mut s = sim();
        s.load_program(&program).unwrap();
        s.run(10_000).unwrap();
        assert!(s.any_faulted());
    }

    #[test]
    fn memory_trait_round_trips_via_scrambler() {
        let mut s = sim();
        s.write_word(0x123 * 4, 77).unwrap();
        assert_eq!(s.read_word(0x123 * 4), Some(77));
        assert_eq!(s.read_word(0xffff_fff0), None);
    }
}
