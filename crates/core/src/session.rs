//! The [`SimSession`] front door: one builder that owns every run-scoped
//! concern — topology, fault plan, parallelism, checkpointing, and
//! observability — so callers configure a simulation in one place instead
//! of mutating a freshly built [`Cluster`] through a zoo of setters.
//!
//! ```
//! use mempool::{ClusterConfig, ObsConfig, SimSession, Topology};
//! use mempool_riscv::assemble;
//!
//! let program = assemble("csrr a0, mhartid\necall\n")?;
//! let mut session = SimSession::builder(ClusterConfig::small(Topology::TopH))
//!     .workers(2)
//!     .observability(ObsConfig::histograms())
//!     .build_snitch()?;
//! session.load_program(&program)?;
//! session.run(10_000)?;
//! let metrics = session.metrics_registry();
//! assert!(metrics.counter("cluster", "cycles")? > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The pre-existing [`Cluster`] mutators (`set_fault_plan`, `set_parallel`,
//! `start_trace`) remain as deprecated shims; new code should either use
//! this builder or the canonical `install_fault_plan` / `set_workers` /
//! `begin_trace` names.

use crate::faults::FaultPlan;
use crate::obs::ObsConfig;
use crate::snapshot::{ClusterSnapshot, CoreState};
use crate::{Cluster, ClusterConfig, Core, CoreLocation, Error, SimError};
use std::path::{Path, PathBuf};

/// Builder for a [`SimSession`]: collects every run-scoped option, then
/// constructs the cluster in one validated step.
#[derive(Debug)]
pub struct SimSessionBuilder {
    config: ClusterConfig,
    fault_plan: Option<FaultPlan>,
    workers: usize,
    observability: Option<ObsConfig>,
    profile: Option<crate::ProfileConfig>,
    memory_trace: bool,
    checkpoint: Option<(u64, PathBuf)>,
    sanitize: Option<crate::SanitizerConfig>,
    max_wall: Option<std::time::Duration>,
}

impl SimSessionBuilder {
    /// Installs a fault-injection plan, active from cycle 0.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Selects the execution engine: `0` (the default) is the serial
    /// engine, `n >= 1` the tile-parallel engine with `n` participating
    /// threads. Bit-identical either way.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Attaches the observability recorder (per-tile latency histograms,
    /// and a sampled timeline when `config` enables it).
    #[must_use]
    pub fn observability(mut self, config: ObsConfig) -> Self {
        self.observability = Some(config);
        self
    }

    /// Attaches the program-level profiler: per-(region, PC) cycle
    /// attribution in every core, and the windowed activity sampler when
    /// `config` enables power windows.
    #[must_use]
    pub fn profile(mut self, config: crate::ProfileConfig) -> Self {
        self.profile = Some(config);
        self
    }

    /// Records every core's memory requests into a
    /// [`MemoryTrace`](crate::MemoryTrace) from the start of the run.
    #[must_use]
    pub fn memory_trace(mut self) -> Self {
        self.memory_trace = true;
        self
    }

    /// Writes a checkpoint to `path` every `every` cycles during
    /// [`SimSession::run`] (atomically; the previous image is replaced).
    /// Requires a checkpointable core model — sessions over cores without
    /// [`CoreState`] ignore this setting.
    #[must_use]
    pub fn checkpoint_every(mut self, every: u64, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some((every.max(1), path.into()));
        self
    }

    /// Attaches the cycle-level invariant sanitizer (request/response
    /// conservation, FIFO ordering, the zero-load latency contract,
    /// buffer bounds, liveness, quarantine consistency). Pure checking:
    /// the sanitizer never enters the state digest.
    #[must_use]
    pub fn sanitize(mut self, config: crate::SanitizerConfig) -> Self {
        self.sanitize = Some(config);
        self
    }

    /// Arms a wall-clock watchdog for [`SimSession::run`]: the run fails
    /// with [`SimError::Cancelled`](crate::SimError::Cancelled) once
    /// `limit` of real time has elapsed.
    #[must_use]
    pub fn max_wall(mut self, limit: std::time::Duration) -> Self {
        self.max_wall = Some(limit);
        self
    }

    /// Builds the session with a Snitch core in every lane.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when the configuration is inconsistent.
    pub fn build_snitch(self) -> Result<SimSession<mempool_snitch::SnitchCore>, Error> {
        let template = self.config.core;
        self.build_with(|loc| {
            mempool_snitch::SnitchCore::new(mempool_snitch::SnitchConfig {
                hartid: loc.core as u32,
                ..template
            })
        })
    }

    /// Builds the session, constructing each core through `factory`.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when the configuration is inconsistent.
    pub fn build_with<C: Core>(
        self,
        factory: impl FnMut(CoreLocation) -> C,
    ) -> Result<SimSession<C>, Error> {
        let mut cluster = Cluster::new(self.config, factory)?;
        cluster.install_fault_plan(self.fault_plan);
        cluster.set_workers(self.workers);
        if let Some(obs) = self.observability {
            cluster.enable_observability(obs);
        }
        if let Some(profile) = self.profile {
            cluster.enable_profiling(profile);
        }
        if self.memory_trace {
            cluster.begin_trace();
        }
        if let Some(san) = self.sanitize {
            cluster.enable_sanitizer(san);
        }
        Ok(SimSession {
            cluster,
            checkpoint: self.checkpoint,
            max_wall: self.max_wall,
        })
    }
}

/// A configured simulation: a [`Cluster`] plus the session-scoped policy
/// (periodic checkpointing) the builder collected. Dereference-style access
/// to the cluster is explicit — [`cluster`](SimSession::cluster) /
/// [`cluster_mut`](SimSession::cluster_mut) — so it stays obvious which
/// calls touch architectural state.
pub struct SimSession<C> {
    cluster: Cluster<C>,
    checkpoint: Option<(u64, PathBuf)>,
    max_wall: Option<std::time::Duration>,
}

impl SimSession<mempool_snitch::SnitchCore> {
    /// Starts a builder over `config`.
    pub fn builder(config: ClusterConfig) -> SimSessionBuilder {
        SimSessionBuilder {
            config,
            fault_plan: None,
            workers: 0,
            observability: None,
            profile: None,
            memory_trace: false,
            checkpoint: None,
            sanitize: None,
            max_wall: None,
        }
    }
}

impl<C: Core> SimSession<C> {
    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster<C> {
        &self.cluster
    }

    /// Mutable access to the underlying cluster.
    pub fn cluster_mut(&mut self) -> &mut Cluster<C> {
        &mut self.cluster
    }

    /// Unwraps the session into its cluster.
    pub fn into_cluster(self) -> Cluster<C> {
        self.cluster
    }

    /// Loads (pre-decodes) a program into the shared instruction memory.
    ///
    /// # Errors
    ///
    /// [`Error::Decode`] on the first malformed instruction word.
    pub fn load_program(&mut self, program: &mempool_riscv::Program) -> Result<(), Error> {
        self.cluster.load_program(program)?;
        Ok(())
    }

    /// The metrics registry snapshot (see
    /// [`Cluster::metrics_registry`]).
    pub fn metrics_registry(&self) -> crate::MetricsRegistry {
        self.cluster.metrics_registry()
    }

    /// The sampled timeline, when observability tracing is enabled.
    pub fn timeline(&self) -> Option<crate::obs::TimelineTrace> {
        self.cluster.timeline()
    }

    /// The folded-stack profile export, when profiling is enabled (see
    /// [`Cluster::profile_folded`]).
    pub fn profile_folded(&self) -> Option<String> {
        self.cluster.profile_folded()
    }

    /// The power-sampling window series, when profiling is enabled (see
    /// [`Cluster::power_windows`]).
    pub fn power_windows(&self) -> Option<Vec<crate::PowerWindow>> {
        self.cluster.power_windows()
    }
}

impl<C: Core + CoreState> SimSession<C> {
    /// Runs to completion within `max_cycles`, writing periodic
    /// checkpoints when the builder configured them.
    ///
    /// Returns the number of cycles executed by this call.
    ///
    /// # Errors
    ///
    /// [`Error::Sim`] on timeout or deadlock, [`Error::Io`] when a
    /// checkpoint fails to write.
    pub fn run(&mut self, max_cycles: u64) -> Result<u64, Error> {
        if let Some(limit) = self.max_wall {
            // The deadline is armed at run start, not at build time, so a
            // session configured long before it runs gets the full budget.
            self.cluster
                .set_cancel_token(Some(crate::CancelToken::new().with_wall_limit(limit)));
        }
        let Some((every, path)) = self.checkpoint.clone() else {
            return Ok(self.cluster.run(max_cycles)?);
        };
        let start = self.cluster.now();
        let mut remaining = max_cycles;
        loop {
            let chunk = every.min(remaining);
            match self.cluster.run(chunk) {
                Ok(_) => {
                    self.cluster.snapshot().write_file(&path)?;
                    return Ok(self.cluster.now() - start);
                }
                Err(SimError::Timeout(_)) if remaining > chunk => {
                    remaining -= chunk;
                    self.cluster.snapshot().write_file(&path)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Captures a checkpoint of the current state.
    pub fn snapshot(&self) -> ClusterSnapshot {
        self.cluster.snapshot()
    }

    /// The canonical digest over all architectural (and digest-covered
    /// micro-architectural) state — the oracle park/resume equality is
    /// verified against.
    pub fn state_digest(&self) -> u64 {
        self.cluster.state_digest()
    }

    /// The current simulation cycle.
    pub fn now(&self) -> u64 {
        self.cluster.now()
    }

    /// Parks the session: atomically writes a full snapshot to `path`
    /// (temp-file + rename, same contract as periodic checkpoints), so a
    /// different process — or a restarted daemon — can [`unpark`]
    /// (SimSession::unpark) it and continue bit-identically. The running
    /// session is not consumed; parking is a safe point, not a shutdown.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the snapshot fails to write.
    pub fn park(&self, path: &Path) -> Result<(), Error> {
        self.cluster.snapshot().write_file(path)?;
        Ok(())
    }

    /// Resumes a previously parked session from the snapshot at `path`.
    /// The session must have been built over the identical configuration
    /// and program; the snapshot's self-validation enforces it.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the file cannot be read, [`Error::Snapshot`]
    /// when it fails validation or belongs to a different configuration.
    pub fn unpark(&mut self, path: &Path) -> Result<(), Error> {
        let snap = ClusterSnapshot::read_file(path).map_err(Error::Io)?;
        self.restore(&snap)
    }

    /// Restores a previously captured checkpoint.
    ///
    /// # Errors
    ///
    /// [`Error::Snapshot`] when the snapshot belongs to a different
    /// configuration or program, or is structurally invalid.
    pub fn restore(&mut self, snap: &ClusterSnapshot) -> Result<(), Error> {
        self.cluster.restore(snap)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsConfig, Topology};

    fn program() -> mempool_riscv::Program {
        mempool_riscv::assemble(
            "li a0, 0x8000\n\
             li a1, 1\n\
             amoadd.w a2, a1, (a0)\n\
             fence\n\
             ecall\n",
        )
        .expect("valid program")
    }

    #[test]
    fn builder_matches_manual_cluster_setup() {
        let config = ClusterConfig::small(Topology::TopH);
        let mut session = SimSession::builder(config)
            .workers(2)
            .observability(ObsConfig::histograms())
            .build_snitch()
            .expect("valid config");
        session.load_program(&program()).expect("loads");
        session.run(100_000).expect("finishes");

        let mut manual = Cluster::snitch(config).expect("valid config");
        manual.enable_observability(ObsConfig::histograms());
        manual.load_program(&program()).expect("loads");
        manual.run(100_000).expect("finishes");

        assert_eq!(session.cluster().parallelism(), 2);
        assert_eq!(
            session.cluster().state_digest(),
            manual.state_digest(),
            "builder-configured parallel run must be bit-identical to a \
             manually configured serial run"
        );
        assert_eq!(
            session.metrics_registry().to_json(),
            manual.metrics_registry().to_json()
        );
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!(
            "mempool-session-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ckpt.mpsn");

        let config = ClusterConfig::small(Topology::Top4);
        let mut session = SimSession::builder(config)
            .observability(ObsConfig::with_trace(4))
            .checkpoint_every(50, &path)
            .build_snitch()
            .expect("valid config");
        session.load_program(&program()).expect("loads");
        session.run(100_000).expect("finishes");
        let final_digest = session.cluster().state_digest();

        // The final checkpoint written by run() restores to the end state.
        let snap = ClusterSnapshot::read_file(&path).expect("checkpoint written");
        let mut resumed = SimSession::builder(config)
            .build_snitch()
            .expect("valid config");
        resumed.load_program(&program()).expect("loads");
        resumed.restore(&snap).expect("restores");
        assert_eq!(resumed.cluster().state_digest(), final_digest);
        assert_eq!(
            resumed.metrics_registry().to_json(),
            session.metrics_registry().to_json(),
            "metrics survive checkpoint/restore byte-identically"
        );

        std::fs::remove_dir_all(&dir).ok();
    }
}
