//! The three global interconnect topologies of §III-C, plus the ideal
//! crossbar baseline of §V-C.
//!
//! Register placement (the source of the paper's 1/3/5-cycle latencies):
//!
//! * every tile has a register boundary at each **master request port** and
//!   each **master response port**;
//! * `Top1`/`Top4` butterflies have a single pipeline register row midway
//!   through their layers (when they have at least two layers);
//! * `TopH` has an additional register boundary at each local group's
//!   master interface (the `boundary_*` rows), crossed only by inter-group
//!   traffic;
//! * slave request ports and outbound response ports carry 1-deep wire
//!   latches (the "optional elastic buffer at each switch output" of the
//!   paper) so a blocked packet retries without re-crossing the fabric.

use crate::tile::{BankGate, Tile};
use crate::{ClusterConfig, Request, Response, Topology};
use mempool_mem::AddressMap;
use mempool_noc::{ElasticBuffer, Fabric, Offer, RoundRobin};

/// Direction indices for TopH ports: L is port 0, then N/NE/E.
const DIR_PARTNER_XOR: [usize; 3] = [2, 3, 1]; // N, NE, E

/// A borrowed interconnect register stage, handed to the fault injector.
///
/// Request stages only ever suffer stalls and drops — their routing fields
/// are validated at issue and re-checked (`expect`) at every switch, so
/// corrupting them would crash the router rather than model a data fault.
/// Response stages additionally allow payload corruption.
pub(crate) enum LinkRef<'a> {
    /// A request-carrying register stage.
    Req(&'a mut ElasticBuffer<Request>),
    /// A response-carrying register stage.
    Resp(&'a mut ElasticBuffer<Response>),
}

/// Observability counters of one interconnect register stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LinkStatView {
    /// Items currently held (stored + staged).
    pub occupancy: u64,
    /// Lifetime accepted pushes.
    pub pushes: u64,
    /// Whether this stage carries requests (`false`: responses).
    pub is_req: bool,
}

pub(crate) enum Net {
    Ideal(IdealNet),
    Global(GlobalNet),
    Hier(HierNet),
}

impl Net {
    pub fn new(config: &ClusterConfig) -> Net {
        match config.topology {
            Topology::Ideal => Net::Ideal(IdealNet::new(config)),
            Topology::Top1 => Net::Global(GlobalNet::new(config, 1, true)),
            Topology::Top4 => Net::Global(GlobalNet::new(config, config.cores_per_tile, false)),
            Topology::TopH => Net::Hier(HierNet::new(config)),
        }
    }

    /// The tile response-crossbar output port (0-based among the K remote
    /// ports) a remote response leaves through.
    pub fn resp_port_for(&self, tile: usize, resp: &Response, cores_per_tile: usize) -> usize {
        match self {
            Net::Ideal(_) => 0,
            Net::Global(g) => {
                if g.concentrate {
                    0
                } else {
                    resp.core as usize % cores_per_tile
                }
            }
            Net::Hier(h) => h.port_for(tile, resp.core as usize / cores_per_tile),
        }
    }

    pub fn deliver_master_resp(&mut self, tiles: &mut [Tile], deliveries: &mut Vec<Response>) {
        match self {
            Net::Ideal(n) => n.deliver(tiles, deliveries),
            Net::Global(n) => n.deliver(deliveries),
            Net::Hier(n) => n.deliver(deliveries),
        }
    }

    pub fn route_responses(&mut self, tiles: &mut [Tile], cores_per_tile: usize) {
        match self {
            Net::Ideal(_) => {}
            Net::Global(n) => n.route_responses(tiles, cores_per_tile),
            Net::Hier(n) => n.route_responses(tiles, cores_per_tile),
        }
    }

    pub fn route_longhaul_requests(&mut self, tiles: &mut [Tile], map: &AddressMap) {
        match self {
            Net::Ideal(_) => {}
            Net::Global(n) => n.route_longhaul(tiles, map),
            Net::Hier(n) => n.route_longhaul(tiles, map),
        }
    }

    pub fn route_port_requests(&mut self, latches: &mut [Option<Request>], map: &AddressMap) {
        match self {
            Net::Ideal(_) => {}
            Net::Global(n) => n.route_ports(latches, map),
            Net::Hier(n) => n.route_ports(latches, map),
        }
    }

    pub fn commit(&mut self) {
        match self {
            Net::Ideal(_) => {}
            Net::Global(n) => n.commit(),
            Net::Hier(n) => n.commit(),
        }
    }

    /// Visits every register stage of the global interconnect with a stable
    /// link id (construction order), so a seeded fault plan addresses the
    /// same physical register every run. The ideal network has no registers
    /// and is never visited.
    pub fn for_each_link(&mut self, f: &mut dyn FnMut(u64, LinkRef<'_>)) {
        let mut id = 0u64;
        match self {
            Net::Ideal(_) => {}
            Net::Global(n) => {
                for reg in &mut n.master_req {
                    f(id, LinkRef::Req(reg));
                    id += 1;
                }
                for reg in &mut n.master_resp {
                    f(id, LinkRef::Resp(reg));
                    id += 1;
                }
                for port in &mut n.mid_req {
                    for reg in port {
                        f(id, LinkRef::Req(reg));
                        id += 1;
                    }
                }
                for port in &mut n.mid_resp {
                    for reg in port {
                        f(id, LinkRef::Resp(reg));
                        id += 1;
                    }
                }
            }
            Net::Hier(n) => {
                for reg in &mut n.master_req {
                    f(id, LinkRef::Req(reg));
                    id += 1;
                }
                for reg in &mut n.master_resp {
                    f(id, LinkRef::Resp(reg));
                    id += 1;
                }
                for reg in &mut n.boundary_req {
                    f(id, LinkRef::Req(reg));
                    id += 1;
                }
                for reg in &mut n.boundary_resp {
                    f(id, LinkRef::Resp(reg));
                    id += 1;
                }
            }
        }
    }

    /// Visits every register stage immutably with its stable link id (the
    /// same ids as [`for_each_link`](Net::for_each_link)) and the
    /// observability counters of that stage. Used to build the
    /// `cluster/link{id}` scopes of the metrics registry.
    pub fn for_each_link_stats(&self, f: &mut dyn FnMut(u64, LinkStatView)) {
        fn req<T>(b: &ElasticBuffer<T>) -> LinkStatView {
            LinkStatView {
                occupancy: b.len() as u64,
                pushes: b.pushes(),
                is_req: true,
            }
        }
        fn resp<T>(b: &ElasticBuffer<T>) -> LinkStatView {
            LinkStatView {
                occupancy: b.len() as u64,
                pushes: b.pushes(),
                is_req: false,
            }
        }
        let mut id = 0u64;
        match self {
            Net::Ideal(_) => {}
            Net::Global(n) => {
                for reg in &n.master_req {
                    f(id, req(reg));
                    id += 1;
                }
                for reg in &n.master_resp {
                    f(id, resp(reg));
                    id += 1;
                }
                for port in &n.mid_req {
                    for reg in port {
                        f(id, req(reg));
                        id += 1;
                    }
                }
                for port in &n.mid_resp {
                    for reg in port {
                        f(id, resp(reg));
                        id += 1;
                    }
                }
            }
            Net::Hier(n) => {
                for reg in &n.master_req {
                    f(id, req(reg));
                    id += 1;
                }
                for reg in &n.master_resp {
                    f(id, resp(reg));
                    id += 1;
                }
                for reg in &n.boundary_req {
                    f(id, req(reg));
                    id += 1;
                }
                for reg in &n.boundary_resp {
                    f(id, resp(reg));
                    id += 1;
                }
            }
        }
    }

    /// (occupied, total) register slots across the global interconnect —
    /// the buffer-occupancy congestion metric.
    pub fn occupancy(&self) -> (u64, u64) {
        fn count<T>(regs: &[ElasticBuffer<T>]) -> (u64, u64) {
            let occupied = regs.iter().map(|r| r.len() as u64).sum();
            let total = regs.iter().map(|r| r.capacity() as u64).sum();
            (occupied, total)
        }
        match self {
            Net::Ideal(_) => (0, 0),
            Net::Global(n) => {
                let mut acc = count(&n.master_req);
                let r = count(&n.master_resp);
                acc = (acc.0 + r.0, acc.1 + r.1);
                for port in &n.mid_req {
                    let m = count(port);
                    acc = (acc.0 + m.0, acc.1 + m.1);
                }
                for port in &n.mid_resp {
                    let m = count(port);
                    acc = (acc.0 + m.0, acc.1 + m.1);
                }
                acc
            }
            Net::Hier(n) => {
                let mut acc = count(&n.master_req);
                for part in [
                    count(&n.master_resp),
                    count(&n.boundary_req),
                    count(&n.boundary_resp),
                ] {
                    acc = (acc.0 + part.0, acc.1 + part.1);
                }
                acc
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Ideal full crossbar (baseline).
// ---------------------------------------------------------------------------

/// The §V-C baseline: all banks reachable in one cycle, no routing
/// conflicts; only bank conflicts serialize (round-robin per bank).
pub(crate) struct IdealNet {
    /// One arbiter per global bank, over all cores.
    pub(crate) rr: Vec<RoundRobin>,
    banks_per_tile: usize,
}

impl IdealNet {
    fn new(config: &ClusterConfig) -> Self {
        IdealNet {
            rr: (0..config.num_banks())
                .map(|_| RoundRobin::new(config.num_cores()))
                .collect(),
            banks_per_tile: config.banks_per_tile,
        }
    }

    /// Resolves all core latches directly against the banks.
    ///
    /// `gate` is the fault-injection view of each (tile, bank) this cycle;
    /// requests granted to a dead bank are discarded and counted in
    /// `dropped`.
    pub fn route_requests(
        &mut self,
        latches: &mut [Option<Request>],
        tiles: &mut [Tile],
        map: &AddressMap,
        tile_accesses: &mut [u64],
        gate: &dyn Fn(usize, u32) -> BankGate,
        dropped: &mut u64,
    ) -> u64 {
        // Bucket contenders per global bank.
        let mut contenders: Vec<(usize, usize)> = Vec::new(); // (bank, core)
        for (core, latch) in latches.iter().enumerate() {
            if let Some(req) = latch {
                let at = map.decode(req.addr).expect("validated at issue");
                let bank = at.tile as usize * self.banks_per_tile + at.bank as usize;
                contenders.push((bank, core));
            }
        }
        contenders.sort_unstable();
        let mut accesses = 0;
        let mut i = 0;
        while i < contenders.len() {
            let bank = contenders[i].0;
            let mut j = i;
            while j < contenders.len() && contenders[j].0 == bank {
                j += 1;
            }
            let tile = bank / self.banks_per_tile;
            let bank_in_tile = bank % self.banks_per_tile;
            match gate(tile, bank_in_tile as u32) {
                BankGate::Stalled => {}
                BankGate::Dead => {
                    let cores: Vec<usize> = contenders[i..j].iter().map(|&(_, c)| c).collect();
                    let winner = self.rr[bank].grant(&cores).expect("nonempty");
                    latches[winner].take().expect("contender had a request");
                    *dropped += 1;
                }
                BankGate::Ready => {
                    if tiles[tile].bank_resp[bank_in_tile].can_push() {
                        let cores: Vec<usize> =
                            contenders[i..j].iter().map(|&(_, c)| c).collect();
                        let winner = self.rr[bank].grant(&cores).expect("nonempty");
                        let req = latches[winner].take().expect("contender had a request");
                        let at = map.decode(req.addr).expect("validated");
                        let resp = crate::tile::ideal_bank_access(&mut tiles[tile], &req, at);
                        tiles[tile].bank_resp[bank_in_tile].push(resp);
                        tile_accesses[tile] += 1;
                        accesses += 1;
                    }
                }
            }
            i = j;
        }
        accesses
    }

    fn deliver(&mut self, tiles: &mut [Tile], deliveries: &mut Vec<Response>) {
        for tile in tiles {
            for reg in &mut tile.bank_resp {
                if let Some(resp) = reg.pop() {
                    deliveries.push(resp);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Top1 / Top4: one or four global radix-4 butterflies.
// ---------------------------------------------------------------------------

pub(crate) struct GlobalNet {
    num_tiles: usize,
    cores_per_tile: usize,
    ports: usize,
    /// Top1 concentrates the tile's cores onto one port.
    concentrate: bool,
    pub(crate) rr_concentrator: Vec<RoundRobin>,
    /// `[tile * ports + p]`.
    pub(crate) master_req: Vec<ElasticBuffer<Request>>,
    pub(crate) master_resp: Vec<ElasticBuffer<Response>>,
    /// Per port: request butterfly segment A (or the whole network when it
    /// has a single layer).
    pub(crate) req_a: Vec<Fabric>,
    pub(crate) req_b: Vec<Fabric>,
    /// `[port][row]` mid-stage pipeline registers (empty when unsplit).
    pub(crate) mid_req: Vec<Vec<ElasticBuffer<Request>>>,
    pub(crate) resp_a: Vec<Fabric>,
    pub(crate) resp_b: Vec<Fabric>,
    pub(crate) mid_resp: Vec<Vec<ElasticBuffer<Response>>>,
    split: bool,
}

fn butterfly_layer_count(ports: usize, radix: usize) -> usize {
    let mut n = ports;
    let mut k = 0;
    while n > 1 {
        n /= radix;
        k += 1;
    }
    k
}

impl GlobalNet {
    fn new(config: &ClusterConfig, ports: usize, concentrate: bool) -> Self {
        let n = config.num_tiles;
        let k = butterfly_layer_count(n, config.radix);
        let split = k >= 2;
        let mid = k.div_ceil(2);
        let mut req_a = Vec::new();
        let mut req_b = Vec::new();
        let mut resp_a = Vec::new();
        let mut resp_b = Vec::new();
        let mut mid_req = Vec::new();
        let mut mid_resp = Vec::new();
        for _ in 0..ports {
            if split {
                req_a.push(Fabric::butterfly_segment(n, config.radix, 0, mid).expect("validated"));
                req_b.push(Fabric::butterfly_segment(n, config.radix, mid, k).expect("validated"));
                resp_a.push(Fabric::butterfly_segment(n, config.radix, 0, mid).expect("validated"));
                resp_b.push(Fabric::butterfly_segment(n, config.radix, mid, k).expect("validated"));
                mid_req.push((0..n).map(|_| ElasticBuffer::new(2)).collect());
                mid_resp.push((0..n).map(|_| ElasticBuffer::new(2)).collect());
            } else {
                req_a.push(Fabric::butterfly(n, config.radix).expect("validated"));
                resp_a.push(Fabric::butterfly(n, config.radix).expect("validated"));
                mid_req.push(Vec::new());
                mid_resp.push(Vec::new());
            }
        }
        GlobalNet {
            num_tiles: n,
            cores_per_tile: config.cores_per_tile,
            ports,
            concentrate,
            rr_concentrator: (0..n).map(|_| RoundRobin::new(config.cores_per_tile)).collect(),
            master_req: (0..n * ports).map(|_| ElasticBuffer::new(2)).collect(),
            master_resp: (0..n * ports).map(|_| ElasticBuffer::new(2)).collect(),
            req_a,
            req_b,
            mid_req,
            resp_a,
            resp_b,
            mid_resp,
            split,
        }
    }

    fn route_longhaul(&mut self, tiles: &mut [Tile], map: &AddressMap) {
        for p in 0..self.ports {
            if self.split {
                // Segment B: mid registers -> destination tile slave latches.
                let mut offers = Vec::new();
                let mut rows = Vec::new();
                for (row, reg) in self.mid_req[p].iter().enumerate() {
                    if let Some(req) = reg.head() {
                        let at = map.decode(req.addr).expect("validated");
                        offers.push(Offer {
                            input: row,
                            dest: at.tile as usize,
                        });
                        rows.push(row);
                    }
                }
                if !offers.is_empty() {
                    let granted = self.req_b[p]
                        .resolve(&offers, &mut |tile| tiles[tile].slave_req[p].is_none());
                    for (i, &g) in granted.iter().enumerate() {
                        if g {
                            let req = self.mid_req[p][rows[i]].pop().expect("head existed");
                            let at = map.decode(req.addr).expect("validated");
                            tiles[at.tile as usize].slave_req[p] = Some(req);
                        }
                    }
                }
                // Segment A: master request registers -> mid registers.
                let mut offers = Vec::new();
                let mut srcs = Vec::new();
                for tile in 0..self.num_tiles {
                    let reg = &self.master_req[tile * self.ports + p];
                    if let Some(req) = reg.head() {
                        let at = map.decode(req.addr).expect("validated");
                        offers.push(Offer {
                            input: tile,
                            dest: at.tile as usize,
                        });
                        srcs.push(tile);
                    }
                }
                if !offers.is_empty() {
                    let mid = &self.mid_req[p];
                    let granted = self.req_a[p].resolve(&offers, &mut |row| mid[row].can_push());
                    for (i, &g) in granted.iter().enumerate() {
                        if g {
                            let offer = offers[i];
                            let row = self.req_a[p].output_port(offer.input, offer.dest);
                            let req = self.master_req[srcs[i] * self.ports + p]
                                .pop()
                                .expect("head existed");
                            self.mid_req[p][row].push(req);
                        }
                    }
                }
            } else {
                // Single-layer network: master registers -> slave latches.
                let mut offers = Vec::new();
                let mut srcs = Vec::new();
                for tile in 0..self.num_tiles {
                    if let Some(req) = self.master_req[tile * self.ports + p].head() {
                        let at = map.decode(req.addr).expect("validated");
                        offers.push(Offer {
                            input: tile,
                            dest: at.tile as usize,
                        });
                        srcs.push(tile);
                    }
                }
                if !offers.is_empty() {
                    let granted = self.req_a[p]
                        .resolve(&offers, &mut |tile| tiles[tile].slave_req[p].is_none());
                    for (i, &g) in granted.iter().enumerate() {
                        if g {
                            let req = self.master_req[srcs[i] * self.ports + p]
                                .pop()
                                .expect("head existed");
                            let at = map.decode(req.addr).expect("validated");
                            tiles[at.tile as usize].slave_req[p] = Some(req);
                        }
                    }
                }
            }
        }
    }

    fn route_ports(&mut self, latches: &mut [Option<Request>], map: &AddressMap) {
        let cpt = self.cores_per_tile;
        for tile in 0..self.num_tiles {
            if self.concentrate {
                let reg = &mut self.master_req[tile * self.ports];
                if !reg.can_push() {
                    continue;
                }
                let mut lanes = Vec::new();
                for lane in 0..cpt {
                    if let Some(req) = &latches[tile * cpt + lane] {
                        let at = map.decode(req.addr).expect("validated");
                        if at.tile as usize != tile {
                            lanes.push(lane);
                        }
                    }
                }
                if let Some(winner) = self.rr_concentrator[tile].grant(&lanes) {
                    let req = latches[tile * cpt + winner].take().expect("lane had request");
                    reg.push(req);
                }
            } else {
                for lane in 0..cpt {
                    let Some(req) = latches[tile * cpt + lane] else {
                        continue;
                    };
                    let at = map.decode(req.addr).expect("validated");
                    if at.tile as usize == tile {
                        continue;
                    }
                    let reg = &mut self.master_req[tile * self.ports + lane];
                    if reg.can_push() {
                        latches[tile * cpt + lane] = None;
                        reg.push(req);
                    }
                }
            }
        }
    }

    fn route_responses(&mut self, tiles: &mut [Tile], cores_per_tile: usize) {
        for p in 0..self.ports {
            if self.split {
                // Segment B': mid response registers -> master response regs.
                let mut offers = Vec::new();
                let mut rows = Vec::new();
                for (row, reg) in self.mid_resp[p].iter().enumerate() {
                    if let Some(resp) = reg.head() {
                        offers.push(Offer {
                            input: row,
                            dest: resp.core as usize / cores_per_tile,
                        });
                        rows.push(row);
                    }
                }
                if !offers.is_empty() {
                    let master = &self.master_resp;
                    let ports = self.ports;
                    let granted = self.resp_b[p]
                        .resolve(&offers, &mut |tile| master[tile * ports + p].can_push());
                    for (i, &g) in granted.iter().enumerate() {
                        if g {
                            let resp = self.mid_resp[p][rows[i]].pop().expect("head existed");
                            let tile = resp.core as usize / cores_per_tile;
                            self.master_resp[tile * self.ports + p].push(resp);
                        }
                    }
                }
                // Segment A': tile response-out latches -> mid registers.
                let mut offers = Vec::new();
                let mut srcs = Vec::new();
                for (tile, t) in tiles.iter().enumerate() {
                    if let Some(resp) = &t.resp_out[p] {
                        offers.push(Offer {
                            input: tile,
                            dest: resp.core as usize / cores_per_tile,
                        });
                        srcs.push(tile);
                    }
                }
                if !offers.is_empty() {
                    let mid = &self.mid_resp[p];
                    let granted = self.resp_a[p].resolve(&offers, &mut |row| mid[row].can_push());
                    for (i, &g) in granted.iter().enumerate() {
                        if g {
                            let offer = offers[i];
                            let row = self.resp_a[p].output_port(offer.input, offer.dest);
                            let resp = tiles[srcs[i]].resp_out[p].take().expect("latch full");
                            self.mid_resp[p][row].push(resp);
                        }
                    }
                }
            } else {
                let mut offers = Vec::new();
                let mut srcs = Vec::new();
                for (tile, t) in tiles.iter().enumerate() {
                    if let Some(resp) = &t.resp_out[p] {
                        offers.push(Offer {
                            input: tile,
                            dest: resp.core as usize / cores_per_tile,
                        });
                        srcs.push(tile);
                    }
                }
                if !offers.is_empty() {
                    let master = &self.master_resp;
                    let ports = self.ports;
                    let granted = self.resp_a[p]
                        .resolve(&offers, &mut |tile| master[tile * ports + p].can_push());
                    for (i, &g) in granted.iter().enumerate() {
                        if g {
                            let resp = tiles[srcs[i]].resp_out[p].take().expect("latch full");
                            let tile = resp.core as usize / cores_per_tile;
                            self.master_resp[tile * self.ports + p].push(resp);
                        }
                    }
                }
            }
        }
    }

    fn deliver(&mut self, deliveries: &mut Vec<Response>) {
        for reg in &mut self.master_resp {
            if let Some(resp) = reg.pop() {
                deliveries.push(resp);
            }
        }
    }

    fn commit(&mut self) {
        for reg in &mut self.master_req {
            reg.commit();
        }
        for reg in &mut self.master_resp {
            reg.commit();
        }
        for port in &mut self.mid_req {
            for reg in port {
                reg.commit();
            }
        }
        for port in &mut self.mid_resp {
            for reg in port {
                reg.commit();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TopH: hierarchical — local group crossbars + N/NE/E inter-group
// butterflies.
// ---------------------------------------------------------------------------

pub(crate) struct HierNet {
    num_tiles: usize,
    cores_per_tile: usize,
    tiles_per_group: usize,
    /// Per tile: crossbar (cores × 4 ports) routing requests to L/N/NE/E.
    pub(crate) port_router: Vec<Fabric>,
    /// `[tile * 4 + port]`, port 0 = L, 1 = N, 2 = NE, 3 = E.
    pub(crate) master_req: Vec<ElasticBuffer<Request>>,
    pub(crate) master_resp: Vec<ElasticBuffer<Response>>,
    /// Per group: the 16×16 fully-connected local crossbars.
    pub(crate) local_req: Vec<Fabric>,
    pub(crate) local_resp: Vec<Fabric>,
    /// `[(group * 3 + dir) * tiles_per_group + row]`, dir 0 = N, 1 = NE,
    /// 2 = E: the register boundary at the group's master interface.
    pub(crate) boundary_req: Vec<ElasticBuffer<Request>>,
    pub(crate) boundary_resp: Vec<ElasticBuffer<Response>>,
    /// Per (group, dir): the 16×16 radix-4 butterflies.
    pub(crate) inter_req: Vec<Fabric>,
    pub(crate) inter_resp: Vec<Fabric>,
}

#[allow(clippy::needless_range_loop)] // `d` indexes three parallel tables
impl HierNet {
    fn new(config: &ClusterConfig) -> Self {
        let n = config.num_tiles;
        let tpg = config.tiles_per_group();
        let groups = config.num_groups();
        let mk_bfly = || Fabric::butterfly(tpg, config.radix).expect("validated");
        HierNet {
            num_tiles: n,
            cores_per_tile: config.cores_per_tile,
            tiles_per_group: tpg,
            port_router: (0..n)
                .map(|_| Fabric::crossbar(config.cores_per_tile, 4).expect("validated"))
                .collect(),
            master_req: (0..n * 4).map(|_| ElasticBuffer::new(2)).collect(),
            master_resp: (0..n * 4).map(|_| ElasticBuffer::new(2)).collect(),
            local_req: (0..groups)
                .map(|_| Fabric::crossbar(tpg, tpg).expect("validated"))
                .collect(),
            local_resp: (0..groups)
                .map(|_| Fabric::crossbar(tpg, tpg).expect("validated"))
                .collect(),
            boundary_req: (0..groups * 3 * tpg).map(|_| ElasticBuffer::new(2)).collect(),
            boundary_resp: (0..groups * 3 * tpg).map(|_| ElasticBuffer::new(2)).collect(),
            inter_req: (0..groups * 3).map(|_| mk_bfly()).collect(),
            inter_resp: (0..groups * 3).map(|_| mk_bfly()).collect(),
        }
    }

    fn group_of(&self, tile: usize) -> usize {
        tile / self.tiles_per_group
    }

    /// The tile port (0 = L, 1 = N, 2 = NE, 3 = E) used to reach `dst` from
    /// `src`. Must not be called for `src == dst` (local-bank traffic skips
    /// the remote ports).
    pub fn port_for(&self, src: usize, dst: usize) -> usize {
        let gs = self.group_of(src);
        let gd = self.group_of(dst);
        match gs ^ gd {
            0 => 0,                 // L
            2 => 1,                 // N
            3 => 2,                 // NE
            1 => 3,                 // E
            _ => unreachable!("four groups"),
        }
    }

    fn route_longhaul(&mut self, tiles: &mut [Tile], map: &AddressMap) {
        let tpg = self.tiles_per_group;
        let groups = self.num_tiles / tpg;
        // Stage: group boundary registers -> inter-group butterflies ->
        // partner-tile slave latches.
        for g in 0..groups {
            for d in 0..3 {
                let partner = g ^ DIR_PARTNER_XOR[d];
                let base = (g * 3 + d) * tpg;
                let mut offers = Vec::new();
                let mut rows = Vec::new();
                for i in 0..tpg {
                    if let Some(req) = self.boundary_req[base + i].head() {
                        let at = map.decode(req.addr).expect("validated");
                        offers.push(Offer {
                            input: i,
                            dest: at.tile as usize % tpg,
                        });
                        rows.push(i);
                    }
                }
                if offers.is_empty() {
                    continue;
                }
                let granted = self.inter_req[g * 3 + d].resolve(&offers, &mut |t| {
                    tiles[partner * tpg + t].slave_req[d + 1].is_none()
                });
                for (i, &gr) in granted.iter().enumerate() {
                    if gr {
                        let req = self.boundary_req[base + rows[i]].pop().expect("head");
                        let at = map.decode(req.addr).expect("validated");
                        debug_assert_eq!(at.tile as usize / tpg, partner);
                        tiles[at.tile as usize].slave_req[d + 1] = Some(req);
                    }
                }
            }
        }
        // Stage: local L crossbars (within each group).
        for g in 0..groups {
            let mut offers = Vec::new();
            let mut srcs = Vec::new();
            for i in 0..tpg {
                let tile = g * tpg + i;
                if let Some(req) = self.master_req[tile * 4].head() {
                    let at = map.decode(req.addr).expect("validated");
                    debug_assert_eq!(at.tile as usize / tpg, g, "L port crosses groups");
                    offers.push(Offer {
                        input: i,
                        dest: at.tile as usize % tpg,
                    });
                    srcs.push(tile);
                }
            }
            if offers.is_empty() {
                continue;
            }
            let granted = self.local_req[g]
                .resolve(&offers, &mut |t| tiles[g * tpg + t].slave_req[0].is_none());
            for (i, &gr) in granted.iter().enumerate() {
                if gr {
                    let req = self.master_req[srcs[i] * 4].pop().expect("head");
                    let at = map.decode(req.addr).expect("validated");
                    tiles[at.tile as usize].slave_req[0] = Some(req);
                }
            }
        }
        // Stage: tile master N/NE/E registers -> group boundary registers
        // (point-to-point wiring, no arbitration).
        for tile in 0..self.num_tiles {
            let g = self.group_of(tile);
            let i = tile % tpg;
            for d in 0..3 {
                let reg = &mut self.master_req[tile * 4 + 1 + d];
                let boundary = &mut self.boundary_req[(g * 3 + d) * tpg + i];
                if reg.head().is_some() && boundary.can_push() {
                    boundary.push(reg.pop().expect("head"));
                }
            }
        }
    }

    fn route_ports(&mut self, latches: &mut [Option<Request>], map: &AddressMap) {
        let cpt = self.cores_per_tile;
        for tile in 0..self.num_tiles {
            let mut offers = Vec::new();
            let mut lanes = Vec::new();
            for lane in 0..cpt {
                if let Some(req) = &latches[tile * cpt + lane] {
                    let at = map.decode(req.addr).expect("validated");
                    let dst = at.tile as usize;
                    if dst != tile {
                        offers.push(Offer {
                            input: lane,
                            dest: self.port_for(tile, dst),
                        });
                        lanes.push(lane);
                    }
                }
            }
            if offers.is_empty() {
                continue;
            }
            let master = &self.master_req;
            let granted = self.port_router[tile]
                .resolve(&offers, &mut |port| master[tile * 4 + port].can_push());
            for (i, &g) in granted.iter().enumerate() {
                if g {
                    let req = latches[tile * cpt + lanes[i]].take().expect("lane had request");
                    self.master_req[tile * 4 + offers[i].dest].push(req);
                }
            }
        }
    }

    fn route_responses(&mut self, tiles: &mut [Tile], cores_per_tile: usize) {
        let tpg = self.tiles_per_group;
        let groups = self.num_tiles / tpg;
        // Stage: boundary response registers -> tile master response regs
        // (point-to-point).
        for g in 0..groups {
            for d in 0..3 {
                for i in 0..tpg {
                    let boundary = &mut self.boundary_resp[(g * 3 + d) * tpg + i];
                    let master = &mut self.master_resp[(g * tpg + i) * 4 + 1 + d];
                    if boundary.head().is_some() && master.can_push() {
                        master.push(boundary.pop().expect("head"));
                    }
                }
            }
        }
        // Stage: partner-tile response-out latches -> inter-group response
        // butterflies -> boundary response registers.
        for g in 0..groups {
            for d in 0..3 {
                let partner = g ^ DIR_PARTNER_XOR[d];
                let base = (g * 3 + d) * tpg;
                let mut offers = Vec::new();
                let mut srcs = Vec::new();
                for i in 0..tpg {
                    let tile = partner * tpg + i;
                    if let Some(resp) = &tiles[tile].resp_out[d + 1] {
                        let dst_tile = resp.core as usize / cores_per_tile;
                        if dst_tile / tpg != g {
                            continue; // belongs to the other direction pairing
                        }
                        offers.push(Offer {
                            input: i,
                            dest: dst_tile % tpg,
                        });
                        srcs.push(tile);
                    }
                }
                if offers.is_empty() {
                    continue;
                }
                let boundary = &self.boundary_resp;
                let granted = self.inter_resp[g * 3 + d]
                    .resolve(&offers, &mut |row| boundary[base + row].can_push());
                for (i, &gr) in granted.iter().enumerate() {
                    if gr {
                        let resp = tiles[srcs[i]].resp_out[d + 1].take().expect("latch");
                        let row = resp.core as usize / cores_per_tile % tpg;
                        self.boundary_resp[base + row].push(resp);
                    }
                }
            }
        }
        // Stage: local L response crossbars.
        for g in 0..groups {
            let mut offers = Vec::new();
            let mut srcs = Vec::new();
            for i in 0..tpg {
                let tile = g * tpg + i;
                if let Some(resp) = &tiles[tile].resp_out[0] {
                    offers.push(Offer {
                        input: i,
                        dest: resp.core as usize / cores_per_tile % tpg,
                    });
                    srcs.push(tile);
                }
            }
            if offers.is_empty() {
                continue;
            }
            let master = &self.master_resp;
            let granted = self.local_resp[g].resolve(&offers, &mut |t| {
                master[(g * tpg + t) * 4].can_push()
            });
            for (i, &gr) in granted.iter().enumerate() {
                if gr {
                    let resp = tiles[srcs[i]].resp_out[0].take().expect("latch");
                    let dst = resp.core as usize / cores_per_tile;
                    self.master_resp[dst * 4].push(resp);
                }
            }
        }
    }

    fn deliver(&mut self, deliveries: &mut Vec<Response>) {
        for reg in &mut self.master_resp {
            if let Some(resp) = reg.pop() {
                deliveries.push(resp);
            }
        }
    }

    fn commit(&mut self) {
        for reg in &mut self.master_req {
            reg.commit();
        }
        for reg in &mut self.master_resp {
            reg.commit();
        }
        for reg in &mut self.boundary_req {
            reg.commit();
        }
        for reg in &mut self.boundary_resp {
            reg.commit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, Topology};

    fn hier() -> HierNet {
        let Net::Hier(h) = Net::new(&ClusterConfig::paper(Topology::TopH)) else {
            panic!("expected the hierarchical network");
        };
        h
    }

    #[test]
    fn port_for_is_symmetric_and_total() {
        let h = hier();
        for src in 0..64 {
            for dst in 0..64 {
                if src == dst {
                    continue;
                }
                let port = h.port_for(src, dst);
                assert!(port < 4, "{src}->{dst} port {port}");
                // The response travels back on the same channel.
                assert_eq!(port, h.port_for(dst, src), "{src}<->{dst}");
            }
        }
    }

    #[test]
    fn port_for_matches_group_geometry() {
        let h = hier();
        // Same group -> L; partner groups by XOR pairing.
        assert_eq!(h.port_for(0, 15), 0); // L (both in group 0)
        assert_eq!(h.port_for(0, 32), 1); // N (group 0 <-> 2)
        assert_eq!(h.port_for(0, 63), 2); // NE (group 0 <-> 3)
        assert_eq!(h.port_for(0, 16), 3); // E (group 0 <-> 1)
        assert_eq!(h.port_for(17, 1), 3); // E seen from group 1
    }

    #[test]
    fn occupancy_is_zero_when_idle_and_bounded() {
        for topo in Topology::all() {
            let net = Net::new(&ClusterConfig::paper(topo));
            let (occupied, total) = net.occupancy();
            assert_eq!(occupied, 0, "{topo}: fresh network not empty");
            if topo == Topology::Ideal {
                assert_eq!(total, 0);
            } else {
                assert!(total > 0, "{topo}: no registers counted");
            }
        }
    }

    #[test]
    fn global_net_register_inventory() {
        // Top1: 64 master req + 64 master resp + 2 x 64 mid registers, all
        // depth 2.
        let net = Net::new(&ClusterConfig::paper(Topology::Top1));
        let (_, total) = net.occupancy();
        assert_eq!(total, 2 * (64 + 64 + 64 + 64));
        // Top4 has four of each port-plane.
        let net4 = Net::new(&ClusterConfig::paper(Topology::Top4));
        let (_, total4) = net4.occupancy();
        assert_eq!(total4, 4 * total);
    }

    #[test]
    fn hier_net_register_inventory() {
        // TopH: 64 tiles x 4 master req + 4 master resp, plus 4 groups x 3
        // directions x 16 boundary regs each way, depth 2 each.
        let net = Net::new(&ClusterConfig::paper(Topology::TopH));
        let (_, total) = net.occupancy();
        assert_eq!(total, 2 * (64 * 4 + 64 * 4 + 4 * 3 * 16 + 4 * 3 * 16));
    }
}
