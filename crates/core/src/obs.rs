//! The cluster observability layer: hierarchical metrics and sampled
//! timeline traces.
//!
//! The paper's whole evaluation is observational — per-request latency
//! distributions under load (Fig. 5/6) and per-kernel cycle counts
//! (Fig. 7). This module gives every experiment one shared instrumentation
//! surface instead of ad-hoc counter plumbing:
//!
//! * [`MetricsRegistry`] — a point-in-time, hierarchical snapshot of every
//!   counter and latency histogram in the cluster, scoped
//!   `cluster` → `cluster/tile{t}` → `cluster/tile{t}/core{c}` /
//!   `cluster/tile{t}/bank{b}`, plus `cluster/link{id}` for the global
//!   interconnect register stages and `cluster/ring` for the refill ring.
//!   Built on demand by [`Cluster::metrics_registry`]; exported as the
//!   stable integer-only `mempool-metrics-v1` JSON document, so identical
//!   simulations produce byte-identical exports.
//! * [`TimelineTrace`] — sampled per-request spans emitted as Chrome
//!   `trace_event` JSON (loadable in Perfetto / `chrome://tracing`), with
//!   one process per tile and one thread per core.
//!
//! Recording costs nothing when disabled: the per-delivery hook is gated on
//! an `Option` that is `None` by default. When enabled (via
//! [`SimSessionBuilder::observability`] or
//! [`Cluster::enable_observability`]), recording happens in the serial
//! response-drain phase, so metric values are bit-identical across the
//! serial and tile-parallel engines and across checkpoint/restore (the
//! recorder state is part of the snapshot and the state digest).
//!
//! [`Cluster::metrics_registry`]: crate::Cluster::metrics_registry
//! [`Cluster::enable_observability`]: crate::Cluster::enable_observability
//! [`SimSessionBuilder::observability`]: crate::SimSessionBuilder::observability

use crate::stats::LatencyStats;
use std::fmt;
use std::fmt::Write as _;

/// Schema tag stamped into every metrics export.
///
/// `v2` extends `v1` with a `p90` histogram field and (when profiling is
/// enabled) `cluster/region{r}` scopes; every `v1` field is unchanged, so
/// `v1` readers keep working on everything they knew about.
pub const METRICS_SCHEMA: &str = "mempool-metrics-v2";

/// Observability configuration: what the cluster records while it runs.
///
/// The default records per-tile latency histograms only (no timeline
/// trace). Histograms alone cost one `LatencyStats::record` per delivered
/// response; the timeline tracer additionally stores every
/// `trace_sample_every`-th delivery as a span, up to `trace_capacity`
/// spans (further samples are counted as dropped, never reallocated —
/// tracing a long run has bounded memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Sample every n-th delivered response into the timeline trace
    /// (`0` disables the tracer, `1` traces every request).
    pub trace_sample_every: u64,
    /// Maximum retained timeline spans.
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            trace_sample_every: 0,
            trace_capacity: 65_536,
        }
    }
}

impl ObsConfig {
    /// Histograms only, no timeline trace (the cheapest enabled mode).
    pub fn histograms() -> ObsConfig {
        ObsConfig::default()
    }

    /// Histograms plus a timeline trace sampling every `every`-th delivery.
    pub fn with_trace(every: u64) -> ObsConfig {
        ObsConfig {
            trace_sample_every: every.max(1),
            ..ObsConfig::default()
        }
    }
}

/// One sampled request span: a core's memory request from issue to
/// response delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// Issuing core (global index).
    pub core: u32,
    /// The issuing core's tile.
    pub tile: u32,
    /// Cycle the request left the core.
    pub issued_at: u64,
    /// Round-trip cycles until the response was delivered.
    pub latency: u64,
}

/// The sampled timeline of one run, exportable as Chrome `trace_event`
/// JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelineTrace {
    /// The retained spans, in delivery order.
    pub spans: Vec<TraceSpan>,
    /// Samples discarded after `trace_capacity` was reached.
    pub dropped_spans: u64,
}

impl TimelineTrace {
    /// Renders the trace as a Chrome `trace_event` JSON object (the format
    /// `chrome://tracing` and Perfetto load): one complete (`"X"`) event
    /// per span with the tile as the process and the core as the thread,
    /// preceded by process/thread-name metadata. Timestamps are cycles
    /// reported in the `ts`/`dur` microsecond fields (1 cycle = 1 µs of
    /// trace time).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let emit = |s: &mut String, first: &mut bool| {
            if !*first {
                s.push(',');
            }
            *first = false;
            s.push('\n');
        };
        // Metadata: name every tile (process) and core (thread) that
        // appears in the trace, in ascending order.
        let mut tiles: Vec<u32> = self.spans.iter().map(|s| s.tile).collect();
        tiles.sort_unstable();
        tiles.dedup();
        for t in &tiles {
            emit(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{t},\"tid\":0,\
                 \"args\":{{\"name\":\"tile{t}\"}}}}"
            );
        }
        let mut cores: Vec<(u32, u32)> = self.spans.iter().map(|s| (s.tile, s.core)).collect();
        cores.sort_unstable();
        cores.dedup();
        for (t, c) in &cores {
            emit(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{t},\"tid\":{c},\
                 \"args\":{{\"name\":\"core{c}\"}}}}"
            );
        }
        for s in &self.spans {
            emit(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"req\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\
                 \"tid\":{},\"args\":{{\"latency\":{}}}}}",
                s.issued_at, s.latency, s.tile, s.core, s.latency
            );
        }
        let _ = write!(
            out,
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"schema\":\"mempool-trace-v1\",\
             \"dropped_spans\":{}}}}}\n",
            self.dropped_spans
        );
        out
    }
}

/// The live recorder the cluster carries while observability is enabled.
/// Everything in here is deterministic simulation state: it is recorded in
/// the serial response-drain phase (canonical order in both engines), and
/// it is checkpointed and digested like any other architectural state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Obs {
    pub(crate) config: ObsConfig,
    /// Round-trip latency distribution per *issuing* tile.
    pub(crate) tile_latency: Vec<LatencyStats>,
    pub(crate) spans: Vec<TraceSpan>,
    /// Deliveries seen since observability was enabled (drives sampling).
    pub(crate) deliveries_seen: u64,
    pub(crate) dropped_spans: u64,
}

impl Obs {
    pub(crate) fn new(config: ObsConfig, num_tiles: usize) -> Obs {
        Obs {
            config,
            tile_latency: (0..num_tiles).map(|_| LatencyStats::new()).collect(),
            spans: Vec::new(),
            deliveries_seen: 0,
            dropped_spans: 0,
        }
    }

    /// Records one delivered response. Called from the serial drain phase.
    pub(crate) fn on_delivery(&mut self, core: u32, tile: u32, issued_at: u64, latency: u64) {
        self.tile_latency[tile as usize].record(latency);
        self.deliveries_seen += 1;
        let every = self.config.trace_sample_every;
        if every > 0 && self.deliveries_seen.is_multiple_of(every) {
            if self.spans.len() < self.config.trace_capacity {
                self.spans.push(TraceSpan {
                    core,
                    tile,
                    issued_at,
                    latency,
                });
            } else {
                self.dropped_spans += 1;
            }
        }
    }

    /// A point-in-time copy of the sampled timeline.
    pub(crate) fn timeline(&self) -> TimelineTrace {
        TimelineTrace {
            spans: self.spans.clone(),
            dropped_spans: self.dropped_spans,
        }
    }
}

/// A point-in-time latency histogram: the fixed 64-exact-bucket + tail
/// layout of [`LatencyStats`], with precomputed p50/p99. All fields are
/// integers, so exports are bit-stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (mean = `sum / count`).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median (0 when empty).
    pub p50: u64,
    /// 90th percentile (0 when empty; saturates to `max` past 64 cycles).
    pub p90: u64,
    /// 99th percentile (0 when empty; saturates to `max` past 64 cycles).
    pub p99: u64,
    /// `buckets[i]` counts samples with `latency == i` for `i < 64`; the
    /// last bucket is the `>= 64` tail.
    pub buckets: Vec<u64>,
}

impl From<&LatencyStats> for HistogramSnapshot {
    fn from(l: &LatencyStats) -> HistogramSnapshot {
        HistogramSnapshot {
            count: l.count(),
            sum: l.sum(),
            min: l.min().unwrap_or(0),
            max: l.max().unwrap_or(0),
            p50: l.quantile(0.5).unwrap_or(0),
            p90: l.quantile(0.9).unwrap_or(0),
            p99: l.quantile(0.99).unwrap_or(0),
            buckets: l.bucket_counts().to_vec(),
        }
    }
}

/// A by-name metrics lookup failed. Carries the full available set so a
/// schema drift surfaces as a legible error instead of a silent zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// No scope with the requested path exists in the registry.
    UnknownScope {
        /// The requested scope path.
        path: String,
    },
    /// The scope exists but has no counter with the requested name.
    UnknownCounter {
        /// The scope that was searched.
        scope: String,
        /// The requested counter name.
        name: String,
        /// The counter names that do exist in that scope.
        available: Vec<&'static str>,
    },
    /// The scope exists but has no histogram with the requested name.
    UnknownHistogram {
        /// The scope that was searched.
        scope: String,
        /// The requested histogram name.
        name: String,
        /// The histogram names that do exist in that scope.
        available: Vec<&'static str>,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::UnknownScope { path } => {
                write!(f, "no metrics scope `{path}`")
            }
            MetricsError::UnknownCounter {
                scope,
                name,
                available,
            } => write!(
                f,
                "no counter `{name}` in scope `{scope}`; available: {}",
                available.join(", ")
            ),
            MetricsError::UnknownHistogram {
                scope,
                name,
                available,
            } => write!(
                f,
                "no histogram `{name}` in scope `{scope}`; available: {}",
                available.join(", ")
            ),
        }
    }
}

impl std::error::Error for MetricsError {}

/// One scope of the hierarchical registry: a path like `cluster/tile3`,
/// its counters, and its latency histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricScope {
    path: String,
    counters: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricScope {
    pub(crate) fn new(path: String) -> MetricScope {
        MetricScope {
            path,
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    pub(crate) fn counter_entry(&mut self, name: &'static str, value: u64) -> &mut Self {
        self.counters.push((name, value));
        self
    }

    pub(crate) fn histogram_entry(
        &mut self,
        name: &'static str,
        h: HistogramSnapshot,
    ) -> &mut Self {
        self.histograms.push((name, h));
        self
    }

    /// The scope path (e.g. `cluster/tile3/bank0`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// All counters, in declaration order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// All histograms, in declaration order.
    pub fn histograms(&self) -> &[(&'static str, HistogramSnapshot)] {
        &self.histograms
    }

    /// Looks up one counter by name.
    ///
    /// # Errors
    ///
    /// [`MetricsError::UnknownCounter`] listing the names that do exist.
    pub fn counter(&self, name: &str) -> Result<u64, MetricsError> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .ok_or_else(|| MetricsError::UnknownCounter {
                scope: self.path.clone(),
                name: name.to_string(),
                available: self.counters.iter().map(|&(n, _)| n).collect(),
            })
    }

    /// Looks up one histogram by name.
    ///
    /// # Errors
    ///
    /// [`MetricsError::UnknownHistogram`] listing the names that do exist.
    pub fn histogram(&self, name: &str) -> Result<&HistogramSnapshot, MetricsError> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
            .ok_or_else(|| MetricsError::UnknownHistogram {
                scope: self.path.clone(),
                name: name.to_string(),
                available: self.histograms.iter().map(|&(n, _)| n).collect(),
            })
    }
}

/// A point-in-time, hierarchical snapshot of every counter and histogram
/// in the cluster. Built by
/// [`Cluster::metrics_registry`](crate::Cluster::metrics_registry);
/// serialized with [`to_json`](MetricsRegistry::to_json) as the stable
/// `mempool-metrics-v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    topology: String,
    num_tiles: usize,
    num_cores: usize,
    banks_per_tile: usize,
    scopes: Vec<MetricScope>,
}

impl MetricsRegistry {
    pub(crate) fn new(
        topology: String,
        num_tiles: usize,
        num_cores: usize,
        banks_per_tile: usize,
    ) -> MetricsRegistry {
        MetricsRegistry {
            topology,
            num_tiles,
            num_cores,
            banks_per_tile,
            scopes: Vec::new(),
        }
    }

    pub(crate) fn push_scope(&mut self, scope: MetricScope) {
        self.scopes.push(scope);
    }

    /// The topology name the cluster was built with.
    pub fn topology(&self) -> &str {
        &self.topology
    }

    /// Number of tiles in the cluster.
    pub fn num_tiles(&self) -> usize {
        self.num_tiles
    }

    /// Number of cores in the cluster.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// SPM banks per tile.
    pub fn banks_per_tile(&self) -> usize {
        self.banks_per_tile
    }

    /// All scopes, hierarchical order (cluster, then per tile with its
    /// cores and banks, then links and the refill ring).
    pub fn scopes(&self) -> &[MetricScope] {
        &self.scopes
    }

    /// Looks up a scope by path.
    pub fn scope(&self, path: &str) -> Option<&MetricScope> {
        self.scopes.iter().find(|s| s.path == path)
    }

    /// Looks up `scope`/`name` as a counter.
    ///
    /// # Errors
    ///
    /// [`MetricsError`] naming the missing scope or counter (with the
    /// available names).
    pub fn counter(&self, path: &str, name: &str) -> Result<u64, MetricsError> {
        self.scope(path)
            .ok_or_else(|| MetricsError::UnknownScope {
                path: path.to_string(),
            })?
            .counter(name)
    }

    /// Looks up `scope`/`name` as a histogram.
    ///
    /// # Errors
    ///
    /// [`MetricsError`] naming the missing scope or histogram.
    pub fn histogram(&self, path: &str, name: &str) -> Result<&HistogramSnapshot, MetricsError> {
        self.scope(path)
            .ok_or_else(|| MetricsError::UnknownScope {
                path: path.to_string(),
            })?
            .histogram(name)
    }

    /// Sums a counter over every scope whose path starts with `prefix`
    /// (e.g. `instret` over `cluster/tile3` aggregates that tile's cores).
    /// Scopes without the counter contribute zero.
    pub fn sum_counter(&self, prefix: &str, name: &str) -> u64 {
        self.scopes
            .iter()
            .filter(|s| s.path.starts_with(prefix))
            .filter_map(|s| s.counter(name).ok())
            .sum()
    }

    /// Renders the registry as the `mempool-metrics-v1` JSON document.
    /// Integer-only and emitted in deterministic scope order, so identical
    /// simulations produce byte-identical documents (the property the
    /// determinism tests pin across engines and checkpoint/restore).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{METRICS_SCHEMA}\",");
        let _ = writeln!(out, "  \"topology\": \"{}\",", self.topology);
        let _ = writeln!(out, "  \"num_tiles\": {},", self.num_tiles);
        let _ = writeln!(out, "  \"num_cores\": {},", self.num_cores);
        let _ = writeln!(out, "  \"banks_per_tile\": {},", self.banks_per_tile);
        out.push_str("  \"scopes\": [\n");
        for (i, scope) in self.scopes.iter().enumerate() {
            let _ = write!(out, "    {{\"path\": \"{}\", \"counters\": {{", scope.path);
            for (j, (name, value)) in scope.counters.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{name}\": {value}");
            }
            out.push_str("}, \"histograms\": {");
            for (j, (name, h)) in scope.histograms.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "\"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                    h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                );
                for (k, b) in h.buckets.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{b}");
                }
                out.push_str("]}");
            }
            out.push_str("}}");
            out.push_str(if i + 1 < self.scopes.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new("TopH".to_string(), 2, 8, 4);
        let mut cluster = MetricScope::new("cluster".to_string());
        cluster.counter_entry("cycles", 100).counter_entry("requests_issued", 42);
        let mut lat = LatencyStats::new();
        for v in [1u64, 1, 5, 5, 70] {
            lat.record(v);
        }
        cluster.histogram_entry("latency", HistogramSnapshot::from(&lat));
        reg.push_scope(cluster);
        let mut tile = MetricScope::new("cluster/tile0".to_string());
        tile.counter_entry("bank_accesses", 7);
        reg.push_scope(tile);
        reg
    }

    #[test]
    fn lookup_by_path_and_name() {
        let reg = sample_registry();
        assert_eq!(reg.counter("cluster", "cycles"), Ok(100));
        assert_eq!(reg.counter("cluster/tile0", "bank_accesses"), Ok(7));
        let h = reg.histogram("cluster", "latency").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 70);
        assert_eq!(h.p50, 5);
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99, "{h:?}");
        assert_eq!(h.p99, h.max, "tail samples saturate to max");
        assert_eq!(h.buckets.len(), 65);
    }

    #[test]
    fn missing_names_are_typed_errors_with_available_sets() {
        let reg = sample_registry();
        assert_eq!(
            reg.counter("nowhere", "cycles"),
            Err(MetricsError::UnknownScope {
                path: "nowhere".to_string()
            })
        );
        match reg.counter("cluster", "nope") {
            Err(MetricsError::UnknownCounter { available, .. }) => {
                assert_eq!(available, vec!["cycles", "requests_issued"]);
            }
            other => panic!("expected UnknownCounter, got {other:?}"),
        }
        let msg = reg.histogram("cluster", "nope").unwrap_err().to_string();
        assert!(msg.contains("latency"), "{msg}");
    }

    #[test]
    fn sum_counter_aggregates_by_prefix() {
        let reg = sample_registry();
        assert_eq!(reg.sum_counter("cluster/tile", "bank_accesses"), 7);
        assert_eq!(reg.sum_counter("cluster", "cycles"), 100);
        assert_eq!(reg.sum_counter("elsewhere", "cycles"), 0);
    }

    #[test]
    fn json_is_stable_and_balanced() {
        let reg = sample_registry();
        let a = reg.to_json();
        let b = reg.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"mempool-metrics-v2\""));
        assert!(
            a.contains("\"p50\": ") && a.contains("\"p90\": ") && a.contains("\"p99\": "),
            "v2 histogram summary carries all three quantiles: {a}"
        );
        assert!(a.contains("\"path\": \"cluster/tile0\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn obs_samples_every_nth_delivery_with_bounded_spans() {
        let mut obs = Obs::new(
            ObsConfig {
                trace_sample_every: 2,
                trace_capacity: 3,
            },
            1,
        );
        for i in 0..10u64 {
            obs.on_delivery(0, 0, i, 1);
        }
        assert_eq!(obs.tile_latency[0].count(), 10);
        assert_eq!(obs.spans.len(), 3, "capacity bounds retained spans");
        assert_eq!(obs.dropped_spans, 2, "5 samples, 3 kept");
        assert_eq!(obs.spans[0].issued_at, 1);
        assert_eq!(obs.spans[1].issued_at, 3);
    }

    #[test]
    fn chrome_trace_shape() {
        let trace = TimelineTrace {
            spans: vec![
                TraceSpan {
                    core: 4,
                    tile: 1,
                    issued_at: 10,
                    latency: 5,
                },
                TraceSpan {
                    core: 0,
                    tile: 0,
                    issued_at: 12,
                    latency: 1,
                },
            ],
            dropped_spans: 0,
        };
        let json = trace.to_chrome_json();
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ts\":10,\"dur\":5,\"pid\":1,\"tid\":4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let h = HistogramSnapshot::from(&LatencyStats::new());
        assert_eq!(
            (h.count, h.min, h.max, h.p50, h.p90, h.p99),
            (0, 0, 0, 0, 0, 0)
        );
    }
}
