//! Checkpoint/restore with canonical state digests, and divergence
//! bisection.
//!
//! One byte encoding serves two purposes: serialized, it is the checkpoint
//! image a [`ClusterSnapshot`] stores; hashed, it is the canonical
//! [`state_digest`](Cluster::state_digest) that two runs can compare for
//! bit-identity. Both views stream the same encoders into a [`StateSink`],
//! so a digest always describes exactly what a snapshot would capture.
//!
//! The digest deliberately **excludes** the configuration, the program
//! image, and the fault *plan parameters* (seed, spec, and the scheduled
//! bank-failure list): those are inputs, not evolving state. Everything the
//! inputs *cause* — quarantined banks, fault logs, retry counters, locked
//! cores — is digested. This is what lets
//! [`bisect_divergence`] compare a faulted run against a clean one and
//! pinpoint the first cycle at which their architectural states part ways.

use crate::cluster::{PendingRequest, RefillPacket, RefillRing};
use crate::faults::{BankFailure, FaultEvent, FaultLog, FaultPlan, FaultSpec};
use crate::net::Net;
use crate::tile::Tile;
use crate::{Cluster, ClusterConfig, Core, Request, Response};
use mempool_noc::{ElasticBuffer, Fabric, RoundRobin};
use mempool_riscv::{AmoOp, LoadOp, Reg, StoreOp};
use mempool_snitch::profile::{CoreProfile, PcCounters, RegionCounters, REGION_SLOTS};
use mempool_snitch::{DataRequestKind, SnitchCore};
use std::fmt;
use std::io;
use std::path::Path;

/// FNV-1a offset basis (the digest over an empty byte stream).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Snapshot file magic: `"MPSN"` little-endian.
const MAGIC: u32 = 0x4d50_534e;
/// Current snapshot format version. Version 2 added the observability
/// section and the cumulative NoC/memory activity counters (elastic-buffer
/// pushes, arbiter grants, ring injections/ejections, per-bank accesses).
/// Version 3 added the program-level profiler: per-core `mregion`/
/// `halted_cycles`/profile tables in the core encoding and the cluster
/// `profile` component (power-window sampler).
pub const SNAPSHOT_VERSION: u32 = 3;
/// Fixed header length in bytes.
const HEADER_LEN: usize = 56;

/// A byte sink the canonical state encoders write into: a `Vec<u8>` when
/// serializing, an [`Fnv`] hasher when digesting.
pub trait StateSink {
    /// Appends raw bytes.
    fn put(&mut self, bytes: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put(&v.to_le_bytes());
    }

    /// Appends a bool as one byte.
    fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends an `f64` as its little-endian IEEE-754 bit pattern.
    fn put_f64(&mut self, v: f64) {
        self.put(&v.to_bits().to_le_bytes());
    }
}

impl StateSink for Vec<u8> {
    fn put(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// A streaming FNV-1a hasher usable as a [`StateSink`], so digests are
/// computed without materializing the encoded bytes.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl StateSink for Fnv {
    fn put(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// FNV-1a digest of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut f = Fnv::new();
    f.put(bytes);
    f.finish()
}

/// Error raised when loading or restoring a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the decoder was done.
    Truncated,
    /// The leading magic number is not a snapshot's.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion(u32),
    /// A section's recomputed digest disagrees with the header.
    DigestMismatch,
    /// The snapshot was taken from a cluster with a different configuration.
    ConfigMismatch,
    /// The snapshot was taken with a different program loaded.
    ImageMismatch,
    /// A structurally invalid field (named) was encountered.
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a cluster snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})")
            }
            SnapshotError::DigestMismatch => write!(f, "snapshot digest mismatch (corrupted file)"),
            SnapshotError::ConfigMismatch => {
                write!(f, "snapshot was taken under a different cluster configuration")
            }
            SnapshotError::ImageMismatch => {
                write!(f, "snapshot was taken with a different program loaded")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot field: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A bounds-checked little-endian reader over a snapshot byte stream.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Takes one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of stream.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Takes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of stream.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length 4")))
    }

    /// Takes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of stream.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length 8")))
    }

    /// Takes a bool (one byte; values other than 0/1 are corrupt).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] or [`SnapshotError::Corrupt`].
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool")),
        }
    }

    /// Takes an `f64` stored as its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of stream.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether the stream is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

/// Core models that can checkpoint their architectural state into the
/// canonical byte encoding — required of a core type `C` for
/// [`Cluster::snapshot`] / [`Cluster::restore`] to be available on
/// `Cluster<C>`.
pub trait CoreState {
    /// Streams the core's complete dynamic state into `out`.
    fn encode_state(&self, out: &mut dyn StateSink);

    /// Restores the core's state from its [`encode_state`] encoding.
    ///
    /// [`encode_state`]: CoreState::encode_state
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the bytes are truncated or
    /// structurally inconsistent with this core's configuration.
    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), SnapshotError>;
}

// ---------------------------------------------------------------------------
// Field codecs for the ISA-level payload types.
// ---------------------------------------------------------------------------

fn put_load_op(out: &mut dyn StateSink, op: LoadOp) {
    out.put_u8(match op {
        LoadOp::Lb => 0,
        LoadOp::Lh => 1,
        LoadOp::Lw => 2,
        LoadOp::Lbu => 3,
        LoadOp::Lhu => 4,
    });
}

fn take_load_op(r: &mut ByteReader<'_>) -> Result<LoadOp, SnapshotError> {
    Ok(match r.take_u8()? {
        0 => LoadOp::Lb,
        1 => LoadOp::Lh,
        2 => LoadOp::Lw,
        3 => LoadOp::Lbu,
        4 => LoadOp::Lhu,
        _ => return Err(SnapshotError::Corrupt("load op")),
    })
}

fn put_store_op(out: &mut dyn StateSink, op: StoreOp) {
    out.put_u8(match op {
        StoreOp::Sb => 0,
        StoreOp::Sh => 1,
        StoreOp::Sw => 2,
    });
}

fn take_store_op(r: &mut ByteReader<'_>) -> Result<StoreOp, SnapshotError> {
    Ok(match r.take_u8()? {
        0 => StoreOp::Sb,
        1 => StoreOp::Sh,
        2 => StoreOp::Sw,
        _ => return Err(SnapshotError::Corrupt("store op")),
    })
}

fn put_amo_op(out: &mut dyn StateSink, op: AmoOp) {
    out.put_u8(match op {
        AmoOp::Swap => 0,
        AmoOp::Add => 1,
        AmoOp::Xor => 2,
        AmoOp::And => 3,
        AmoOp::Or => 4,
        AmoOp::Min => 5,
        AmoOp::Max => 6,
        AmoOp::Minu => 7,
        AmoOp::Maxu => 8,
    });
}

fn take_amo_op(r: &mut ByteReader<'_>) -> Result<AmoOp, SnapshotError> {
    Ok(match r.take_u8()? {
        0 => AmoOp::Swap,
        1 => AmoOp::Add,
        2 => AmoOp::Xor,
        3 => AmoOp::And,
        4 => AmoOp::Or,
        5 => AmoOp::Min,
        6 => AmoOp::Max,
        7 => AmoOp::Minu,
        8 => AmoOp::Maxu,
        _ => return Err(SnapshotError::Corrupt("amo op")),
    })
}

fn put_kind(out: &mut dyn StateSink, kind: DataRequestKind) {
    match kind {
        DataRequestKind::Load(op) => {
            out.put_u8(0);
            put_load_op(out, op);
        }
        DataRequestKind::Store { op, data } => {
            out.put_u8(1);
            put_store_op(out, op);
            out.put_u32(data);
        }
        DataRequestKind::Amo { op, operand } => {
            out.put_u8(2);
            put_amo_op(out, op);
            out.put_u32(operand);
        }
        DataRequestKind::LoadReserved => out.put_u8(3),
        DataRequestKind::StoreConditional { data } => {
            out.put_u8(4);
            out.put_u32(data);
        }
    }
}

fn take_kind(r: &mut ByteReader<'_>) -> Result<DataRequestKind, SnapshotError> {
    Ok(match r.take_u8()? {
        0 => DataRequestKind::Load(take_load_op(r)?),
        1 => DataRequestKind::Store {
            op: take_store_op(r)?,
            data: r.take_u32()?,
        },
        2 => DataRequestKind::Amo {
            op: take_amo_op(r)?,
            operand: r.take_u32()?,
        },
        3 => DataRequestKind::LoadReserved,
        4 => DataRequestKind::StoreConditional { data: r.take_u32()? },
        _ => return Err(SnapshotError::Corrupt("request kind")),
    })
}

fn put_req(out: &mut dyn StateSink, req: &Request) {
    out.put_u32(req.core);
    out.put_u8(req.tag);
    out.put_u32(req.addr);
    put_kind(out, req.kind);
    out.put_u64(req.issued_at);
}

fn take_req(r: &mut ByteReader<'_>) -> Result<Request, SnapshotError> {
    Ok(Request {
        core: r.take_u32()?,
        tag: r.take_u8()?,
        addr: r.take_u32()?,
        kind: take_kind(r)?,
        issued_at: r.take_u64()?,
    })
}

fn put_resp(out: &mut dyn StateSink, resp: &Response) {
    out.put_u32(resp.core);
    out.put_u8(resp.tag);
    out.put_u32(resp.data);
    out.put_u64(resp.issued_at);
    out.put_bool(resp.is_write);
}

fn take_resp(r: &mut ByteReader<'_>) -> Result<Response, SnapshotError> {
    Ok(Response {
        core: r.take_u32()?,
        tag: r.take_u8()?,
        data: r.take_u32()?,
        issued_at: r.take_u64()?,
        is_write: r.take_bool()?,
    })
}

fn put_opt_req(out: &mut dyn StateSink, latch: &Option<Request>) {
    match latch {
        None => out.put_bool(false),
        Some(req) => {
            out.put_bool(true);
            put_req(out, req);
        }
    }
}

fn take_opt_req(r: &mut ByteReader<'_>) -> Result<Option<Request>, SnapshotError> {
    Ok(if r.take_bool()? { Some(take_req(r)?) } else { None })
}

fn put_opt_resp(out: &mut dyn StateSink, latch: &Option<Response>) {
    match latch {
        None => out.put_bool(false),
        Some(resp) => {
            out.put_bool(true);
            put_resp(out, resp);
        }
    }
}

fn take_opt_resp(r: &mut ByteReader<'_>) -> Result<Option<Response>, SnapshotError> {
    Ok(if r.take_bool()? { Some(take_resp(r)?) } else { None })
}

// ---------------------------------------------------------------------------
// Structural codecs: elastic buffers, fabrics, arbiters.
// ---------------------------------------------------------------------------

fn save_ebuf<T>(
    out: &mut dyn StateSink,
    buf: &ElasticBuffer<T>,
    enc: impl Fn(&mut dyn StateSink, &T),
) {
    let stored: Vec<&T> = buf.iter().collect();
    out.put_u64(stored.len() as u64);
    for item in stored {
        enc(out, item);
    }
    let arrivals: Vec<&T> = buf.iter_arrivals().collect();
    out.put_u64(arrivals.len() as u64);
    for item in arrivals {
        enc(out, item);
    }
    out.put_bool(buf.is_stalled());
    out.put_u64(buf.pushes());
}

fn load_ebuf<T>(
    r: &mut ByteReader<'_>,
    buf: &mut ElasticBuffer<T>,
    dec: impl Fn(&mut ByteReader<'_>) -> Result<T, SnapshotError>,
) -> Result<(), SnapshotError> {
    let ns = r.take_u64()? as usize;
    let mut stored = Vec::new();
    for _ in 0..ns {
        stored.push(dec(r)?);
    }
    let na = r.take_u64()? as usize;
    let mut arrivals = Vec::new();
    for _ in 0..na {
        arrivals.push(dec(r)?);
    }
    let stalled = r.take_bool()?;
    let pushes = r.take_u64()?;
    if stored.len() + arrivals.len() > buf.capacity() {
        return Err(SnapshotError::Corrupt("elastic buffer occupancy"));
    }
    buf.load(stored, arrivals, stalled);
    buf.set_pushes(pushes);
    Ok(())
}

fn save_fabric(out: &mut dyn StateSink, fabric: &Fabric) {
    let pointers = fabric.arbiter_pointers();
    out.put_u64(pointers.len() as u64);
    for p in pointers {
        out.put_u64(p as u64);
    }
    for g in fabric.arbiter_grants() {
        out.put_u64(g);
    }
}

fn load_fabric(r: &mut ByteReader<'_>, fabric: &mut Fabric) -> Result<(), SnapshotError> {
    let n = r.take_u64()? as usize;
    if n != fabric.arbiter_pointers().len() {
        return Err(SnapshotError::Corrupt("fabric arbiter count"));
    }
    let mut pointers = Vec::with_capacity(n);
    for _ in 0..n {
        pointers.push(r.take_u64()? as usize);
    }
    fabric.set_arbiter_pointers(&pointers);
    let mut grants = Vec::with_capacity(n);
    for _ in 0..n {
        grants.push(r.take_u64()?);
    }
    fabric.set_arbiter_grants(&grants);
    Ok(())
}

fn save_rr_list(out: &mut dyn StateSink, rrs: &[RoundRobin]) {
    out.put_u64(rrs.len() as u64);
    for rr in rrs {
        out.put_u64(rr.pointer() as u64);
        out.put_u64(rr.grants());
    }
}

fn load_rr_list(r: &mut ByteReader<'_>, rrs: &mut [RoundRobin]) -> Result<(), SnapshotError> {
    let n = r.take_u64()? as usize;
    if n != rrs.len() {
        return Err(SnapshotError::Corrupt("round-robin arbiter count"));
    }
    for rr in rrs {
        rr.set_pointer(r.take_u64()? as usize);
        rr.set_grants(r.take_u64()?);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// SnitchCore: the cycle-accurate core model is checkpointable.
// ---------------------------------------------------------------------------

impl CoreState for SnitchCore {
    fn encode_state(&self, out: &mut dyn StateSink) {
        let s = SnitchCore::save_state(self);
        out.put_u32(s.pc);
        for reg in s.regs {
            out.put_u32(reg);
        }
        out.put_u32(s.scoreboard);
        out.put_u64(s.lsu.len() as u64);
        for slot in &s.lsu {
            match slot {
                None => out.put_bool(false),
                Some(sl) => {
                    out.put_bool(true);
                    out.put_u8(sl.dest.map_or(0xff, Reg::index));
                    match sl.load {
                        None => out.put_u8(0xff),
                        Some(op) => put_load_op(out, op),
                    }
                    out.put_u32(sl.byte_offset);
                }
            }
        }
        out.put_bool(s.halted);
        out.put_bool(s.faulted);
        out.put_u32(s.exec_busy);
        out.put_bool(s.fencing);
        out.put_u32(s.mscratch);
        let st = s.stats;
        for v in [
            st.instret,
            st.cycles,
            st.loads,
            st.stores,
            st.amos,
            st.muls,
            st.divs,
            st.taken_branches,
            st.stall_scoreboard,
            st.stall_lsu_full,
            st.stall_port,
            st.stall_fetch,
            st.stall_fence,
            st.stall_exec,
            st.halted_cycles,
        ] {
            out.put_u64(v);
        }
        out.put_u32(s.region);
        match &s.profile {
            None => out.put_bool(false),
            Some(p) => {
                out.put_bool(true);
                out.put_u64(p.max_pcs() as u64);
                out.put_u64(p.tracked_pcs() as u64);
                for (region, pc, c) in p.pcs() {
                    out.put_u32(region);
                    out.put_u32(pc);
                    put_pc_counters(out, c);
                }
                put_pc_counters(out, p.overflow());
                for rc in p.regions() {
                    put_region_counters(out, rc);
                }
            }
        }
    }

    fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), SnapshotError> {
        let mut s = SnitchCore::save_state(self);
        s.pc = r.take_u32()?;
        for reg in &mut s.regs {
            *reg = r.take_u32()?;
        }
        s.scoreboard = r.take_u32()?;
        let depth = r.take_u64()? as usize;
        if depth != s.lsu.len() {
            return Err(SnapshotError::Corrupt("LSU depth"));
        }
        for slot in &mut s.lsu {
            *slot = if r.take_bool()? {
                let dest = match r.take_u8()? {
                    0xff => None,
                    idx => Some(Reg::new(idx).ok_or(SnapshotError::Corrupt("register index"))?),
                };
                let load = {
                    let mut probe = r.clone();
                    if probe.take_u8()? == 0xff {
                        *r = probe;
                        None
                    } else {
                        Some(take_load_op(r)?)
                    }
                };
                Some(mempool_snitch::LsuSlotState {
                    dest,
                    load,
                    byte_offset: r.take_u32()?,
                })
            } else {
                None
            };
        }
        s.halted = r.take_bool()?;
        s.faulted = r.take_bool()?;
        s.exec_busy = r.take_u32()?;
        s.fencing = r.take_bool()?;
        s.mscratch = r.take_u32()?;
        let st = &mut s.stats;
        for field in [
            &mut st.instret,
            &mut st.cycles,
            &mut st.loads,
            &mut st.stores,
            &mut st.amos,
            &mut st.muls,
            &mut st.divs,
            &mut st.taken_branches,
            &mut st.stall_scoreboard,
            &mut st.stall_lsu_full,
            &mut st.stall_port,
            &mut st.stall_fetch,
            &mut st.stall_fence,
            &mut st.stall_exec,
            &mut st.halted_cycles,
        ] {
            *field = r.take_u64()?;
        }
        s.region = r.take_u32()?;
        s.profile = if r.take_bool()? {
            let max_pcs = r.take_u64()? as usize;
            let n = r.take_u64()? as usize;
            if n > max_pcs.max(1) {
                return Err(SnapshotError::Corrupt("profile entry count"));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let region = r.take_u32()?;
                let pc = r.take_u32()?;
                entries.push((region, pc, take_pc_counters(r)?));
            }
            let overflow = take_pc_counters(r)?;
            let mut regions = [RegionCounters::default(); REGION_SLOTS];
            for rc in &mut regions {
                *rc = take_region_counters(r)?;
            }
            Some(CoreProfile::from_parts(max_pcs, entries, overflow, regions))
        } else {
            None
        };
        self.restore_state(&s);
        Ok(())
    }
}

fn put_pc_counters(out: &mut dyn StateSink, c: &PcCounters) {
    out.put_u64(c.retired);
    for &v in &c.stalls {
        out.put_u64(v);
    }
}

fn take_pc_counters(r: &mut ByteReader<'_>) -> Result<PcCounters, SnapshotError> {
    let mut c = PcCounters {
        retired: r.take_u64()?,
        ..PcCounters::default()
    };
    for v in &mut c.stalls {
        *v = r.take_u64()?;
    }
    Ok(c)
}

fn put_region_counters(out: &mut dyn StateSink, c: &RegionCounters) {
    out.put_u64(c.retired);
    for &v in &c.stalls {
        out.put_u64(v);
    }
}

fn take_region_counters(r: &mut ByteReader<'_>) -> Result<RegionCounters, SnapshotError> {
    let mut c = RegionCounters {
        retired: r.take_u64()?,
        ..RegionCounters::default()
    };
    for v in &mut c.stalls {
        *v = r.take_u64()?;
    }
    Ok(c)
}

fn put_tile_activity(out: &mut dyn StateSink, a: &crate::TileActivity) {
    for v in [
        a.instret,
        a.muls,
        a.divs,
        a.memory_ops,
        a.icache_fetches,
        a.icache_refills,
        a.bank_accesses,
    ] {
        out.put_u64(v);
    }
}

fn take_tile_activity(r: &mut ByteReader<'_>) -> Result<crate::TileActivity, SnapshotError> {
    let mut a = crate::TileActivity::default();
    for field in [
        &mut a.instret,
        &mut a.muls,
        &mut a.divs,
        &mut a.memory_ops,
        &mut a.icache_fetches,
        &mut a.icache_refills,
        &mut a.bank_accesses,
    ] {
        *field = r.take_u64()?;
    }
    Ok(a)
}

// ---------------------------------------------------------------------------
// The snapshot container.
// ---------------------------------------------------------------------------

/// A complete, versioned checkpoint of a [`Cluster`]'s architectural and
/// micro-architectural state.
///
/// Layout: a 56-byte header (magic, version, configuration digest, program
/// digest, state digest, cycle, input-section digest, input-section length),
/// an *input* section (fault-plan parameters and the scheduled bank-failure
/// list — snapshotted but excluded from the state digest), and the *state*
/// section covering every core, bank, pipeline register, arbiter pointer,
/// retry-layer entry, and statistics counter. The state digest in the
/// header is the FNV-1a hash of the state section, identical to what
/// [`Cluster::state_digest`] reports on the captured cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSnapshot {
    bytes: Vec<u8>,
}

impl ClusterSnapshot {
    fn u32_at(&self, offset: usize) -> u32 {
        u32::from_le_bytes(self.bytes[offset..offset + 4].try_into().expect("in header"))
    }

    fn u64_at(&self, offset: usize) -> u64 {
        u64::from_le_bytes(self.bytes[offset..offset + 8].try_into().expect("in header"))
    }

    /// The snapshot format version.
    pub fn version(&self) -> u32 {
        self.u32_at(4)
    }

    /// Digest of the cluster configuration the snapshot was taken under.
    pub fn config_digest(&self) -> u64 {
        self.u64_at(8)
    }

    /// Digest of the loaded program image.
    pub fn image_digest(&self) -> u64 {
        self.u64_at(16)
    }

    /// The canonical state digest at capture time.
    pub fn state_digest(&self) -> u64 {
        self.u64_at(24)
    }

    /// The cycle count at capture time.
    pub fn cycle(&self) -> u64 {
        self.u64_at(32)
    }

    fn section_a(&self) -> &[u8] {
        let len_a = self.u64_at(48) as usize;
        &self.bytes[HEADER_LEN..HEADER_LEN + len_a]
    }

    fn section_b(&self) -> &[u8] {
        let len_a = self.u64_at(48) as usize;
        &self.bytes[HEADER_LEN + len_a..]
    }

    /// The raw serialized image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Parses and validates a serialized snapshot: magic, version, and both
    /// section digests must check out.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`], [`SnapshotError::UnsupportedVersion`],
    /// [`SnapshotError::Truncated`], or [`SnapshotError::DigestMismatch`].
    pub fn from_bytes(bytes: &[u8]) -> Result<ClusterSnapshot, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        let snap = ClusterSnapshot {
            bytes: bytes.to_vec(),
        };
        if snap.u32_at(0) != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if snap.version() != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(snap.version()));
        }
        let len_a = snap.u64_at(48) as usize;
        if HEADER_LEN + len_a > bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        if fnv64(snap.section_a()) != snap.u64_at(40) {
            return Err(SnapshotError::DigestMismatch);
        }
        if fnv64(snap.section_b()) != snap.state_digest() {
            return Err(SnapshotError::DigestMismatch);
        }
        Ok(snap)
    }

    /// Writes the snapshot to `path` atomically (temp file + rename), so a
    /// crash mid-write never leaves a truncated checkpoint behind.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error.
    pub fn write_file(&self, path: &Path) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &self.bytes)?;
        std::fs::rename(&tmp, path)
    }

    /// Reads and validates a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`SnapshotError`]s mapped to
    /// [`io::ErrorKind::InvalidData`].
    pub fn read_file(path: &Path) -> io::Result<ClusterSnapshot> {
        let bytes = std::fs::read(path)?;
        ClusterSnapshot::from_bytes(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Digest identifying a [`ClusterConfig`] (formatting-based: two configs
/// digest equal iff they compare equal field-for-field).
pub(crate) fn config_digest(config: &ClusterConfig) -> u64 {
    fnv64(format!("{config:?}").as_bytes())
}

// ---------------------------------------------------------------------------
// Cluster encode/decode.
// ---------------------------------------------------------------------------

fn save_tile(out: &mut dyn StateSink, tile: &Tile) {
    for bank in &tile.banks {
        let words = bank.words();
        out.put_u64(words.len() as u64);
        for &w in words {
            out.put_u32(w);
        }
        let reservations = bank.reservations();
        out.put_u64(reservations.len() as u64);
        for &(hart, row) in reservations {
            out.put_u32(hart);
            out.put_u32(row);
        }
        out.put_u64(bank.accesses());
    }
    for reg in &tile.bank_resp {
        save_ebuf(out, reg, |o, resp| put_resp(o, resp));
    }
    save_fabric(out, &tile.req_fabric);
    save_fabric(out, &tile.resp_fabric);
    out.put_u64(tile.slave_req.len() as u64);
    for latch in &tile.slave_req {
        put_opt_req(out, latch);
    }
    for latch in &tile.resp_out {
        put_opt_resp(out, latch);
    }
    out.put_u64(tile.icache.tick());
    let cs = tile.icache.stats();
    out.put_u64(cs.hits);
    out.put_u64(cs.misses);
    let ways: Vec<(u32, bool, u64)> = tile.icache.ways().collect();
    out.put_u64(ways.len() as u64);
    for (tag, valid, lru) in ways {
        out.put_u32(tag);
        out.put_bool(valid);
        out.put_u64(lru);
    }
    out.put_u64(tile.refill.pending.len() as u64);
    for &line in &tile.refill.pending {
        out.put_u32(line);
    }
    out.put_u64(tile.refill.outbox.len() as u64);
    for &line in &tile.refill.outbox {
        out.put_u32(line);
    }
    match tile.refill.in_flight {
        None => out.put_bool(false),
        Some((line, done_at)) => {
            out.put_bool(true);
            out.put_u32(line);
            out.put_u64(done_at);
        }
    }
    out.put_u64(tile.refill.refills);
}

fn load_tile(r: &mut ByteReader<'_>, tile: &mut Tile) -> Result<(), SnapshotError> {
    for bank in &mut tile.banks {
        let n = r.take_u64()? as usize;
        if n != bank.words().len() {
            return Err(SnapshotError::Corrupt("bank row count"));
        }
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(r.take_u32()?);
        }
        let nr = r.take_u64()? as usize;
        let mut reservations = Vec::with_capacity(nr);
        for _ in 0..nr {
            reservations.push((r.take_u32()?, r.take_u32()?));
        }
        bank.load(&words, &reservations);
        bank.set_accesses(r.take_u64()?);
    }
    for reg in &mut tile.bank_resp {
        load_ebuf(r, reg, take_resp)?;
    }
    load_fabric(r, &mut tile.req_fabric)?;
    load_fabric(r, &mut tile.resp_fabric)?;
    let ports = r.take_u64()? as usize;
    if ports != tile.slave_req.len() {
        return Err(SnapshotError::Corrupt("remote port count"));
    }
    for latch in &mut tile.slave_req {
        *latch = take_opt_req(r)?;
    }
    for latch in &mut tile.resp_out {
        *latch = take_opt_resp(r)?;
    }
    let tick = r.take_u64()?;
    let cache_stats = mempool_mem::CacheStats {
        hits: r.take_u64()?,
        misses: r.take_u64()?,
    };
    let nways = r.take_u64()? as usize;
    if nways != tile.icache.ways().count() {
        return Err(SnapshotError::Corrupt("icache way count"));
    }
    let mut ways = Vec::with_capacity(nways);
    for _ in 0..nways {
        ways.push((r.take_u32()?, r.take_bool()?, r.take_u64()?));
    }
    tile.icache.load(ways, tick, cache_stats);
    let np = r.take_u64()? as usize;
    tile.refill.pending.clear();
    for _ in 0..np {
        tile.refill.pending.push(r.take_u32()?);
    }
    let no = r.take_u64()? as usize;
    tile.refill.outbox.clear();
    for _ in 0..no {
        tile.refill.outbox.push_back(r.take_u32()?);
    }
    tile.refill.in_flight = if r.take_bool()? {
        Some((r.take_u32()?, r.take_u64()?))
    } else {
        None
    };
    tile.refill.refills = r.take_u64()?;
    Ok(())
}

fn save_net(out: &mut dyn StateSink, net: &Net) {
    match net {
        Net::Ideal(n) => save_rr_list(out, &n.rr),
        Net::Global(n) => {
            save_rr_list(out, &n.rr_concentrator);
            for reg in &n.master_req {
                save_ebuf(out, reg, |o, req| put_req(o, req));
            }
            for reg in &n.master_resp {
                save_ebuf(out, reg, |o, resp| put_resp(o, resp));
            }
            for port in &n.mid_req {
                for reg in port {
                    save_ebuf(out, reg, |o, req| put_req(o, req));
                }
            }
            for port in &n.mid_resp {
                for reg in port {
                    save_ebuf(out, reg, |o, resp| put_resp(o, resp));
                }
            }
            for fabric in n.req_a.iter().chain(&n.req_b).chain(&n.resp_a).chain(&n.resp_b) {
                save_fabric(out, fabric);
            }
        }
        Net::Hier(n) => {
            for fabric in &n.port_router {
                save_fabric(out, fabric);
            }
            for reg in &n.master_req {
                save_ebuf(out, reg, |o, req| put_req(o, req));
            }
            for reg in &n.master_resp {
                save_ebuf(out, reg, |o, resp| put_resp(o, resp));
            }
            for reg in &n.boundary_req {
                save_ebuf(out, reg, |o, req| put_req(o, req));
            }
            for reg in &n.boundary_resp {
                save_ebuf(out, reg, |o, resp| put_resp(o, resp));
            }
            for fabric in n
                .local_req
                .iter()
                .chain(&n.local_resp)
                .chain(&n.inter_req)
                .chain(&n.inter_resp)
            {
                save_fabric(out, fabric);
            }
        }
    }
}

fn load_net(r: &mut ByteReader<'_>, net: &mut Net) -> Result<(), SnapshotError> {
    match net {
        Net::Ideal(n) => load_rr_list(r, &mut n.rr)?,
        Net::Global(n) => {
            load_rr_list(r, &mut n.rr_concentrator)?;
            for reg in &mut n.master_req {
                load_ebuf(r, reg, take_req)?;
            }
            for reg in &mut n.master_resp {
                load_ebuf(r, reg, take_resp)?;
            }
            for port in &mut n.mid_req {
                for reg in port {
                    load_ebuf(r, reg, take_req)?;
                }
            }
            for port in &mut n.mid_resp {
                for reg in port {
                    load_ebuf(r, reg, take_resp)?;
                }
            }
            for fabric in n
                .req_a
                .iter_mut()
                .chain(&mut n.req_b)
                .chain(&mut n.resp_a)
                .chain(&mut n.resp_b)
            {
                load_fabric(r, fabric)?;
            }
        }
        Net::Hier(n) => {
            for fabric in &mut n.port_router {
                load_fabric(r, fabric)?;
            }
            for reg in &mut n.master_req {
                load_ebuf(r, reg, take_req)?;
            }
            for reg in &mut n.master_resp {
                load_ebuf(r, reg, take_resp)?;
            }
            for reg in &mut n.boundary_req {
                load_ebuf(r, reg, take_req)?;
            }
            for reg in &mut n.boundary_resp {
                load_ebuf(r, reg, take_resp)?;
            }
            for fabric in n
                .local_req
                .iter_mut()
                .chain(&mut n.local_resp)
                .chain(&mut n.inter_req)
                .chain(&mut n.inter_resp)
            {
                load_fabric(r, fabric)?;
            }
        }
    }
    Ok(())
}

fn save_ring(out: &mut dyn StateSink, ring: &RefillRing) {
    for slot in ring.ring.slots() {
        match slot {
            None => out.put_bool(false),
            Some((dest, pkt)) => {
                out.put_bool(true);
                out.put_u64(dest as u64);
                out.put_u64(pkt.tile as u64);
                out.put_u32(pkt.line);
            }
        }
    }
    for stop in 0..ring.ring.stops() {
        let queued: Vec<&RefillPacket> = ring.ring.output(stop).collect();
        out.put_u64(queued.len() as u64);
        for pkt in queued {
            out.put_u64(pkt.tile as u64);
            out.put_u32(pkt.line);
        }
    }
    out.put_u64(ring.serving.len() as u64);
    for &(ready, tile, line) in &ring.serving {
        out.put_u64(ready);
        out.put_u64(tile as u64);
        out.put_u32(line);
    }
    out.put_u64(ring.ring.injected());
    out.put_u64(ring.ring.ejected());
}

fn load_ring(r: &mut ByteReader<'_>, ring: &mut RefillRing) -> Result<(), SnapshotError> {
    let stops = ring.ring.stops();
    let mut slots = Vec::with_capacity(stops);
    for _ in 0..stops {
        slots.push(if r.take_bool()? {
            let dest = r.take_u64()? as usize;
            if dest >= stops {
                return Err(SnapshotError::Corrupt("ring destination"));
            }
            let tile = r.take_u64()? as usize;
            let line = r.take_u32()?;
            Some((dest, RefillPacket { tile, line }))
        } else {
            None
        });
    }
    let mut outputs = Vec::with_capacity(stops);
    for _ in 0..stops {
        let n = r.take_u64()? as usize;
        let mut queue = Vec::with_capacity(n);
        for _ in 0..n {
            let tile = r.take_u64()? as usize;
            let line = r.take_u32()?;
            queue.push(RefillPacket { tile, line });
        }
        outputs.push(queue);
    }
    ring.ring.load(slots, outputs);
    let ns = r.take_u64()? as usize;
    ring.serving.clear();
    for _ in 0..ns {
        let ready = r.take_u64()?;
        let tile = r.take_u64()? as usize;
        let line = r.take_u32()?;
        ring.serving.push_back((ready, tile, line));
    }
    let injected = r.take_u64()?;
    let ejected = r.take_u64()?;
    ring.ring.set_counters(injected, ejected);
    Ok(())
}

fn put_fault_event(out: &mut dyn StateSink, event: &FaultEvent) {
    match *event {
        FaultEvent::BankFailed {
            cycle,
            tile,
            bank,
            substitute,
        } => {
            out.put_u8(0);
            out.put_u64(cycle);
            out.put_u32(tile);
            out.put_u32(bank);
            match substitute {
                None => out.put_bool(false),
                Some(s) => {
                    out.put_bool(true);
                    out.put_u32(s);
                }
            }
        }
        FaultEvent::RequestAbandoned {
            cycle,
            core,
            addr,
            retries,
        } => {
            out.put_u8(1);
            out.put_u64(cycle);
            out.put_u32(core);
            out.put_u32(addr);
            out.put_u32(retries);
        }
        FaultEvent::CoreLocked { cycle, core, until } => {
            out.put_u8(2);
            out.put_u64(cycle);
            out.put_u32(core);
            out.put_u64(until);
        }
    }
}

fn take_fault_event(r: &mut ByteReader<'_>) -> Result<FaultEvent, SnapshotError> {
    Ok(match r.take_u8()? {
        0 => FaultEvent::BankFailed {
            cycle: r.take_u64()?,
            tile: r.take_u32()?,
            bank: r.take_u32()?,
            substitute: if r.take_bool()? { Some(r.take_u32()?) } else { None },
        },
        1 => FaultEvent::RequestAbandoned {
            cycle: r.take_u64()?,
            core: r.take_u32()?,
            addr: r.take_u32()?,
            retries: r.take_u32()?,
        },
        2 => FaultEvent::CoreLocked {
            cycle: r.take_u64()?,
            core: r.take_u32()?,
            until: r.take_u64()?,
        },
        _ => return Err(SnapshotError::Corrupt("fault event kind")),
    })
}

impl<C: CoreState> Cluster<C> {
    fn encode_globals(&self, out: &mut dyn StateSink) {
        out.put_u64(self.now);
        out.put_u64(self.in_flight);
        out.put_u64(self.next_failure as u64);
        out.put_u64(self.last_progress);
        out.put_u64(self.progress_mark);
    }

    fn encode_core(&self, i: usize, out: &mut dyn StateSink) {
        self.cores[i].encode_state(out);
        put_opt_req(out, &self.out_latches[i]);
        out.put_u64(self.locked_until[i]);
    }

    fn encode_pending(&self, out: &mut dyn StateSink) {
        out.put_u64(self.pending.len() as u64);
        for (&(core, tag), p) in &self.pending {
            out.put_u32(core);
            out.put_u8(tag);
            out.put_u32(p.addr);
            put_kind(out, p.kind);
            out.put_u64(p.issued_at);
            out.put_u64(p.last_sent);
            out.put_u32(p.retries);
        }
    }

    fn encode_quarantine(&self, out: &mut dyn StateSink) {
        let subst = self.quarantine.subst_table();
        out.put_u64(subst.len() as u64);
        for &s in subst {
            out.put_u32(s);
        }
        for &d in self.quarantine.dead_flags() {
            out.put_bool(d);
        }
    }

    fn encode_fault_log(&self, out: &mut dyn StateSink) {
        out.put_u64(self.fault_log.capacity() as u64);
        out.put_u64(self.fault_log.dropped());
        out.put_u64(self.fault_log.len() as u64);
        for event in self.fault_log.events() {
            put_fault_event(out, event);
        }
    }

    fn encode_stats(&self, out: &mut dyn StateSink) {
        let s = &self.stats;
        out.put_u64(s.cycles);
        out.put_u64(s.requests_issued);
        out.put_u64(s.bank_accesses);
        out.put_u64(s.responses_delivered);
        out.put_u64(s.local_requests);
        out.put_u64(s.remote_requests);
        out.put_u64(s.group_local_requests);
        for &d in &s.direction_requests {
            out.put_u64(d);
        }
        s.latency.save_state(out);
        out.put_u64(s.icache_refills);
        out.put_u64(s.memory_faults);
        out.put_u64(s.net_occupancy_sum);
        out.put_u64(s.net_register_slots);
        out.put_u64(s.tile_accesses.len() as u64);
        for &t in &s.tile_accesses {
            out.put_u64(t);
        }
        let f = &s.faults;
        for v in [
            f.bank_stalls,
            f.banks_failed,
            f.banks_quarantined,
            f.quarantine_remaps,
            f.requests_dropped,
            f.link_stalls,
            f.link_drops,
            f.link_corruptions,
            f.ring_stalls,
            f.ring_drops,
            f.core_lockups,
            f.spurious_retires,
            f.request_timeouts,
            f.request_retries,
            f.requests_abandoned,
            f.stale_responses,
        ] {
            out.put_u64(v);
        }
    }

    fn encode_obs(&self, out: &mut dyn StateSink) {
        match &self.obs {
            None => out.put_bool(false),
            Some(obs) => {
                out.put_bool(true);
                out.put_u64(obs.config.trace_sample_every);
                out.put_u64(obs.config.trace_capacity as u64);
                for h in &obs.tile_latency {
                    h.save_state(out);
                }
                out.put_u64(obs.spans.len() as u64);
                for s in &obs.spans {
                    out.put_u32(s.core);
                    out.put_u32(s.tile);
                    out.put_u64(s.issued_at);
                    out.put_u64(s.latency);
                }
                out.put_u64(obs.deliveries_seen);
                out.put_u64(obs.dropped_spans);
            }
        }
    }

    fn encode_profile(&self, out: &mut dyn StateSink) {
        match &self.profiler {
            None => out.put_bool(false),
            Some(p) => {
                out.put_bool(true);
                out.put_u64(p.config.max_pcs as u64);
                out.put_u64(p.config.power_window);
                out.put_u64(p.window_start);
                for t in &p.mark.tiles {
                    put_tile_activity(out, t);
                }
                out.put_u64(p.mark.local_requests);
                out.put_u64(p.mark.remote_requests);
                out.put_u64(p.windows.len() as u64);
                for w in &p.windows {
                    out.put_u64(w.start);
                    out.put_u64(w.end);
                    for t in &w.tiles {
                        put_tile_activity(out, t);
                    }
                    out.put_u64(w.local_requests);
                    out.put_u64(w.remote_requests);
                }
            }
        }
    }

    /// Streams the digested state section: every component in canonical
    /// order.
    fn encode_section_b(&self, out: &mut dyn StateSink) {
        self.encode_globals(out);
        for i in 0..self.cores.len() {
            self.encode_core(i, out);
        }
        self.encode_pending(out);
        for tile in &self.tiles {
            save_tile(out, tile);
        }
        save_net(out, &self.net);
        match &self.refill_ring {
            None => out.put_bool(false),
            Some(ring) => {
                out.put_bool(true);
                save_ring(out, ring);
            }
        }
        self.encode_quarantine(out);
        self.encode_fault_log(out);
        self.encode_stats(out);
        self.encode_obs(out);
        self.encode_profile(out);
    }

    /// Streams the input section: fault-plan parameters and the scheduled
    /// bank-failure list (snapshotted for resumption, excluded from the
    /// state digest).
    fn encode_section_a(&self, out: &mut dyn StateSink) {
        match &self.faults {
            None => out.put_bool(false),
            Some(plan) => {
                out.put_bool(true);
                out.put_u64(plan.seed());
                let spec = plan.spec();
                out.put_u32(spec.bank_fail);
                for p in [
                    spec.bank_stall,
                    spec.link_stall,
                    spec.link_drop,
                    spec.link_corrupt,
                    spec.ring_stall,
                    spec.ring_drop,
                    spec.core_lockup,
                    spec.spurious_retire,
                ] {
                    out.put_f64(p);
                }
            }
        }
        out.put_u64(self.pending_failures.len() as u64);
        for f in &self.pending_failures {
            out.put_u64(f.cycle);
            out.put_u32(f.tile);
            out.put_u32(f.bank);
        }
    }

    /// The canonical FNV-1a digest over the cluster's complete dynamic
    /// state: cores (registers, PCs, LSU queues), SPM banks, I-caches,
    /// every interconnect register stage and arbiter pointer, the retry
    /// layer, quarantine, fault log, and statistics.
    ///
    /// Two runs of the same program under the same seeds produce identical
    /// digests at every cycle; the fault-plan *parameters* are excluded so
    /// a faulted and a fault-free run compare meaningfully until the first
    /// injected fault takes effect (see [`bisect_divergence`]).
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        self.encode_section_b(&mut h);
        h.finish()
    }

    /// Per-component digests in canonical order — the per-tile /
    /// per-structure view a [`DivergenceReport`] diffs.
    pub fn component_digests(&self) -> Vec<(String, u64)> {
        let digest_of = |enc: &dyn Fn(&mut dyn StateSink)| {
            let mut h = Fnv::new();
            enc(&mut h);
            h.finish()
        };
        let mut components = Vec::with_capacity(self.cores.len() + self.tiles.len() + 6);
        components.push(("globals".to_owned(), digest_of(&|out| self.encode_globals(out))));
        for i in 0..self.cores.len() {
            components.push((format!("core{i}"), digest_of(&|out| self.encode_core(i, out))));
        }
        components.push(("pending".to_owned(), digest_of(&|out| self.encode_pending(out))));
        for (t, tile) in self.tiles.iter().enumerate() {
            components.push((format!("tile{t}"), digest_of(&|out| save_tile(out, tile))));
        }
        components.push(("net".to_owned(), digest_of(&|out| save_net(out, &self.net))));
        if let Some(ring) = &self.refill_ring {
            components.push(("refill-ring".to_owned(), digest_of(&|out| save_ring(out, ring))));
        }
        components.push((
            "quarantine".to_owned(),
            digest_of(&|out| self.encode_quarantine(out)),
        ));
        components.push((
            "fault-log".to_owned(),
            digest_of(&|out| self.encode_fault_log(out)),
        ));
        components.push(("stats".to_owned(), digest_of(&|out| self.encode_stats(out))));
        components.push(("obs".to_owned(), digest_of(&|out| self.encode_obs(out))));
        components.push((
            "profile".to_owned(),
            digest_of(&|out| self.encode_profile(out)),
        ));
        components
    }

    /// Captures a complete checkpoint of the cluster.
    ///
    /// The invariant the snapshot tests pin down: restoring this snapshot
    /// into a same-configured cluster (same program loaded) and continuing
    /// is cycle-for-cycle bit-identical to never having snapshotted.
    pub fn snapshot(&self) -> ClusterSnapshot {
        let mut a = Vec::new();
        self.encode_section_a(&mut a);
        let mut b = Vec::new();
        self.encode_section_b(&mut b);
        let mut bytes = Vec::with_capacity(HEADER_LEN + a.len() + b.len());
        bytes.put_u32(MAGIC);
        bytes.put_u32(SNAPSHOT_VERSION);
        bytes.put_u64(config_digest(&self.config));
        bytes.put_u64(self.image.digest());
        bytes.put_u64(fnv64(&b));
        bytes.put_u64(self.now);
        bytes.put_u64(fnv64(&a));
        bytes.put_u64(a.len() as u64);
        bytes.extend_from_slice(&a);
        bytes.extend_from_slice(&b);
        ClusterSnapshot { bytes }
    }

    /// Restores the cluster to the exact state captured in `snap`.
    ///
    /// The cluster must have been built with the same configuration and
    /// have the same program loaded (both are digest-checked); everything
    /// else — cores, memory, network, fault and retry state, statistics —
    /// is overwritten.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::ConfigMismatch`] / [`SnapshotError::ImageMismatch`]
    /// when the snapshot belongs to a different cluster or program, and
    /// decode errors when the image is inconsistent. On error the cluster
    /// may be left partially restored; restore again (or discard it).
    pub fn restore(&mut self, snap: &ClusterSnapshot) -> Result<(), SnapshotError> {
        if snap.config_digest() != config_digest(&self.config) {
            return Err(SnapshotError::ConfigMismatch);
        }
        if snap.image_digest() != self.image.digest() {
            return Err(SnapshotError::ImageMismatch);
        }

        let mut ra = ByteReader::new(snap.section_a());
        self.faults = if ra.take_bool()? {
            let seed = ra.take_u64()?;
            let spec = FaultSpec {
                bank_fail: ra.take_u32()?,
                bank_stall: ra.take_f64()?,
                link_stall: ra.take_f64()?,
                link_drop: ra.take_f64()?,
                link_corrupt: ra.take_f64()?,
                ring_stall: ra.take_f64()?,
                ring_drop: ra.take_f64()?,
                core_lockup: ra.take_f64()?,
                spurious_retire: ra.take_f64()?,
            };
            Some(FaultPlan::new(seed, spec))
        } else {
            None
        };
        let nf = ra.take_u64()? as usize;
        self.pending_failures.clear();
        for _ in 0..nf {
            self.pending_failures.push(BankFailure {
                cycle: ra.take_u64()?,
                tile: ra.take_u32()?,
                bank: ra.take_u32()?,
            });
        }
        if !ra.is_empty() {
            return Err(SnapshotError::Corrupt("trailing input-section bytes"));
        }

        let r = &mut ByteReader::new(snap.section_b());
        self.now = r.take_u64()?;
        self.in_flight = r.take_u64()?;
        self.next_failure = r.take_u64()? as usize;
        self.last_progress = r.take_u64()?;
        self.progress_mark = r.take_u64()?;
        for i in 0..self.cores.len() {
            self.cores[i].decode_state(r)?;
            self.out_latches[i] = take_opt_req(r)?;
            self.locked_until[i] = r.take_u64()?;
        }
        let np = r.take_u64()? as usize;
        self.pending.clear();
        for _ in 0..np {
            let core = r.take_u32()?;
            let tag = r.take_u8()?;
            let p = PendingRequest {
                addr: r.take_u32()?,
                kind: take_kind(r)?,
                issued_at: r.take_u64()?,
                last_sent: r.take_u64()?,
                retries: r.take_u32()?,
            };
            self.pending.insert((core, tag), p);
        }
        for tile in &mut self.tiles {
            load_tile(r, tile)?;
        }
        load_net(r, &mut self.net)?;
        let has_ring = r.take_bool()?;
        match (&mut self.refill_ring, has_ring) {
            (Some(ring), true) => load_ring(r, ring)?,
            (None, false) => {}
            _ => return Err(SnapshotError::Corrupt("refill transport kind")),
        }
        {
            let ns = r.take_u64()? as usize;
            if ns != self.quarantine.subst_table().len() {
                return Err(SnapshotError::Corrupt("quarantine table size"));
            }
            let mut subst = Vec::with_capacity(ns);
            for _ in 0..ns {
                subst.push(r.take_u32()?);
            }
            let mut dead = Vec::with_capacity(ns);
            for _ in 0..ns {
                dead.push(r.take_bool()?);
            }
            self.quarantine.load(&subst, &dead);
        }
        {
            let capacity = r.take_u64()? as usize;
            let dropped = r.take_u64()?;
            let n = r.take_u64()? as usize;
            if n > capacity {
                return Err(SnapshotError::Corrupt("fault log length"));
            }
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(take_fault_event(r)?);
            }
            self.fault_log = FaultLog::from_parts(events, capacity, dropped);
        }
        {
            let s = &mut self.stats;
            s.cycles = r.take_u64()?;
            s.requests_issued = r.take_u64()?;
            s.bank_accesses = r.take_u64()?;
            s.responses_delivered = r.take_u64()?;
            s.local_requests = r.take_u64()?;
            s.remote_requests = r.take_u64()?;
            s.group_local_requests = r.take_u64()?;
            for d in &mut s.direction_requests {
                *d = r.take_u64()?;
            }
            s.latency.load_state(r)?;
            s.icache_refills = r.take_u64()?;
            s.memory_faults = r.take_u64()?;
            s.net_occupancy_sum = r.take_u64()?;
            s.net_register_slots = r.take_u64()?;
            let nt = r.take_u64()? as usize;
            if nt != s.tile_accesses.len() {
                return Err(SnapshotError::Corrupt("tile access counter count"));
            }
            for t in &mut s.tile_accesses {
                *t = r.take_u64()?;
            }
            let f = &mut s.faults;
            for field in [
                &mut f.bank_stalls,
                &mut f.banks_failed,
                &mut f.banks_quarantined,
                &mut f.quarantine_remaps,
                &mut f.requests_dropped,
                &mut f.link_stalls,
                &mut f.link_drops,
                &mut f.link_corruptions,
                &mut f.ring_stalls,
                &mut f.ring_drops,
                &mut f.core_lockups,
                &mut f.spurious_retires,
                &mut f.request_timeouts,
                &mut f.request_retries,
                &mut f.requests_abandoned,
                &mut f.stale_responses,
            ] {
                *field = r.take_u64()?;
            }
        }
        // The restore is authoritative for observability: a snapshot taken
        // without the recorder detaches any recorder on this cluster.
        self.obs = if r.take_bool()? {
            let config = crate::obs::ObsConfig {
                trace_sample_every: r.take_u64()?,
                trace_capacity: r.take_u64()? as usize,
            };
            let mut obs = crate::obs::Obs::new(config, self.config.num_tiles);
            for h in &mut obs.tile_latency {
                h.load_state(r)?;
            }
            let ns = r.take_u64()? as usize;
            for _ in 0..ns {
                obs.spans.push(crate::obs::TraceSpan {
                    core: r.take_u32()?,
                    tile: r.take_u32()?,
                    issued_at: r.take_u64()?,
                    latency: r.take_u64()?,
                });
            }
            obs.deliveries_seen = r.take_u64()?;
            obs.dropped_spans = r.take_u64()?;
            Some(Box::new(obs))
        } else {
            None
        };
        // Same authority for the profiler: the cluster half restores here,
        // the per-core tables were restored with each core above.
        self.profiler = if r.take_bool()? {
            let config = crate::ProfileConfig {
                max_pcs: r.take_u64()? as usize,
                power_window: r.take_u64()?,
            };
            let mut p = crate::profile::Profiler::new(config, self.config.num_tiles);
            p.window_start = r.take_u64()?;
            for t in &mut p.mark.tiles {
                *t = take_tile_activity(r)?;
            }
            p.mark.local_requests = r.take_u64()?;
            p.mark.remote_requests = r.take_u64()?;
            let nw = r.take_u64()? as usize;
            for _ in 0..nw {
                let start = r.take_u64()?;
                let end = r.take_u64()?;
                let mut tiles = Vec::with_capacity(self.config.num_tiles);
                for _ in 0..self.config.num_tiles {
                    tiles.push(take_tile_activity(r)?);
                }
                p.windows.push(crate::PowerWindow {
                    start,
                    end,
                    tiles,
                    local_requests: r.take_u64()?,
                    remote_requests: r.take_u64()?,
                });
            }
            Some(Box::new(p))
        } else {
            None
        };
        if !r.is_empty() {
            return Err(SnapshotError::Corrupt("trailing state-section bytes"));
        }
        // Transient per-cycle scratch (always drained within a cycle).
        self.deliveries.clear();
        // An attached sanitizer tracked the *pre-restore* timeline; reseed it
        // from the restored pending map so it does not report the restored
        // in-flight traffic as leaks or duplicates.
        self.resync_sanitizer();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Divergence bisection.
// ---------------------------------------------------------------------------

/// One component whose digests disagree at the first divergent cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentDiff {
    /// Component name (`core3`, `tile7`, `net`, `stats`, ...).
    pub component: String,
    /// Digest in the first cluster.
    pub left: u64,
    /// Digest in the second cluster.
    pub right: u64,
}

/// The result of [`bisect_divergence`]: where and in what two runs first
/// disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// First cycle at which the state digests differ.
    pub cycle: u64,
    /// The components (tiles, cores, structures) that differ at that cycle,
    /// in canonical order.
    pub components: Vec<ComponentDiff>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "first divergence at cycle {}:", self.cycle)?;
        for c in &self.components {
            write!(
                f,
                "\n  {}: {:#018x} vs {:#018x}",
                c.component, c.left, c.right
            )?;
        }
        Ok(())
    }
}

/// Binary-searches for the first cycle at which two clusters' state digests
/// diverge, advancing both in lock-step.
///
/// The clusters must share a geometry (so their component lists line up);
/// they may differ in fault plans — plan *parameters* are excluded from the
/// digest precisely so a faulted run and a clean run agree until the first
/// injected fault acts. Both clusters are left **at the divergent cycle**
/// (or `max_cycles` further along when no divergence was found, returning
/// `None`).
///
/// `stride` is the checkpoint interval of the forward scan: the search runs
/// both clusters `stride` cycles at a time, and on the first mismatching
/// window restores from the last agreeing checkpoint and bisects inside it.
pub fn bisect_divergence<C: Core + CoreState>(
    a: &mut Cluster<C>,
    b: &mut Cluster<C>,
    max_cycles: u64,
    stride: u64,
) -> Option<DivergenceReport> {
    let stride = stride.max(1);
    let diff = |a: &Cluster<C>, b: &Cluster<C>| -> Vec<ComponentDiff> {
        a.component_digests()
            .into_iter()
            .zip(b.component_digests())
            .filter(|((_, left), (_, right))| left != right)
            .map(|((component, left), (_, right))| ComponentDiff {
                component,
                left,
                right,
            })
            .collect()
    };
    if a.state_digest() != b.state_digest() {
        return Some(DivergenceReport {
            cycle: a.now(),
            components: diff(a, b),
        });
    }
    let mut remaining = max_cycles;
    while remaining > 0 {
        let chunk = stride.min(remaining);
        let snap_a = a.snapshot();
        let snap_b = b.snapshot();
        let base = a.now();
        a.step_cycles(chunk);
        b.step_cycles(chunk);
        if a.state_digest() == b.state_digest() {
            remaining -= chunk;
            continue;
        }
        // Diverged somewhere in (base, base + chunk]: bisect by restoring
        // to the last agreeing checkpoint and replaying partial windows.
        let (mut lo, mut hi) = (0u64, chunk);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            a.restore(&snap_a).expect("snapshot of this very cluster");
            b.restore(&snap_b).expect("snapshot of this very cluster");
            a.step_cycles(mid);
            b.step_cycles(mid);
            if a.state_digest() == b.state_digest() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        a.restore(&snap_a).expect("snapshot of this very cluster");
        b.restore(&snap_b).expect("snapshot of this very cluster");
        a.step_cycles(hi);
        b.step_cycles(hi);
        return Some(DivergenceReport {
            cycle: base + hi,
            components: diff(a, b),
        });
    }
    None
}
