//! Cluster configuration: geometry, topology selection, and validation.

use mempool_mem::{AddressMap, Scrambler};
use mempool_snitch::SnitchConfig;
use std::fmt;

/// The processor-to-L1 interconnect topology (§III-C of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// The non-implementable baseline: every bank reachable in one cycle
    /// with no routing conflicts (bank conflicts remain). Used to normalize
    /// the benchmark results (§V-C).
    Ideal,
    /// `Top1`: a single radix-4 butterfly between tiles; each tile
    /// concentrates its cores' remote traffic through one master port.
    Top1,
    /// `Top4`: four parallel radix-4 butterflies; each core owns a dedicated
    /// master port (no concentration).
    Top4,
    /// `TopH`: the hierarchical topology MemPool ships — four local groups
    /// with fully-connected 16×16 crossbars inside a group and three
    /// directional butterflies (N/NE/E) between groups.
    TopH,
}

impl Topology {
    /// Number of remote master/slave port pairs per tile.
    pub fn remote_ports(self, cores_per_tile: usize) -> usize {
        match self {
            Topology::Ideal => 0,
            Topology::Top1 => 1,
            Topology::Top4 => cores_per_tile,
            Topology::TopH => 4,
        }
    }

    /// All four topologies, in presentation order.
    pub fn all() -> [Topology; 4] {
        [Topology::Ideal, Topology::Top1, Topology::Top4, Topology::TopH]
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Topology::Ideal => "ideal",
            Topology::Top1 => "top1",
            Topology::Top4 => "top4",
            Topology::TopH => "topH",
        };
        f.write_str(name)
    }
}

/// How I-cache refills reach the backing memory.
///
/// The paper connects the tiles' 32-bit AXI refill ports "to a low-overhead
/// refill network (e.g., a ring), which is noncritical" (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefillNetwork {
    /// Abstract fixed-latency port per tile (`IcacheConfig::refill_latency`
    /// cycles per line, one line in flight per tile).
    Fixed,
    /// A modeled unidirectional ring with one stop per tile plus an L2
    /// stop: refill latency becomes distance-dependent and the ring's
    /// single-packet-per-link bandwidth is shared by all tiles.
    Ring {
        /// L2 access latency once the request reaches the L2 stop.
        l2_latency: u32,
    },
}

/// Instruction-cache parameters of one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcacheConfig {
    /// Total size in bytes (paper: 2 KiB).
    pub size_bytes: u32,
    /// Associativity (paper: 4 ways).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Cycles from refill request to line installed
    /// ([`RefillNetwork::Fixed`] only).
    pub refill_latency: u32,
    /// Refill transport model.
    pub refill_network: RefillNetwork,
}

impl Default for IcacheConfig {
    fn default() -> Self {
        IcacheConfig {
            size_bytes: 2048,
            ways: 4,
            line_bytes: 32,
            refill_latency: 25,
            refill_network: RefillNetwork::Fixed,
        }
    }
}

/// Resilience knobs: per-request timeouts, bounded retry, and the cluster
/// watchdog.
///
/// Everything defaults to *off* (zero), so a fault-free cluster behaves
/// bit-identically to one built before this subsystem existed. Enable
/// [`standard`](ResilienceConfig::standard) when running fault campaigns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Cycles an in-flight request may wait for its response before the
    /// retry layer re-issues it (0 disables timeouts and retries).
    pub request_timeout: u64,
    /// Re-issues per request before it is abandoned and the issuing core is
    /// faulted.
    pub max_retries: u32,
    /// Consecutive cycles without memory-system progress (while work is
    /// outstanding) before the watchdog declares a deadlock (0 disables the
    /// watchdog).
    pub watchdog_cycles: u64,
}

impl ResilienceConfig {
    /// The recommended settings for fault-injection runs: a 4096-cycle
    /// request timeout (far above any fault-free round trip), three
    /// retries, and a 16384-cycle watchdog.
    pub fn standard() -> Self {
        ResilienceConfig {
            request_timeout: 4096,
            max_retries: 3,
            watchdog_cycles: 16384,
        }
    }

    /// Whether the retry layer is active.
    pub fn retries_enabled(&self) -> bool {
        self.request_timeout > 0
    }

    /// Whether the watchdog is active.
    pub fn watchdog_enabled(&self) -> bool {
        self.watchdog_cycles > 0
    }
}

/// Full configuration of a MemPool cluster.
///
/// The default is the paper's 256-core system: 64 tiles × 4 cores, 16 banks
/// per tile with 256 rows (1 MiB of L1), radix-4 networks, and a 4 KiB
/// sequential region per tile when scrambling is enabled (the paper leaves
/// the region size as a knob; 4 KiB holds four per-core stacks plus local
/// working sets).
///
/// # Examples
///
/// ```
/// use mempool::{ClusterConfig, Topology};
///
/// let config = ClusterConfig::paper(Topology::TopH);
/// assert_eq!(config.num_cores(), 256);
/// assert_eq!(config.address_map().unwrap().size_bytes(), 1 << 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Interconnect topology.
    pub topology: Topology,
    /// Number of tiles.
    pub num_tiles: usize,
    /// Cores per tile.
    pub cores_per_tile: usize,
    /// SPM banks per tile.
    pub banks_per_tile: usize,
    /// 32-bit rows per bank.
    pub rows_per_bank: u32,
    /// Butterfly switch radix.
    pub radix: usize,
    /// Sequential-region size per tile in bytes; `None` disables the hybrid
    /// addressing scrambler (fully interleaved map).
    pub seq_region_bytes: Option<u32>,
    /// Core template (hart IDs are assigned per core).
    pub core: SnitchConfig,
    /// Instruction-cache parameters.
    pub icache: IcacheConfig,
    /// Timeout / retry / watchdog settings (all disabled by default).
    pub resilience: ResilienceConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::paper(Topology::TopH)
    }
}

/// Error returned when a [`ClusterConfig`] is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateConfigError {
    msg: String,
}

impl fmt::Display for ValidateConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ValidateConfigError {}

fn cfg_err(msg: impl Into<String>) -> ValidateConfigError {
    ValidateConfigError { msg: msg.into() }
}

fn is_power_of(mut n: usize, base: usize) -> bool {
    if n == 0 {
        return false;
    }
    while n > 1 {
        if !n.is_multiple_of(base) {
            return false;
        }
        n /= base;
    }
    true
}

impl ClusterConfig {
    /// The paper's 256-core configuration with the given topology.
    pub fn paper(topology: Topology) -> Self {
        ClusterConfig {
            topology,
            num_tiles: 64,
            cores_per_tile: 4,
            banks_per_tile: 16,
            rows_per_bank: 256,
            radix: 4,
            seq_region_bytes: Some(4096),
            core: SnitchConfig::default(),
            icache: IcacheConfig::default(),
            resilience: ResilienceConfig::default(),
        }
    }

    /// A reduced 16-tile / 64-core configuration, convenient for tests and
    /// examples (256 KiB of L1, 4 KiB sequential regions).
    pub fn small(topology: Topology) -> Self {
        ClusterConfig {
            topology,
            num_tiles: 16,
            cores_per_tile: 4,
            banks_per_tile: 16,
            rows_per_bank: 256,
            radix: 4,
            seq_region_bytes: Some(4096),
            core: SnitchConfig::default(),
            icache: IcacheConfig::default(),
            resilience: ResilienceConfig::default(),
        }
    }

    /// Total core count.
    pub fn num_cores(&self) -> usize {
        self.num_tiles * self.cores_per_tile
    }

    /// Total bank count.
    pub fn num_banks(&self) -> usize {
        self.num_tiles * self.banks_per_tile
    }

    /// Number of local groups (TopH): always four, mirroring the 2×2
    /// physical arrangement of the paper.
    pub fn num_groups(&self) -> usize {
        4
    }

    /// Tiles per local group (TopH).
    pub fn tiles_per_group(&self) -> usize {
        self.num_tiles / self.num_groups()
    }

    /// Builds the interleaved [`AddressMap`] for this geometry.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from [`AddressMap::new`].
    pub fn address_map(&self) -> Result<AddressMap, ValidateConfigError> {
        AddressMap::new(
            self.num_tiles as u32,
            self.banks_per_tile as u32,
            self.rows_per_bank,
        )
        .map_err(|e| cfg_err(e.to_string()))
    }

    /// Builds the hybrid-addressing scrambler, if enabled.
    ///
    /// # Errors
    ///
    /// Returns an error when the configured sequential-region size is
    /// invalid for this geometry.
    pub fn scrambler(&self) -> Result<Option<Scrambler>, ValidateConfigError> {
        let map = self.address_map()?;
        match self.seq_region_bytes {
            None => Ok(None),
            Some(bytes) => Scrambler::new(map, bytes)
                .map(Some)
                .ok_or_else(|| cfg_err(format!("invalid sequential region size {bytes}"))),
        }
    }

    /// Checks all geometric constraints of the selected topology.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateConfigError`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ValidateConfigError> {
        self.address_map()?;
        self.scrambler()?;
        if self.cores_per_tile == 0 || self.cores_per_tile > 32 {
            return Err(cfg_err("cores_per_tile must be in 1..=32"));
        }
        if self.radix < 2 {
            return Err(cfg_err("radix must be at least 2"));
        }
        match self.topology {
            Topology::Ideal => {}
            Topology::Top1 | Topology::Top4 => {
                if !is_power_of(self.num_tiles, self.radix) {
                    return Err(cfg_err(format!(
                        "{}: num_tiles {} must be a power of radix {}",
                        self.topology, self.num_tiles, self.radix
                    )));
                }
            }
            Topology::TopH => {
                if !self.num_tiles.is_multiple_of(4) {
                    return Err(cfg_err("topH: num_tiles must be divisible by 4 groups"));
                }
                if !is_power_of(self.tiles_per_group(), self.radix) {
                    return Err(cfg_err(format!(
                        "topH: tiles per group {} must be a power of radix {}",
                        self.tiles_per_group(),
                        self.radix
                    )));
                }
            }
        }
        mempool_mem::ICache::new(
            self.icache.size_bytes,
            self.icache.ways,
            self.icache.line_bytes,
        )
        .map_err(|e| cfg_err(e.to_string()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_validate() {
        for topo in Topology::all() {
            ClusterConfig::paper(topo).validate().unwrap();
            ClusterConfig::small(topo).validate().unwrap();
        }
    }

    #[test]
    fn geometry_rejections() {
        let mut c = ClusterConfig::paper(Topology::Top1);
        c.num_tiles = 48; // not a power of 4
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper(Topology::TopH);
        c.num_tiles = 20; // 5 per group, not a power of 4
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper(Topology::TopH);
        c.seq_region_bytes = Some(100); // not a power of two
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper(Topology::TopH);
        c.rows_per_bank = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn derived_counts() {
        let c = ClusterConfig::paper(Topology::TopH);
        assert_eq!(c.num_cores(), 256);
        assert_eq!(c.num_banks(), 1024);
        assert_eq!(c.tiles_per_group(), 16);
        assert_eq!(Topology::Top1.remote_ports(4), 1);
        assert_eq!(Topology::Top4.remote_ports(4), 4);
        assert_eq!(Topology::TopH.remote_ports(4), 4);
        assert_eq!(Topology::Ideal.remote_ports(4), 0);
    }
}
