//! The unified simulator error type.
//!
//! Every fallible operation in this crate reports one of a small set of
//! typed errors (configuration validation, program decoding, simulation
//! faults, snapshot decoding, metrics lookups, I/O). [`Error`] is the
//! top-level sum of all of them, with [`std::error::Error::source`] chains
//! preserved so callers can both `match` on the category and walk the
//! underlying cause. The [`SimSession`](crate::SimSession) API returns
//! `Error` throughout; the narrow per-subsystem error types remain
//! available for code that wants them.

use crate::faults::{BusError, SimError};
use crate::obs::MetricsError;
use crate::snapshot::SnapshotError;
use crate::ValidateConfigError;
use std::fmt;
use std::io;

/// Any error the simulator can raise, by subsystem.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The cluster configuration is geometrically inconsistent.
    Config(ValidateConfigError),
    /// A program image failed to decode.
    Decode(mempool_riscv::DecodeError),
    /// The simulation stopped abnormally (timeout or deadlock).
    Sim(SimError),
    /// A host-side memory access fell outside L1.
    Bus(BusError),
    /// A snapshot failed to load or restore.
    Snapshot(SnapshotError),
    /// A metrics registry lookup failed.
    Metrics(MetricsError),
    /// An underlying I/O operation failed (checkpoint files, exports).
    Io(io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(_) => write!(f, "invalid cluster configuration"),
            Error::Decode(_) => write!(f, "program decode failed"),
            Error::Sim(_) => write!(f, "simulation stopped abnormally"),
            Error::Bus(_) => write!(f, "host memory access outside L1"),
            Error::Snapshot(_) => write!(f, "snapshot rejected"),
            Error::Metrics(_) => write!(f, "metrics lookup failed"),
            Error::Io(_) => write!(f, "i/o error"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            Error::Decode(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Bus(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            Error::Metrics(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<ValidateConfigError> for Error {
    fn from(e: ValidateConfigError) -> Error {
        Error::Config(e)
    }
}

impl From<mempool_riscv::DecodeError> for Error {
    fn from(e: mempool_riscv::DecodeError) -> Error {
        Error::Decode(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Error {
        Error::Sim(e)
    }
}

impl From<BusError> for Error {
    fn from(e: BusError) -> Error {
        Error::Bus(e)
    }
}

impl From<SnapshotError> for Error {
    fn from(e: SnapshotError) -> Error {
        Error::Snapshot(e)
    }
}

impl From<MetricsError> for Error {
    fn from(e: MetricsError) -> Error {
        Error::Metrics(e)
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Error {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn source_chain_reaches_the_underlying_error() {
        let e = Error::from(MetricsError::UnknownScope {
            path: "cluster/tile99".to_owned(),
        });
        let src = e.source().expect("wrapped error has a source");
        assert!(src.to_string().contains("cluster/tile99"));
        assert!(e.to_string().contains("metrics"));
    }

    #[test]
    fn io_errors_convert() {
        let e = Error::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(matches!(e, Error::Io(_)));
        assert!(e.source().is_some());
    }
}
