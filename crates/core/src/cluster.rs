//! The cycle-accurate MemPool cluster simulator.

use crate::cancel::{CancelToken, CancelledError, WALL_PROBE_STRIDE};
use crate::faults::{
    BankFailure, DeadlockDiagnostic, FaultEvent, FaultLog, FaultPlan, LinkFaultKind, PendingDump,
    SimError, TileDiagnostic,
};
use crate::sanitize::{Sanitizer, SanitizerConfig, SanitizerReport};
use crate::net::{LinkRef, Net};
use crate::par::{SyncPtr, WorkerPool};
use crate::tile::{BankGate, ProgramImage, Tile};
use crate::{
    ClusterConfig, ClusterStats, Core, FaultStats, RefillNetwork, Request, Response, Topology,
    ValidateConfigError,
};
use mempool_mem::{AddressMap, CacheStats, QuarantineMap, Scrambler};
use mempool_noc::Ring;
use mempool_snitch::{DataRequestKind, DataResponse};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// A refill transaction on the I-cache ring (§III-B's "low-overhead refill
/// network").
#[derive(Debug, Clone, Copy)]
pub(crate) struct RefillPacket {
    pub(crate) tile: usize,
    pub(crate) line: u32,
}

/// The modeled AXI refill ring: one stop per tile plus an L2 stop.
pub(crate) struct RefillRing {
    pub(crate) ring: Ring<RefillPacket>,
    pub(crate) l2_stop: usize,
    pub(crate) l2_latency: u32,
    /// Requests being served by L2: completion cycle, requesting tile,
    /// line.
    pub(crate) serving: VecDeque<(u64, usize, u32)>,
}

impl RefillRing {
    fn new(num_tiles: usize, l2_latency: u32) -> Self {
        RefillRing {
            ring: Ring::new(num_tiles + 1),
            l2_stop: num_tiles,
            l2_latency,
            serving: VecDeque::new(),
        }
    }

    fn cycle(
        &mut self,
        tiles: &mut [Tile],
        now: u64,
        faults: Option<&FaultPlan>,
        fstats: &mut FaultStats,
    ) {
        // Injected ring faults: lost flits vanish from their slot; any
        // stalled slot freezes the whole (bufferless, synchronous) ring for
        // the cycle.
        let mut advance = true;
        if let Some(plan) = faults {
            if plan.spec().has_ring_faults() {
                for slot in 0..self.ring.stops() {
                    if plan.ring_dropped(now, slot as u64)
                        && self.ring.drop_in_flight(slot).is_some()
                    {
                        fstats.ring_drops += 1;
                    }
                    if plan.ring_stalled(now, slot as u64) {
                        fstats.ring_stalls += 1;
                        advance = false;
                    }
                }
            }
        }
        if advance {
            self.ring.advance();
        }
        // Responses arriving at tiles install their lines.
        for (t, tile) in tiles.iter_mut().enumerate() {
            while let Some(pkt) = self.ring.eject(t) {
                tile.complete_refill(pkt.line);
            }
        }
        // Requests arriving at L2 start their access.
        while let Some(pkt) = self.ring.eject(self.l2_stop) {
            self.serving
                .push_back((now + u64::from(self.l2_latency), pkt.tile, pkt.line));
        }
        // Completed L2 accesses head back (in order; retry on a busy link).
        while let Some(&(ready, tile, line)) = self.serving.front() {
            if ready > now || !self.ring.try_inject(self.l2_stop, tile, RefillPacket { tile, line })
            {
                break;
            }
            self.serving.pop_front();
        }
        // Tile misses enter the ring.
        for (t, tile) in tiles.iter_mut().enumerate() {
            if let Some(line) = tile.peek_refill_request() {
                if self.ring.try_inject(t, self.l2_stop, RefillPacket { tile: t, line }) {
                    tile.take_refill_request();
                }
            }
        }
    }
}

/// Per-tile staging buffer for the parallel core phase: everything the
/// serial core loop would have written to shared cluster state, in the
/// order it would have written it. The commit phase merges the stages in
/// ascending tile index, which reproduces the serial core order exactly
/// (cores are numbered tile-major).
#[derive(Default)]
struct CoreStage {
    memory_faults: u64,
    local_requests: u64,
    remote_requests: u64,
    group_local_requests: u64,
    direction_requests: [u64; 3],
    requests_issued: u64,
    in_flight: u64,
    core_lockups: u64,
    spurious_retires: u64,
    quarantine_remaps: u64,
    log: Vec<FaultEvent>,
    pending: Vec<((u32, u8), PendingRequest)>,
    trace: Vec<(usize, crate::TraceEvent)>,
}

impl CoreStage {
    fn clear(&mut self) {
        self.memory_faults = 0;
        self.local_requests = 0;
        self.remote_requests = 0;
        self.group_local_requests = 0;
        self.direction_requests = [0; 3];
        self.requests_issued = 0;
        self.in_flight = 0;
        self.core_lockups = 0;
        self.spurious_retires = 0;
        self.quarantine_remaps = 0;
        self.log.clear();
        self.pending.clear();
        self.trace.clear();
    }
}

/// The tile-parallel execution engine: a persistent worker pool plus
/// reusable per-tile staging buffers. Pure execution-strategy state — it
/// carries no architectural state, is excluded from snapshots and the
/// state digest, and can be attached or detached between any two cycles
/// without observable effect.
pub(crate) struct ParEngine {
    pool: WorkerPool,
    core_stages: Vec<CoreStage>,
    resp_stages: Vec<Vec<Response>>,
    /// Per-tile (bank accesses served, requests dropped) of the request
    /// phase.
    accept_stages: Vec<(u64, u64)>,
}

/// Error returned by [`Cluster::run`] when the program does not finish
/// within the cycle budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunTimeoutError {
    budget: u64,
}

impl RunTimeoutError {
    /// The exhausted cycle budget.
    pub fn budget(self) -> u64 {
        self.budget
    }
}

impl fmt::Display for RunTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program did not finish within {} cycles", self.budget)
    }
}

impl std::error::Error for RunTimeoutError {}

/// Retry-layer bookkeeping for one in-flight request, keyed by
/// `(core, tag)`. `last_sent` distinguishes a live (re)issue from a stale
/// response still draining out of the network after a retry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingRequest {
    pub(crate) addr: u32,
    pub(crate) kind: DataRequestKind,
    pub(crate) issued_at: u64,
    pub(crate) last_sent: u64,
    pub(crate) retries: u32,
}

/// Placement of one core within the cluster, handed to the core factory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreLocation {
    /// Global core index (also the hart ID).
    pub core: usize,
    /// Tile index.
    pub tile: usize,
    /// Lane within the tile (0..cores_per_tile).
    pub lane: usize,
}

/// A cycle-accurate MemPool cluster, generic over the core model `C` —
/// [`SnitchCore`](mempool_snitch::SnitchCore) for real programs, or a
/// synthetic traffic generator for network analysis (§V-A).
///
/// # Examples
///
/// Run a two-instruction-per-core program on the 64-core test cluster:
///
/// ```
/// use mempool::{Cluster, ClusterConfig, Topology};
/// use mempool_riscv::assemble;
///
/// let program = assemble("csrr a0, mhartid\necall\n")?;
/// let mut cluster = Cluster::snitch(ClusterConfig::small(Topology::TopH))?;
/// cluster.load_program(&program)?;
/// cluster.run(10_000)?;
/// assert_eq!(cluster.cores()[5].reg(mempool_riscv::Reg::A0), 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Cluster<C> {
    pub(crate) config: ClusterConfig,
    pub(crate) map: AddressMap,
    pub(crate) scrambler: Option<Scrambler>,
    pub(crate) cores: Vec<C>,
    pub(crate) tiles: Vec<Tile>,
    pub(crate) net: Net,
    /// Per-core output latch between the core and the interconnect.
    pub(crate) out_latches: Vec<Option<Request>>,
    pub(crate) image: ProgramImage,
    pub(crate) now: u64,
    pub(crate) stats: ClusterStats,
    pub(crate) in_flight: u64,
    pub(crate) deliveries: Vec<Response>,
    pub(crate) refill_ring: Option<RefillRing>,
    pub(crate) trace: Option<crate::MemoryTrace>,
    /// Observability recorder (`None` = disabled, the zero-cost default).
    /// Architectural state once enabled: snapshotted and digested, so
    /// metrics survive checkpoint/restore bit-identically.
    pub(crate) obs: Option<Box<crate::obs::Obs>>,
    /// Program-level profiler (`None` = disabled). The cluster half holds
    /// the windowed activity sampler; the per-(region, PC) tables live
    /// inside the cores. Architectural state once enabled: snapshotted
    /// (the `profile` component) and digested.
    pub(crate) profiler: Option<Box<crate::profile::Profiler>>,
    // --- fault injection and resilience ---
    pub(crate) faults: Option<FaultPlan>,
    pub(crate) quarantine: QuarantineMap,
    /// Retry-layer view of every tracked in-flight request, in
    /// deterministic (core, tag) order.
    pub(crate) pending: BTreeMap<(u32, u8), PendingRequest>,
    pub(crate) fault_log: FaultLog,
    /// Scheduled permanent bank failures (absolute cycles, sorted);
    /// `next_failure` indexes the first not yet activated.
    pub(crate) pending_failures: Vec<BankFailure>,
    pub(crate) next_failure: usize,
    /// Per-core first cycle at which an injected lockup releases.
    pub(crate) locked_until: Vec<u64>,
    /// Watchdog: last cycle the progress signature changed, and its value.
    pub(crate) last_progress: u64,
    pub(crate) progress_mark: u64,
    /// Tile-parallel execution engine (`None` = serial). Pure strategy
    /// state: never snapshotted, never digested.
    pub(crate) engine: Option<ParEngine>,
    /// Cycle-level invariant sanitizer (`None` = disabled). Pure checking:
    /// never snapshotted, never digested, never perturbs results.
    pub(crate) sanitizer: Option<Box<Sanitizer>>,
    /// Cooperative cancellation token checked in the step loops. Pure
    /// policy: never snapshotted, never digested.
    pub(crate) cancel: Option<CancelToken>,
    /// Test-only seeded mutations (sanitizer coverage). Inert by default.
    pub(crate) debug_mut: DebugMutations,
}

/// Test-only delivery mutations used to prove the sanitizer detects the
/// failure modes it claims to: dropping, duplicating, and delaying
/// responses, applied at the head of the (engine-independent, serial)
/// delivery drain. Inert unless armed through the `debug_*` hooks.
#[derive(Debug, Default)]
pub(crate) struct DebugMutations {
    drop_next: bool,
    dup_next: bool,
    hold: Option<(u32, u64)>,
    held: Vec<(u64, Response)>,
}

impl DebugMutations {
    fn active(&self) -> bool {
        self.drop_next || self.dup_next || self.hold.is_some() || !self.held.is_empty()
    }
}

impl<C> Cluster<C> {
    /// Re-seeds the sanitizer's in-flight view from the retry layer (after
    /// a snapshot restore rewound the cluster under it). Bound-free so the
    /// snapshot machinery (generic only over [`CoreState`]) can call it.
    ///
    /// [`CoreState`]: crate::snapshot::CoreState
    pub(crate) fn resync_sanitizer(&mut self) {
        if self.sanitizer.is_none() {
            return;
        }
        let map = self.map;
        let in_flight = self.in_flight;
        // (key, addr, issued_at, last_sent, retried) per pending request.
        type PendingView = Vec<((u32, u8), u32, u64, u64, bool)>;
        let pending: PendingView = self
            .pending
            .iter()
            .map(|(&k, p)| (k, p.addr, p.issued_at, p.last_sent, p.retries > 0))
            .collect();
        if let Some(san) = self.sanitizer.as_deref_mut() {
            san.resync(in_flight, pending.into_iter(), |addr| {
                map.decode(addr).map(|at| (at.tile, at.bank))
            });
        }
    }
}

impl<C: Core> Cluster<C> {
    /// Builds a cluster, constructing each core through `factory`.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateConfigError`] when the configuration is
    /// geometrically inconsistent.
    pub fn new(
        config: ClusterConfig,
        mut factory: impl FnMut(CoreLocation) -> C,
    ) -> Result<Self, ValidateConfigError> {
        config.validate()?;
        let map = config.address_map()?;
        let scrambler = config.scrambler()?;
        let cores = (0..config.num_cores())
            .map(|core| {
                factory(CoreLocation {
                    core,
                    tile: core / config.cores_per_tile,
                    lane: core % config.cores_per_tile,
                })
            })
            .collect();
        Ok(Cluster {
            map,
            scrambler,
            cores,
            tiles: (0..config.num_tiles).map(|_| Tile::new(&config)).collect(),
            net: Net::new(&config),
            out_latches: vec![None; config.num_cores()],
            image: ProgramImage::default(),
            now: 0,
            stats: ClusterStats::with_tiles(config.num_tiles),
            in_flight: 0,
            deliveries: Vec::new(),
            refill_ring: match config.icache.refill_network {
                RefillNetwork::Fixed => None,
                RefillNetwork::Ring { l2_latency } => {
                    Some(RefillRing::new(config.num_tiles, l2_latency))
                }
            },
            trace: None,
            obs: None,
            profiler: None,
            faults: None,
            quarantine: QuarantineMap::new(map),
            pending: BTreeMap::new(),
            fault_log: FaultLog::default(),
            pending_failures: Vec::new(),
            next_failure: 0,
            locked_until: vec![0; config.num_cores()],
            last_progress: 0,
            progress_mark: 0,
            engine: None,
            sanitizer: None,
            cancel: None,
            debug_mut: DebugMutations::default(),
            config,
        })
    }

    /// The configuration this cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The interleaved address map.
    pub fn address_map(&self) -> AddressMap {
        self.map
    }

    /// The hybrid-addressing scrambler, if enabled.
    pub fn scrambler(&self) -> Option<Scrambler> {
        self.scrambler
    }

    /// Current cycle count.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// The cores, indexed by global core ID.
    pub fn cores(&self) -> &[C] {
        &self.cores
    }

    /// Mutable access to the cores (e.g. to set per-hart entry points).
    pub fn cores_mut(&mut self) -> &mut [C] {
        &mut self.cores
    }

    /// Number of requests issued but not yet answered.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Instruction-cache refills outstanding across all tiles.
    pub fn pending_refills(&self) -> usize {
        self.tiles.iter().map(Tile::pending_refills).sum()
    }

    /// Installs (or removes, with `None`) the fault plan driving injection
    /// from the *next* cycle on.
    ///
    /// Scheduled bank failures are re-derived from the plan and land within
    /// the first [`FaultPlan::bank_failures`] window of cycles after this
    /// call; quarantine state and the fault log restart.
    pub fn install_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.quarantine = QuarantineMap::new(self.map);
        self.fault_log.clear();
        self.pending_failures.clear();
        self.next_failure = 0;
        // A previously stalled link must not stay frozen after its plan is
        // gone.
        self.net.for_each_link(&mut |_, link| match link {
            LinkRef::Req(b) => b.set_stalled(false),
            LinkRef::Resp(b) => b.set_stalled(false),
        });
        if let Some(plan) = &plan {
            let mut failures = plan.bank_failures(
                self.config.num_tiles as u32,
                self.config.banks_per_tile as u32,
            );
            for f in &mut failures {
                f.cycle += self.now;
            }
            self.pending_failures = failures;
        }
        self.faults = plan;
    }

    /// Deprecated alias of [`install_fault_plan`](Cluster::install_fault_plan).
    #[deprecated(since = "0.4.0", note = "use `install_fault_plan` (or `SimSession::builder`)")]
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.install_fault_plan(plan);
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The log of notable fault events since the plan was installed.
    pub fn fault_log(&self) -> &FaultLog {
        &self.fault_log
    }

    /// Number of banks currently quarantined (dead, traffic remapped).
    pub fn quarantined_banks(&self) -> usize {
        self.quarantine.quarantined_banks()
    }

    /// Selects the execution engine: `0` steps the cluster serially (the
    /// default), any `workers >= 1` steps it with the tile-parallel engine
    /// using `workers` total participating threads (the calling thread
    /// plus `workers - 1` persistent pool threads, capped at the tile
    /// count — more threads than tiles cannot help).
    ///
    /// The engine is an execution strategy, not architectural state: the
    /// parallel engine is bit-identical to the serial one (same
    /// [`state_digest`](Cluster::state_digest) after any number of cycles,
    /// any topology, any fault plan, any worker count), it is excluded
    /// from snapshots, and it can be switched at any cycle boundary.
    /// `set_workers(1)` exercises the full staging/merge machinery on the
    /// calling thread alone — useful for debugging the staged path.
    pub fn set_workers(&mut self, workers: usize) {
        if workers == 0 {
            self.engine = None;
            return;
        }
        let num_tiles = self.config.num_tiles;
        let pool_threads = (workers - 1).min(num_tiles.saturating_sub(1));
        self.engine = Some(ParEngine {
            pool: WorkerPool::new(pool_threads),
            core_stages: (0..num_tiles).map(|_| CoreStage::default()).collect(),
            resp_stages: vec![Vec::new(); num_tiles],
            accept_stages: vec![(0, 0); num_tiles],
        });
    }

    /// Deprecated alias of [`set_workers`](Cluster::set_workers).
    #[deprecated(since = "0.4.0", note = "use `set_workers` (or `SimSession::builder`)")]
    pub fn set_parallel(&mut self, workers: usize) {
        self.set_workers(workers);
    }

    /// The effective parallelism: `0` when stepping serially, otherwise
    /// the number of threads participating in each cycle (calling thread
    /// included).
    pub fn parallelism(&self) -> usize {
        self.engine.as_ref().map_or(0, |e| e.pool.threads() + 1)
    }

    /// Whether per-request bookkeeping (the retry layer's pending map) is
    /// active. Off in the default configuration, so fault-free runs keep
    /// their zero-overhead hot path.
    fn track_pending(&self) -> bool {
        self.faults.is_some()
            || self.config.resilience.retries_enabled()
            || self.config.resilience.watchdog_enabled()
    }

    /// A human-readable description of the instantiated hardware: the
    /// hierarchy, port counts and register placement that give this
    /// configuration its latency/throughput behaviour.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let c = &self.config;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "MemPool cluster: {} cores in {} tiles ({} topology)",
            c.num_cores(),
            c.num_tiles,
            c.topology
        );
        let _ = writeln!(
            out,
            "  L1: {} banks x {} rows = {} KiB, {}",
            c.num_banks(),
            c.rows_per_bank,
            self.map.size_bytes() / 1024,
            match c.seq_region_bytes {
                Some(b) => format!("hybrid map with {b} B sequential regions"),
                None => "fully interleaved map".to_owned(),
            }
        );
        let ports = c.topology.remote_ports(c.cores_per_tile);
        let _ = writeln!(
            out,
            "  tile: {} cores, {} banks, {} remote port pair(s), {} B I-cache ({}-way)",
            c.cores_per_tile, c.banks_per_tile, ports, c.icache.size_bytes, c.icache.ways
        );
        let (_, regs) = self.net.occupancy();
        let topology_desc = match c.topology {
            Topology::Ideal => "single-cycle conflict-free crossbar (baseline)".to_owned(),
            Topology::Top1 => format!(
                "one {0}x{0} radix-{1} butterfly, mid-stage pipeline registers",
                c.num_tiles, c.radix
            ),
            Topology::Top4 => format!(
                "{2} parallel {0}x{0} radix-{1} butterflies (one per core lane)",
                c.num_tiles, c.radix, c.cores_per_tile
            ),
            Topology::TopH => format!(
                "4 groups of {0} tiles: {0}x{0} local crossbars + N/NE/E radix-{1} butterflies",
                c.tiles_per_group(),
                c.radix
            ),
        };
        let _ = writeln!(out, "  global interconnect: {topology_desc}");
        let _ = writeln!(out, "  global register slots: {regs} (elastic, depth 2)");
        let _ = writeln!(
            out,
            "  zero-load latency: 1 cycle local{}",
            match c.topology {
                Topology::Ideal => ", 1 cycle anywhere (idealized)".to_owned(),
                Topology::Top1 | Topology::Top4 => ", 5 cycles remote".to_owned(),
                Topology::TopH => ", 3 cycles in-group, 5 cycles cross-group".to_owned(),
            }
        );
        out
    }

    /// Starts recording every core's memory requests (cycle, pre-scramble
    /// address, read/write) into a [`MemoryTrace`](crate::MemoryTrace).
    pub fn begin_trace(&mut self) {
        self.trace = Some(crate::MemoryTrace::new(self.config.num_cores()));
    }

    /// Deprecated alias of [`begin_trace`](Cluster::begin_trace).
    #[deprecated(since = "0.4.0", note = "use `begin_trace` (or `SimSession::builder`)")]
    pub fn start_trace(&mut self) {
        self.begin_trace();
    }

    /// Stops recording and returns the captured trace (`None` when tracing
    /// was never started).
    pub fn take_trace(&mut self) -> Option<crate::MemoryTrace> {
        self.trace.take()
    }

    /// Turns on the observability recorder: per-tile latency histograms
    /// and (when `config` enables sampling) a bounded timeline of request
    /// spans. Until this is called the recorder is absent and the hot path
    /// pays nothing for it.
    ///
    /// Once enabled, the recorder's contents are architectural state:
    /// included in snapshots and the [`state_digest`](Cluster::state_digest),
    /// and bit-identical between the serial and tile-parallel engines.
    pub fn enable_observability(&mut self, config: crate::obs::ObsConfig) {
        self.obs = Some(Box::new(crate::obs::Obs::new(
            config,
            self.config.num_tiles,
        )));
    }

    /// Whether the observability recorder is currently attached.
    pub fn observability_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// The sampled request timeline recorded so far (`None` when
    /// observability is disabled). Non-destructive: the recorder keeps
    /// accumulating after the call.
    pub fn timeline(&self) -> Option<crate::obs::TimelineTrace> {
        self.obs.as_ref().map(|o| o.timeline())
    }

    /// Turns on the program-level profiler: per-(region, PC) cycle
    /// attribution inside every core, plus (when
    /// [`ProfileConfig::power_window`](crate::ProfileConfig) is non-zero)
    /// the windowed activity sampler behind the `mempool-power-v1`
    /// timeline. Until this is called the profiler is absent and the hot
    /// path pays nothing for it.
    ///
    /// Once enabled, all profiler state is architectural: included in
    /// snapshots (the `profile` component) and the
    /// [`state_digest`](Cluster::state_digest), and bit-identical between
    /// the serial and tile-parallel engines.
    pub fn enable_profiling(&mut self, config: crate::ProfileConfig) {
        let mut p = crate::profile::Profiler::new(config, self.config.num_tiles);
        p.window_start = self.now;
        p.mark = self.cumulative_activity();
        self.profiler = Some(Box::new(p));
        for core in &mut self.cores {
            core.enable_profile(config.max_pcs);
        }
    }

    /// Whether the profiler is currently attached.
    pub fn profiling_enabled(&self) -> bool {
        self.profiler.is_some()
    }

    /// Turns on the cycle-level invariant sanitizer (see
    /// [`SanitizerConfig`]). Unlike observability and profiling, the
    /// sanitizer is pure checking: it is *excluded* from snapshots and the
    /// [`state_digest`](Cluster::state_digest), and enabling it never
    /// changes simulation results. Until this is called the hot path pays
    /// nothing for it.
    ///
    /// Requests already in flight at attach time are reconstructed from
    /// the retry layer's pending map when tracking is on; otherwise their
    /// responses are tolerated without a conservation complaint.
    pub fn enable_sanitizer(&mut self, config: SanitizerConfig) {
        let mut san = Box::new(Sanitizer::new(config, &self.config));
        let map = self.map;
        san.resync(
            self.in_flight,
            self.pending
                .iter()
                .map(|(&k, p)| (k, p.addr, p.issued_at, p.last_sent, p.retries > 0)),
            |addr| map.decode(addr).map(|at| (at.tile, at.bank)),
        );
        self.sanitizer = Some(san);
    }

    /// Whether the sanitizer is currently attached.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// The sanitizer's accumulated report (`None` when disabled).
    pub fn sanitizer_report(&self) -> Option<&SanitizerReport> {
        self.sanitizer.as_ref().map(|s| s.report())
    }

    /// Installs (or removes, with `None`) the cooperative cancellation
    /// token checked by [`run`](Cluster::run) and
    /// [`try_step_cycles`](Cluster::try_step_cycles). Pure policy: the
    /// token never perturbs architectural state.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Test-only: silently discards the next delivered response (the core
    /// never sees it, the cluster's accounting forgets it) so sanitizer
    /// tests can assert a conservation leak fires.
    #[doc(hidden)]
    pub fn debug_drop_next_delivery(&mut self) {
        self.debug_mut.drop_next = true;
    }

    /// Test-only: duplicates the next delivered response so sanitizer
    /// tests can assert a duplicate-response violation fires.
    #[doc(hidden)]
    pub fn debug_duplicate_next_delivery(&mut self) {
        self.debug_mut.dup_next = true;
    }

    /// Test-only: withholds the next response destined for `core` and
    /// re-injects it `cycles` later, so sanitizer tests can force a
    /// per-bank FIFO reorder.
    #[doc(hidden)]
    pub fn debug_hold_delivery(&mut self, core: u32, cycles: u64) {
        self.debug_mut.hold = Some((core, cycles));
    }

    /// Test-only: locks every core until the given absolute cycle, so
    /// sanitizer tests can stall a barrier without traffic in flight.
    #[doc(hidden)]
    pub fn debug_lock_all_cores(&mut self, until: u64) {
        for l in &mut self.locked_until {
            *l = until;
        }
    }

    /// The profiler configuration, when profiling is enabled.
    pub fn profile_config(&self) -> Option<crate::ProfileConfig> {
        self.profiler.as_ref().map(|p| p.config)
    }

    /// The power-sampling windows recorded so far (`None` when profiling
    /// is disabled, empty when `power_window` is `0`). Closed windows plus
    /// the currently open one (truncated at the present cycle), so the
    /// series always covers the whole run.
    pub fn power_windows(&self) -> Option<Vec<crate::PowerWindow>> {
        let p = self.profiler.as_ref()?;
        let mut windows = p.windows.clone();
        if p.config.power_window > 0 && self.now > p.window_start {
            let cum = self.cumulative_activity();
            windows.push(crate::PowerWindow {
                start: p.window_start,
                end: self.now,
                tiles: cum
                    .tiles
                    .iter()
                    .zip(&p.mark.tiles)
                    .map(|(cur, prev)| crate::TileActivity::delta(cur, prev))
                    .collect(),
                local_requests: cum.local_requests - p.mark.local_requests,
                remote_requests: cum.remote_requests - p.mark.remote_requests,
            });
        }
        Some(windows)
    }

    /// Every core's profile rendered as collapsed-stack lines for
    /// flamegraph tooling (`None` when profiling is disabled). See
    /// [`folded_stacks`](crate::folded_stacks) for the line format.
    pub fn profile_folded(&self) -> Option<String> {
        self.profiler.as_ref()?;
        let cpt = self.config.cores_per_tile as u32;
        Some(crate::profile::folded_stacks(
            self.cores
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.core_profile().map(|p| (i as u32 / cpt, i as u32, p))),
        ))
    }

    /// Cluster-wide per-region cycle attribution, summed over all cores
    /// (`None` when profiling is disabled).
    pub fn region_profile(
        &self,
    ) -> Option<[mempool_snitch::RegionCounters; mempool_snitch::profile::REGION_SLOTS]> {
        self.profiler.as_ref()?;
        Some(crate::profile::aggregate_regions(
            self.cores.iter().filter_map(|c| c.core_profile()),
        ))
    }

    /// Snapshots the cluster's cumulative activity counters (the window
    /// sampler differences these between window edges).
    pub(crate) fn cumulative_activity(&self) -> crate::profile::ActivityMark {
        let cpt = self.config.cores_per_tile;
        let tiles = (0..self.config.num_tiles)
            .map(|t| {
                let mut a = crate::TileActivity::default();
                for lane in 0..cpt {
                    for (name, v) in self.cores[t * cpt + lane].metric_counters() {
                        match name {
                            "instret" => a.instret += v,
                            "muls" => a.muls += v,
                            "divs" => a.divs += v,
                            "loads" | "stores" | "amos" => a.memory_ops += v,
                            _ => {}
                        }
                    }
                }
                let ic = self.tiles[t].icache_stats();
                a.icache_fetches = ic.hits + ic.misses;
                a.icache_refills = self.tiles[t].refills();
                a.bank_accesses = self.stats.tile_accesses[t];
                a
            })
            .collect();
        crate::profile::ActivityMark {
            tiles,
            local_requests: self.stats.local_requests,
            remote_requests: self.stats.remote_requests,
        }
    }

    /// Builds a [`MetricsRegistry`](crate::MetricsRegistry) snapshot of
    /// every counter and histogram in the cluster, organised by scope path
    /// (`cluster`, `cluster/tile{t}`, `cluster/tile{t}/core{c}`,
    /// `cluster/tile{t}/bank{b}`, `cluster/link{id}`, `cluster/ring`).
    ///
    /// Always available; the per-tile latency histograms additionally
    /// require [`enable_observability`](Cluster::enable_observability).
    /// The registry is a pure function of architectural state, so two
    /// clusters with equal [`state_digest`](Cluster::state_digest)s export
    /// byte-identical [`MetricsRegistry::to_json`](crate::MetricsRegistry::to_json).
    pub fn metrics_registry(&self) -> crate::MetricsRegistry {
        use crate::obs::MetricScope;
        let c = &self.config;
        let mut reg = crate::MetricsRegistry::new(
            c.topology.to_string(),
            c.num_tiles,
            c.num_cores(),
            c.banks_per_tile,
        );

        let s = &self.stats;
        let (net_occupancy, net_register_slots) = self.net.occupancy();
        let mut cluster_scope = MetricScope::new("cluster".to_owned());
        cluster_scope
            .counter_entry("cycles", s.cycles)
            .counter_entry("requests_issued", s.requests_issued)
            .counter_entry("responses_delivered", s.responses_delivered)
            .counter_entry("bank_accesses", s.bank_accesses)
            .counter_entry("local_requests", s.local_requests)
            .counter_entry("remote_requests", s.remote_requests)
            .counter_entry("group_local_requests", s.group_local_requests)
            .counter_entry("icache_refills", s.icache_refills)
            .counter_entry("memory_faults", s.memory_faults)
            .counter_entry("in_flight", self.in_flight)
            .counter_entry("net_occupancy", net_occupancy)
            .counter_entry("net_register_slots", net_register_slots)
            .histogram_entry("latency", (&s.latency).into());
        reg.push_scope(cluster_scope);

        // Profiling adds per-region scopes: cluster-wide aggregation here,
        // per-core detail next to each core scope below. Zero-cycle region
        // slots are omitted (a pure function of state, so still
        // deterministic).
        let region_scope = |path: String, rc: &mempool_snitch::RegionCounters| {
            let mut rs = MetricScope::new(path);
            rs.counter_entry("retired", rc.retired);
            for (i, name) in crate::STALL_COUNTER_NAMES.iter().enumerate() {
                rs.counter_entry(name, rc.stalls[i]);
            }
            rs.counter_entry("cycles", rc.cycles());
            rs
        };
        if let Some(regions) = self.region_profile() {
            for (r, rc) in regions.iter().enumerate() {
                if rc.cycles() == 0 {
                    continue;
                }
                reg.push_scope(region_scope(format!("cluster/region{r}"), rc));
            }
        }

        for (t, tile) in self.tiles.iter().enumerate() {
            let ic = tile.icache_stats();
            let mut ts = MetricScope::new(format!("cluster/tile{t}"));
            ts.counter_entry("bank_accesses", s.tile_accesses[t])
                .counter_entry("icache_hits", ic.hits)
                .counter_entry("icache_misses", ic.misses)
                .counter_entry("icache_refills", tile.refills())
                .counter_entry("req_fabric_grants", tile.req_fabric.total_grants())
                .counter_entry("resp_fabric_grants", tile.resp_fabric.total_grants());
            if let Some(obs) = &self.obs {
                ts.histogram_entry("latency", (&obs.tile_latency[t]).into());
            }
            reg.push_scope(ts);

            for lane in 0..c.cores_per_tile {
                let core = t * c.cores_per_tile + lane;
                let counters = self.cores[core].metric_counters();
                if counters.is_empty() {
                    continue;
                }
                let mut cs = MetricScope::new(format!("cluster/tile{t}/core{core}"));
                for (name, value) in counters {
                    cs.counter_entry(name, value);
                }
                reg.push_scope(cs);
                if let Some(p) = self.cores[core].core_profile() {
                    for (r, rc) in p.regions().iter().enumerate() {
                        if rc.cycles() == 0 {
                            continue;
                        }
                        reg.push_scope(region_scope(
                            format!("cluster/tile{t}/core{core}/region{r}"),
                            rc,
                        ));
                    }
                }
            }

            for (b, bank) in tile.banks.iter().enumerate() {
                let mut bs = MetricScope::new(format!("cluster/tile{t}/bank{b}"));
                bs.counter_entry("accesses", bank.accesses());
                reg.push_scope(bs);
            }
        }

        self.net.for_each_link_stats(&mut |id, link| {
            let mut ls = MetricScope::new(format!("cluster/link{id}"));
            ls.counter_entry("pushes", link.pushes)
                .counter_entry("occupancy", link.occupancy)
                .counter_entry("is_req", u64::from(link.is_req));
            reg.push_scope(ls);
        });

        if let Some(rr) = &self.refill_ring {
            let mut rs = MetricScope::new("cluster/ring".to_owned());
            rs.counter_entry("injected", rr.ring.injected())
                .counter_entry("ejected", rr.ring.ejected())
                .counter_entry("in_flight", rr.ring.in_flight() as u64);
            reg.push_scope(rs);
        }

        reg
    }

    /// FNV-1a digest over the entire L1 contents (physical order) — a
    /// cheap determinism check: identical programs and seeds must produce
    /// identical digests on every run.
    pub fn l1_digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for tile in &self.tiles {
            for bank in &tile.banks {
                for row in 0..bank.rows() {
                    let word = bank.peek(row).expect("row in range");
                    for byte in word.to_le_bytes() {
                        hash ^= u64::from(byte);
                        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                    }
                }
            }
        }
        hash
    }

    /// Combined I-cache statistics over all tiles.
    pub fn icache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for tile in &self.tiles {
            let s = tile.icache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
        }
        total
    }

    /// Loads (pre-decodes) a program into the shared instruction memory.
    ///
    /// # Errors
    ///
    /// Returns the decode error of the first malformed instruction word.
    pub fn load_program(
        &mut self,
        program: &mempool_riscv::Program,
    ) -> Result<(), mempool_riscv::DecodeError> {
        self.image = ProgramImage::from_program(program)?;
        self.stats.icache_refills = 0;
        Ok(())
    }

    /// Reads a word from L1 at a *programmer-view* address (the hybrid
    /// scrambler is applied, as a core would). Returns `None` when the
    /// address is out of range.
    pub fn read_word(&self, vaddr: u32) -> Option<u32> {
        let phys = self.scrambler.map_or(vaddr, |s| s.scramble(vaddr));
        let at = self.quarantine.remap(self.map.decode(phys)?);
        self.tiles[at.tile as usize].banks[at.bank as usize].peek(at.row)
    }

    /// Writes a word to L1 at a programmer-view address (for test setup and
    /// input data). Returns `None` when the address is out of range.
    pub fn write_word(&mut self, vaddr: u32, value: u32) -> Option<()> {
        let phys = self.scrambler.map_or(vaddr, |s| s.scramble(vaddr));
        let at = self.quarantine.remap(self.map.decode(phys)?);
        self.tiles[at.tile as usize].banks[at.bank as usize].poke(at.row, value);
        Some(())
    }

    /// Bulk [`write_word`](Cluster::write_word) of consecutive words.
    ///
    /// # Errors
    ///
    /// Returns a [`BusError`](crate::BusError) naming the first address
    /// outside L1 (counted in `stats.memory_faults`); preceding words are
    /// written.
    pub fn write_words(&mut self, vaddr: u32, values: &[u32]) -> Result<(), crate::BusError> {
        for (i, &v) in values.iter().enumerate() {
            let addr = vaddr + 4 * i as u32;
            if self.write_word(addr, v).is_none() {
                self.stats.memory_faults += 1;
                return Err(crate::BusError { addr });
            }
        }
        Ok(())
    }

    /// Bulk [`read_word`](Cluster::read_word) of consecutive words.
    ///
    /// # Errors
    ///
    /// Returns a [`BusError`](crate::BusError) naming the first address
    /// outside L1 (counted in `stats.memory_faults`).
    pub fn read_words(&mut self, vaddr: u32, len: usize) -> Result<Vec<u32>, crate::BusError> {
        (0..len)
            .map(|i| {
                let addr = vaddr + 4 * i as u32;
                self.read_word(addr).ok_or_else(|| {
                    self.stats.memory_faults += 1;
                    crate::BusError { addr }
                })
            })
            .collect()
    }

    /// Applies the cycle's scheduled and rolled faults: permanent bank
    /// failures activate (and quarantine), transient bank stalls are
    /// counted, and every interconnect register stage gets its stall/drop/
    /// corrupt decision for the cycle.
    fn apply_faults(&mut self, now: u64) {
        while self.next_failure < self.pending_failures.len()
            && self.pending_failures[self.next_failure].cycle <= now
        {
            let f = self.pending_failures[self.next_failure];
            self.next_failure += 1;
            self.stats.faults.banks_failed += 1;
            let substitute = self.quarantine.quarantine(f.tile, f.bank);
            if substitute.is_some() {
                self.stats.faults.banks_quarantined += 1;
            }
            self.fault_log.record(FaultEvent::BankFailed {
                cycle: now,
                tile: f.tile,
                bank: f.bank,
                substitute,
            });
        }
        let Some(plan) = &self.faults else { return };
        let spec = *plan.spec();
        // Transient bank stalls are counted here, once per (bank, cycle);
        // the routing-phase gate closures re-derive the same (pure,
        // counter-mode) decision without double counting.
        if spec.bank_stall > 0.0 {
            for tile in 0..self.config.num_tiles as u32 {
                for bank in 0..self.config.banks_per_tile as u32 {
                    if plan.bank_stalled(now, tile, bank) {
                        self.stats.faults.bank_stalls += 1;
                    }
                }
            }
        }
        if spec.has_link_faults() {
            let fstats = &mut self.stats.faults;
            self.net.for_each_link(&mut |id, link| {
                let Some(kind) = plan.link_fault(now, id) else {
                    match link {
                        LinkRef::Req(b) => b.set_stalled(false),
                        LinkRef::Resp(b) => b.set_stalled(false),
                    }
                    return;
                };
                match (kind, link) {
                    (LinkFaultKind::Stall, LinkRef::Req(b)) => {
                        b.set_stalled(true);
                        fstats.link_stalls += 1;
                    }
                    (LinkFaultKind::Stall, LinkRef::Resp(b)) => {
                        b.set_stalled(true);
                        fstats.link_stalls += 1;
                    }
                    (LinkFaultKind::Drop, LinkRef::Req(b)) => {
                        b.set_stalled(false);
                        if b.drop_head().is_some() {
                            fstats.link_drops += 1;
                        }
                    }
                    (LinkFaultKind::Drop, LinkRef::Resp(b)) => {
                        b.set_stalled(false);
                        if b.drop_head().is_some() {
                            fstats.link_drops += 1;
                        }
                    }
                    // Requests carry validated routing fields; corrupting
                    // them would crash the switch rather than model a data
                    // fault, so the corrupt roll is a no-op on request
                    // stages.
                    (LinkFaultKind::Corrupt, LinkRef::Req(b)) => b.set_stalled(false),
                    (LinkFaultKind::Corrupt, LinkRef::Resp(b)) => {
                        b.set_stalled(false);
                        if let Some(resp) = b.head_mut() {
                            resp.data ^= 1 << plan.corrupt_bit(now, id);
                            fstats.link_corruptions += 1;
                        }
                    }
                }
            });
        }
    }

    /// Timeout/retry layer: re-issues tracked requests whose response is
    /// overdue, abandoning (and faulting the core of) any that exhaust the
    /// retry budget.
    fn retry_overdue(&mut self, now: u64) {
        let timeout = self.config.resilience.request_timeout;
        let max_retries = self.config.resilience.max_retries;
        let overdue: Vec<(u32, u8)> = self
            .pending
            .iter()
            .filter(|(_, p)| now - p.last_sent >= timeout)
            .map(|(&k, _)| k)
            .collect();
        for (core, tag) in overdue {
            // The retry needs the core's output latch; if it is busy this
            // cycle the request simply stays overdue until next cycle.
            if self.out_latches[core as usize].is_some() {
                continue;
            }
            let p = self.pending[&(core, tag)];
            self.stats.faults.request_timeouts += 1;
            if p.retries >= max_retries {
                self.pending.remove(&(core, tag));
                self.stats.faults.requests_abandoned += 1;
                self.in_flight -= 1;
                self.fault_log.record(FaultEvent::RequestAbandoned {
                    cycle: now,
                    core,
                    addr: p.addr,
                    retries: p.retries,
                });
                self.cores[core as usize].fault();
                if let Some(san) = self.sanitizer.as_deref_mut() {
                    san.on_abandon(core, tag);
                }
            } else {
                let p = self.pending.get_mut(&(core, tag)).expect("checked above");
                p.retries += 1;
                p.last_sent = now;
                let (addr, kind) = (p.addr, p.kind);
                self.stats.faults.request_retries += 1;
                self.out_latches[core as usize] = Some(Request {
                    core,
                    tag,
                    addr,
                    kind,
                    issued_at: now,
                });
            }
        }
    }

    /// Advances the whole cluster by one clock cycle.
    ///
    /// With [`set_workers`](Cluster::set_workers) active, the tile-local
    /// phases (I-cache refill ports, tile response crossbars, the core
    /// phase, tile request crossbars + bank accesses) fan out over the
    /// worker pool into per-tile staging buffers and are merged back in
    /// ascending tile order; the cross-tile phases (fault application, the
    /// refill ring, long-haul networks, response delivery, the retry
    /// layer) stay serial. Either engine produces bit-identical state.
    pub fn cycle(&mut self) {
        // The engine is taken out for the duration of the step so the
        // parallel path can borrow it and `&mut self` disjointly.
        match self.engine.take() {
            None => self.cycle_serial(),
            Some(mut engine) => {
                self.cycle_parallel(&mut engine);
                self.engine = Some(engine);
            }
        }
    }

    /// One cycle on the single-threaded reference engine.
    fn cycle_serial(&mut self) {
        self.now += 1;
        let now = self.now;
        let cpt = self.config.cores_per_tile;
        let track = self.track_pending();

        // 0. Fault application: scheduled bank failures activate, link
        //    register stages get their per-cycle fault decisions.
        if self.faults.is_some() || self.next_failure < self.pending_failures.len() {
            self.apply_faults(now);
        }

        // 1. I-cache refill transport (fixed-latency ports or the ring).
        match &mut self.refill_ring {
            None => {
                for tile in &mut self.tiles {
                    tile.refill_tick(now);
                }
            }
            Some(ring) => ring.cycle(
                &mut self.tiles,
                now,
                self.faults.as_ref(),
                &mut self.stats.faults,
            ),
        }

        // 2. Response phase: master response registers deliver; tile
        //    response crossbars route bank responses toward cores or remote
        //    ports; long-haul response networks advance.
        self.deliveries.clear();
        self.net
            .deliver_master_resp(&mut self.tiles, &mut self.deliveries);
        if !matches!(self.config.topology, Topology::Ideal) {
            for t in 0..self.tiles.len() {
                let net = &self.net;
                let tile = &mut self.tiles[t];
                let port_for = |resp: &Response| net.resp_port_for(t, resp, cpt);
                tile.route_responses(t, cpt, &mut self.deliveries, &port_for);
            }
            self.net.route_responses(&mut self.tiles, cpt);
        }
        self.drain_deliveries(now, track);

        // 2b. Retry layer: overdue tracked requests are re-issued (or
        //     abandoned) before the cores step, so a retry occupies the
        //     core's output latch exactly like a fresh issue.
        if self.config.resilience.retries_enabled() && !self.pending.is_empty() {
            self.retry_overdue(now);
        }

        // 3. Core phase.
        for c in 0..self.cores.len() {
            if now < self.locked_until[c] {
                continue;
            }
            if let Some(plan) = &self.faults {
                if let Some(len) = plan.core_lockup(now, c as u32) {
                    self.locked_until[c] = now + len;
                    self.stats.faults.core_lockups += 1;
                    self.fault_log.record(FaultEvent::CoreLocked {
                        cycle: now,
                        core: c as u32,
                        until: now + len,
                    });
                    continue;
                }
                if plan.spurious_retire(now, c as u32) && !self.cores[c].done() {
                    self.cores[c].spurious_retire();
                    self.stats.faults.spurious_retires += 1;
                    continue;
                }
            }
            let ready = self.out_latches[c].is_none();
            let tile_idx = c / cpt;
            let issued = {
                let (cores, tiles) = (&mut self.cores, &mut self.tiles);
                let image = &self.image;
                let tile = &mut tiles[tile_idx];
                cores[c].step(&mut |pc| tile.fetch(pc, image, now), ready)
            };
            if let Some(dr) = issued {
                debug_assert!(ready, "core issued against backpressure");
                let mut phys = self.scrambler.map_or(dr.addr, |s| s.scramble(dr.addr));
                let Some(mut at) = self.map.decode(phys) else {
                    // An address outside L1 is a guest-program bug: kill the
                    // offending core, keep the cluster alive.
                    self.stats.memory_faults += 1;
                    self.cores[c].fault();
                    continue;
                };
                // Graceful degradation: traffic to a quarantined bank is
                // remapped at issue onto its substitute (always within the
                // same tile, so locality classification is unaffected).
                if !self.quarantine.is_identity() {
                    let remapped = self.quarantine.remap(at);
                    if remapped.bank != at.bank {
                        self.stats.faults.quarantine_remaps += 1;
                        at = remapped;
                        phys = self.map.encode(at);
                    }
                }
                if at.tile as usize == tile_idx {
                    self.stats.local_requests += 1;
                } else {
                    self.stats.remote_requests += 1;
                    if self.config.topology == Topology::TopH {
                        let tpg = self.config.tiles_per_group();
                        let gs = tile_idx / tpg;
                        let gd = at.tile as usize / tpg;
                        match gs ^ gd {
                            0 => self.stats.group_local_requests += 1,
                            2 => self.stats.direction_requests[0] += 1, // N
                            3 => self.stats.direction_requests[1] += 1, // NE
                            1 => self.stats.direction_requests[2] += 1, // E
                            _ => unreachable!("four groups"),
                        }
                    }
                }
                self.stats.requests_issued += 1;
                self.in_flight += 1;
                if let Some(trace) = &mut self.trace {
                    trace.record(
                        c,
                        crate::TraceEvent {
                            cycle: now,
                            addr: dr.addr,
                            write: dr.kind.is_write(),
                        },
                    );
                }
                if track {
                    self.pending.insert(
                        (c as u32, dr.tag),
                        PendingRequest {
                            addr: phys,
                            kind: dr.kind,
                            issued_at: now,
                            last_sent: now,
                            retries: 0,
                        },
                    );
                }
                self.out_latches[c] = Some(Request {
                    core: c as u32,
                    tag: dr.tag,
                    addr: phys,
                    kind: dr.kind,
                    issued_at: now,
                });
            }
        }

        // 3b. Sanitizer issue scan: latches must be observed before the
        //     request phase consumes them (same-cycle local accepts).
        if self.sanitizer.is_some() {
            self.sanitize_issues(now);
        }

        // 4. Request phase: long-haul networks, then tile crossbars + bank
        //    accesses, then core latches into the master port registers.
        //    `gate` is the per-cycle fault view of each bank.
        let quarantine = &self.quarantine;
        let faults = self.faults.as_ref();
        let gate = move |tile: usize, bank: u32| -> BankGate {
            if quarantine.is_quarantined(tile as u32, bank) {
                return BankGate::Dead;
            }
            if let Some(plan) = faults {
                if plan.bank_stalled(now, tile as u32, bank) {
                    return BankGate::Stalled;
                }
            }
            BankGate::Ready
        };
        if let Net::Ideal(ideal) = &mut self.net {
            self.stats.bank_accesses += ideal.route_requests(
                &mut self.out_latches,
                &mut self.tiles,
                &self.map,
                &mut self.stats.tile_accesses,
                &gate,
                &mut self.stats.faults.requests_dropped,
            );
        } else {
            self.net.route_longhaul_requests(&mut self.tiles, &self.map);
            for (t, latches) in self.out_latches.chunks_mut(cpt).enumerate() {
                let tile_gate = |bank: u32| gate(t, bank);
                let served = self.tiles[t].accept_requests(
                    t,
                    latches,
                    &self.map,
                    now,
                    &tile_gate,
                    &mut self.stats.faults.requests_dropped,
                );
                self.stats.bank_accesses += served;
                self.stats.tile_accesses[t] += served;
            }
            self.net.route_port_requests(&mut self.out_latches, &self.map);
        }

        // 5. End-of-cycle commit.
        for tile in &mut self.tiles {
            tile.commit();
        }
        self.finish_cycle(now);
    }

    /// Completes the response phase: delivers this cycle's responses to
    /// their cores in staging order (which both engines arrange to be the
    /// canonical ascending-tile order).
    fn drain_deliveries(&mut self, now: u64, track: bool) {
        if self.debug_mut.active() {
            self.apply_debug_mutations(now, track);
        }
        let faults_active = self.faults.is_some();
        for resp in self.deliveries.drain(..) {
            if let Some(san) = self.sanitizer.as_deref_mut() {
                san.on_delivery(&resp, now, faults_active);
            }
            if track {
                // After a retry, the original response may still drain out
                // of the network; only the copy matching the latest issue
                // completes the request.
                let fresh = self
                    .pending
                    .get(&(resp.core, resp.tag))
                    .is_some_and(|p| p.last_sent == resp.issued_at);
                if !fresh {
                    self.stats.faults.stale_responses += 1;
                    continue;
                }
                self.pending.remove(&(resp.core, resp.tag));
            }
            self.stats.latency.record(now - resp.issued_at);
            if let Some(obs) = &mut self.obs {
                let tile = resp.core / self.config.cores_per_tile as u32;
                obs.on_delivery(resp.core, tile, resp.issued_at, now - resp.issued_at);
            }
            self.stats.responses_delivered += 1;
            self.in_flight -= 1;
            self.cores[resp.core as usize].deliver(DataResponse {
                tag: resp.tag,
                data: resp.data,
            });
        }
    }

    /// Shared end-of-cycle bookkeeping: network commit, derived statistics
    /// and the watchdog progress signature. (Tile commits happen earlier
    /// and per-engine: serially in `cycle_serial`, fused into the parallel
    /// request phase in `cycle_parallel`.)
    fn finish_cycle(&mut self, now: u64) {
        self.net.commit();
        self.stats.icache_refills = self.tiles.iter().map(Tile::refills).sum();
        let (occupied, total) = self.net.occupancy();
        self.stats.net_occupancy_sum += occupied;
        self.stats.net_register_slots = total;
        self.stats.cycles += 1;

        // Power-window sampling: both engines call finish_cycle serially,
        // so the window series is engine-independent by construction.
        if self
            .profiler
            .as_ref()
            .is_some_and(|p| p.window_closes(now))
        {
            let cum = self.cumulative_activity();
            if let Some(p) = &mut self.profiler {
                p.close_window(now, cum);
            }
        }

        // Watchdog progress signature: any delivered response, bank access,
        // new issue, refill, or resilience action (drop, retry, abandon,
        // stale drain) counts as forward motion.
        let f = &self.stats.faults;
        let signature = self.stats.responses_delivered
            + self.stats.bank_accesses
            + self.stats.requests_issued
            + self.stats.icache_refills
            + f.stale_responses
            + f.requests_dropped
            + f.request_retries
            + f.requests_abandoned;
        if signature != self.progress_mark {
            self.progress_mark = signature;
            self.last_progress = now;
        }

        // Invariant sanitizer: per-cycle structural checks run serially
        // under both engines, so reports are engine-independent.
        if self.sanitizer.is_some() {
            self.sanitize_cycle(now);
        }
    }

    /// Sanitizer issue scan: records every latch freshly (re-)issued this
    /// cycle. Runs between the core phase and the request phase under both
    /// engines, before same-cycle local accepts consume the latches.
    fn sanitize_issues(&mut self, now: u64) {
        let faults_active = self.faults.is_some();
        let map = self.map;
        let quarantine = &self.quarantine;
        let Some(san) = self.sanitizer.as_deref_mut() else {
            return;
        };
        for latch in self.out_latches.iter().flatten() {
            if latch.issued_at != now {
                continue;
            }
            let dest = map.decode(latch.addr).map(|at| (at.tile, at.bank));
            let dest_quarantined =
                dest.is_some_and(|(t, b)| quarantine.is_quarantined(t, b));
            san.on_issue(latch, now, dest, dest_quarantined, faults_active);
        }
    }

    /// Sanitizer per-cycle checks: buffer bounds, conservation aging,
    /// quarantine consistency, and liveness.
    fn sanitize_cycle(&mut self, now: u64) {
        let (occupied, capacity) = self.net.occupancy();
        let qcount = self.quarantine.quarantined_banks();
        let tiles = &self.tiles;
        let quarantine = &self.quarantine;
        let num_tiles = self.config.num_tiles as u32;
        let banks_per_tile = self.config.banks_per_tile as u32;
        let Some(san) = self.sanitizer.as_deref_mut() else {
            return;
        };
        san.check_cycle(now, occupied, capacity);
        if qcount != san.known_quarantined() {
            san.rebaseline_quarantine(
                (0..num_tiles)
                    .flat_map(|t| (0..banks_per_tile).map(move |b| (t, b)))
                    .filter(|&(t, b)| quarantine.is_quarantined(t, b))
                    .map(|(t, b)| (t, b, tiles[t as usize].banks[b as usize].accesses())),
            );
        }
        if qcount > 0 {
            san.check_quarantine(now, |t, b| {
                tiles[t as usize].banks[b as usize].accesses()
            });
        }
        if san.liveness_due(now, self.last_progress)
            && (self.in_flight > 0 || !self.cores.iter().all(Core::done))
        {
            san.check_liveness(now, self.last_progress, self.in_flight);
        }
    }

    /// Applies armed test-only delivery mutations (see the `debug_*`
    /// hooks) at the head of the delivery drain.
    fn apply_debug_mutations(&mut self, now: u64, track: bool) {
        // Re-inject held responses whose delay elapsed.
        let mut i = 0;
        while i < self.debug_mut.held.len() {
            if self.debug_mut.held[i].0 <= now {
                let (_, resp) = self.debug_mut.held.remove(i);
                self.deliveries.push(resp);
            } else {
                i += 1;
            }
        }
        if self.debug_mut.drop_next && !self.deliveries.is_empty() {
            self.debug_mut.drop_next = false;
            let resp = self.deliveries.remove(0);
            self.in_flight -= 1;
            if track {
                self.pending.remove(&(resp.core, resp.tag));
            }
        }
        if self.debug_mut.dup_next && !self.deliveries.is_empty() {
            self.debug_mut.dup_next = false;
            let resp = self.deliveries[0];
            self.deliveries.push(resp);
            self.in_flight += 1;
        }
        if let Some((core, cycles)) = self.debug_mut.hold {
            if let Some(idx) = self.deliveries.iter().position(|r| r.core == core) {
                self.debug_mut.hold = None;
                let resp = self.deliveries.remove(idx);
                self.debug_mut.held.push((now + cycles, resp));
            }
        }
    }

    /// One cycle on the tile-parallel engine: the same phase sequence as
    /// [`cycle_serial`](Cluster::cycle_serial), with every tile-local
    /// phase fanned over the worker pool into per-tile staging buffers
    /// that are merged back in ascending tile order. Cores are numbered
    /// tile-major, so the merge reproduces the serial engine's write order
    /// exactly — the two engines are bit-identical by construction (and
    /// pinned by differential tests over `state_digest`).
    fn cycle_parallel(&mut self, engine: &mut ParEngine) {
        let ParEngine {
            pool,
            core_stages,
            resp_stages,
            accept_stages,
        } = engine;
        self.now += 1;
        let now = self.now;
        let cpt = self.config.cores_per_tile;
        let num_tiles = self.config.num_tiles;
        let track = self.track_pending();

        // 0. Fault application: inherently cross-tile (quarantine map,
        //    link registers), stays serial.
        if self.faults.is_some() || self.next_failure < self.pending_failures.len() {
            self.apply_faults(now);
        }

        // 1. I-cache refill transport. The fixed-latency ports are
        //    tile-local; the ring is one shared structure and stays serial.
        match &mut self.refill_ring {
            None => {
                let tiles = SyncPtr::new(self.tiles.as_mut_ptr());
                pool.run(num_tiles, &|t| {
                    // SAFETY: tile `t` only; tiles are disjoint per index.
                    let tile = unsafe { &mut *tiles.at(t) };
                    tile.refill_tick(now);
                });
            }
            Some(ring) => ring.cycle(
                &mut self.tiles,
                now,
                self.faults.as_ref(),
                &mut self.stats.faults,
            ),
        }

        // 2. Response phase. Master-response delivery reads the shared
        //    net; the per-tile response crossbars stage their local
        //    deliveries per tile and the merge appends them in ascending
        //    tile order — the exact serial order.
        self.deliveries.clear();
        self.net
            .deliver_master_resp(&mut self.tiles, &mut self.deliveries);
        if !matches!(self.config.topology, Topology::Ideal) {
            {
                let net = &self.net;
                let tiles = SyncPtr::new(self.tiles.as_mut_ptr());
                let stages = SyncPtr::new(resp_stages.as_mut_ptr());
                pool.run(num_tiles, &|t| {
                    // SAFETY: tile `t` and staging slot `t` only.
                    let tile = unsafe { &mut *tiles.at(t) };
                    let stage = unsafe { &mut *stages.at(t) };
                    stage.clear();
                    let port_for = |resp: &Response| net.resp_port_for(t, resp, cpt);
                    tile.route_responses(t, cpt, stage, &port_for);
                });
            }
            for stage in resp_stages.iter_mut() {
                self.deliveries.append(stage);
            }
            self.net.route_responses(&mut self.tiles, cpt);
        }
        self.drain_deliveries(now, track);

        // 2b. Retry layer: serial (ordered walk of the shared pending map).
        if self.config.resilience.retries_enabled() && !self.pending.is_empty() {
            self.retry_overdue(now);
        }

        // 3. Core phase: each tile steps its own cores against its own
        //    I-cache and output latches; cluster-global side effects
        //    (stats, fault log, pending map, trace) go to the tile's
        //    staging buffer.
        {
            let cores = SyncPtr::new(self.cores.as_mut_ptr());
            let tiles = SyncPtr::new(self.tiles.as_mut_ptr());
            let latches = SyncPtr::new(self.out_latches.as_mut_ptr());
            let locked = SyncPtr::new(self.locked_until.as_mut_ptr());
            let stages = SyncPtr::new(core_stages.as_mut_ptr());
            let faults = self.faults.as_ref();
            let scrambler = self.scrambler;
            let map = self.map;
            let quarantine = &self.quarantine;
            let image = &self.image;
            let topology = self.config.topology;
            let tpg = self.config.tiles_per_group();
            let trace_on = self.trace.is_some();
            pool.run(num_tiles, &|t| {
                // SAFETY: tile `t`, its staging slot, and the per-core
                // arrays at this tile's lanes `t*cpt..(t+1)*cpt` only.
                let tile = unsafe { &mut *tiles.at(t) };
                let stage = unsafe { &mut *stages.at(t) };
                stage.clear();
                for lane in 0..cpt {
                    let c = t * cpt + lane;
                    let core = unsafe { &mut *cores.at(c) };
                    let latch = unsafe { &mut *latches.at(c) };
                    let locked_until = unsafe { &mut *locked.at(c) };
                    if now < *locked_until {
                        continue;
                    }
                    if let Some(plan) = faults {
                        if let Some(len) = plan.core_lockup(now, c as u32) {
                            *locked_until = now + len;
                            stage.core_lockups += 1;
                            stage.log.push(FaultEvent::CoreLocked {
                                cycle: now,
                                core: c as u32,
                                until: now + len,
                            });
                            continue;
                        }
                        if plan.spurious_retire(now, c as u32) && !core.done() {
                            core.spurious_retire();
                            stage.spurious_retires += 1;
                            continue;
                        }
                    }
                    let ready = latch.is_none();
                    let issued = core.step(&mut |pc| tile.fetch(pc, image, now), ready);
                    if let Some(dr) = issued {
                        debug_assert!(ready, "core issued against backpressure");
                        let mut phys = scrambler.map_or(dr.addr, |s| s.scramble(dr.addr));
                        let Some(mut at) = map.decode(phys) else {
                            stage.memory_faults += 1;
                            core.fault();
                            continue;
                        };
                        if !quarantine.is_identity() {
                            let remapped = quarantine.remap(at);
                            if remapped.bank != at.bank {
                                stage.quarantine_remaps += 1;
                                at = remapped;
                                phys = map.encode(at);
                            }
                        }
                        if at.tile as usize == t {
                            stage.local_requests += 1;
                        } else {
                            stage.remote_requests += 1;
                            if topology == Topology::TopH {
                                let gs = t / tpg;
                                let gd = at.tile as usize / tpg;
                                match gs ^ gd {
                                    0 => stage.group_local_requests += 1,
                                    2 => stage.direction_requests[0] += 1, // N
                                    3 => stage.direction_requests[1] += 1, // NE
                                    1 => stage.direction_requests[2] += 1, // E
                                    _ => unreachable!("four groups"),
                                }
                            }
                        }
                        stage.requests_issued += 1;
                        stage.in_flight += 1;
                        if trace_on {
                            stage.trace.push((
                                c,
                                crate::TraceEvent {
                                    cycle: now,
                                    addr: dr.addr,
                                    write: dr.kind.is_write(),
                                },
                            ));
                        }
                        if track {
                            stage.pending.push((
                                (c as u32, dr.tag),
                                PendingRequest {
                                    addr: phys,
                                    kind: dr.kind,
                                    issued_at: now,
                                    last_sent: now,
                                    retries: 0,
                                },
                            ));
                        }
                        *latch = Some(Request {
                            core: c as u32,
                            tag: dr.tag,
                            addr: phys,
                            kind: dr.kind,
                            issued_at: now,
                        });
                    }
                }
            });
        }
        // Commit the core phase in ascending tile order = serial core
        // order (tile-major numbering).
        for stage in core_stages.iter_mut() {
            self.stats.memory_faults += stage.memory_faults;
            self.stats.local_requests += stage.local_requests;
            self.stats.remote_requests += stage.remote_requests;
            self.stats.group_local_requests += stage.group_local_requests;
            for (d, &n) in stage.direction_requests.iter().enumerate() {
                self.stats.direction_requests[d] += n;
            }
            self.stats.requests_issued += stage.requests_issued;
            self.in_flight += stage.in_flight;
            self.stats.faults.core_lockups += stage.core_lockups;
            self.stats.faults.spurious_retires += stage.spurious_retires;
            self.stats.faults.quarantine_remaps += stage.quarantine_remaps;
            for event in stage.log.drain(..) {
                self.fault_log.record(event);
            }
            for (key, p) in stage.pending.drain(..) {
                self.pending.insert(key, p);
            }
            if let Some(trace) = &mut self.trace {
                for (c, ev) in stage.trace.drain(..) {
                    trace.record(c, ev);
                }
            }
        }

        // 3b. Sanitizer issue scan: serial, after the core-phase merge and
        //     before the request phase consumes the latches — the same
        //     point as the serial engine, so reports are engine-independent.
        if self.sanitizer.is_some() {
            self.sanitize_issues(now);
        }

        // 4. Request phase. The ideal crossbar arbitrates globally and
        //    stays serial; the real topologies resolve each tile's request
        //    crossbar independently. The tile commit is fused in (sound:
        //    the following port routing touches only latches and the net,
        //    never tile state).
        let quarantine = &self.quarantine;
        let faults = self.faults.as_ref();
        let gate = move |tile: usize, bank: u32| -> BankGate {
            if quarantine.is_quarantined(tile as u32, bank) {
                return BankGate::Dead;
            }
            if let Some(plan) = faults {
                if plan.bank_stalled(now, tile as u32, bank) {
                    return BankGate::Stalled;
                }
            }
            BankGate::Ready
        };
        if let Net::Ideal(ideal) = &mut self.net {
            self.stats.bank_accesses += ideal.route_requests(
                &mut self.out_latches,
                &mut self.tiles,
                &self.map,
                &mut self.stats.tile_accesses,
                &gate,
                &mut self.stats.faults.requests_dropped,
            );
            for tile in &mut self.tiles {
                tile.commit();
            }
        } else {
            self.net.route_longhaul_requests(&mut self.tiles, &self.map);
            {
                let map = self.map;
                let tiles = SyncPtr::new(self.tiles.as_mut_ptr());
                let latches = SyncPtr::new(self.out_latches.as_mut_ptr());
                let accepts = SyncPtr::new(accept_stages.as_mut_ptr());
                let gate = &gate;
                pool.run(num_tiles, &|t| {
                    // SAFETY: tile `t`, its staging slot, and this tile's
                    // core latches `t*cpt..(t+1)*cpt` only.
                    let tile = unsafe { &mut *tiles.at(t) };
                    let lanes =
                        unsafe { std::slice::from_raw_parts_mut(latches.at(t * cpt), cpt) };
                    let tile_gate = |bank: u32| gate(t, bank);
                    let mut dropped = 0u64;
                    let served = tile.accept_requests(t, lanes, &map, now, &tile_gate, &mut dropped);
                    tile.commit();
                    unsafe { *accepts.at(t) = (served, dropped) };
                });
            }
            for (t, &(served, dropped)) in accept_stages.iter().enumerate() {
                self.stats.bank_accesses += served;
                self.stats.tile_accesses[t] += served;
                self.stats.faults.requests_dropped += dropped;
            }
            self.net.route_port_requests(&mut self.out_latches, &self.map);
        }

        // 5. End-of-cycle commit (tiles already committed above).
        self.finish_cycle(now);
    }

    /// Runs `n` cycles unconditionally (for open-ended traffic experiments).
    pub fn step_cycles(&mut self, n: u64) {
        for _ in 0..n {
            self.cycle();
        }
    }

    /// Runs up to `n` cycles, checking the installed
    /// [`CancelToken`](crate::CancelToken) between cycles. Without a token
    /// this is exactly [`step_cycles`](Cluster::step_cycles).
    ///
    /// Returns the number of cycles executed by this call.
    ///
    /// # Errors
    ///
    /// [`SimError::Cancelled`] when the token trips; the cluster stops at a
    /// clean cycle boundary (checkpointable, resumable bit-identically).
    pub fn try_step_cycles(&mut self, n: u64) -> Result<u64, SimError> {
        for i in 0..n {
            if let Some(cause) = self.probe_cancel() {
                let _ = i;
                return Err(SimError::Cancelled(CancelledError {
                    cycle: self.now,
                    cause,
                }));
            }
            self.cycle();
        }
        Ok(n)
    }

    /// Checks the cancellation token, throttling the wall-clock read.
    fn probe_cancel(&self) -> Option<crate::CancelCause> {
        let token = self.cancel.as_ref()?;
        token.probe(self.now, self.now.is_multiple_of(WALL_PROBE_STRIDE))
    }

    /// Runs until every core reports [`Core::done`] and all in-flight
    /// requests drained, or the budget expires, or the watchdog (when
    /// enabled in [`ResilienceConfig`](crate::ResilienceConfig)) detects a
    /// deadlock.
    ///
    /// Returns the number of cycles executed by this call.
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] when the budget expires while the cluster is
    /// still making progress; [`SimError::Deadlock`] — with a per-tile dump
    /// of stuck requests — when work is outstanding but nothing has moved
    /// for the configured number of cycles.
    pub fn run(&mut self, max_cycles: u64) -> Result<u64, SimError> {
        let start = self.now;
        let watchdog = self.config.resilience.watchdog_cycles;
        while !(self.in_flight == 0 && self.cores.iter().all(Core::done)) {
            if self.now - start >= max_cycles {
                return Err(SimError::Timeout(RunTimeoutError { budget: max_cycles }));
            }
            if let Some(cause) = self.probe_cancel() {
                return Err(SimError::Cancelled(CancelledError {
                    cycle: self.now,
                    cause,
                }));
            }
            self.cycle();
            if watchdog > 0
                && (self.in_flight > 0 || self.pending_refills() > 0)
                && self.now - self.last_progress >= watchdog
            {
                return Err(SimError::Deadlock(Box::new(self.deadlock_diagnostic())));
            }
        }
        Ok(self.now - start)
    }

    /// Snapshot of the stuck memory system for the watchdog report:
    /// tracked in-flight requests grouped by destination tile.
    fn deadlock_diagnostic(&self) -> DeadlockDiagnostic {
        /// Longest per-tile request dump; `total` still reports the rest.
        const MAX_DUMP_PER_TILE: usize = 8;
        let mut tiles: BTreeMap<u32, TileDiagnostic> = BTreeMap::new();
        for (&(core, tag), p) in &self.pending {
            let tile = self.map.decode(p.addr).map_or(u32::MAX, |at| at.tile);
            let entry = tiles.entry(tile).or_insert_with(|| TileDiagnostic {
                tile,
                total: 0,
                requests: Vec::new(),
            });
            entry.total += 1;
            if entry.requests.len() < MAX_DUMP_PER_TILE {
                entry.requests.push(PendingDump {
                    core,
                    tag,
                    addr: p.addr,
                    issued_at: p.issued_at,
                    retries: p.retries,
                });
            }
        }
        DeadlockDiagnostic {
            cycle: self.now,
            idle_cycles: self.now - self.last_progress,
            in_flight: self.in_flight as usize,
            pending_refills: self.pending_refills(),
            tiles: tiles.into_values().collect(),
        }
    }

    /// Resets all transient machine state — cores are rebuilt via
    /// `factory`, networks and latches drain, statistics restart — while
    /// **keeping L1 contents and warm I-caches**. Use it to chain program
    /// phases over the same data set.
    pub fn reset_with(&mut self, mut factory: impl FnMut(CoreLocation) -> C) {
        for (i, core) in self.cores.iter_mut().enumerate() {
            *core = factory(CoreLocation {
                core: i,
                tile: i / self.config.cores_per_tile,
                lane: i % self.config.cores_per_tile,
            });
        }
        for tile in &mut self.tiles {
            tile.clear_transient();
        }
        self.net = Net::new(&self.config);
        self.out_latches.iter_mut().for_each(|l| *l = None);
        self.in_flight = 0;
        self.stats = ClusterStats::with_tiles(self.config.num_tiles);
        // The recorder restarts empty but stays enabled with its config.
        if let Some(obs) = &mut self.obs {
            **obs = crate::obs::Obs::new(obs.config, self.config.num_tiles);
        }
        // Same for the profiler: empty windows, marks re-latched against
        // whatever survives the reset (e.g. warm I-cache statistics), and
        // the factory-fresh cores get their profile tables back.
        if let Some(config) = self.profile_config() {
            self.enable_profiling(config);
        }
        if let Some(ring) = &mut self.refill_ring {
            *ring = RefillRing::new(self.config.num_tiles, ring.l2_latency);
        }
        // Resilience state: transient bookkeeping restarts, but the fault
        // plan, its remaining scheduled failures, and quarantined banks
        // survive — a reset does not heal dead hardware.
        self.pending.clear();
        self.locked_until.iter_mut().for_each(|l| *l = 0);
        self.fault_log.clear();
        self.last_progress = self.now;
        self.progress_mark = 0;
    }
}

impl Cluster<mempool_snitch::SnitchCore> {
    /// [`reset_with`](Cluster::reset_with) specialized for Snitch cores
    /// (hart IDs re-assigned from the configuration template).
    pub fn reset(&mut self) {
        let template = self.config.core;
        self.reset_with(|loc| {
            mempool_snitch::SnitchCore::new(mempool_snitch::SnitchConfig {
                hartid: loc.core as u32,
                ..template
            })
        });
    }

    /// Builds a cluster of Snitch cores with hart IDs assigned by global
    /// core index, using the configuration's core template.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateConfigError`] when the configuration is
    /// inconsistent.
    pub fn snitch(config: ClusterConfig) -> Result<Self, ValidateConfigError> {
        let template = config.core;
        Cluster::new(config, |loc| {
            mempool_snitch::SnitchCore::new(mempool_snitch::SnitchConfig {
                hartid: loc.core as u32,
                ..template
            })
        })
    }

    /// Sum of per-core statistics over all cores.
    pub fn core_stats_total(&self) -> mempool_snitch::CoreStats {
        let mut total = mempool_snitch::CoreStats::default();
        for core in &self.cores {
            let s = core.stats();
            total.instret += s.instret;
            total.cycles += s.cycles;
            total.loads += s.loads;
            total.stores += s.stores;
            total.amos += s.amos;
            total.muls += s.muls;
            total.divs += s.divs;
            total.taken_branches += s.taken_branches;
            total.stall_scoreboard += s.stall_scoreboard;
            total.stall_lsu_full += s.stall_lsu_full;
            total.stall_port += s.stall_port;
            total.stall_fetch += s.stall_fetch;
            total.stall_fence += s.stall_fence;
            total.stall_exec += s.stall_exec;
            total.halted_cycles += s.halted_cycles;
        }
        total
    }
}
