//! Deterministic fault injection and the resilience error taxonomy.
//!
//! A [`FaultPlan`] turns a single `u64` seed plus a [`FaultSpec`] into a
//! *pure function* from (cycle, site) to fault decisions: every query is an
//! independent counter-mode draw through the splitmix64 finalizer, so the
//! plan is stateless, order-independent, and exactly replayable — the same
//! seed produces the same faults no matter how the simulator interleaves its
//! queries. This is what makes fault campaigns reproducible from a campaign
//! log line.
//!
//! The injectable faults mirror the failure modes a physical MemPool cluster
//! could exhibit:
//!
//! * **SPM bank faults** — transient single-cycle bank stalls, and permanent
//!   bank failures that trigger quarantine via
//!   [`QuarantineMap`](mempool_mem::QuarantineMap);
//! * **interconnect link faults** — per-cycle stalls, flit drops, and
//!   response-payload corruption at any elastic-buffer register stage;
//! * **refill-ring faults** — slot stalls and in-flight flit drops;
//! * **core faults** — temporary lockups (a core freezes for a bounded
//!   number of cycles) and spurious retires (an instruction is skipped).
//!
//! Errors surfaced by the resilient cluster are typed: [`SimError`] replaces
//! the bare timeout, and [`DeadlockDiagnostic`] carries a per-tile dump of
//! in-flight requests when the watchdog fires.

use std::fmt;

use mempool_rng::{splitmix64_mix, Rng, SeedableRng, StdRng};

use crate::cluster::RunTimeoutError;

/// Fault probabilities and counts, parsed from a `key=value,...` spec string.
///
/// All probability fields are per-cycle, per-site rates in `[0, 1]`;
/// `bank_fail` is an absolute number of permanent bank failures injected in
/// the first cycles of the run.
///
/// # Examples
///
/// ```
/// use mempool::FaultSpec;
///
/// let spec: FaultSpec = "bank_fail=2,link_stall=0.01".parse().unwrap();
/// assert_eq!(spec.bank_fail, 2);
/// assert_eq!(spec.link_stall, 0.01);
/// // Display round-trips through parse.
/// assert_eq!(spec.to_string().parse::<FaultSpec>().unwrap(), spec);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Number of permanent SPM bank failures to inject (distinct banks).
    pub bank_fail: u32,
    /// Per-cycle probability that a given bank refuses requests this cycle.
    pub bank_stall: f64,
    /// Per-cycle probability that a given interconnect register stage
    /// stalls (valid/ready gated low, contents kept).
    pub link_stall: f64,
    /// Per-cycle probability that a given register stage silently drops its
    /// oldest flit.
    pub link_drop: f64,
    /// Per-cycle probability that a response register stage flips one data
    /// bit of its oldest flit (requests are never corrupted — routing fields
    /// are validated upstream).
    pub link_corrupt: f64,
    /// Per-cycle probability that a refill-ring link stalls.
    pub ring_stall: f64,
    /// Per-cycle probability that an in-flight refill-ring flit is lost.
    pub ring_drop: f64,
    /// Per-cycle probability that a core enters a bounded lockup.
    pub core_lockup: f64,
    /// Per-cycle probability that a core spuriously retires (skips) an
    /// instruction without executing it.
    pub spurious_retire: f64,
}

/// Error from parsing a [`FaultSpec`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultSpecError {
    msg: String,
}

impl fmt::Display for ParseFaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.msg)
    }
}

impl std::error::Error for ParseFaultSpecError {}

fn spec_err(msg: impl Into<String>) -> ParseFaultSpecError {
    ParseFaultSpecError { msg: msg.into() }
}

impl FaultSpec {
    /// Whether every field is zero (no faults would ever fire).
    pub fn is_empty(&self) -> bool {
        *self == FaultSpec::default()
    }

    /// Whether any interconnect-link fault has a nonzero rate.
    pub fn has_link_faults(&self) -> bool {
        self.link_stall > 0.0 || self.link_drop > 0.0 || self.link_corrupt > 0.0
    }

    /// Whether any refill-ring fault has a nonzero rate.
    pub fn has_ring_faults(&self) -> bool {
        self.ring_stall > 0.0 || self.ring_drop > 0.0
    }
}

impl std::str::FromStr for FaultSpec {
    type Err = ParseFaultSpecError;

    /// Parses `key=value` pairs separated by commas; `none` or the empty
    /// string yields the all-zero spec.
    fn from_str(s: &str) -> Result<FaultSpec, ParseFaultSpecError> {
        let mut spec = FaultSpec::default();
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(spec);
        }
        for pair in s.split(',') {
            let pair = pair.trim();
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| spec_err(format!("`{pair}` is not a key=value pair")))?;
            let prob = |field: &mut f64| -> Result<(), ParseFaultSpecError> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| spec_err(format!("`{value}` is not a number")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(spec_err(format!("`{key}` must be in [0, 1], got {value}")));
                }
                *field = p;
                Ok(())
            };
            match key.trim() {
                "bank_fail" => {
                    spec.bank_fail = value
                        .parse()
                        .map_err(|_| spec_err(format!("`{value}` is not a count")))?;
                }
                "bank_stall" => prob(&mut spec.bank_stall)?,
                "link_stall" => prob(&mut spec.link_stall)?,
                "link_drop" => prob(&mut spec.link_drop)?,
                "link_corrupt" => prob(&mut spec.link_corrupt)?,
                "ring_stall" => prob(&mut spec.ring_stall)?,
                "ring_drop" => prob(&mut spec.ring_drop)?,
                "core_lockup" => prob(&mut spec.core_lockup)?,
                "spurious_retire" => prob(&mut spec.spurious_retire)?,
                other => return Err(spec_err(format!("unknown fault kind `{other}`"))),
            }
        }
        Ok(spec)
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.bank_fail > 0 {
            parts.push(format!("bank_fail={}", self.bank_fail));
        }
        for (key, p) in [
            ("bank_stall", self.bank_stall),
            ("link_stall", self.link_stall),
            ("link_drop", self.link_drop),
            ("link_corrupt", self.link_corrupt),
            ("ring_stall", self.ring_stall),
            ("ring_drop", self.ring_drop),
            ("core_lockup", self.core_lockup),
            ("spurious_retire", self.spurious_retire),
        ] {
            if p > 0.0 {
                parts.push(format!("{key}={p}"));
            }
        }
        if parts.is_empty() {
            f.write_str("none")
        } else {
            f.write_str(&parts.join(","))
        }
    }
}

/// A permanent bank failure scheduled by a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankFailure {
    /// Cycle at which the bank dies.
    pub cycle: u64,
    /// Tile of the failing bank.
    pub tile: u32,
    /// Bank index within the tile.
    pub bank: u32,
}

/// The kind of fault a link register stage suffers this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFaultKind {
    /// Valid/ready gated low for the cycle; contents preserved.
    Stall,
    /// The oldest stored flit is silently discarded.
    Drop,
    /// One data bit of the oldest stored response flit is flipped.
    Corrupt,
}

// Domain-separation salts: one per fault family, so queries never alias.
const SALT_BANK_FAIL: u64 = 0xfa17_0001_9e37_79b9;
const SALT_BANK_STALL: u64 = 0xfa17_0002_9e37_79b9;
const SALT_LINK: u64 = 0xfa17_0003_9e37_79b9;
const SALT_RING_STALL: u64 = 0xfa17_0004_9e37_79b9;
const SALT_RING_DROP: u64 = 0xfa17_0005_9e37_79b9;
const SALT_CORE_LOCKUP: u64 = 0xfa17_0006_9e37_79b9;
const SALT_LOCKUP_LEN: u64 = 0xfa17_0007_9e37_79b9;
const SALT_SPURIOUS: u64 = 0xfa17_0008_9e37_79b9;
const SALT_CORRUPT_BIT: u64 = 0xfa17_0009_9e37_79b9;

/// Earliest cycles of the run in which scheduled bank failures land: early
/// enough that even short kernels exercise quarantine and recovery.
const BANK_FAIL_WINDOW: u64 = 64;

/// Longest core lockup, in cycles. Kept well below any sane request timeout
/// so a locked core looks like a stalled pipeline, not a dead cluster.
const MAX_LOCKUP_CYCLES: u64 = 64;

/// A seeded, replayable fault schedule.
///
/// Every decision is a pure function of `(seed, fault kind, cycle, site)`
/// computed with counter-mode splitmix64 — no internal state, no dependence
/// on query order. Two plans with the same seed and spec answer every query
/// identically, which the determinism tests in
/// `crates/core/tests/fault_resilience.rs` pin down.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
}

impl FaultPlan {
    /// Creates a plan for `spec` driven by `seed`.
    pub fn new(seed: u64, spec: FaultSpec) -> FaultPlan {
        FaultPlan { seed, spec }
    }

    /// The driving seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault specification.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// One counter-mode draw: an avalanched 64-bit word unique to
    /// `(seed, salt, cycle, site)`.
    fn roll(&self, salt: u64, cycle: u64, site: u64) -> u64 {
        splitmix64_mix(splitmix64_mix(splitmix64_mix(self.seed ^ salt) ^ cycle) ^ site)
    }

    /// Maps a raw roll to a uniform draw in `[0, 1)` (53-bit precision).
    fn unit(roll: u64) -> f64 {
        (roll >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn hit(&self, p: f64, salt: u64, cycle: u64, site: u64) -> bool {
        p > 0.0 && Self::unit(self.roll(salt, cycle, site)) < p
    }

    /// The permanent bank failures this plan schedules for a cluster of
    /// `num_tiles × banks_per_tile` banks: `spec.bank_fail` distinct banks,
    /// each dying at a cycle in `1..=64`, sorted by (cycle, tile, bank).
    pub fn bank_failures(&self, num_tiles: u32, banks_per_tile: u32) -> Vec<BankFailure> {
        let total = u64::from(num_tiles) * u64::from(banks_per_tile);
        let want = u64::from(self.spec.bank_fail).min(total) as usize;
        if want == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ SALT_BANK_FAIL);
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < want {
            let tile = rng.gen_range(0u32..num_tiles);
            let bank = rng.gen_range(0u32..banks_per_tile);
            chosen.insert((tile, bank));
        }
        let mut failures: Vec<BankFailure> = chosen
            .into_iter()
            .map(|(tile, bank)| BankFailure {
                cycle: rng.gen_range(1u64..BANK_FAIL_WINDOW + 1),
                tile,
                bank,
            })
            .collect();
        failures.sort_by_key(|f| (f.cycle, f.tile, f.bank));
        failures
    }

    /// Whether bank `bank` of tile `tile` transiently stalls this cycle.
    pub fn bank_stalled(&self, cycle: u64, tile: u32, bank: u32) -> bool {
        self.hit(
            self.spec.bank_stall,
            SALT_BANK_STALL,
            cycle,
            (u64::from(tile) << 32) | u64::from(bank),
        )
    }

    /// The fault (if any) suffered by interconnect register stage `link`
    /// this cycle. The three link-fault rates partition one uniform draw,
    /// so at most one fault fires per link per cycle.
    pub fn link_fault(&self, cycle: u64, link: u64) -> Option<LinkFaultKind> {
        let s = &self.spec;
        if !s.has_link_faults() {
            return None;
        }
        let u = Self::unit(self.roll(SALT_LINK, cycle, link));
        if u < s.link_stall {
            Some(LinkFaultKind::Stall)
        } else if u < s.link_stall + s.link_drop {
            Some(LinkFaultKind::Drop)
        } else if u < s.link_stall + s.link_drop + s.link_corrupt {
            Some(LinkFaultKind::Corrupt)
        } else {
            None
        }
    }

    /// Which data bit (0–31) a corruption fault on `link` flips this cycle.
    pub fn corrupt_bit(&self, cycle: u64, link: u64) -> u32 {
        (self.roll(SALT_CORRUPT_BIT, cycle, link) % 32) as u32
    }

    /// Whether refill-ring slot `slot` stalls this cycle.
    pub fn ring_stalled(&self, cycle: u64, slot: u64) -> bool {
        self.hit(self.spec.ring_stall, SALT_RING_STALL, cycle, slot)
    }

    /// Whether the flit in refill-ring slot `slot` is lost this cycle.
    pub fn ring_dropped(&self, cycle: u64, slot: u64) -> bool {
        self.hit(self.spec.ring_drop, SALT_RING_DROP, cycle, slot)
    }

    /// If core `core` locks up this cycle, the lockup duration in cycles
    /// (`1..=64`).
    pub fn core_lockup(&self, cycle: u64, core: u32) -> Option<u64> {
        if !self.hit(self.spec.core_lockup, SALT_CORE_LOCKUP, cycle, u64::from(core)) {
            return None;
        }
        Some(1 + self.roll(SALT_LOCKUP_LEN, cycle, u64::from(core)) % MAX_LOCKUP_CYCLES)
    }

    /// Whether core `core` spuriously retires (skips) an instruction this
    /// cycle.
    pub fn spurious_retire(&self, cycle: u64, core: u32) -> bool {
        self.hit(self.spec.spurious_retire, SALT_SPURIOUS, cycle, u64::from(core))
    }
}

/// A notable fault event, recorded in the [`FaultLog`].
///
/// Only *rare* events are logged (permanent failures, abandoned requests,
/// lockups) — per-cycle stall/drop noise is counted in
/// [`FaultStats`](crate::FaultStats) instead, so the log stays readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A bank died and its traffic was quarantined onto `substitute`
    /// (`None`: the failure was refused because it was the tile's last
    /// live bank).
    BankFailed {
        /// Cycle of the failure.
        cycle: u64,
        /// Tile of the failed bank.
        tile: u32,
        /// Bank index within the tile.
        bank: u32,
        /// The live bank now serving the dead bank's rows.
        substitute: Option<u32>,
    },
    /// A request exhausted its retry budget and was abandoned.
    RequestAbandoned {
        /// Cycle of abandonment.
        cycle: u64,
        /// Issuing core (cluster-wide index).
        core: u32,
        /// Physical address of the request.
        addr: u32,
        /// Retries attempted before giving up.
        retries: u32,
    },
    /// A core entered a bounded lockup.
    CoreLocked {
        /// Cycle the lockup began.
        cycle: u64,
        /// The locked core (cluster-wide index).
        core: u32,
        /// First cycle at which the core runs again.
        until: u64,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultEvent::BankFailed {
                cycle,
                tile,
                bank,
                substitute,
            } => match substitute {
                Some(s) => write!(
                    f,
                    "[{cycle}] bank {bank} of tile {tile} failed; quarantined onto bank {s}"
                ),
                None => write!(
                    f,
                    "[{cycle}] bank {bank} of tile {tile} failed; last live bank, failure refused"
                ),
            },
            FaultEvent::RequestAbandoned {
                cycle,
                core,
                addr,
                retries,
            } => write!(
                f,
                "[{cycle}] core {core} abandoned request to {addr:#010x} after {retries} retries"
            ),
            FaultEvent::CoreLocked { cycle, core, until } => {
                write!(f, "[{cycle}] core {core} locked up until cycle {until}")
            }
        }
    }
}

/// Default capacity of a [`FaultLog`].
const FAULT_LOG_CAPACITY: usize = 4096;

/// A bounded, in-order record of notable fault events.
///
/// The log never grows past its capacity; overflow is counted in
/// [`dropped`](FaultLog::dropped) so campaigns can tell the record is
/// truncated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for FaultLog {
    fn default() -> Self {
        FaultLog::new(FAULT_LOG_CAPACITY)
    }
}

impl FaultLog {
    /// Creates a log retaining at most `capacity` events.
    pub fn new(capacity: usize) -> FaultLog {
        FaultLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, counting it as dropped when the log is full.
    pub fn record(&mut self, event: FaultEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events discarded after the log filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Reconstructs a log from checkpointed parts (events must not exceed
    /// `capacity`).
    ///
    /// # Panics
    ///
    /// Panics if `events` is longer than `capacity`.
    pub fn from_parts(events: Vec<FaultEvent>, capacity: usize, dropped: u64) -> FaultLog {
        assert!(events.len() <= capacity, "fault log overflows its capacity");
        FaultLog {
            events,
            capacity,
            dropped,
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Empties the log.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

/// One in-flight request in a [`DeadlockDiagnostic`] dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingDump {
    /// Issuing core (cluster-wide index).
    pub core: u32,
    /// LSU tag of the request.
    pub tag: u8,
    /// Physical address.
    pub addr: u32,
    /// Cycle the request was (last) issued.
    pub issued_at: u64,
    /// Retries already attempted.
    pub retries: u32,
}

/// The in-flight requests targeting one tile when the watchdog fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileDiagnostic {
    /// The destination tile.
    pub tile: u32,
    /// Total in-flight requests targeting this tile.
    pub total: usize,
    /// The oldest such requests (capped per tile to keep the dump short).
    pub requests: Vec<PendingDump>,
}

/// Watchdog report: the cluster stopped making progress.
///
/// Produced when, for a configured number of consecutive cycles, no
/// response was delivered, no bank was accessed, no request was issued,
/// and no refill completed while work was still outstanding — a deadlock
/// or livelock in the memory system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockDiagnostic {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Consecutive cycles without progress.
    pub idle_cycles: u64,
    /// Data requests in flight, cluster-wide.
    pub in_flight: usize,
    /// Instruction refills outstanding, cluster-wide.
    pub pending_refills: usize,
    /// Per-tile dump of tracked in-flight requests, sorted by tile.
    pub tiles: Vec<TileDiagnostic>,
}

impl fmt::Display for DeadlockDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster deadlock at cycle {}: no progress for {} cycles \
             ({} data requests in flight, {} refills pending)",
            self.cycle, self.idle_cycles, self.in_flight, self.pending_refills
        )?;
        for tile in &self.tiles {
            writeln!(f, "  tile {}: {} in-flight request(s)", tile.tile, tile.total)?;
            for r in &tile.requests {
                writeln!(
                    f,
                    "    core {} tag {} addr {:#010x} issued at cycle {} ({} retries)",
                    r.core, r.tag, r.addr, r.issued_at, r.retries
                )?;
            }
            if tile.total > tile.requests.len() {
                writeln!(f, "    ... and {} more", tile.total - tile.requests.len())?;
            }
        }
        Ok(())
    }
}

/// Typed top-level simulation failure returned by
/// [`Cluster::run`](crate::Cluster::run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle budget ran out while the cluster was still making
    /// progress.
    Timeout(RunTimeoutError),
    /// The watchdog detected a deadlock or livelock in the memory system.
    Deadlock(Box<DeadlockDiagnostic>),
    /// An installed [`CancelToken`](crate::CancelToken) tripped: explicit
    /// request, wall-clock deadline, or sim-cycle budget.
    Cancelled(crate::CancelledError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout(e) => e.fmt(f),
            SimError::Deadlock(d) => d.fmt(f),
            SimError::Cancelled(c) => c.fmt(f),
        }
    }
}

impl std::error::Error for SimError {}

impl From<RunTimeoutError> for SimError {
    fn from(e: RunTimeoutError) -> SimError {
        SimError::Timeout(e)
    }
}

/// A host-side access fell outside the L1 address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusError {
    /// The offending byte address.
    pub addr: u32,
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bus error: address {:#010x} is outside L1", self.addr)
    }
}

impl std::error::Error for BusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parse_and_display_round_trip() {
        let spec: FaultSpec = "bank_fail=2, link_stall=0.01,core_lockup=0.5"
            .parse()
            .unwrap();
        assert_eq!(spec.bank_fail, 2);
        assert_eq!(spec.link_stall, 0.01);
        assert_eq!(spec.core_lockup, 0.5);
        let back: FaultSpec = spec.to_string().parse().unwrap();
        assert_eq!(back, spec);
        assert_eq!("none".parse::<FaultSpec>().unwrap(), FaultSpec::default());
        assert_eq!("".parse::<FaultSpec>().unwrap(), FaultSpec::default());
        assert_eq!(FaultSpec::default().to_string(), "none");
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!("flux_capacitor=1".parse::<FaultSpec>().is_err());
        assert!("link_stall".parse::<FaultSpec>().is_err());
        assert!("link_stall=two".parse::<FaultSpec>().is_err());
        assert!("link_stall=1.5".parse::<FaultSpec>().is_err());
        assert!("bank_fail=-1".parse::<FaultSpec>().is_err());
    }

    #[test]
    fn plan_is_deterministic_and_order_independent() {
        let spec: FaultSpec = "link_stall=0.3,link_drop=0.1,core_lockup=0.05"
            .parse()
            .unwrap();
        let a = FaultPlan::new(42, spec);
        let b = FaultPlan::new(42, spec);
        // Query b in reverse order: answers must still match a's.
        let forward: Vec<_> = (0..512u64)
            .map(|c| (a.link_fault(c, 7), a.core_lockup(c, 3)))
            .collect();
        let backward: Vec<_> = (0..512u64)
            .rev()
            .map(|c| (b.link_fault(c, 7), b.core_lockup(c, 3)))
            .collect();
        let backward: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
    }

    #[test]
    fn different_seeds_differ() {
        let spec: FaultSpec = "link_stall=0.5".parse().unwrap();
        let a = FaultPlan::new(1, spec);
        let b = FaultPlan::new(2, spec);
        let differs = (0..256u64).any(|c| a.link_fault(c, 0) != b.link_fault(c, 0));
        assert!(differs);
    }

    #[test]
    fn bank_failures_are_distinct_sorted_and_capped() {
        let spec: FaultSpec = "bank_fail=10".parse().unwrap();
        let plan = FaultPlan::new(7, spec);
        let failures = plan.bank_failures(4, 4);
        assert_eq!(failures.len(), 10);
        let mut pairs: Vec<_> = failures.iter().map(|f| (f.tile, f.bank)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 10, "banks must be distinct");
        assert!(failures.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(failures
            .iter()
            .all(|f| (1..=BANK_FAIL_WINDOW).contains(&f.cycle)));
        // Requesting more failures than banks exist saturates.
        let all: FaultSpec = "bank_fail=99".parse().unwrap();
        assert_eq!(FaultPlan::new(7, all).bank_failures(2, 2).len(), 4);
        // Same seed, same schedule.
        assert_eq!(failures, FaultPlan::new(7, spec).bank_failures(4, 4));
    }

    #[test]
    fn link_fault_partitions_probability() {
        // With rates summing to 1 every cycle faults, and the observed mix
        // roughly follows the requested split.
        let spec: FaultSpec = "link_stall=0.5,link_drop=0.3,link_corrupt=0.2"
            .parse()
            .unwrap();
        let plan = FaultPlan::new(99, spec);
        let mut counts = [0u32; 3];
        for c in 0..10_000u64 {
            match plan.link_fault(c, 0).expect("rates sum to 1") {
                LinkFaultKind::Stall => counts[0] += 1,
                LinkFaultKind::Drop => counts[1] += 1,
                LinkFaultKind::Corrupt => counts[2] += 1,
            }
        }
        assert!((4500..5500).contains(&counts[0]), "{counts:?}");
        assert!((2500..3500).contains(&counts[1]), "{counts:?}");
        assert!((1500..2500).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn lockup_durations_bounded() {
        let spec: FaultSpec = "core_lockup=1".parse().unwrap();
        let plan = FaultPlan::new(3, spec);
        for c in 0..1000u64 {
            let len = plan.core_lockup(c, 0).expect("p = 1 always locks");
            assert!((1..=MAX_LOCKUP_CYCLES).contains(&len));
        }
    }

    #[test]
    fn empty_spec_never_fires() {
        let plan = FaultPlan::new(123, FaultSpec::default());
        for c in 0..256u64 {
            assert!(plan.link_fault(c, 0).is_none());
            assert!(!plan.bank_stalled(c, 0, 0));
            assert!(!plan.ring_stalled(c, 0));
            assert!(!plan.ring_dropped(c, 0));
            assert!(plan.core_lockup(c, 0).is_none());
            assert!(!plan.spurious_retire(c, 0));
        }
        assert!(plan.bank_failures(4, 4).is_empty());
    }

    #[test]
    fn fault_log_caps_and_counts_drops() {
        let mut log = FaultLog::new(2);
        for i in 0..5u64 {
            log.record(FaultEvent::CoreLocked {
                cycle: i,
                core: 0,
                until: i + 1,
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        log.clear();
        assert!(log.is_empty());
    }
}
