//! Cooperative cancellation for long simulations.
//!
//! A [`CancelToken`] bounds a run three ways at once: an explicit
//! [`cancel`](CancelToken::cancel) request (e.g. from a signal handler), a
//! wall-clock deadline, and an absolute sim-cycle budget. The cluster
//! checks the token inside its step loop — the request flag and cycle
//! budget every cycle (an atomic load and an integer compare), the wall
//! clock on a coarse stride so `Instant::now()` stays off the hot path —
//! and returns [`SimError::Cancelled`](crate::SimError::Cancelled) with the
//! tripped cause. The token is pure policy: it never perturbs architectural
//! state, so a cancelled run resumed from a checkpoint is bit-identical to
//! an uninterrupted one.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in cycles) the wall clock is consulted. Flag and cycle-budget
/// checks are per-cycle; only `Instant::now()` is throttled.
pub(crate) const WALL_PROBE_STRIDE: u64 = 512;

/// Why a run was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called (e.g. by a signal handler).
    Requested,
    /// The wall-clock deadline passed.
    WallClock {
        /// The configured limit, in milliseconds.
        limit_ms: u64,
    },
    /// The absolute sim-cycle budget was reached.
    CycleBudget {
        /// The configured budget (absolute cycle count).
        limit: u64,
    },
}

/// Typed payload of [`SimError::Cancelled`](crate::SimError::Cancelled):
/// where and why the run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancelledError {
    /// Cycle at which the cancellation was observed.
    pub cycle: u64,
    /// Which bound tripped.
    pub cause: CancelCause,
}

impl fmt::Display for CancelledError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cause {
            CancelCause::Requested => {
                write!(f, "run cancelled at cycle {}", self.cycle)
            }
            CancelCause::WallClock { limit_ms } => write!(
                f,
                "wall-clock timeout: limit of {limit_ms} ms exceeded at cycle {}",
                self.cycle
            ),
            CancelCause::CycleBudget { limit } => write!(
                f,
                "sim-cycle budget of {limit} cycles exhausted at cycle {}",
                self.cycle
            ),
        }
    }
}

impl std::error::Error for CancelledError {}

/// A cloneable cancellation token: share it with a supervisor (or install
/// it in a signal handler) and hand a clone to
/// [`Cluster::set_cancel_token`](crate::Cluster::set_cancel_token).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    wall: Option<(Instant, Duration)>,
    cycle_limit: Option<u64>,
}

impl CancelToken {
    /// A token with no bounds armed; cancellable only via
    /// [`cancel`](CancelToken::cancel).
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Arms a wall-clock deadline `limit` from *now*.
    #[must_use]
    pub fn with_wall_limit(mut self, limit: Duration) -> Self {
        self.wall = Some((Instant::now() + limit, limit));
        self
    }

    /// Arms an absolute sim-cycle budget: the run cancels once the cluster
    /// cycle counter reaches `limit`.
    #[must_use]
    pub fn with_cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = Some(limit);
        self
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was explicitly requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Checks all armed bounds; `probe_clock` gates the (comparatively
    /// expensive) wall-clock read.
    pub fn probe(&self, cycle: u64, probe_clock: bool) -> Option<CancelCause> {
        if self.flag.load(Ordering::Relaxed) {
            return Some(CancelCause::Requested);
        }
        if let Some(limit) = self.cycle_limit {
            if cycle >= limit {
                return Some(CancelCause::CycleBudget { limit });
            }
        }
        if probe_clock {
            if let Some((deadline, limit)) = self.wall {
                if Instant::now() >= deadline {
                    return Some(CancelCause::WallClock {
                        limit_ms: limit.as_millis() as u64,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_unbounded() {
        let t = CancelToken::new();
        assert_eq!(t.probe(u64::MAX, true), None);
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancel_is_visible_through_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert_eq!(t.probe(0, false), Some(CancelCause::Requested));
    }

    #[test]
    fn cycle_budget_trips_at_the_limit() {
        let t = CancelToken::new().with_cycle_limit(100);
        assert_eq!(t.probe(99, false), None);
        assert_eq!(
            t.probe(100, false),
            Some(CancelCause::CycleBudget { limit: 100 })
        );
    }

    #[test]
    fn expired_wall_deadline_trips_only_when_probed() {
        let t = CancelToken::new().with_wall_limit(Duration::ZERO);
        assert_eq!(t.probe(0, false), None, "clock not consulted");
        assert!(matches!(
            t.probe(0, true),
            Some(CancelCause::WallClock { .. })
        ));
    }
}
