//! The cycle-level invariant sanitizer: an option-gated, digest-*excluded*
//! checker that validates the architectural contracts the paper defines
//! while the simulation runs, instead of leaving them to surface as digest
//! mismatches long after the causing cycle.
//!
//! Checked invariants:
//!
//! 1. **Request/response conservation** — every issued LSU request gets
//!    exactly one non-stale response: an unanswered request older than the
//!    configured horizon is a leak, a response with no matching request a
//!    duplicate.
//! 2. **Per core→bank FIFO ordering** — responses from one bank to one
//!    core complete in issue order (§III-B: banks serve in order, and the
//!    elastic networks preserve per-flow order). Retried requests are
//!    excluded (a retry legitimately overtakes its stale twin).
//! 3. **The zero-load latency contract** (§III, Table: 1 cycle local /
//!    ideal, 3 cycles TopH in-group, 5 cycles remote): *no* response may
//!    beat the register path of its class, and a conflict-free (solo,
//!    fault-free, never-retried) request must complete in *exactly* its
//!    class latency.
//! 4. **Bounded elastic-buffer occupancy** — the network's register slots
//!    never hold more flits than their aggregate capacity.
//! 5. **Barrier liveness** — cores not done, nothing in flight moving, and
//!    no progress for the configured horizon is a stall report even when
//!    the deadlock watchdog (which requires in-flight traffic) stays
//!    silent.
//! 6. **Fault-quarantine consistency** — no new request targets a
//!    quarantined bank (issue-time remap, §"graceful degradation"), and a
//!    quarantined bank's access counter never grows again.
//!
//! The sanitizer is pure checking: it is excluded from snapshots and the
//! state digest, and enabling it never perturbs simulation results.

use crate::config::Topology;
use crate::packet::{Request, Response};
use crate::ClusterConfig;
use std::collections::BTreeMap;
use std::fmt;

/// Which invariants the sanitizer checks, and its reporting bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanitizerConfig {
    /// Check request/response conservation (leaks and duplicates).
    pub conservation: bool,
    /// Check per core→bank FIFO completion order.
    pub fifo: bool,
    /// Check the zero-load latency contract (lower bound always, exact
    /// bound for conflict-free requests in fault-free runs).
    pub latency: bool,
    /// Check aggregate elastic-buffer occupancy against capacity.
    pub buffers: bool,
    /// Check quarantine consistency (no traffic to dead banks).
    pub quarantine: bool,
    /// Report a liveness stall after this many progress-free cycles while
    /// work remains (`0` disables the check).
    pub liveness_cycles: u64,
    /// Report a conservation leak once a request has gone unanswered (and
    /// un-retried) for this many cycles.
    pub leak_after: u64,
    /// At most this many violations are retained; the rest are counted in
    /// [`SanitizerReport::dropped`].
    pub max_violations: usize,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            conservation: true,
            fifo: true,
            latency: true,
            buffers: true,
            quarantine: true,
            // Past the standard resilience horizon (timeout 4096 × up to
            // 3 retries), an unanswered tracked request would have been
            // retried or abandoned; untracked runs have no legal reason to
            // be slower.
            liveness_cycles: 16_384,
            leak_after: 32_768,
            max_violations: 64,
        }
    }
}

/// The typed payload of one sanitizer violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A request went unanswered past the conservation horizon.
    ResponseLeak {
        /// Issuing core.
        core: u32,
        /// Reorder-buffer tag.
        tag: u8,
        /// Physical target address.
        addr: u32,
        /// Cycles since the request was (last) sent.
        age: u64,
    },
    /// A response arrived for a request that was already answered (or was
    /// never issued).
    DuplicateResponse {
        /// Destination core of the response.
        core: u32,
        /// Reorder-buffer tag.
        tag: u8,
    },
    /// Two responses from one bank to one core completed out of issue
    /// order.
    FifoReorder {
        /// The core observing the reorder.
        core: u32,
        /// Destination tile of both requests.
        tile: u32,
        /// Destination bank of both requests.
        bank: u32,
        /// Issue cycle of the previously completed (later-issued) request.
        prev_issue: u64,
        /// Issue cycle of the newly completed (earlier-issued) request.
        this_issue: u64,
    },
    /// A response was faster than the register path of its topology class
    /// permits.
    LatencyUnderrun {
        /// The issuing core.
        core: u32,
        /// Destination tile.
        tile: u32,
        /// Measured round-trip latency in cycles.
        latency: u64,
        /// The class's zero-load latency (the physical floor).
        bound: u64,
    },
    /// A conflict-free request missed its exact zero-load latency.
    LatencyContract {
        /// The issuing core.
        core: u32,
        /// Destination tile.
        tile: u32,
        /// Measured round-trip latency in cycles.
        latency: u64,
        /// The exact latency the paper's contract requires.
        bound: u64,
    },
    /// The network's elastic registers report more occupants than
    /// capacity.
    BufferOverflow {
        /// Occupied register slots.
        occupied: u64,
        /// Aggregate capacity.
        capacity: u64,
    },
    /// Work remains but nothing has progressed for the liveness horizon
    /// (e.g. a stuck barrier with no traffic for the watchdog to see).
    LivenessStall {
        /// Progress-free cycles at the time of the report.
        idle_cycles: u64,
        /// Requests still in flight.
        in_flight: u64,
    },
    /// A freshly issued request targets a quarantined bank (the issue-time
    /// remap was bypassed).
    QuarantineAccess {
        /// Target tile.
        tile: u32,
        /// Target (quarantined) bank.
        bank: u32,
    },
    /// A quarantined bank's access counter grew after quarantine.
    QuarantineLeak {
        /// The quarantined tile.
        tile: u32,
        /// The quarantined bank.
        bank: u32,
    },
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ViolationKind::ResponseLeak { core, tag, addr, age } => write!(
                f,
                "response leak: core {core} tag {tag} addr {addr:#010x} unanswered for {age} cycles"
            ),
            ViolationKind::DuplicateResponse { core, tag } => {
                write!(f, "duplicate response: core {core} tag {tag}")
            }
            ViolationKind::FifoReorder { core, tile, bank, prev_issue, this_issue } => write!(
                f,
                "FIFO reorder: core {core} ← tile {tile} bank {bank}: issue@{this_issue} \
                 completed after issue@{prev_issue}"
            ),
            ViolationKind::LatencyUnderrun { core, tile, latency, bound } => write!(
                f,
                "latency underrun: core {core} ← tile {tile} took {latency} < floor {bound}"
            ),
            ViolationKind::LatencyContract { core, tile, latency, bound } => write!(
                f,
                "latency contract: conflict-free core {core} ← tile {tile} took {latency}, \
                 contract says exactly {bound}"
            ),
            ViolationKind::BufferOverflow { occupied, capacity } => {
                write!(f, "elastic buffer overflow: {occupied} occupants in {capacity} slots")
            }
            ViolationKind::LivenessStall { idle_cycles, in_flight } => write!(
                f,
                "liveness stall: no progress for {idle_cycles} cycles with {in_flight} in flight"
            ),
            ViolationKind::QuarantineAccess { tile, bank } => {
                write!(f, "issue to quarantined bank: tile {tile} bank {bank}")
            }
            ViolationKind::QuarantineLeak { tile, bank } => {
                write!(f, "quarantined bank served traffic: tile {tile} bank {bank}")
            }
        }
    }
}

/// One cycle-stamped sanitizer violation, with a per-tile diagnostic dump
/// of the sanitizer's outstanding-request view at the violating cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerViolation {
    /// Cycle at which the violation was observed.
    pub cycle: u64,
    /// The typed violation.
    pub kind: ViolationKind,
    /// Human-readable per-tile state dump (outstanding requests grouped by
    /// destination tile).
    pub diagnostic: String,
}

impl fmt::Display for SanitizerViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {}", self.cycle, self.kind)?;
        if !self.diagnostic.is_empty() {
            write!(f, " [{}]", self.diagnostic)?;
        }
        Ok(())
    }
}

/// What the sanitizer saw over the run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Retained violations, in detection order (bounded by
    /// [`SanitizerConfig::max_violations`]).
    pub violations: Vec<SanitizerViolation>,
    /// Violations detected beyond the retention bound.
    pub dropped: u64,
    /// Requests observed completing (non-stale responses matched to their
    /// issue).
    pub completions: u64,
    /// Stale responses observed draining (post-retry duplicates the retry
    /// layer filters; not violations).
    pub stale: u64,
    /// Cycles over which the per-cycle checks ran.
    pub cycles_checked: u64,
}

impl SanitizerReport {
    /// Whether the run was clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped == 0
    }

    /// Total violations detected (retained plus dropped).
    pub fn total_violations(&self) -> u64 {
        self.violations.len() as u64 + self.dropped
    }
}

/// The sanitizer's view of one in-flight request.
#[derive(Debug, Clone, Copy)]
struct SanEntry {
    addr: u32,
    tile: u32,
    bank: u32,
    issued_at: u64,
    last_sent: u64,
    retried: bool,
    /// No other request was in flight for this entry's whole lifetime, so
    /// the exact zero-load contract applies.
    solo: bool,
}

/// The invariant checker the cluster drives from its serial hook points.
/// Never snapshotted, never digested.
#[derive(Debug)]
pub struct Sanitizer {
    config: SanitizerConfig,
    topology: Topology,
    cores_per_tile: u32,
    tiles_per_group: u32,
    outstanding: BTreeMap<(u32, u8), SanEntry>,
    /// Per (core, tile, bank): latest issue cycle whose response completed.
    fifo_last: BTreeMap<(u32, u32, u32), u64>,
    /// Per quarantined (tile, bank): the access counter at quarantine time.
    quarantine_base: BTreeMap<(u32, u32), u64>,
    known_quarantined: usize,
    /// Deliveries tolerated without a matching entry (requests that were
    /// already in flight when the sanitizer attached or resynced and are
    /// not reconstructible from the retry layer's pending map).
    grace_unknown: u64,
    /// `last_progress` value the liveness check last fired for.
    liveness_fired_at: Option<u64>,
    report: SanitizerReport,
}

impl Sanitizer {
    /// Builds a sanitizer for a cluster of the given configuration.
    pub(crate) fn new(config: SanitizerConfig, cluster: &ClusterConfig) -> Self {
        Sanitizer {
            config,
            topology: cluster.topology,
            cores_per_tile: cluster.cores_per_tile as u32,
            tiles_per_group: cluster.tiles_per_group() as u32,
            outstanding: BTreeMap::new(),
            fifo_last: BTreeMap::new(),
            quarantine_base: BTreeMap::new(),
            known_quarantined: 0,
            grace_unknown: 0,
            liveness_fired_at: None,
            report: SanitizerReport::default(),
        }
    }

    /// The accumulated report.
    pub fn report(&self) -> &SanitizerReport {
        &self.report
    }

    /// The active configuration.
    pub fn config(&self) -> SanitizerConfig {
        self.config
    }

    /// Zero-load round-trip latency of the class `(src_tile, dst_tile)`
    /// under this topology — the paper's §III contract.
    fn zero_load(&self, src_tile: u32, dst_tile: u32) -> u64 {
        if src_tile == dst_tile {
            return 1;
        }
        match self.topology {
            Topology::Ideal => 1,
            Topology::Top1 | Topology::Top4 => 5,
            Topology::TopH => {
                if src_tile / self.tiles_per_group == dst_tile / self.tiles_per_group {
                    3
                } else {
                    5
                }
            }
        }
    }

    fn record(&mut self, cycle: u64, kind: ViolationKind, with_dump: bool) {
        if self.report.violations.len() >= self.config.max_violations {
            self.report.dropped += 1;
            return;
        }
        let diagnostic = if with_dump { self.dump() } else { String::new() };
        self.report.violations.push(SanitizerViolation {
            cycle,
            kind,
            diagnostic,
        });
    }

    /// Per-tile dump of the sanitizer's outstanding view: count and oldest
    /// request per destination tile.
    fn dump(&self) -> String {
        let mut tiles: BTreeMap<u32, (usize, (u64, u32, u8))> = BTreeMap::new();
        for (&(core, tag), e) in &self.outstanding {
            let entry = tiles
                .entry(e.tile)
                .or_insert((0, (e.issued_at, core, tag)));
            entry.0 += 1;
            if e.issued_at < entry.1 .0 {
                entry.1 = (e.issued_at, core, tag);
            }
        }
        let mut out = String::new();
        for (tile, (count, (issued, core, tag))) in tiles {
            if !out.is_empty() {
                out.push_str("; ");
            }
            out.push_str(&format!(
                "tile {tile}: {count} outstanding, oldest issue@{issued} core {core} tag {tag}"
            ));
        }
        out
    }

    /// Observes a request sitting in a core's output latch this cycle —
    /// either a fresh issue or the retry layer's re-send (distinguished by
    /// whether the (core, tag) key is already outstanding).
    pub(crate) fn on_issue(
        &mut self,
        req: &Request,
        now: u64,
        dest: Option<(u32, u32)>,
        dest_quarantined: bool,
        faults_active: bool,
    ) {
        let Some((tile, bank)) = dest else { return };
        if self.config.quarantine && dest_quarantined {
            self.record(now, ViolationKind::QuarantineAccess { tile, bank }, false);
        }
        let key = (req.core, req.tag);
        if let Some(e) = self.outstanding.get_mut(&key) {
            // Retry: the retry layer refreshed this request. Exclude it
            // from FIFO/exactness checks from here on.
            e.last_sent = now;
            e.retried = true;
            e.solo = false;
            return;
        }
        let solo = self.outstanding.is_empty() && !faults_active;
        if !solo {
            for e in self.outstanding.values_mut() {
                e.solo = false;
            }
        }
        self.outstanding.insert(
            key,
            SanEntry {
                addr: req.addr,
                tile,
                bank,
                issued_at: now,
                last_sent: now,
                retried: false,
                solo,
            },
        );
    }

    /// Observes a response about to be delivered (or filtered as stale).
    pub(crate) fn on_delivery(&mut self, resp: &Response, now: u64, faults_active: bool) {
        let key = (resp.core, resp.tag);
        let Some(e) = self.outstanding.get(&key).copied() else {
            if self.grace_unknown > 0 {
                self.grace_unknown -= 1;
                self.report.completions += 1;
            } else if self.config.conservation {
                self.record(
                    now,
                    ViolationKind::DuplicateResponse {
                        core: resp.core,
                        tag: resp.tag,
                    },
                    false,
                );
            }
            return;
        };
        if e.last_sent != resp.issued_at {
            // The pre-retry copy draining out; the retry layer discards it.
            self.report.stale += 1;
            return;
        }
        self.report.completions += 1;
        self.outstanding.remove(&key);
        let latency = now - resp.issued_at;
        let src_tile = resp.core / self.cores_per_tile;
        if self.config.latency {
            let bound = self.zero_load(src_tile, e.tile);
            if latency < bound {
                self.record(
                    now,
                    ViolationKind::LatencyUnderrun {
                        core: resp.core,
                        tile: e.tile,
                        latency,
                        bound,
                    },
                    false,
                );
            } else if e.solo && !e.retried && !faults_active && latency != bound {
                self.record(
                    now,
                    ViolationKind::LatencyContract {
                        core: resp.core,
                        tile: e.tile,
                        latency,
                        bound,
                    },
                    false,
                );
            }
        }
        if self.config.fifo && !e.retried {
            let fkey = (resp.core, e.tile, e.bank);
            match self.fifo_last.get(&fkey).copied() {
                Some(prev) if e.issued_at < prev => {
                    self.record(
                        now,
                        ViolationKind::FifoReorder {
                            core: resp.core,
                            tile: e.tile,
                            bank: e.bank,
                            prev_issue: prev,
                            this_issue: e.issued_at,
                        },
                        false,
                    );
                }
                Some(prev) if prev >= e.issued_at => {}
                _ => {
                    self.fifo_last.insert(fkey, e.issued_at);
                }
            }
        }
    }

    /// Observes the retry layer abandoning a request (retries exhausted):
    /// the conservation obligation is discharged.
    pub(crate) fn on_abandon(&mut self, core: u32, tag: u8) {
        self.outstanding.remove(&(core, tag));
    }

    /// Per-cycle structural checks: buffers and conservation aging.
    pub(crate) fn check_cycle(&mut self, now: u64, occupied: u64, capacity: u64) {
        self.report.cycles_checked += 1;
        if self.config.buffers && occupied > capacity {
            self.record(
                now,
                ViolationKind::BufferOverflow { occupied, capacity },
                false,
            );
        }
        if self.config.conservation && self.config.leak_after > 0 {
            let leaked: Vec<(u32, u8)> = self
                .outstanding
                .iter()
                .filter(|(_, e)| now - e.last_sent >= self.config.leak_after)
                .map(|(&k, _)| k)
                .collect();
            for (core, tag) in leaked {
                let e = self.outstanding.remove(&(core, tag)).expect("just listed");
                self.record(
                    now,
                    ViolationKind::ResponseLeak {
                        core,
                        tag,
                        addr: e.addr,
                        age: now - e.last_sent,
                    },
                    true,
                );
            }
        }
    }

    /// Whether the (comparatively expensive) liveness evaluation is due.
    pub(crate) fn liveness_due(&self, now: u64, last_progress: u64) -> bool {
        self.config.liveness_cycles > 0
            && now - last_progress >= self.config.liveness_cycles
            && self.liveness_fired_at != Some(last_progress)
    }

    /// Reports a liveness stall (fires once per stall episode).
    pub(crate) fn check_liveness(&mut self, now: u64, last_progress: u64, in_flight: u64) {
        self.liveness_fired_at = Some(last_progress);
        self.record(
            now,
            ViolationKind::LivenessStall {
                idle_cycles: now - last_progress,
                in_flight,
            },
            true,
        );
    }

    /// The number of quarantined banks the sanitizer has baselined.
    pub(crate) fn known_quarantined(&self) -> usize {
        self.known_quarantined
    }

    /// Rebuilds the quarantined-bank baselines after the quarantine set
    /// changed; `banks` yields every currently quarantined `(tile, bank)`
    /// with its access counter.
    pub(crate) fn rebaseline_quarantine(
        &mut self,
        banks: impl Iterator<Item = (u32, u32, u64)>,
    ) {
        let old = std::mem::take(&mut self.quarantine_base);
        for (tile, bank, accesses) in banks {
            let base = old.get(&(tile, bank)).copied().unwrap_or(accesses);
            self.quarantine_base.insert((tile, bank), base);
        }
        self.known_quarantined = self.quarantine_base.len();
    }

    /// Verifies no quarantined bank served traffic since its baseline.
    pub(crate) fn check_quarantine(&mut self, now: u64, accesses: impl Fn(u32, u32) -> u64) {
        if !self.config.quarantine {
            return;
        }
        let mut grown: Vec<(u32, u32, u64)> = Vec::new();
        for (&(tile, bank), &base) in &self.quarantine_base {
            let current = accesses(tile, bank);
            if current > base {
                grown.push((tile, bank, current));
            }
        }
        for (tile, bank, current) in grown {
            self.record(now, ViolationKind::QuarantineLeak { tile, bank }, false);
            // Re-baseline so one leak reports once, not every cycle.
            self.quarantine_base.insert((tile, bank), current);
        }
    }

    /// Re-seeds the sanitizer's in-flight view after a snapshot restore or
    /// a mid-run attach: tracked requests come from the retry layer's
    /// pending map, untracked ones get delivery grace.
    pub(crate) fn resync(
        &mut self,
        in_flight: u64,
        tracked: impl Iterator<Item = ((u32, u8), u32, u64, u64, bool)>,
        decode: impl Fn(u32) -> Option<(u32, u32)>,
    ) {
        self.outstanding.clear();
        self.fifo_last.clear();
        self.quarantine_base.clear();
        // Force a quarantine rescan on the next cycle.
        self.known_quarantined = usize::MAX;
        self.liveness_fired_at = None;
        for ((core, tag), addr, issued_at, last_sent, retried) in tracked {
            let Some((tile, bank)) = decode(addr) else { continue };
            self.outstanding.insert(
                (core, tag),
                SanEntry {
                    addr,
                    tile,
                    bank,
                    issued_at,
                    last_sent,
                    retried,
                    solo: false,
                },
            );
        }
        self.grace_unknown = in_flight.saturating_sub(self.outstanding.len() as u64);
    }
}
