//! A minimal persistent worker pool for the tile-parallel engine.
//!
//! The pool executes *fork-join index jobs*: [`WorkerPool::run`] takes an
//! item count and a closure, every index in `0..items` is executed exactly
//! once by some participant (the calling thread joins in), and `run`
//! returns only after every invocation has finished. Between jobs the
//! workers spin briefly and then sleep on a condvar, so a cluster stepping
//! three parallel phases per cycle never pays a wakeup syscall on the hot
//! path.
//!
//! Determinism is the caller's contract, not the pool's: the closure must
//! write only to per-index (per-tile) state, so *which thread* runs an
//! index can never be observed. The cluster then merges the per-tile
//! staging buffers in ascending tile order, which is what makes the
//! parallel engine bit-identical to the serial one (see DESIGN.md §10).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A lifetime-erased pointer to the job closure. Only valid while the
/// `run` call that published it is still blocked — see the safety
/// argument on [`WorkerPool::run`].
#[derive(Clone, Copy)]
struct Task(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (calling it from several threads is safe)
// and the pool guarantees no worker dereferences the pointer after the
// publishing `run` returns (epoch-checked claims + the completion count).
unsafe impl Send for Task {}

/// The job slot, written under the mutex once per `run`.
struct Published {
    task: Option<Task>,
    items: usize,
}

struct Shared {
    job: Mutex<Published>,
    cv: Condvar,
    /// Monotonic job generation; workers only execute a task whose epoch
    /// matches the claim word below. Published under `job`'s lock.
    epoch: AtomicU64,
    /// Claim word: `current_epoch << 32 | next_unclaimed_index`. The epoch
    /// tag makes a stale claim attempt (a worker still holding last job's
    /// task pointer) fail instead of consuming an index of the new job.
    next: AtomicU64,
    /// Invocations finished for the current job.
    completed: AtomicUsize,
    /// Workers currently asleep on the condvar (notify only when needed).
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
}

/// Iterations a worker spins between jobs before sleeping on the condvar.
const SPIN_LIMIT: u32 = 20_000;

impl Shared {
    /// Claims and executes indexes of job `epoch` until it is exhausted
    /// (or a newer job appears, which means this one is exhausted too).
    fn drain(&self, epoch: u64, items: usize, task: Task) {
        loop {
            let cur = self.next.load(Ordering::Acquire);
            if cur >> 32 != epoch {
                return; // a newer job was published: ours is complete
            }
            let index = (cur & 0xffff_ffff) as usize;
            if index >= items {
                return;
            }
            if self
                .next
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // SAFETY: the epoch in the claim word matched `task`'s job, so
            // the publishing `run` is still blocked (it cannot return until
            // `completed == items`, and this index has not completed yet)
            // and the closure behind the pointer is alive.
            unsafe { (*task.0)(index) };
            self.completed.fetch_add(1, Ordering::AcqRel);
        }
    }
}

/// A fixed set of worker threads executing fork-join index jobs.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    epoch: u64,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (zero is fine: `run` then executes every
    /// index on the calling thread, exercising the same staging paths).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            job: Mutex::new(Published { task: None, items: 0 }),
            cv: Condvar::new(),
            epoch: AtomicU64::new(0),
            next: AtomicU64::new(0),
            completed: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mempool-tile-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawns")
            })
            .collect();
        WorkerPool {
            shared,
            epoch: 0,
            handles,
        }
    }

    /// Number of pool threads (the calling thread participates on top).
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f(i)` exactly once for every `i in 0..items`, distributing the
    /// indexes over the pool threads and the calling thread, and returns
    /// once every invocation has finished.
    ///
    /// The closure only borrows for the duration of this call: the pool
    /// erases its lifetime internally, and the epoch-tagged claim word plus
    /// the completion count guarantee no worker can still be inside (or
    /// later enter) `f` once `run` returns.
    pub fn run(&mut self, items: usize, f: &(dyn Fn(usize) + Sync)) {
        if items == 0 {
            return;
        }
        assert!(items < u32::MAX as usize, "job too large for the claim word");
        // SAFETY: pure lifetime erasure of a fat reference; the pool never
        // uses the pointer past this call (see the epoch/completion
        // argument above).
        let f_erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let task = Task(f_erased);
        if self.handles.is_empty() {
            for i in 0..items {
                f(i);
            }
            return;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        let shared = &*self.shared;
        shared.completed.store(0, Ordering::Relaxed);
        shared.next.store(epoch << 32, Ordering::Release);
        {
            let mut slot = shared.job.lock().expect("pool mutex never poisoned");
            slot.task = Some(task);
            slot.items = items;
            // The epoch store is what spinning workers watch; doing it (and
            // the notify) under the lock closes the lost-wakeup window
            // against workers going to sleep.
            shared.epoch.store(epoch, Ordering::Release);
            if shared.sleepers.load(Ordering::Relaxed) > 0 {
                shared.cv.notify_all();
            }
        }
        shared.drain(epoch, items, task);
        // Claimed-but-unfinished indexes may still be executing on workers;
        // the job (and the borrow of `f`) ends when all have finished.
        let mut spins = 0u32;
        while shared.completed.load(Ordering::Acquire) != items {
            spins += 1;
            if spins < 100 {
                std::hint::spin_loop();
            } else {
                // A straggler holds the last index; on an oversubscribed
                // machine pure spinning would waste its whole timeslice.
                std::thread::yield_now();
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let _slot = self.shared.job.lock().expect("pool mutex never poisoned");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        // Wait for a new epoch: spin first, then sleep.
        let mut spins = 0u32;
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if shared.epoch.load(Ordering::Acquire) != seen {
                break;
            }
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
                continue;
            }
            let mut slot = shared.job.lock().expect("pool mutex never poisoned");
            shared.sleepers.fetch_add(1, Ordering::Relaxed);
            while !shared.shutdown.load(Ordering::Acquire)
                && shared.epoch.load(Ordering::Acquire) == seen
            {
                slot = shared.cv.wait(slot).expect("pool mutex never poisoned");
            }
            shared.sleepers.fetch_sub(1, Ordering::Relaxed);
            break;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let (epoch, task, items) = {
            let slot = shared.job.lock().expect("pool mutex never poisoned");
            // Epoch re-read under the lock so task/items/epoch are one
            // consistent snapshot (a newer job may have landed meanwhile).
            (
                shared.epoch.load(Ordering::Acquire),
                slot.task,
                slot.items,
            )
        };
        seen = epoch;
        if let Some(task) = task {
            shared.drain(epoch, items, task);
        }
    }
}

/// A raw base pointer that asserts cross-thread shareability. Used by the
/// parallel engine to hand each worker mutable access to *disjoint*
/// per-tile slices of the cluster's arrays; the caller is responsible for
/// the disjointness (tile `t` only ever touches index `t` / the lanes of
/// tile `t`). The field is private so closures capture the whole wrapper
/// (and with it the `Sync` assertion), not the bare pointer.
pub(crate) struct SyncPtr<T>(*mut T);

impl<T> SyncPtr<T> {
    pub(crate) fn new(base: *mut T) -> Self {
        SyncPtr(base)
    }

    /// Pointer to element `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds of the allocation `base` points into, and
    /// no other thread may concurrently touch that element.
    pub(crate) unsafe fn at(&self, index: usize) -> *mut T {
        unsafe { self.0.add(index) }
    }
}

impl<T> Clone for SyncPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SyncPtr<T> {}

// SAFETY: asserted by the parallel engine — every job partitions the
// pointed-to arrays by tile index, so no two threads alias. The `T: Send`
// bound keeps the compiler enforcing that whatever the workers get `&mut`
// access to is actually sendable (e.g. the `Core: Send` supertrait).
unsafe impl<T: Send> Send for SyncPtr<T> {}
unsafe impl<T: Send> Sync for SyncPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_index_runs_exactly_once() {
        let mut pool = WorkerPool::new(3);
        let hits: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        for _ in 0..200 {
            pool.run(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 200);
        }
    }

    #[test]
    fn zero_threads_runs_inline() {
        let mut pool = WorkerPool::new(0);
        let sum = AtomicU32::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i as u32, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn back_to_back_jobs_do_not_leak_between_epochs() {
        let mut pool = WorkerPool::new(4);
        for round in 0..500u32 {
            let counter = AtomicU32::new(0);
            let items = 1 + (round as usize % 7);
            pool.run(items, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), items as u32);
        }
    }

    #[test]
    fn effects_are_visible_after_run() {
        let mut pool = WorkerPool::new(2);
        let mut data = vec![0u64; 32];
        let ptr = SyncPtr::new(data.as_mut_ptr());
        pool.run(32, &|i| unsafe {
            *ptr.at(i) = (i * i) as u64;
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }
}
