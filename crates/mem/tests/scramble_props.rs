//! Property tests for the hybrid addressing scheme and bank semantics,
//! driven by a seeded PRNG so every case is deterministic and replayable.

use mempool_mem::{AddressMap, BankOp, Scrambler, SpmBank};
use mempool_riscv::AmoOp;
use mempool_rng::{Rng, SeedableRng, StdRng};

/// Enumerates every valid (tiles, banks, rows, seq_bytes) geometry the old
/// proptest strategy could produce: power-of-two tiles/banks/rows with the
/// sequential region a power-of-two multiple of the row stride.
fn geometries() -> Vec<(u32, u32, u32, u32)> {
    let mut out = Vec::new();
    for t in 0..4u32 {
        for b in 1..4u32 {
            for r in 3..8u32 {
                let tiles: u32 = 1 << t;
                let banks: u32 = 1 << b;
                let rows: u32 = 1 << r;
                let row_bytes: u32 = 4 * banks;
                let max_seq: u32 = rows * row_bytes;
                for s in 1..=(max_seq / row_bytes).trailing_zeros() + 1 {
                    out.push((tiles, banks, rows, row_bytes << (s - 1)));
                }
            }
        }
    }
    out
}

/// The scrambler is a bijection on the whole address space and the identity
/// outside the sequential region, for arbitrary geometries.
#[test]
fn scramble_bijective() {
    for (tiles, banks, rows, seq) in geometries() {
        let map = AddressMap::new(tiles, banks, rows).unwrap();
        let scr = Scrambler::new(map, seq).unwrap();
        let size = map.size_bytes() as u32;
        let mut seen = vec![false; size as usize];
        for addr in 0..size {
            let phys = scr.scramble(addr);
            assert!(phys < size);
            assert!(!seen[phys as usize]);
            seen[phys as usize] = true;
            assert_eq!(scr.unscramble(phys), addr);
            if u64::from(addr) >= scr.seq_region_bytes() {
                assert_eq!(phys, addr);
            }
        }
    }
}

/// Every address in tile T's sequential region decodes to tile T after
/// scrambling — the paper's "private data stays in the local tile".
#[test]
fn sequential_region_is_tile_local() {
    for (tiles, banks, rows, seq) in geometries() {
        let map = AddressMap::new(tiles, banks, rows).unwrap();
        let scr = Scrambler::new(map, seq).unwrap();
        for tile in 0..tiles {
            let base = scr.seq_base(tile);
            for offset in (0..seq).step_by(4) {
                let at = map.decode(scr.scramble(base + offset)).unwrap();
                assert_eq!(at.tile, tile);
            }
        }
    }
}

/// Within one sequential region, consecutive words still rotate across the
/// tile's banks (bank conflicts stay minimized for streaming).
#[test]
fn sequential_region_interleaves_banks() {
    for (tiles, banks, rows, seq) in geometries() {
        let map = AddressMap::new(tiles, banks, rows).unwrap();
        let scr = Scrambler::new(map, seq).unwrap();
        let _ = tiles;
        let base = scr.seq_base(0);
        for word in 0..(seq / 4).min(64) {
            let at = map.decode(scr.scramble(base + word * 4)).unwrap();
            assert_eq!(at.bank, word % banks);
        }
    }
}

/// A bank behaves exactly like a reference word array under random
/// load/store/AMO sequences.
#[test]
fn bank_matches_reference_model() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xba9c_0000 ^ case);
        let mut bank = SpmBank::new(8);
        let mut model = [0u32; 8];
        for _ in 0..rng.gen_range(1usize..200) {
            let row = rng.gen_range(0u32..8);
            let value = rng.gen::<u32>();
            match rng.gen_range(0u8..4) {
                0 => {
                    let got = bank.access(row, BankOp::Load).unwrap();
                    assert_eq!(got, model[row as usize], "case {case}");
                }
                1 => {
                    bank.access(
                        row,
                        BankOp::Store {
                            data: value,
                            strobe: 0xf,
                        },
                    )
                    .unwrap();
                    model[row as usize] = value;
                }
                2 => {
                    let old = bank
                        .access(
                            row,
                            BankOp::Amo {
                                op: AmoOp::Add,
                                operand: value,
                            },
                        )
                        .unwrap();
                    assert_eq!(old, model[row as usize], "case {case}");
                    model[row as usize] = model[row as usize].wrapping_add(value);
                }
                _ => {
                    let old = bank
                        .access(
                            row,
                            BankOp::Amo {
                                op: AmoOp::Maxu,
                                operand: value,
                            },
                        )
                        .unwrap();
                    assert_eq!(old, model[row as usize], "case {case}");
                    model[row as usize] = model[row as usize].max(value);
                }
            }
        }
    }
}

/// An I-cache behaves exactly like a reference LRU set-associative model
/// over random access/fill sequences.
mod icache_props {
    use mempool_mem::ICache;
    use mempool_rng::{Rng, SeedableRng, StdRng};

    /// Straightforward reference: per set, a vector of tags ordered by
    /// recency (front = MRU).
    struct RefCache {
        sets: Vec<Vec<u32>>,
        ways: usize,
        line: u32,
        set_count: u32,
    }

    impl RefCache {
        fn new(size: u32, ways: u32, line: u32) -> Self {
            let set_count = size / (ways * line);
            RefCache {
                sets: vec![Vec::new(); set_count as usize],
                ways: ways as usize,
                line,
                set_count,
            }
        }

        fn locate(&self, addr: u32) -> (usize, u32) {
            let l = addr / self.line;
            ((l & (self.set_count - 1)) as usize, l / self.set_count)
        }

        fn probe(&mut self, addr: u32) -> bool {
            let (set, tag) = self.locate(addr);
            let set = &mut self.sets[set];
            if let Some(pos) = set.iter().position(|&t| t == tag) {
                let t = set.remove(pos);
                set.insert(0, t);
                true
            } else {
                false
            }
        }

        fn fill(&mut self, addr: u32) {
            let (set, tag) = self.locate(addr);
            let ways = self.ways;
            let set = &mut self.sets[set];
            if let Some(pos) = set.iter().position(|&t| t == tag) {
                set.remove(pos);
            }
            set.insert(0, tag);
            set.truncate(ways);
        }
    }

    #[test]
    fn icache_matches_reference_lru() {
        for case in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(0x1cac_4e00 ^ case);
            let mut dut = ICache::new(512, 4, 32).unwrap();
            let mut reference = RefCache::new(512, 4, 32);
            for _ in 0..rng.gen_range(1usize..400) {
                let addr = rng.gen_range(0u32..4096);
                if rng.gen::<bool>() {
                    dut.fill(addr);
                    reference.fill(addr);
                } else {
                    assert_eq!(
                        dut.probe(addr),
                        reference.probe(addr),
                        "case {case} addr {addr:#x}"
                    );
                }
            }
        }
    }
}
