//! Property tests for the hybrid addressing scheme and bank semantics.

use mempool_mem::{AddressMap, BankOp, Scrambler, SpmBank};
use mempool_riscv::AmoOp;
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = (u32, u32, u32, u32)> {
    // (tiles, banks, rows, seq_bytes) with valid power-of-two relations.
    (0u32..4, 1u32..4, 3u32..8).prop_flat_map(|(t, b, r)| {
        let tiles: u32 = 1 << t;
        let banks: u32 = 1 << b;
        let rows: u32 = 1 << r;
        let row_bytes: u32 = 4 * banks;
        let max_seq: u32 = rows * row_bytes;
        (1u32..=(max_seq / row_bytes).trailing_zeros() + 1).prop_map(move |s| {
            (tiles, banks, rows, row_bytes << (s - 1))
        })
    })
}

proptest! {
    /// The scrambler is a bijection on the whole address space and the
    /// identity outside the sequential region, for arbitrary geometries.
    #[test]
    fn scramble_bijective((tiles, banks, rows, seq) in arb_geometry()) {
        let map = AddressMap::new(tiles, banks, rows).unwrap();
        let scr = Scrambler::new(map, seq).unwrap();
        let size = map.size_bytes() as u32;
        let mut seen = vec![false; size as usize];
        for addr in 0..size {
            let phys = scr.scramble(addr);
            prop_assert!(phys < size);
            prop_assert!(!seen[phys as usize]);
            seen[phys as usize] = true;
            prop_assert_eq!(scr.unscramble(phys), addr);
            if u64::from(addr) >= scr.seq_region_bytes() {
                prop_assert_eq!(phys, addr);
            }
        }
    }

    /// Every address in tile T's sequential region decodes to tile T after
    /// scrambling — the paper's "private data stays in the local tile".
    #[test]
    fn sequential_region_is_tile_local((tiles, banks, rows, seq) in arb_geometry()) {
        let map = AddressMap::new(tiles, banks, rows).unwrap();
        let scr = Scrambler::new(map, seq).unwrap();
        for tile in 0..tiles {
            let base = scr.seq_base(tile);
            for offset in (0..seq).step_by(4) {
                let at = map.decode(scr.scramble(base + offset)).unwrap();
                prop_assert_eq!(at.tile, tile);
            }
        }
    }

    /// Within one sequential region, consecutive words still rotate across
    /// the tile's banks (bank conflicts stay minimized for streaming).
    #[test]
    fn sequential_region_interleaves_banks((tiles, banks, rows, seq) in arb_geometry()) {
        let map = AddressMap::new(tiles, banks, rows).unwrap();
        let scr = Scrambler::new(map, seq).unwrap();
        let _ = tiles;
        let base = scr.seq_base(0);
        for word in 0..(seq / 4).min(64) {
            let at = map.decode(scr.scramble(base + word * 4)).unwrap();
            prop_assert_eq!(at.bank, word % banks);
        }
    }

    /// A bank behaves exactly like a reference word array under random
    /// load/store/AMO sequences.
    #[test]
    fn bank_matches_reference_model(
        ops in proptest::collection::vec((0u32..8, any::<u32>(), 0u8..4), 1..200)
    ) {
        let mut bank = SpmBank::new(8);
        let mut model = [0u32; 8];
        for (row, value, kind) in ops {
            match kind {
                0 => {
                    let got = bank.access(row, BankOp::Load).unwrap();
                    prop_assert_eq!(got, model[row as usize]);
                }
                1 => {
                    bank.access(row, BankOp::Store { data: value, strobe: 0xf }).unwrap();
                    model[row as usize] = value;
                }
                2 => {
                    let old = bank
                        .access(row, BankOp::Amo { op: AmoOp::Add, operand: value })
                        .unwrap();
                    prop_assert_eq!(old, model[row as usize]);
                    model[row as usize] = model[row as usize].wrapping_add(value);
                }
                _ => {
                    let old = bank
                        .access(row, BankOp::Amo { op: AmoOp::Maxu, operand: value })
                        .unwrap();
                    prop_assert_eq!(old, model[row as usize]);
                    model[row as usize] = model[row as usize].max(value);
                }
            }
        }
    }
}

/// An I-cache behaves exactly like a reference LRU set-associative model
/// over random access/fill sequences.
mod icache_props {
    use mempool_mem::ICache;
    use proptest::prelude::*;

    /// Straightforward reference: per set, a vector of tags ordered by
    /// recency (front = MRU).
    struct RefCache {
        sets: Vec<Vec<u32>>,
        ways: usize,
        line: u32,
        set_count: u32,
    }

    impl RefCache {
        fn new(size: u32, ways: u32, line: u32) -> Self {
            let set_count = size / (ways * line);
            RefCache {
                sets: vec![Vec::new(); set_count as usize],
                ways: ways as usize,
                line,
                set_count,
            }
        }

        fn locate(&self, addr: u32) -> (usize, u32) {
            let l = addr / self.line;
            ((l & (self.set_count - 1)) as usize, l / self.set_count)
        }

        fn probe(&mut self, addr: u32) -> bool {
            let (set, tag) = self.locate(addr);
            let set = &mut self.sets[set];
            if let Some(pos) = set.iter().position(|&t| t == tag) {
                let t = set.remove(pos);
                set.insert(0, t);
                true
            } else {
                false
            }
        }

        fn fill(&mut self, addr: u32) {
            let (set, tag) = self.locate(addr);
            let ways = self.ways;
            let set = &mut self.sets[set];
            if let Some(pos) = set.iter().position(|&t| t == tag) {
                set.remove(pos);
            }
            set.insert(0, tag);
            set.truncate(ways);
        }
    }

    proptest! {
        #[test]
        fn icache_matches_reference_lru(
            ops in proptest::collection::vec((any::<bool>(), 0u32..4096), 1..400)
        ) {
            let mut dut = ICache::new(512, 4, 32).unwrap();
            let mut reference = RefCache::new(512, 4, 32);
            for (is_fill, addr) in ops {
                if is_fill {
                    dut.fill(addr);
                    reference.fill(addr);
                } else {
                    prop_assert_eq!(dut.probe(addr), reference.probe(addr), "addr {:#x}", addr);
                }
            }
        }
    }
}
