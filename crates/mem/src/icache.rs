//! The per-tile L1 instruction cache: 4-way set-associative with LRU
//! replacement (2 KiB per tile in the paper's configuration).

use std::fmt;

/// Error returned when cache geometry is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildCacheError {
    msg: String,
}

impl fmt::Display for BuildCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for BuildCacheError {}

/// Running hit/miss statistics of an [`ICache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u32,
    valid: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// A read-only set-associative instruction cache (tags only — instruction
/// words are fetched from the program image; the cache models *timing*).
///
/// # Examples
///
/// ```
/// use mempool_mem::ICache;
///
/// // The paper's tile I-cache: 2 KiB, 4 ways, 32-byte lines.
/// let mut icache = ICache::new(2048, 4, 32)?;
/// assert!(!icache.probe(0x100));     // cold miss
/// icache.fill(0x100);
/// assert!(icache.probe(0x104));      // same line hits
/// # Ok::<(), mempool_mem::BuildCacheError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ICache {
    sets: Vec<Vec<Way>>,
    line_bytes: u32,
    set_count: u32,
    tick: u64,
    stats: CacheStats,
}

impl ICache {
    /// Creates a cache of `size_bytes` with `ways` ways and `line_bytes`
    /// lines.
    ///
    /// # Errors
    ///
    /// Returns an error unless all parameters are nonzero, `line_bytes` is a
    /// power of two ≥ 4, and `size_bytes` divides evenly into
    /// `ways × line_bytes` power-of-two sets.
    pub fn new(size_bytes: u32, ways: u32, line_bytes: u32) -> Result<ICache, BuildCacheError> {
        let err = |msg: &str| BuildCacheError { msg: msg.into() };
        if ways == 0 || size_bytes == 0 {
            return Err(err("cache size and ways must be nonzero"));
        }
        if line_bytes < 4 || !line_bytes.is_power_of_two() {
            return Err(err("line size must be a power of two of at least 4 bytes"));
        }
        if !size_bytes.is_multiple_of(ways * line_bytes) {
            return Err(err("size must divide into ways × line size"));
        }
        let set_count = size_bytes / (ways * line_bytes);
        if !set_count.is_power_of_two() {
            return Err(err("set count must be a power of two"));
        }
        Ok(ICache {
            sets: vec![vec![Way::default(); ways as usize]; set_count as usize],
            line_bytes,
            set_count,
            tick: 0,
            stats: CacheStats::default(),
        })
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// The base address of the line containing `addr`.
    pub fn line_base(&self, addr: u32) -> u32 {
        addr & !(self.line_bytes - 1)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn locate(&self, addr: u32) -> (usize, u32) {
        let line = addr / self.line_bytes;
        let set = (line & (self.set_count - 1)) as usize;
        let tag = line / self.set_count;
        (set, tag)
    }

    /// Looks up `addr`; returns whether it hit and updates LRU + statistics.
    pub fn probe(&mut self, addr: u32) -> bool {
        self.tick += 1;
        let (set, tag) = self.locate(addr);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.lru = self.tick;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Installs the line containing `addr`, evicting the LRU way. Filling
    /// a line that is already resident only refreshes its recency (no
    /// duplicate ways).
    pub fn fill(&mut self, addr: u32) {
        self.tick += 1;
        let (set, tag) = self.locate(addr);
        let tick = self.tick;
        if let Some(way) = self.sets[set]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            way.lru = tick;
            return;
        }
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("cache has at least one way");
        victim.tag = tag;
        victim.valid = true;
        victim.lru = tick;
    }

    /// Invalidates the whole cache (e.g. on `fence.i`).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for way in set {
                way.valid = false;
            }
        }
    }

    /// The LRU tick counter (checkpointing).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Every way as `(tag, valid, lru)`, flattened set-major then way order
    /// (checkpointing).
    pub fn ways(&self) -> impl Iterator<Item = (u32, bool, u64)> + '_ {
        self.sets
            .iter()
            .flat_map(|set| set.iter().map(|w| (w.tag, w.valid, w.lru)))
    }

    /// Restores the full cache state from [`ways`](ICache::ways)-shaped
    /// data plus the tick counter and statistics. The geometry is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the iterator's length disagrees with the way count.
    pub fn load(
        &mut self,
        ways: impl IntoIterator<Item = (u32, bool, u64)>,
        tick: u64,
        stats: CacheStats,
    ) {
        let mut it = ways.into_iter();
        for set in &mut self.sets {
            for way in set {
                let (tag, valid, lru) = it.next().expect("too few ways in checkpoint");
                *way = Way { tag, valid, lru };
            }
        }
        assert!(it.next().is_none(), "too many ways in checkpoint");
        self.tick = tick;
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ICache {
        // 2 sets × 2 ways × 16-byte lines = 64 B.
        ICache::new(64, 2, 16).unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.probe(0));
        c.fill(0);
        assert!(c.probe(0));
        assert!(c.probe(12)); // same line
        assert!(!c.probe(16)); // next line
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (line index even). Two ways.
        c.fill(0x00);
        c.fill(0x20);
        assert!(c.probe(0x00)); // touch line 0 -> line 0x20 becomes LRU
        c.fill(0x40); // evicts 0x20
        assert!(c.probe(0x00));
        assert!(!c.probe(0x20));
        assert!(c.probe(0x40));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.fill(0x00); // set 0
        c.fill(0x10); // set 1
        assert!(c.probe(0x00));
        assert!(c.probe(0x10));
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = tiny();
        c.fill(0);
        c.invalidate_all();
        assert!(!c.probe(0));
    }

    #[test]
    fn stats_accumulate() {
        let mut c = tiny();
        c.probe(0);
        c.fill(0);
        c.probe(0);
        c.probe(4);
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_geometry_accepted() {
        assert!(ICache::new(2048, 4, 32).is_ok());
        assert!(ICache::new(2048, 3, 32).is_err());
        assert!(ICache::new(100, 4, 32).is_err());
        assert!(ICache::new(2048, 4, 3).is_err());
    }
}
