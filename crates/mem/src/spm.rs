//! Scratchpad-memory banks: single-ported, one access per cycle, with RV32A
//! atomics executed at the bank.

use mempool_riscv::AmoOp;
use std::fmt;

/// A word-granular operation presented to an SPM bank.
///
/// Sub-word stores are expressed with a byte strobe; sub-word loads return
/// the full word and the requester extracts the bytes it needs (as the
/// hardware would on a 32-bit data bus).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankOp {
    /// Read a word.
    Load,
    /// Write the byte lanes selected by `strobe` (bit *i* enables byte *i*).
    Store {
        /// Data to write (already aligned to the word lanes).
        data: u32,
        /// Byte-lane enable mask, low 4 bits.
        strobe: u8,
    },
    /// Read-modify-write atomic; returns the old value.
    Amo {
        /// The RV32A operation.
        op: AmoOp,
        /// Source operand.
        operand: u32,
    },
    /// Load-reserved: reads the word and registers a reservation for `hart`.
    LoadReserved {
        /// Requesting hart (core) ID.
        hart: u32,
    },
    /// Store-conditional: writes `data` iff `hart` still holds a valid
    /// reservation on the row; returns 0 on success, 1 on failure.
    StoreConditional {
        /// Requesting hart (core) ID.
        hart: u32,
        /// Data to write on success.
        data: u32,
    },
}

impl BankOp {
    /// Whether the operation writes memory (used for reservation
    /// invalidation and energy accounting).
    pub fn is_write(&self) -> bool {
        !matches!(self, BankOp::Load | BankOp::LoadReserved { .. })
    }
}

/// Error for out-of-range bank rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankRowError {
    row: u32,
    rows: u32,
}

impl fmt::Display for BankRowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row {} out of range (bank has {} rows)", self.row, self.rows)
    }
}

impl std::error::Error for BankRowError {}

/// One single-ported SPM bank of 32-bit rows.
///
/// The bank serves exactly one [`BankOp`] per cycle in the cluster model;
/// that serialization lives in the cluster, the bank itself is a plain
/// state container with atomic semantics.
///
/// # Examples
///
/// ```
/// use mempool_mem::{BankOp, SpmBank};
/// use mempool_riscv::AmoOp;
///
/// let mut bank = SpmBank::new(16);
/// bank.access(3, BankOp::Store { data: 5, strobe: 0xf })?;
/// let old = bank.access(3, BankOp::Amo { op: AmoOp::Add, operand: 2 })?;
/// assert_eq!(old, 5);
/// assert_eq!(bank.access(3, BankOp::Load)?, 7);
/// # Ok::<(), mempool_mem::BankRowError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpmBank {
    rows: Vec<u32>,
    /// Active LR reservations: `(hart, row)`. MemPool-scale banks see very
    /// few concurrent reservations, so a small vector beats a map.
    reservations: Vec<(u32, u32)>,
    /// Lifetime count of serviced accesses (observability counter; part of
    /// the checkpointed state).
    accesses: u64,
}

impl SpmBank {
    /// Creates a zero-initialized bank with `rows` 32-bit words.
    pub fn new(rows: u32) -> Self {
        SpmBank {
            rows: vec![0; rows as usize],
            reservations: Vec::new(),
            accesses: 0,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows.len() as u32
    }

    /// Direct read access for testing and result extraction (no timing, no
    /// reservation effects).
    pub fn peek(&self, row: u32) -> Option<u32> {
        self.rows.get(row as usize).copied()
    }

    /// Direct write access for program loading (no timing, clears nothing).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn poke(&mut self, row: u32, value: u32) {
        self.rows[row as usize] = value;
    }

    /// Performs one bank access and returns the response value: the read
    /// data for loads/LR, the old memory value for AMOs, the success flag
    /// (0/1) for SC, and 0 for plain stores.
    ///
    /// # Errors
    ///
    /// Returns [`BankRowError`] if `row` is out of range.
    pub fn access(&mut self, row: u32, op: BankOp) -> Result<u32, BankRowError> {
        let rows = self.rows();
        let cell = self
            .rows
            .get_mut(row as usize)
            .ok_or(BankRowError { row, rows })?;
        self.accesses += 1;
        let response = match op {
            BankOp::Load => *cell,
            BankOp::Store { data, strobe } => {
                *cell = merge_strobe(*cell, data, strobe);
                self.invalidate(row, None);
                0
            }
            BankOp::Amo { op, operand } => {
                let old = *cell;
                *cell = op.apply(old, operand);
                self.invalidate(row, None);
                old
            }
            BankOp::LoadReserved { hart } => {
                let value = *cell;
                self.reservations.retain(|&(h, _)| h != hart);
                self.reservations.push((hart, row));
                value
            }
            BankOp::StoreConditional { hart, data } => {
                let held = self
                    .reservations
                    .iter()
                    .any(|&(h, r)| h == hart && r == row);
                if held {
                    *cell = data;
                    self.invalidate(row, Some(hart));
                    self.reservations.retain(|&(h, _)| h != hart);
                    0
                } else {
                    1
                }
            }
        };
        Ok(response)
    }

    /// All rows as a word slice (checkpointing and digests).
    pub fn words(&self) -> &[u32] {
        &self.rows
    }

    /// Active LR reservations as `(hart, row)` pairs, in age order
    /// (checkpointing).
    pub fn reservations(&self) -> &[(u32, u32)] {
        &self.reservations
    }

    /// Lifetime count of serviced accesses (observability counter).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Restores the access counter from a checkpoint.
    pub fn set_accesses(&mut self, accesses: u64) {
        self.accesses = accesses;
    }

    /// Restores the full bank state: row contents and reservations. The row
    /// count is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `words` disagrees with the bank's row count.
    pub fn load(&mut self, words: &[u32], reservations: &[(u32, u32)]) {
        assert_eq!(words.len(), self.rows.len(), "row count mismatch");
        self.rows.copy_from_slice(words);
        self.reservations.clear();
        self.reservations.extend_from_slice(reservations);
    }

    /// Drops all reservations on `row` except the optional `keep` hart.
    fn invalidate(&mut self, row: u32, keep: Option<u32>) {
        self.reservations
            .retain(|&(h, r)| r != row || keep == Some(h));
    }
}

fn merge_strobe(old: u32, data: u32, strobe: u8) -> u32 {
    let mut mask = 0u32;
    for lane in 0..4 {
        if strobe & (1 << lane) != 0 {
            mask |= 0xff << (8 * lane);
        }
    }
    (old & !mask) | (data & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_round_trip() {
        let mut bank = SpmBank::new(8);
        bank.access(0, BankOp::Store { data: 0xdead_beef, strobe: 0xf }).unwrap();
        assert_eq!(bank.access(0, BankOp::Load).unwrap(), 0xdead_beef);
    }

    #[test]
    fn sub_word_store_merges_lanes() {
        let mut bank = SpmBank::new(8);
        bank.access(1, BankOp::Store { data: 0xaabb_ccdd, strobe: 0xf }).unwrap();
        bank.access(1, BankOp::Store { data: 0x0000_1100, strobe: 0b0010 }).unwrap();
        assert_eq!(bank.peek(1), Some(0xaabb_11dd));
        bank.access(1, BankOp::Store { data: 0x7788_0000, strobe: 0b1100 }).unwrap();
        assert_eq!(bank.peek(1), Some(0x7788_11dd));
    }

    #[test]
    fn amo_returns_old_value() {
        let mut bank = SpmBank::new(4);
        bank.poke(2, 10);
        let old = bank
            .access(2, BankOp::Amo { op: AmoOp::Add, operand: 5 })
            .unwrap();
        assert_eq!(old, 10);
        assert_eq!(bank.peek(2), Some(15));
    }

    #[test]
    fn lr_sc_success() {
        let mut bank = SpmBank::new(4);
        bank.poke(0, 41);
        assert_eq!(bank.access(0, BankOp::LoadReserved { hart: 3 }).unwrap(), 41);
        assert_eq!(
            bank.access(0, BankOp::StoreConditional { hart: 3, data: 42 }).unwrap(),
            0
        );
        assert_eq!(bank.peek(0), Some(42));
    }

    #[test]
    fn sc_fails_without_reservation() {
        let mut bank = SpmBank::new(4);
        assert_eq!(
            bank.access(0, BankOp::StoreConditional { hart: 3, data: 42 }).unwrap(),
            1
        );
        assert_eq!(bank.peek(0), Some(0));
    }

    #[test]
    fn intervening_write_breaks_reservation() {
        let mut bank = SpmBank::new(4);
        bank.access(0, BankOp::LoadReserved { hart: 1 }).unwrap();
        bank.access(0, BankOp::Store { data: 9, strobe: 0xf }).unwrap();
        assert_eq!(
            bank.access(0, BankOp::StoreConditional { hart: 1, data: 7 }).unwrap(),
            1
        );
        assert_eq!(bank.peek(0), Some(9));
    }

    #[test]
    fn competing_sc_only_one_wins() {
        let mut bank = SpmBank::new(4);
        bank.access(0, BankOp::LoadReserved { hart: 1 }).unwrap();
        bank.access(0, BankOp::LoadReserved { hart: 2 }).unwrap();
        assert_eq!(
            bank.access(0, BankOp::StoreConditional { hart: 1, data: 11 }).unwrap(),
            0
        );
        // Hart 1's successful SC invalidates hart 2's reservation.
        assert_eq!(
            bank.access(0, BankOp::StoreConditional { hart: 2, data: 22 }).unwrap(),
            1
        );
        assert_eq!(bank.peek(0), Some(11));
    }

    #[test]
    fn new_lr_replaces_old_reservation() {
        let mut bank = SpmBank::new(4);
        bank.access(0, BankOp::LoadReserved { hart: 1 }).unwrap();
        bank.access(1, BankOp::LoadReserved { hart: 1 }).unwrap();
        // Reservation moved to row 1, so SC on row 0 fails.
        assert_eq!(
            bank.access(0, BankOp::StoreConditional { hart: 1, data: 5 }).unwrap(),
            1
        );
        assert_eq!(
            bank.access(1, BankOp::StoreConditional { hart: 1, data: 6 }).unwrap(),
            0
        );
    }

    #[test]
    fn amo_breaks_reservation() {
        let mut bank = SpmBank::new(4);
        bank.access(0, BankOp::LoadReserved { hart: 1 }).unwrap();
        bank.access(0, BankOp::Amo { op: AmoOp::Add, operand: 1 }).unwrap();
        assert_eq!(
            bank.access(0, BankOp::StoreConditional { hart: 1, data: 5 }).unwrap(),
            1
        );
    }

    #[test]
    fn out_of_range_row_rejected() {
        let mut bank = SpmBank::new(4);
        assert!(bank.access(4, BankOp::Load).is_err());
    }
}
