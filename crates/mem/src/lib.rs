//! # mempool-mem
//!
//! The memory substrate of the MemPool reproduction (DATE 2021):
//!
//! * [`AddressMap`] — the sequentially interleaved L1 map across
//!   tiles × banks (§IV);
//! * [`Scrambler`] — the *hybrid addressing scheme*: a bijective wire
//!   crossing that carves per-tile sequential regions out of the interleaved
//!   map, so private data (e.g. stacks) stays in local banks (§IV);
//! * [`SpmBank`] — single-ported scratchpad banks with RV32A atomics and
//!   LR/SC reservations executed at the bank;
//! * [`ICache`] — the per-tile 4-way set-associative instruction cache
//!   (timing model; 2 KiB in the paper's configuration).
//!
//! # Examples
//!
//! The hybrid map in action — a stack slot in the core's local sequential
//! region resolves to the core's own tile, while shared data stays
//! interleaved:
//!
//! ```
//! use mempool_mem::{AddressMap, Scrambler};
//!
//! let map = AddressMap::new(64, 16, 256)?; // the 256-core cluster, 1 MiB L1
//! let scrambler = Scrambler::new(map, 1024).unwrap();
//!
//! let my_tile = 9;
//! let stack_slot = scrambler.seq_base(my_tile) + 64;
//! assert_eq!(map.decode(scrambler.scramble(stack_slot)).unwrap().tile, my_tile);
//! # Ok::<(), mempool_mem::BuildAddressMapError>(())
//! ```

#![warn(missing_docs)]

mod addr;
mod icache;
mod spm;

pub use addr::{AddressMap, BankAddress, BuildAddressMapError, QuarantineMap, Scrambler};
pub use icache::{BuildCacheError, CacheStats, ICache};
pub use spm::{BankOp, BankRowError, SpmBank};
