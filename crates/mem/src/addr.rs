//! Address interpretation: the interleaved L1 map and the hybrid addressing
//! scrambler of MemPool §IV.

use std::fmt;

/// Where a physical L1 address lands: tile, bank within the tile, row within
/// the bank, and byte offset within the word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankAddress {
    /// Tile index, `0..num_tiles`.
    pub tile: u32,
    /// Bank index within the tile, `0..banks_per_tile`.
    pub bank: u32,
    /// Word row within the bank.
    pub row: u32,
    /// Byte offset within the 32-bit word (0–3).
    pub byte: u32,
}

/// Error returned when address-map geometry is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildAddressMapError {
    msg: String,
}

impl fmt::Display for BuildAddressMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for BuildAddressMapError {}

fn err(msg: impl Into<String>) -> BuildAddressMapError {
    BuildAddressMapError { msg: msg.into() }
}

/// The sequentially interleaved L1 memory map of the MemPool cluster.
///
/// Word addresses interleave across all banks of all tiles to minimize
/// banking conflicts (§IV): after the 2-bit byte offset come `b` bank bits,
/// then `t` tile bits, then the row offset.
///
/// # Examples
///
/// ```
/// use mempool_mem::AddressMap;
///
/// // The full MemPool cluster: 64 tiles × 16 banks × 256 rows = 1 MiB.
/// let map = AddressMap::new(64, 16, 256)?;
/// let a = map.decode(0x0000_0004).unwrap();
/// assert_eq!((a.tile, a.bank, a.row), (0, 1, 0)); // next word, next bank
/// let b = map.decode(0x0000_0040).unwrap();
/// assert_eq!((b.tile, b.bank, b.row), (1, 0, 0)); // wrapped into next tile
/// # Ok::<(), mempool_mem::BuildAddressMapError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    num_tiles: u32,
    banks_per_tile: u32,
    rows_per_bank: u32,
    bank_bits: u32,
    tile_bits: u32,
}

impl AddressMap {
    /// Creates a map for `num_tiles` tiles of `banks_per_tile` banks with
    /// `rows_per_bank` 32-bit rows each.
    ///
    /// # Errors
    ///
    /// Returns an error unless `num_tiles` and `banks_per_tile` are nonzero
    /// powers of two and `rows_per_bank` is nonzero.
    pub fn new(
        num_tiles: u32,
        banks_per_tile: u32,
        rows_per_bank: u32,
    ) -> Result<AddressMap, BuildAddressMapError> {
        if num_tiles == 0 || !num_tiles.is_power_of_two() {
            return Err(err("num_tiles must be a nonzero power of two"));
        }
        if banks_per_tile == 0 || !banks_per_tile.is_power_of_two() {
            return Err(err("banks_per_tile must be a nonzero power of two"));
        }
        if rows_per_bank == 0 {
            return Err(err("rows_per_bank must be nonzero"));
        }
        Ok(AddressMap {
            num_tiles,
            banks_per_tile,
            rows_per_bank,
            bank_bits: banks_per_tile.trailing_zeros(),
            tile_bits: num_tiles.trailing_zeros(),
        })
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> u32 {
        self.num_tiles
    }

    /// Banks per tile.
    pub fn banks_per_tile(&self) -> u32 {
        self.banks_per_tile
    }

    /// Rows per bank.
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }

    /// Total L1 capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        u64::from(self.num_tiles)
            * u64::from(self.banks_per_tile)
            * u64::from(self.rows_per_bank)
            * 4
    }

    /// Decodes a byte address into its bank location, or `None` when the
    /// address lies beyond the L1 region.
    pub fn decode(&self, addr: u32) -> Option<BankAddress> {
        if u64::from(addr) >= self.size_bytes() {
            return None;
        }
        let byte = addr & 3;
        let bank = (addr >> 2) & (self.banks_per_tile - 1);
        let tile = (addr >> (2 + self.bank_bits)) & (self.num_tiles - 1);
        let row = addr >> (2 + self.bank_bits + self.tile_bits);
        Some(BankAddress {
            tile,
            bank,
            row,
            byte,
        })
    }

    /// The inverse of [`decode`](AddressMap::decode).
    ///
    /// # Panics
    ///
    /// Panics if any field of `at` is out of range for this map.
    pub fn encode(&self, at: BankAddress) -> u32 {
        assert!(at.tile < self.num_tiles, "tile out of range");
        assert!(at.bank < self.banks_per_tile, "bank out of range");
        assert!(at.row < self.rows_per_bank, "row out of range");
        assert!(at.byte < 4, "byte out of range");
        (at.row << (2 + self.bank_bits + self.tile_bits))
            | (at.tile << (2 + self.bank_bits))
            | (at.bank << 2)
            | at.byte
    }
}

/// The hybrid addressing scrambler of §IV: swaps address bits so that the
/// first `2^S` bytes seen by each tile form a *sequential region* mapped
/// entirely onto that tile's banks, while the rest of the address space
/// stays fully interleaved.
///
/// The transformation is a pure wire crossing (a bijection) applied
/// identically by every core, so all cores keep the same shared view of L1;
/// it is conditional on the address falling inside the combined sequential
/// region of `2^S · num_tiles` bytes.
///
/// # Examples
///
/// ```
/// use mempool_mem::{AddressMap, Scrambler};
///
/// let map = AddressMap::new(64, 16, 256)?;
/// // 1 KiB sequential region per tile.
/// let scr = Scrambler::new(map, 1024).unwrap();
/// // The first KiB maps to tile 0 ...
/// assert_eq!(map.decode(scr.scramble(0x000)).unwrap().tile, 0);
/// assert_eq!(map.decode(scr.scramble(0x3fc)).unwrap().tile, 0);
/// // ... and the second KiB to tile 1.
/// assert_eq!(map.decode(scr.scramble(0x400)).unwrap().tile, 1);
/// // Outside the sequential region the map is untouched.
/// assert_eq!(scr.scramble(0x40000), 0x40000);
/// # Ok::<(), mempool_mem::BuildAddressMapError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scrambler {
    map: AddressMap,
    /// Bits of row offset inside the sequential region (`s` in the paper).
    seq_row_bits: u32,
    /// Byte size of one tile's sequential region (`2^S`).
    seq_bytes_per_tile: u32,
}

impl Scrambler {
    /// Creates a scrambler giving each tile a sequential region of
    /// `seq_bytes_per_tile` bytes.
    ///
    /// Returns `None` unless the size is a power of two, spans at least one
    /// full row across the tile's banks (`4 · banks_per_tile` bytes), and
    /// fits in the tile's SPM.
    pub fn new(map: AddressMap, seq_bytes_per_tile: u32) -> Option<Scrambler> {
        let row_bytes = 4 * map.banks_per_tile; // one row across all banks
        if !seq_bytes_per_tile.is_power_of_two()
            || seq_bytes_per_tile < row_bytes
            || u64::from(seq_bytes_per_tile)
                > u64::from(map.rows_per_bank) * u64::from(row_bytes)
        {
            return None;
        }
        let seq_row_bits = (seq_bytes_per_tile / row_bytes).trailing_zeros();
        Some(Scrambler {
            map,
            seq_row_bits,
            seq_bytes_per_tile,
        })
    }

    /// The underlying interleaved map.
    pub fn map(&self) -> AddressMap {
        self.map
    }

    /// Byte size of one tile's sequential region.
    pub fn seq_bytes_per_tile(&self) -> u32 {
        self.seq_bytes_per_tile
    }

    /// Total bytes covered by sequential regions (all tiles).
    pub fn seq_region_bytes(&self) -> u64 {
        u64::from(self.seq_bytes_per_tile) * u64::from(self.map.num_tiles)
    }

    /// The first address of tile `tile`'s sequential region (in the
    /// *programmer's* address space, i.e. before scrambling).
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn seq_base(&self, tile: u32) -> u32 {
        assert!(tile < self.map.num_tiles, "tile out of range");
        tile * self.seq_bytes_per_tile
    }

    /// Whether `addr` falls inside the combined sequential region.
    pub fn in_seq_region(&self, addr: u32) -> bool {
        u64::from(addr) < self.seq_region_bytes()
    }

    /// Applies the hybrid address transformation (identity outside the
    /// sequential region).
    pub fn scramble(&self, addr: u32) -> u32 {
        if !self.in_seq_region(addr) {
            return addr;
        }
        let low_bits = 2 + self.map.bank_bits; // byte + bank offsets untouched
        let s = self.seq_row_bits;
        let t = self.map.tile_bits;
        let low = addr & ((1 << low_bits) - 1);
        let seq_row = (addr >> low_bits) & ((1 << s) - 1);
        let tile = (addr >> (low_bits + s)) & ((1 << t) - 1);
        low | (tile << low_bits) | (seq_row << (low_bits + t))
    }

    /// The inverse transformation (also identity outside the region).
    pub fn unscramble(&self, addr: u32) -> u32 {
        if !self.in_seq_region(addr) {
            return addr;
        }
        let low_bits = 2 + self.map.bank_bits;
        let s = self.seq_row_bits;
        let t = self.map.tile_bits;
        let low = addr & ((1 << low_bits) - 1);
        let tile = (addr >> low_bits) & ((1 << t) - 1);
        let seq_row = (addr >> (low_bits + t)) & ((1 << s) - 1);
        low | (seq_row << low_bits) | (tile << (low_bits + s))
    }
}

/// Graceful-degradation remap for failed SPM banks.
///
/// When a bank is declared dead, every address that decodes onto it is
/// re-pointed at a *substitute* live bank in the same tile. The substitute
/// then serves both its own rows and the dead bank's rows, halving its
/// effective capacity but keeping the address space fully readable and
/// writable — requests simply contend on the surviving bank. Tiles are
/// independent: a failure never redirects traffic across the interconnect.
///
/// The map starts as the identity and is updated incrementally via
/// [`quarantine`](QuarantineMap::quarantine). Substitution is resolved
/// eagerly (path compression): `remap` is always a single table lookup, and
/// quarantining a bank that already served as a substitute re-points every
/// bank that leaned on it.
///
/// # Examples
///
/// ```
/// use mempool_mem::{AddressMap, QuarantineMap};
///
/// let map = AddressMap::new(4, 4, 16)?;
/// let mut q = QuarantineMap::new(map);
/// assert!(q.is_identity());
/// // Bank 1 of tile 2 dies; bank 2 takes over its rows.
/// assert_eq!(q.quarantine(2, 1), Some(2));
/// let at = map.decode(map.encode(mempool_mem::BankAddress {
///     tile: 2, bank: 1, row: 3, byte: 0,
/// })).unwrap();
/// assert_eq!(q.remap(at).bank, 2);
/// # Ok::<(), mempool_mem::BuildAddressMapError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineMap {
    banks_per_tile: u32,
    /// `subst[tile * banks_per_tile + bank]` = the live bank (same tile)
    /// that services requests addressed to `bank`.
    subst: Vec<u32>,
    /// Whether each global bank has been declared dead.
    dead: Vec<bool>,
}

impl QuarantineMap {
    /// Creates the identity map (no banks quarantined) for `map`'s geometry.
    pub fn new(map: AddressMap) -> QuarantineMap {
        let total = (map.num_tiles() * map.banks_per_tile()) as usize;
        QuarantineMap {
            banks_per_tile: map.banks_per_tile(),
            subst: (0..total as u32)
                .map(|i| i % map.banks_per_tile())
                .collect(),
            dead: vec![false; total],
        }
    }

    fn index(&self, tile: u32, bank: u32) -> usize {
        (tile * self.banks_per_tile + bank) as usize
    }

    /// Declares bank `bank` of tile `tile` dead and redirects its traffic to
    /// the next live bank of the same tile (searching upward with wraparound).
    ///
    /// Returns the substitute bank, or `None` when the bank is already
    /// quarantined or it is the tile's last live bank (a tile cannot lose
    /// its entire SPM, so the final failure is refused and the bank stays
    /// live).
    ///
    /// # Panics
    ///
    /// Panics if `tile` or `bank` is out of range.
    pub fn quarantine(&mut self, tile: u32, bank: u32) -> Option<u32> {
        assert!(bank < self.banks_per_tile, "bank out of range");
        let idx = self.index(tile, bank);
        if self.dead[idx] {
            return None;
        }
        let substitute = (1..self.banks_per_tile)
            .map(|step| (bank + step) % self.banks_per_tile)
            .find(|&b| !self.dead[self.index(tile, b)])?;
        self.dead[idx] = true;
        // Re-point the bank itself and every earlier casualty that leaned on
        // it, so lookups stay a single table read.
        for b in 0..self.banks_per_tile {
            let i = self.index(tile, b);
            if self.subst[i] == bank {
                self.subst[i] = substitute;
            }
        }
        Some(substitute)
    }

    /// Whether bank `bank` of tile `tile` is quarantined.
    ///
    /// # Panics
    ///
    /// Panics if `tile` or `bank` is out of range.
    pub fn is_quarantined(&self, tile: u32, bank: u32) -> bool {
        assert!(bank < self.banks_per_tile, "bank out of range");
        self.dead[self.index(tile, bank)]
    }

    /// Applies the remap: dead banks resolve to their substitute, live banks
    /// to themselves. Tile, row, and byte are never changed.
    ///
    /// # Panics
    ///
    /// Panics if `at.tile` or `at.bank` is out of range.
    pub fn remap(&self, at: BankAddress) -> BankAddress {
        assert!(at.bank < self.banks_per_tile, "bank out of range");
        BankAddress {
            bank: self.subst[self.index(at.tile, at.bank)],
            ..at
        }
    }

    /// The substitution table, indexed `tile * banks_per_tile + bank`
    /// (checkpointing).
    pub fn subst_table(&self) -> &[u32] {
        &self.subst
    }

    /// The per-bank dead flags, same indexing as
    /// [`subst_table`](QuarantineMap::subst_table) (checkpointing).
    pub fn dead_flags(&self) -> &[bool] {
        &self.dead
    }

    /// Restores the full quarantine state. The geometry is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if either slice's length disagrees with the bank count.
    pub fn load(&mut self, subst: &[u32], dead: &[bool]) {
        assert_eq!(subst.len(), self.subst.len(), "subst table size mismatch");
        assert_eq!(dead.len(), self.dead.len(), "dead flag count mismatch");
        self.subst.copy_from_slice(subst);
        self.dead.copy_from_slice(dead);
    }

    /// Whether no bank has been quarantined (remap is the identity).
    pub fn is_identity(&self) -> bool {
        !self.dead.iter().any(|&d| d)
    }

    /// Number of quarantined banks across the whole cluster.
    pub fn quarantined_banks(&self) -> usize {
        self.dead.iter().filter(|&&d| d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_map() -> AddressMap {
        // 4 tiles × 4 banks × 16 rows = 1 KiB.
        AddressMap::new(4, 4, 16).unwrap()
    }

    #[test]
    fn decode_encode_round_trip() {
        let map = small_map();
        for addr in 0..map.size_bytes() as u32 {
            let at = map.decode(addr).unwrap();
            assert_eq!(map.encode(at), addr);
        }
    }

    #[test]
    fn decode_out_of_range() {
        let map = small_map();
        assert!(map.decode(map.size_bytes() as u32).is_none());
    }

    #[test]
    fn interleaving_crosses_banks_then_tiles() {
        let map = small_map();
        let a0 = map.decode(0).unwrap();
        let a4 = map.decode(4).unwrap();
        let a16 = map.decode(16).unwrap();
        assert_eq!((a0.tile, a0.bank), (0, 0));
        assert_eq!((a4.tile, a4.bank), (0, 1));
        assert_eq!((a16.tile, a16.bank), (1, 0));
    }

    #[test]
    fn geometry_validation() {
        assert!(AddressMap::new(3, 4, 16).is_err());
        assert!(AddressMap::new(4, 5, 16).is_err());
        assert!(AddressMap::new(4, 4, 0).is_err());
        assert!(AddressMap::new(0, 4, 16).is_err());
    }

    #[test]
    fn scrambler_sequential_region_stays_on_tile() {
        let map = small_map();
        // 64 bytes per tile = 4 rows across 4 banks.
        let scr = Scrambler::new(map, 64).unwrap();
        for tile in 0..4u32 {
            for offset in (0..64).step_by(4) {
                let vaddr = scr.seq_base(tile) + offset;
                let at = map.decode(scr.scramble(vaddr)).unwrap();
                assert_eq!(at.tile, tile, "vaddr {vaddr:#x}");
            }
        }
    }

    #[test]
    fn scrambler_spreads_within_tile_banks() {
        // Consecutive words in the sequential region still interleave across
        // the tile's banks (byte/bank offsets untouched).
        let map = small_map();
        let scr = Scrambler::new(map, 64).unwrap();
        let banks: Vec<u32> = (0..16u32)
            .map(|i| map.decode(scr.scramble(i * 4)).unwrap().bank)
            .collect();
        assert_eq!(&banks[..4], &[0, 1, 2, 3]);
    }

    #[test]
    fn scrambler_is_bijective_on_region() {
        let map = small_map();
        let scr = Scrambler::new(map, 64).unwrap();
        let region = scr.seq_region_bytes() as u32;
        let mut seen = vec![false; region as usize];
        for addr in 0..region {
            let phys = scr.scramble(addr);
            assert!(phys < region, "scramble leaves the region");
            assert!(!seen[phys as usize], "collision at {phys:#x}");
            seen[phys as usize] = true;
            assert_eq!(scr.unscramble(phys), addr);
        }
    }

    #[test]
    fn scrambler_identity_outside_region() {
        let map = small_map();
        let scr = Scrambler::new(map, 64).unwrap();
        for addr in (scr.seq_region_bytes() as u32)..(map.size_bytes() as u32) {
            assert_eq!(scr.scramble(addr), addr);
            assert_eq!(scr.unscramble(addr), addr);
        }
    }

    #[test]
    fn scrambler_size_validation() {
        let map = small_map();
        assert!(Scrambler::new(map, 48).is_none()); // not a power of two
        assert!(Scrambler::new(map, 8).is_none()); // smaller than one row
        assert!(Scrambler::new(map, 512).is_none()); // exceeds tile SPM (256 B)
        assert!(Scrambler::new(map, 256).is_some()); // exactly the tile SPM
    }

    #[test]
    fn quarantine_starts_as_identity() {
        let map = small_map();
        let q = QuarantineMap::new(map);
        assert!(q.is_identity());
        assert_eq!(q.quarantined_banks(), 0);
        for addr in (0..map.size_bytes() as u32).step_by(4) {
            let at = map.decode(addr).unwrap();
            assert_eq!(q.remap(at), at);
        }
    }

    #[test]
    fn quarantine_redirects_within_tile() {
        let map = small_map();
        let mut q = QuarantineMap::new(map);
        assert_eq!(q.quarantine(1, 2), Some(3));
        assert!(q.is_quarantined(1, 2));
        assert!(!q.is_identity());
        let at = BankAddress {
            tile: 1,
            bank: 2,
            row: 5,
            byte: 0,
        };
        let got = q.remap(at);
        assert_eq!((got.tile, got.bank, got.row), (1, 3, 5));
        // Other tiles are untouched.
        let other = BankAddress {
            tile: 2,
            bank: 2,
            row: 5,
            byte: 0,
        };
        assert_eq!(q.remap(other), other);
    }

    #[test]
    fn quarantine_chain_compresses() {
        let map = small_map();
        let mut q = QuarantineMap::new(map);
        // Bank 1 dies -> bank 2; then bank 2 dies -> bank 3. Bank 1's
        // traffic must follow to bank 3, not the dead bank 2.
        assert_eq!(q.quarantine(0, 1), Some(2));
        assert_eq!(q.quarantine(0, 2), Some(3));
        let at = BankAddress {
            tile: 0,
            bank: 1,
            row: 0,
            byte: 0,
        };
        assert_eq!(q.remap(at).bank, 3);
        // Remapped target is always live.
        for bank in 0..4 {
            let at = BankAddress {
                tile: 0,
                bank,
                row: 0,
                byte: 0,
            };
            assert!(!q.is_quarantined(0, q.remap(at).bank));
        }
    }

    #[test]
    fn quarantine_wraps_and_refuses_last_bank() {
        let map = small_map();
        let mut q = QuarantineMap::new(map);
        assert_eq!(q.quarantine(3, 3), Some(0)); // wraps around
        assert_eq!(q.quarantine(3, 3), None); // already dead
        assert_eq!(q.quarantine(3, 1), Some(2));
        assert_eq!(q.quarantine(3, 2), Some(0));
        // Bank 0 is the last live bank of tile 3: refuse.
        assert_eq!(q.quarantine(3, 0), None);
        assert!(!q.is_quarantined(3, 0));
        assert_eq!(q.quarantined_banks(), 3);
    }

    #[test]
    fn paper_configuration() {
        // 64 tiles × 16 banks × 256 rows = 1 MiB, 1 KiB sequential regions.
        let map = AddressMap::new(64, 16, 256).unwrap();
        assert_eq!(map.size_bytes(), 1 << 20);
        let scr = Scrambler::new(map, 1024).unwrap();
        assert_eq!(scr.seq_region_bytes(), 64 * 1024);
        // Spot-check: address 1024·7 + 260 lands on tile 7.
        let at = map.decode(scr.scramble(1024 * 7 + 260)).unwrap();
        assert_eq!(at.tile, 7);
    }
}
