//! Minimal, dependency-free SVG charts so the bench targets regenerate the
//! paper's figures as *images*, not just tables. Written to
//! `target/figures/`.

use std::fmt::Write as _;
use std::path::PathBuf;

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

/// Line colors, cycled per series.
const COLORS: &[&str] = &["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"];

/// One named line of a plot.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// (x, y) samples, in x order.
    pub points: Vec<(f64, f64)>,
}

/// A simple line plot with optional logarithmic y axis.
#[derive(Debug, Clone)]
pub struct LinePlot {
    /// Figure title.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The lines.
    pub series: Vec<Series>,
    /// Log-10 y axis (for latency explosions).
    pub log_y: bool,
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

impl LinePlot {
    /// Renders the plot as a standalone SVG document.
    pub fn to_svg(&self) -> String {
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for &(x, y) in &s.points {
                let y = if self.log_y { y.max(1e-9).log10() } else { y };
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
        if !x_min.is_finite() {
            (x_min, x_max, y_min, y_max) = (0.0, 1.0, 0.0, 1.0);
        }
        if (x_max - x_min).abs() < 1e-12 {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_max = y_min + 1.0;
        }
        if !self.log_y {
            y_min = y_min.min(0.0);
        }
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
        let sy = |y: f64| {
            let y = if self.log_y { y.max(1e-9).log10() } else { y };
            MARGIN_T + plot_h - (y - y_min) / (y_max - y_min) * plot_h
        };

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
        );
        let _ = writeln!(svg, r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#);
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            xml_escape(&self.title)
        );
        // Axes.
        let _ = writeln!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            MARGIN_T + plot_h,
            MARGIN_L + plot_w,
            MARGIN_T + plot_h
        );
        let _ = writeln!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
            MARGIN_T + plot_h
        );
        // Ticks + grid.
        for i in 0..=5 {
            let t = i as f64 / 5.0;
            let xv = x_min + t * (x_max - x_min);
            let x = sx(xv);
            let _ = writeln!(
                svg,
                r##"<line x1="{x}" y1="{MARGIN_T}" x2="{x}" y2="{}" stroke="#dddddd"/>"##,
                MARGIN_T + plot_h
            );
            let _ = writeln!(
                svg,
                r#"<text x="{x}" y="{}" text-anchor="middle">{}</text>"#,
                MARGIN_T + plot_h + 18.0,
                fmt_tick(xv)
            );
            let yv = y_min + t * (y_max - y_min);
            let y = MARGIN_T + plot_h - t * plot_h;
            let _ = writeln!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{y}" x2="{}" y2="{y}" stroke="#dddddd"/>"##,
                MARGIN_L + plot_w
            );
            let label = if self.log_y {
                format!("1e{yv:.1}")
            } else {
                fmt_tick(yv)
            };
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="end">{label}</text>"#,
                MARGIN_L - 6.0,
                y + 4.0
            );
        }
        // Axis labels.
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            xml_escape(&self.x_label)
        );
        let _ = writeln!(
            svg,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml_escape(&self.y_label)
        );
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let mut path = String::new();
            for &(x, y) in &s.points {
                let _ = write!(path, "{:.1},{:.1} ", sx(x), sy(y));
            }
            let _ = writeln!(
                svg,
                r#"<polyline points="{path}" fill="none" stroke="{color}" stroke-width="2"/>"#
            );
            let ly = MARGIN_T + 16.0 + i as f64 * 18.0;
            let lx = MARGIN_L + plot_w + 12.0;
            let _ = writeln!(
                svg,
                r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
                lx + 22.0
            );
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="{}">{}</text>"#,
                lx + 28.0,
                ly + 4.0,
                xml_escape(&s.name)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

/// A grouped bar chart (for Fig. 7's normalized performance bars).
#[derive(Debug, Clone)]
pub struct BarChart {
    /// Figure title.
    pub title: String,
    /// Y axis label.
    pub y_label: String,
    /// Group labels along x (e.g. kernels).
    pub groups: Vec<String>,
    /// One named bar series per group member (e.g. topologies); each
    /// series has one value per group.
    pub series: Vec<Series>,
}

impl BarChart {
    /// Renders the chart as a standalone SVG document. The y values of
    /// each series are taken from `points[i].1` per group `i`.
    pub fn to_svg(&self) -> String {
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let y_max = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .fold(1.0f64, f64::max)
            * 1.1;
        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
        );
        let _ = writeln!(svg, r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#);
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            xml_escape(&self.title)
        );
        let base_y = MARGIN_T + plot_h;
        let _ = writeln!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{base_y}" x2="{}" y2="{base_y}" stroke="black"/>"#,
            MARGIN_L + plot_w
        );
        // Reference line at 1.0 (the ideal baseline).
        let ref_y = base_y - 1.0 / y_max * plot_h;
        let _ = writeln!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{ref_y}" x2="{}" y2="{ref_y}" stroke="#999999" stroke-dasharray="4 3"/>"##,
            MARGIN_L + plot_w
        );
        let groups = self.groups.len().max(1) as f64;
        let group_w = plot_w / groups;
        let bar_w = group_w * 0.8 / self.series.len().max(1) as f64;
        for (g, label) in self.groups.iter().enumerate() {
            let gx = MARGIN_L + g as f64 * group_w;
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
                gx + group_w / 2.0,
                base_y + 18.0,
                xml_escape(label)
            );
            for (i, s) in self.series.iter().enumerate() {
                let v = s.points.get(g).map_or(0.0, |p| p.1);
                let h = (v / y_max * plot_h).max(0.0);
                let x = gx + group_w * 0.1 + i as f64 * bar_w;
                let color = COLORS[i % COLORS.len()];
                let _ = writeln!(
                    svg,
                    r#"<rect x="{x:.1}" y="{:.1}" width="{:.1}" height="{h:.1}" fill="{color}"/>"#,
                    base_y - h,
                    bar_w * 0.9
                );
            }
        }
        for (i, s) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let ly = MARGIN_T + 16.0 + i as f64 * 18.0;
            let lx = MARGIN_L + plot_w + 12.0;
            let _ = writeln!(
                svg,
                r#"<rect x="{lx}" y="{}" width="14" height="10" fill="{color}"/>"#,
                ly - 6.0
            );
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="{}">{}</text>"#,
                lx + 20.0,
                ly + 4.0,
                xml_escape(&s.name)
            );
        }
        let _ = writeln!(
            svg,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml_escape(&self.y_label)
        );
        svg.push_str("</svg>\n");
        svg
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Writes `svg` to `<workspace>/target/figures/<name>.svg` and returns the
/// path (benches run with the package directory as CWD, so the location is
/// anchored to this crate's manifest instead).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_figure(name: &str, svg: &str) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target/figures");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.svg"));
    std::fs::write(&path, svg)?;
    let canonical = path.canonicalize().unwrap_or(path);
    Ok(canonical)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plot() -> LinePlot {
        LinePlot {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                Series {
                    name: "a".into(),
                    points: vec![(0.0, 1.0), (1.0, 2.0), (2.0, 4.0)],
                },
                Series {
                    name: "b".into(),
                    points: vec![(0.0, 4.0), (2.0, 1.0)],
                },
            ],
            log_y: false,
        }
    }

    #[test]
    fn line_plot_produces_valid_skeleton() {
        let svg = sample_plot().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn log_scale_compresses_large_values() {
        let mut p = sample_plot();
        p.series[0].points = vec![(0.0, 1.0), (1.0, 10_000.0)];
        p.log_y = true;
        let svg = p.to_svg();
        assert!(svg.contains("1e"));
    }

    #[test]
    fn empty_plot_does_not_panic() {
        let p = LinePlot {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            series: vec![],
            log_y: false,
        };
        assert!(p.to_svg().contains("</svg>"));
    }

    #[test]
    fn bar_chart_has_one_rect_per_bar_plus_legend() {
        let chart = BarChart {
            title: "bars".into(),
            y_label: "rel".into(),
            groups: vec!["k1".into(), "k2".into()],
            series: vec![
                Series {
                    name: "top1".into(),
                    points: vec![(0.0, 0.2), (1.0, 1.0)],
                },
                Series {
                    name: "topH".into(),
                    points: vec![(0.0, 0.8), (1.0, 1.0)],
                },
            ],
        };
        let svg = chart.to_svg();
        // 4 bars + 2 legend swatches + background.
        assert_eq!(svg.matches("<rect").count(), 4 + 2 + 1);
    }

    #[test]
    fn titles_are_escaped() {
        let mut p = sample_plot();
        p.title = "a < b & c".into();
        let svg = p.to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
    }
}
