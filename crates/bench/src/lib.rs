//! # mempool-bench
//!
//! The benchmark harness of the MemPool reproduction: one bench target per
//! figure/table of the paper, each printing the same rows/series the paper
//! reports, plus Criterion microbenches of the simulator itself.
//!
//! | target | regenerates |
//! |---|---|
//! | `fig5` | Fig. 5a/5b — throughput & latency vs load, Top1/Top4/TopH |
//! | `fig6` | Fig. 6a/6b — TopH with the hybrid addressing scheme, p_local sweep |
//! | `fig7` | Fig. 7 — matmul/2dconv/dct on all topologies ± scrambling, normalized to the ideal baseline |
//! | `fig9` | Fig. 8/9 — wiring-density floorplans and the Top4 infeasibility verdict |
//! | `fig10` | Fig. 10 — energy per instruction; §VI-D power numbers |
//! | `table_physical` | §VI-B/§VI-C — area, timing, feasibility per topology |
//! | `scorecard` | one PASS/FAIL line per paper claim (the quick repro audit) |
//! | `ablations` | design-choice sweeps: outstanding loads, sequential-region size, I-cache size, barrier style, scaling |
//! | `microbench` | Criterion microbenches: fabric arbitration, ISS stepping, scrambler |
//!
//! `fig5`/`fig6`/`fig7` additionally write SVG plots to `target/figures/`.
//! Run everything with `cargo bench --workspace`. Set
//! `MEMPOOL_BENCH_QUICK=1` to sweep the reduced 64-core cluster instead of
//! the full 256-core system.

pub mod plot;

use mempool::{ClusterConfig, Topology};

/// Whether to run the full 256-core sweeps (default) or the reduced
/// cluster (`MEMPOOL_BENCH_QUICK=1`).
pub fn full_scale() -> bool {
    std::env::var_os("MEMPOOL_BENCH_QUICK").is_none()
}

/// The cluster configuration benchmarks run on.
pub fn bench_config(topology: Topology) -> ClusterConfig {
    if full_scale() {
        ClusterConfig::paper(topology)
    } else {
        ClusterConfig::small(topology)
    }
}

/// Prints a header naming the experiment and the configuration scale.
pub fn banner(figure: &str, what: &str) {
    let cfg = bench_config(Topology::TopH);
    println!();
    println!("================================================================");
    println!("{figure}: {what}");
    println!(
        "configuration: {} cores ({} tiles x {} cores), {} KiB L1",
        cfg.num_cores(),
        cfg.num_tiles,
        cfg.cores_per_tile,
        cfg.num_banks() as u32 * cfg.rows_per_bank * 4 / 1024,
    );
    println!("================================================================");
}

/// Prints a row of right-aligned cells under a fixed-width layout.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a float cell.
pub fn f(v: f64) -> String {
    format!("{v:.3}")
}
