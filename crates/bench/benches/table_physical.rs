//! Regenerates the §VI-B / §VI-C physical-implementation numbers: tile and
//! cluster area roll-ups, per-topology timing and back-end feasibility.
//!
//! Paper reference points: tile 908 kGE as a 425 µm × 425 µm macro at
//! 72.8 % utilization, I-cache 23.6 % / SPM 40.2 % of the tile; cluster
//! 4.6 mm × 4.6 mm with 55 % tile coverage; TopH closes at 700 MHz (TT) /
//! 480 MHz (SS) with a 36-gate critical path that is 37 % wire delay;
//! Top4 is four times as congested as Top1 and physically infeasible.

use mempool::{ClusterConfig, Topology};
use mempool_bench::banner;
use mempool_physical::{cluster_area, cluster_timing, tile_area, tile_timing};

fn main() {
    banner("Table (SVI)", "physical implementation models, GF 22FDX");

    let cfg = ClusterConfig::paper(Topology::TopH);
    let tile = tile_area(&cfg);
    println!("\n--- SVI-B: tile implementation ---");
    println!("tile complexity: {:.0} kGE  [paper: 908 kGE]", tile.total_kge);
    println!(
        "tile macro edge: {:.0} um     [paper: 425 um]",
        tile.edge_um
    );
    println!(
        "  icache {:.1} %  [23.6 %],  spm {:.1} %  [40.2 %],  cores {:.1} %,  interconnect+rob {:.1} %",
        100.0 * tile.icache_fraction(),
        100.0 * tile.spm_fraction(),
        100.0 * tile.cores_kge / tile.total_kge,
        100.0 * tile.interconnect_kge / tile.total_kge
    );
    let tt = tile_timing(&cfg);
    println!(
        "tile critical path: {} gates [paper: 53], wire share {:.0} %",
        tt.path_gates,
        100.0 * tt.wire_fraction
    );

    println!("\n--- SVI-C: cluster implementation per topology ---");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "topology", "f_TT", "f_SS", "wire-share", "congestion", "net [kGE]", "feasible"
    );
    for topo in [Topology::Top1, Topology::Top4, Topology::TopH] {
        let cfg = ClusterConfig::paper(topo);
        let timing = cluster_timing(&cfg);
        let area = cluster_area(&cfg);
        println!(
            "{:<8} {:>7.0}MHz {:>7.0}MHz {:>11.0} % {:>12.2} {:>12.0} {:>10}",
            topo.to_string(),
            timing.f_typ_mhz,
            timing.f_wc_mhz,
            100.0 * timing.wire_fraction,
            area.interconnect.center_congestion,
            area.interconnect.kge,
            if timing.feasible && area.interconnect.feasible {
                "yes"
            } else {
                "NO"
            }
        );
    }
    let area = cluster_area(&ClusterConfig::paper(Topology::TopH));
    println!(
        "\ncluster macro: {:.1} mm x {:.1} mm  [paper: 4.6 x 4.6 mm], tile coverage {:.0} % [55 %]",
        area.edge_mm,
        area.edge_mm,
        100.0 * area.tile_coverage
    );
    println!("paper verdicts: Top4 ~4x Top1 center congestion => infeasible; TopH distributes");
    println!("its wiring through the directional local-group interconnects and closes timing.");
}
