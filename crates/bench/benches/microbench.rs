//! Criterion microbenches of the simulator's hot paths: fabric
//! arbitration, core stepping, the address scrambler, and a whole-cluster
//! cycle. These measure *simulator* performance (host time), not modeled
//! hardware time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mempool::{Cluster, ClusterConfig, Topology};
use mempool_mem::{AddressMap, Scrambler};
use mempool_noc::{Fabric, Offer};
use mempool_riscv::assemble;
use mempool_snitch::{Fetch, SnitchConfig, SnitchCore};
use std::hint::black_box;

fn bench_fabric(c: &mut Criterion) {
    let mut net = Fabric::butterfly(64, 4).expect("valid");
    let offers: Vec<Offer> = (0..64)
        .map(|input| Offer {
            input,
            dest: (input * 7 + 3) % 64,
        })
        .collect();
    c.bench_function("fabric_resolve_64x64_full_load", |b| {
        b.iter(|| {
            let granted = net.resolve(black_box(&offers), &mut |_| true);
            black_box(granted)
        })
    });
}

fn bench_scrambler(c: &mut Criterion) {
    let map = AddressMap::new(64, 16, 256).expect("valid");
    let scr = Scrambler::new(map, 4096).expect("valid");
    c.bench_function("scramble_1k_addresses", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for addr in (0..4096u32).step_by(4) {
                acc = acc.wrapping_add(scr.scramble(black_box(addr)));
            }
            black_box(acc)
        })
    });
}

fn bench_core_step(c: &mut Criterion) {
    let program = assemble(
        "loop: addi a0, a0, 1\nslli a1, a0, 3\nxor a2, a1, a0\nand a3, a2, a1\nj loop\n",
    )
    .expect("assembles");
    let image: Vec<_> = program
        .words()
        .iter()
        .map(|&w| mempool_riscv::decode(w).expect("decodes"))
        .collect();
    c.bench_function("snitch_step_1k_instructions", |b| {
        b.iter_batched(
            || SnitchCore::new(SnitchConfig::default()),
            |mut core| {
                for _ in 0..1000 {
                    let f = image
                        .get((core.pc() / 4) as usize)
                        .map_or(Fetch::Fault, |&i| Fetch::Ready(i));
                    core.step(f, true);
                }
                black_box(core)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cluster_cycle(c: &mut Criterion) {
    let program = assemble(
        "csrr t0, mhartid\nslli t0, t0, 2\nli t1, 0x20000\nadd t0, t0, t1\n\
         loop: lw a0, (t0)\naddi a0, a0, 1\nsw a0, (t0)\nj loop\n",
    )
    .expect("assembles");
    c.bench_function("cluster_cycle_64core_topH", |b| {
        b.iter_batched(
            || {
                let mut cluster =
                    Cluster::snitch(ClusterConfig::small(Topology::TopH)).expect("valid");
                cluster.load_program(&program).expect("loads");
                cluster
            },
            |mut cluster| {
                cluster.step_cycles(100);
                black_box(cluster.stats().bank_accesses)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fabric, bench_scrambler, bench_core_step, bench_cluster_cycle
}
criterion_main!(benches);
