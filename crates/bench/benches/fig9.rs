//! Regenerates the *qualitative* content of **Fig. 8 / Fig. 9**: where the
//! global interconnect wiring lands on the die for each topology, and why
//! only TopH is physically feasible.
//!
//! Paper reference: Top1 draws all wiring toward the heavily congested
//! center; Top4 is four times as congested and infeasible; TopH distributes
//! cells and wiring through the directional local-group interconnects, with
//! the remaining center hot-spot caused by the diagonal NE channels.

use mempool::{ClusterConfig, Topology};
use mempool_bench::banner;
use mempool_physical::{congestion_summary, floorplan};

fn main() {
    banner(
        "Fig. 8/9",
        "wiring-density floorplans (darker = denser global wiring)",
    );
    for topo in [Topology::Top1, Topology::Top4, Topology::TopH] {
        let plan = floorplan(&ClusterConfig::paper(topo));
        println!("\n--- {topo} (8x8 tile grid) ---");
        print!("{}", plan.render());
        println!(
            "center density {:.2}  |  spread (cv) {:.2}",
            plan.center_density(),
            plan.spread()
        );
    }
    println!("\n--- congestion summary ---");
    print!("{}", congestion_summary(ClusterConfig::paper));
    println!("paper: Top4 is ~4x Top1 at the center and physically infeasible; TopH");
    println!("distributes its wiring and closes timing at 700 MHz (TT).");
}
