//! Regenerates **Fig. 5** of the paper: throughput (5a) and average
//! round-trip latency (5b) of the three topologies under uniform random
//! Poisson traffic, as a function of the injected load.
//!
//! Paper reference points: Top1 congests at ≈0.10 request/core/cycle;
//! Top4 and TopH support ≈0.38; TopH's average latency reaches 6 cycles
//! only at 0.33 request/core/cycle and stays below Top4's.

use mempool::Topology;
use mempool_bench::{banner, bench_config, f, row};
use mempool_bench::plot::{save_figure, LinePlot, Series};
use mempool_traffic::{run_sweep, Pattern, Windows};

fn main() {
    banner(
        "Fig. 5",
        "network analysis of Top1/Top4/TopH under uniform traffic",
    );
    let loads: Vec<f64> = (1..=22).map(|i| i as f64 * 0.02).collect();
    let windows = if mempool_bench::full_scale() {
        Windows {
            warmup: 1_000,
            measure: 8_000,
            drain: 100_000,
        }
    } else {
        Windows::default()
    };

    let topologies = [Topology::Top1, Topology::Top4, Topology::TopH];
    let mut results = Vec::new();
    for topo in topologies {
        let sweep = run_sweep(bench_config(topo), Pattern::Uniform, &loads, windows, 42)
            .into_complete()
            .expect("sweep completes");
        results.push((topo, sweep));
    }

    println!("\n--- Fig. 5a: accepted throughput [req/core/cycle] ---");
    row(&[
        "load".into(),
        "top1".into(),
        "top4".into(),
        "topH".into(),
    ]);
    for (i, &load) in loads.iter().enumerate() {
        row(&[
            f(load),
            f(results[0].1[i].throughput),
            f(results[1].1[i].throughput),
            f(results[2].1[i].throughput),
        ]);
    }

    println!("\n--- Fig. 5b: average round-trip latency [cycles] ---");
    row(&[
        "load".into(),
        "top1".into(),
        "top4".into(),
        "topH".into(),
    ]);
    for (i, &load) in loads.iter().enumerate() {
        row(&[
            f(load),
            f(results[0].1[i].avg_latency()),
            f(results[1].1[i].avg_latency()),
            f(results[2].1[i].avg_latency()),
        ]);
    }

    println!("\n--- summary (paper reference in brackets) ---");
    let sat = |idx: usize| {
        results[idx]
            .1
            .iter()
            .map(|p| p.throughput)
            .fold(0.0f64, f64::max)
    };
    println!(
        "saturation throughput: top1 {:.3} [~0.10], top4 {:.3} [~0.38], topH {:.3} [~0.38]",
        sat(0),
        sat(1),
        sat(2)
    );
    // TopH latency at load 0.32 (closest sampled point to the paper's 0.33).
    if let Some(p) = results[2].1.iter().find(|p| (p.offered_load - 0.32).abs() < 1e-9) {
        println!(
            "topH average latency at load 0.32: {:.2} cycles [paper: ~6 at 0.33]",
            p.avg_latency()
        );
    }
    let low = &results[2].1[1];
    println!(
        "topH zero-load-ish latency at 0.04: {:.2} cycles [paper: <6]",
        low.avg_latency()
    );

    // Regenerate the figures as SVGs.
    let series = |metric: &dyn Fn(&mempool_traffic::SweepPoint) -> f64| -> Vec<Series> {
        results
            .iter()
            .map(|(topo, sweep)| Series {
                name: topo.to_string(),
                points: sweep
                    .iter()
                    .map(|p| (p.offered_load, metric(p)))
                    .collect(),
            })
            .collect()
    };
    let fig5a = LinePlot {
        title: "Fig. 5a: throughput vs injected load".into(),
        x_label: "injected load [req/core/cycle]".into(),
        y_label: "throughput [req/core/cycle]".into(),
        series: series(&|p| p.throughput),
        log_y: false,
    };
    let fig5b = LinePlot {
        title: "Fig. 5b: average round-trip latency vs injected load".into(),
        x_label: "injected load [req/core/cycle]".into(),
        y_label: "latency [cycles]".into(),
        series: series(&|p| p.avg_latency()),
        log_y: true,
    };
    for (name, plot) in [("fig5a", fig5a), ("fig5b", fig5b)] {
        match save_figure(name, &plot.to_svg()) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {name}: {e}"),
        }
    }
}
