//! Regenerates **Fig. 7** of the paper: runtime of the three
//! signal-processing benchmarks on every topology, with (`Top◆S`) and
//! without (`Top◆`) the scrambling logic, normalized to the ideal
//! full-crossbar baseline with the matching scrambling setting.
//!
//! Paper reference points: TopH generally beats Top4 and both beat Top1
//! (by ~3× in the extreme cases); TopH stays within 20 % of the baseline
//! on matmul; dct with scrambling matches the baseline on every topology,
//! and suffers badly without it (stacks spread over all tiles).

use mempool::{ClusterConfig, Topology};
use mempool_bench::{banner, bench_config};
use mempool_bench::plot::{save_figure, BarChart, Series};
use mempool_kernels::{run_kernel, Conv2d, Dct, Geometry, Kernel, Matmul};

const SEED: u64 = 2021;
const BUDGET: u64 = 200_000_000;

fn with_scrambling(mut cfg: ClusterConfig, on: bool) -> ClusterConfig {
    if !on {
        cfg.seq_region_bytes = None;
    }
    cfg
}

fn main() {
    banner(
        "Fig. 7",
        "benchmark runtimes relative to the ideal-crossbar baseline",
    );
    let base_cfg = bench_config(Topology::TopH);
    let geom = Geometry::from_config(&base_cfg, 4096);
    let matmul_n = if mempool_bench::full_scale() { 64 } else { 32 };
    let matmul = Matmul::new(geom, matmul_n).expect("valid kernel");
    let conv = Conv2d::auto(geom).expect("valid kernel");
    let dct = Dct::new(geom).expect("valid kernel");
    let kernels: [&dyn Kernel; 3] = [&matmul, &conv, &dct];

    println!(
        "\n{:<8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "kernel", "scramble", "ideal", "top1", "top4", "topH"
    );
    let mut groups: Vec<String> = Vec::new();
    // rel[t][g]: performance of topology t (top1/top4/topH) in group g.
    let mut rel = [Vec::new(), Vec::new(), Vec::new()];
    for kernel in kernels {
        for scrambled in [true, false] {
            let mut cycles = Vec::new();
            for topo in [Topology::Ideal, Topology::Top1, Topology::Top4, Topology::TopH] {
                let cfg = with_scrambling(bench_config(topo), scrambled);
                let run = run_kernel(kernel, cfg, SEED, BUDGET)
                    .unwrap_or_else(|e| panic!("{} on {topo}: {e}", kernel.name()));
                cycles.push(run.cycles);
            }
            let baseline = cycles[0] as f64;
            println!(
                "{:<8} {:>10} {:>12} {:>12} {:>12} {:>12}",
                kernel.name(),
                if scrambled { "on" } else { "off" },
                format!("{} cyc", cycles[0]),
                fmt_rel(cycles[1], baseline),
                fmt_rel(cycles[2], baseline),
                fmt_rel(cycles[3], baseline),
            );
            let g = groups.len() as f64;
            groups.push(format!(
                "{}{}",
                kernel.name(),
                if scrambled { "(S)" } else { "" }
            ));
            for (t, v) in rel.iter_mut().enumerate() {
                v.push((g, baseline / cycles[t + 1] as f64));
            }
        }
    }
    let chart = BarChart {
        title: "Fig. 7: performance relative to the ideal baseline".into(),
        y_label: "relative performance (1.0 = baseline)".into(),
        groups,
        series: ["top1", "top4", "topH"]
            .iter()
            .zip(rel)
            .map(|(name, points)| Series {
                name: (*name).into(),
                points,
            })
            .collect(),
    };
    match save_figure("fig7", &chart.to_svg()) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write fig7: {e}"),
    }

    println!("\nrelative numbers are performance vs the ideal baseline of the same");
    println!("scrambling setting (1.00 = matches the baseline; paper Fig. 7).");
    println!("paper reference: matmul TopH >= 0.8x baseline; dct (scrambled) ~1.0x on");
    println!("all topologies; Top1 up to ~3x slower than TopH on remote-heavy kernels.");
}

fn fmt_rel(cycles: u64, baseline: f64) -> String {
    format!("{:.2}x", baseline / cycles as f64)
}
