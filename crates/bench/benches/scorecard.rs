//! The reproduction scorecard: one PASS/FAIL line per claim of the paper,
//! checked programmatically in a few minutes on the reduced cluster (the
//! full-size numbers live in the fig* benches). This is the quick "did the
//! reproduction hold?" audit.

use mempool::{ClusterConfig, Topology};
use mempool_bench::banner;
use mempool_kernels::{run_kernel, Dct, Geometry, Matmul};
use mempool_physical::{cluster_area, cluster_timing, instruction_energy_table, tile_area};
use mempool_riscv::assemble;
use mempool_traffic::{run_point, Pattern, Windows};

struct Scorecard {
    passed: u32,
    failed: u32,
}

impl Scorecard {
    fn check(&mut self, claim: &str, ok: bool, detail: String) {
        let verdict = if ok { "PASS" } else { "FAIL" };
        if ok {
            self.passed += 1;
        } else {
            self.failed += 1;
        }
        println!("[{verdict}] {claim:<58} {detail}");
    }
}

fn single_load_latency(topology: Topology, addr: u32) -> u64 {
    let mut config = ClusterConfig::paper(topology);
    config.seq_region_bytes = None;
    let source = format!(
        "csrr t0, mhartid\nbnez t0, out\nli t1, {addr:#x}\nlw a0, (t1)\nfence\nout: ecall\n"
    );
    let program = assemble(&source).expect("assembles");
    let mut cluster = mempool::Cluster::snitch(config).expect("valid");
    cluster.load_program(&program).expect("decodes");
    cluster.run(100_000).expect("finishes");
    cluster.stats().latency.max().expect("one sample")
}

fn main() {
    banner("Scorecard", "paper claims checked programmatically");
    let mut card = Scorecard { passed: 0, failed: 0 };
    let addr_in_tile = |tile: u32| (16 << 12) | (tile << 6);

    // §III: zero-load latency contract.
    let l_local = single_load_latency(Topology::TopH, addr_in_tile(0));
    card.check("local bank access is 1 cycle", l_local == 1, format!("{l_local}"));
    let l_group = single_load_latency(Topology::TopH, addr_in_tile(1));
    card.check("TopH same-group access is 3 cycles", l_group == 3, format!("{l_group}"));
    let l_remote = single_load_latency(Topology::TopH, addr_in_tile(63));
    card.check("TopH remote-group access is 5 cycles", l_remote == 5, format!("{l_remote}"));
    let l_top1 = single_load_latency(Topology::Top1, addr_in_tile(63));
    card.check("Top1 remote access is 5 cycles", l_top1 == 5, format!("{l_top1}"));

    // §V-A: saturation ordering (reduced cluster).
    let windows = Windows {
        warmup: 500,
        measure: 3_000,
        drain: 60_000,
    };
    let sat = |topo| {
        run_point(ClusterConfig::small(topo), Pattern::Uniform, 1.0, windows, 3)
            .expect("runs")
            .throughput
    };
    let (s1, s4, sh) = (sat(Topology::Top1), sat(Topology::Top4), sat(Topology::TopH));
    card.check(
        "Top4/TopH sustain ~4x Top1's load",
        s4 > 2.5 * s1 && sh > 2.5 * s1,
        format!("{s1:.3} / {s4:.3} / {sh:.3}"),
    );
    card.check(
        "TopH saturation at least matches Top4",
        sh >= 0.95 * s4,
        format!("{sh:.3} vs {s4:.3}"),
    );
    let lat = |topo, load| {
        run_point(ClusterConfig::small(topo), Pattern::Uniform, load, windows, 3)
            .expect("runs")
            .avg_latency()
    };
    card.check(
        "TopH low-load latency below Top4's",
        lat(Topology::TopH, 0.05) < lat(Topology::Top4, 0.05),
        String::new(),
    );

    // §V-B: locality scaling.
    let p_sat = |p| {
        run_point(
            ClusterConfig::small(Topology::TopH),
            Pattern::PLocal { p_local: p },
            1.0,
            windows,
            5,
        )
        .expect("runs")
        .throughput
    };
    let (p0, p25, p100) = (p_sat(0.0), p_sat(0.25), p_sat(1.0));
    card.check(
        "throughput rises monotonically with p_local",
        p25 > p0 && p100 > p25,
        format!("{p0:.3} -> {p25:.3} -> {p100:.3}"),
    );

    // §V-C: benchmark shape (reduced cluster).
    let geom = Geometry::from_config(&ClusterConfig::small(Topology::TopH), 4096);
    let matmul = Matmul::new(geom, 32).expect("valid");
    let cycles = |topo, scramble: bool| {
        let mut cfg = ClusterConfig::small(topo);
        if !scramble {
            cfg.seq_region_bytes = None;
        }
        run_kernel(&matmul, cfg, 2021, 50_000_000).expect("runs").cycles
    };
    let (m_ideal, m_top1, m_toph) = (
        cycles(Topology::Ideal, true),
        cycles(Topology::Top1, true),
        cycles(Topology::TopH, true),
    );
    // The full 3x gap needs the 256-core cluster (see `--bench fig7`,
    // measured 3.4x); the reduced cluster still shows a clear win.
    card.check(
        "matmul: TopH clearly beats Top1 (3x at full scale)",
        m_top1 as f64 > 1.6 * m_toph as f64,
        format!("{m_top1} vs {m_toph}"),
    );
    card.check(
        "matmul: TopH within ~25% of the ideal baseline",
        (m_toph as f64) < 1.45 * m_ideal as f64,
        format!("{m_toph} vs {m_ideal}"),
    );
    let dct = Dct::new(geom).expect("valid");
    let dct_cycles = |topo| {
        run_kernel(&dct, ClusterConfig::small(topo), 2021, 50_000_000)
            .expect("runs")
            .cycles
    };
    let (d_ideal, d_top1) = (dct_cycles(Topology::Ideal), dct_cycles(Topology::Top1));
    card.check(
        "dct (scrambled) matches the baseline on every topology",
        (d_top1 as f64) < 1.10 * d_ideal as f64,
        format!("{d_top1} vs {d_ideal}"),
    );
    let mut unscrambled = ClusterConfig::small(Topology::TopH);
    unscrambled.seq_region_bytes = None;
    let d_off = run_kernel(&dct, unscrambled, 2021, 50_000_000).expect("runs").cycles;
    let d_on = dct_cycles(Topology::TopH);
    card.check(
        "dct without scrambling pays a big penalty",
        d_off as f64 > 1.5 * d_on as f64,
        format!("{d_off} vs {d_on}"),
    );

    // §VI: physical models.
    let tile = tile_area(&ClusterConfig::paper(Topology::TopH));
    card.check(
        "tile rolls up to 908 kGE, 425 um macro",
        (tile.total_kge - 908.0).abs() < 2.0 && (tile.edge_um - 425.0).abs() < 4.0,
        format!("{:.0} kGE, {:.0} um", tile.total_kge, tile.edge_um),
    );
    let area = cluster_area(&ClusterConfig::paper(Topology::TopH));
    card.check(
        "cluster macro is 4.6 mm with 55% tile coverage",
        (area.edge_mm - 4.6).abs() < 0.1,
        format!("{:.2} mm", area.edge_mm),
    );
    let t = cluster_timing(&ClusterConfig::paper(Topology::TopH));
    card.check(
        "TopH closes at 700 MHz TT / 480 MHz SS",
        (t.f_typ_mhz - 700.0).abs() < 35.0 && (t.f_wc_mhz - 480.0).abs() < 25.0,
        format!("{:.0} / {:.0} MHz", t.f_typ_mhz, t.f_wc_mhz),
    );
    card.check(
        "Top4 is physically infeasible",
        !cluster_timing(&ClusterConfig::paper(Topology::Top4)).feasible,
        String::new(),
    );
    // Conclusion claim: MemPool "enables us to run 'non-systolic'
    // algorithms effectively" — a distributed, barrier-synchronized FFT
    // must verify bit-exact against its golden model.
    let fft = mempool_kernels::Fft::new(geom, 512).expect("valid");
    let fft_ok = run_kernel(&fft, ClusterConfig::small(Topology::TopH), 2021, 50_000_000);
    card.check(
        "non-systolic FFT runs and verifies on TopH",
        fft_ok.is_ok(),
        fft_ok.map(|r| format!("{} cycles", r.cycles)).unwrap_or_else(|e| e.to_string()),
    );

    let table = instruction_energy_table();
    let ll = table.iter().find(|e| e.name == "local load").expect("row");
    let rl = table.iter().find(|e| e.name == "remote load").expect("row");
    card.check(
        "local load 8.4 pJ, remote 16.9 pJ (2x)",
        (ll.total_pj - 8.4).abs() < 0.1 && (rl.total_pj - 16.9).abs() < 0.1,
        format!("{:.1} / {:.1} pJ", ll.total_pj, rl.total_pj),
    );

    println!(
        "\nscorecard: {} passed, {} failed",
        card.passed, card.failed
    );
    assert_eq!(card.failed, 0, "reproduction regressed");
}
