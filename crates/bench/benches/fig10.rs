//! Regenerates **Fig. 10** and the §VI-D power analysis: the energy
//! breakdown per instruction and the tile/cluster power while running
//! `matmul` at 500 MHz in typical conditions.
//!
//! Paper reference points: local load 8.4 pJ (4.5 pJ interconnect), remote
//! load 16.9 pJ (13.0 pJ interconnect, 2.9× the local interconnect
//! energy); tile 20.9 mW — I-cache 39.5 %, cores 26.6 %, SPM 12.6 %,
//! tile interconnects < 10 % — cluster 1.55 W with 86 % inside tiles.

use mempool::Topology;
use mempool_bench::{banner, bench_config};
use mempool_kernels::{run_kernel, Geometry, Matmul};
use mempool_physical::{energy, instruction_energy_table, tile_power_mw, Activity};

fn main() {
    banner("Fig. 10", "energy per instruction and matmul power analysis");

    println!("\n--- Fig. 10: energy per instruction [pJ] ---");
    println!(
        "{:<14} {:>10} {:>14} {:>12}",
        "instruction", "total", "interconnect", "rest"
    );
    for e in instruction_energy_table() {
        println!(
            "{:<14} {:>10.1} {:>14.1} {:>12.1}",
            e.name,
            e.total_pj,
            e.interconnect_pj,
            e.total_pj - e.interconnect_pj
        );
    }
    println!("paper: add 3.7, mul ~8, local load 8.4 (4.5 net), remote load 16.9 (13.0 net)");

    // §VI-D: power while running matmul on TopH at 500 MHz.
    let cfg = bench_config(Topology::TopH);
    let geom = Geometry::from_config(&cfg, 4096);
    let n = if mempool_bench::full_scale() { 64 } else { 32 };
    let kernel = Matmul::new(geom, n).expect("valid kernel");
    let run = run_kernel(&kernel, cfg, 2021, 200_000_000).expect("matmul runs");
    let activity = Activity::from_run(
        &run.stats,
        &run.core_totals,
        &run.icache,
        cfg.num_tiles,
        cfg.num_cores(),
        cfg.banks_per_tile,
    );
    let freq = 500.0;
    let breakdown = energy(&activity);
    let tile_mw = tile_power_mw(&activity, freq);
    let cluster_w = mempool_physical::cluster_power_w(&activity, freq);

    println!("\n--- SVI-D: power running matmul at {freq} MHz (TT/0.80V/25C) ---");
    println!("simulated activity: {} cycles, {} instructions, {} memory accesses",
        activity.cycles, activity.instructions, activity.memory_ops);
    println!(
        "tile power: {tile_mw:.1} mW  [paper: 20.9 mW]"
    );
    let tiles = breakdown.tiles_pj();
    println!(
        "  icache  {:>5.1} %  [paper: 39.5 %]",
        100.0 * breakdown.icache_pj / tiles
    );
    println!(
        "  cores   {:>5.1} %  [paper: 26.6 %]",
        100.0 * breakdown.cores_pj / tiles
    );
    println!(
        "  spm     {:>5.1} %  [paper: 12.6 %]",
        100.0 * breakdown.spm_pj / tiles
    );
    println!(
        "  tilenet {:>5.1} %  [paper: < 10 %]",
        100.0 * breakdown.tile_net_pj / tiles
    );
    println!("cluster power: {cluster_w:.2} W  [paper: 1.55 W]");
    println!(
        "tile share of cluster energy: {:.0} %  [paper: 86 %]",
        100.0 * breakdown.tile_fraction()
    );
}
