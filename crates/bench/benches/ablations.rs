//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. **Outstanding loads per core** — the Snitch feature the paper
//!    highlights for hiding SPM latency (§III-B), swept on remote-heavy
//!    matmul.
//! 2. **Sequential-region size** — how much private memory the hybrid
//!    addressing scheme needs before dct stops paying remote-stack
//!    penalties (§IV).
//! 3. **I-cache size** — the tile's largest area consumer (§VI-B) vs its
//!    performance contribution.

use mempool::{Cluster, ClusterConfig, Topology};
use mempool_bench::{banner, bench_config};
use mempool_kernels::{
    emit_barrier_with_backoff, emit_epilogue, emit_prologue, emit_tree_barrier_with_backoff,
    run_kernel, Dct, Geometry, Matmul,
};

const SEED: u64 = 2021;
const BUDGET: u64 = 200_000_000;

/// Cycles for `rounds` back-to-back barriers on `config`.
fn barrier_cycles(config: ClusterConfig, rounds: usize, tree: bool, backoff: u32) -> u64 {
    let geom = Geometry::from_config(&config, 4096);
    let (callee, body, init) = if tree {
        (
            emit_tree_barrier_with_backoff(&geom, backoff),
            "\tjal  ra, __tree_barrier\n",
            "\tjal  ra, __tree_barrier_init\n",
        )
    } else {
        (
            emit_barrier_with_backoff(&geom, backoff),
            "\tjal  ra, __barrier\n",
            "",
        )
    };
    let source = format!(
        "{prologue}{init}{calls}{epilogue}{callee}",
        prologue = emit_prologue(&geom),
        calls = body.repeat(rounds),
        epilogue = emit_epilogue(),
    );
    let program = mempool_riscv::assemble(&source).expect("assembles");
    let mut cluster = Cluster::snitch(config).expect("valid");
    cluster.load_program(&program).expect("decodes");
    cluster.run(BUDGET).expect("finishes")
}

fn main() {
    banner("Ablations", "design-choice sweeps on the cycle-accurate model");

    // 1. Outstanding loads on matmul (TopH).
    println!("\n--- outstanding loads per core (matmul, TopH) ---");
    println!("{:>12} {:>12} {:>10}", "outstanding", "cycles", "speedup");
    let base_cfg = bench_config(Topology::TopH);
    let geom = Geometry::from_config(&base_cfg, 4096);
    let n = if mempool_bench::full_scale() { 64 } else { 32 };
    let matmul = Matmul::new(geom, n).expect("valid kernel");
    let mut first = None;
    for outstanding in [1usize, 2, 4, 8, 16] {
        let mut cfg = base_cfg;
        cfg.core.outstanding = outstanding;
        let run = run_kernel(&matmul, cfg, SEED, BUDGET).expect("matmul runs");
        let baseline = *first.get_or_insert(run.cycles);
        println!(
            "{outstanding:>12} {:>12} {:>9.2}x",
            run.cycles,
            baseline as f64 / run.cycles as f64
        );
    }
    println!("(the paper's Snitch supports a configurable number of outstanding loads");
    println!(" precisely to hide the 1-5 cycle SPM latency; expect diminishing returns)");

    // 2. Sequential-region size on dct (TopH, scrambling on).
    println!("\n--- sequential-region size (dct, TopH) ---");
    println!("{:>12} {:>12} {:>10}", "seq bytes", "cycles", "locality");
    for seq in [1024u32, 2048, 4096, 8192] {
        let mut cfg = base_cfg;
        cfg.seq_region_bytes = Some(seq);
        let geom = Geometry::from_config(&cfg, seq);
        let Ok(dct) = Dct::new(geom) else {
            println!("{seq:>12} {:>12} {:>10}", "too small", "-");
            continue;
        };
        match run_kernel(&dct, cfg, SEED, BUDGET) {
            Ok(run) => println!(
                "{seq:>12} {:>12} {:>9.2}",
                run.cycles,
                run.stats.locality()
            ),
            Err(e) => println!("{seq:>12} {e:>12}", e = format!("{e}")),
        }
    }
    println!("(dct needs room for per-core blocks + stack; once everything fits the");
    println!(" region, all accesses are local and cycles stop improving)");

    // 3. I-cache size on matmul (TopH).
    println!("\n--- icache size (matmul, TopH) ---");
    println!("{:>12} {:>12} {:>10}", "icache B", "cycles", "hit rate");
    for size in [512u32, 1024, 2048, 4096] {
        let mut cfg = base_cfg;
        cfg.icache.size_bytes = size;
        let run = run_kernel(&matmul, cfg, SEED, BUDGET).expect("matmul runs");
        println!(
            "{size:>12} {:>12} {:>9.3}",
            run.cycles,
            run.icache.hit_rate()
        );
    }
    println!("(the kernels' hot loops fit a few lines; the 2 KiB paper I-cache is sized");
    println!(" for real applications, and is the tile's largest area consumer at 23.6 %)");

    // 4. Barrier style: one central AMO counter vs the two-level tree.
    println!("\n--- barrier style (8 back-to-back barriers, TopH) ---");
    println!("{:>12} {:>12} {:>14}", "style", "cycles", "cycles/barrier");
    let rounds = 8;
    for (name, tree, backoff) in [
        ("central", false, 0u32),
        ("central+bk", false, 16),
        ("two-level", true, 0),
        ("tree+bk", true, 16),
    ] {
        let cycles = barrier_cycles(base_cfg, rounds, tree, backoff);
        println!(
            "{name:>12} {cycles:>12} {:>14.0}",
            cycles as f64 / rounds as f64
        );
    }
    println!("(arrival aggregation alone loses to the naive central barrier: the");
    println!(" release-flag *spin* traffic is the real hot-spot, and polling backoff");
    println!(" is what recovers it — a known result the simulator reproduces)");

    // 5. Cluster scaling: the same matmul work per core, growing the
    //    TopH cluster (the direction MemPool's follow-up work takes).
    println!("\n--- cluster scaling (matmul, TopH, constant n) ---");
    println!("{:>8} {:>8} {:>12} {:>12}", "tiles", "cores", "cycles", "vs 16-tile");
    let mut baseline = None;
    for tiles in [16usize, 64, 256] {
        let mut cfg = ClusterConfig::paper(Topology::TopH);
        cfg.num_tiles = tiles;
        let geom = Geometry::from_config(&cfg, 4096);
        let kernel = Matmul::new(geom, 64).expect("valid kernel");
        let run = run_kernel(&kernel, cfg, SEED, BUDGET).expect("matmul runs");
        let base = *baseline.get_or_insert(run.cycles);
        println!(
            "{tiles:>8} {:>8} {:>12} {:>11.2}x",
            cfg.num_cores(),
            run.cycles,
            base as f64 / run.cycles as f64
        );
    }
    println!("(strong scaling of a fixed 64x64 matmul: more cores shrink the per-core");
    println!(" share until synchronization-free work runs out)");

    // 6. Traffic patterns: uniform vs adversarial permutations vs hotspot.
    println!("\n--- traffic patterns: saturation throughput [req/core/cycle] ---");
    use mempool_traffic::{run_point, Pattern, Permutation, Windows};
    let windows = Windows {
        warmup: 500,
        measure: 4_000,
        drain: 100_000,
    };
    let patterns: [(&str, Pattern); 5] = [
        ("uniform", Pattern::Uniform),
        ("tornado", Pattern::Permutation(Permutation::Tornado)),
        ("bit-compl", Pattern::Permutation(Permutation::BitComplement)),
        ("transpose", Pattern::Permutation(Permutation::TileTranspose)),
        (
            "hotspot",
            Pattern::HotSpot {
                base: 0x10000,
                bytes: 64,
            },
        ),
    ];
    println!("{:>12} {:>10} {:>10} {:>10}", "pattern", "top1", "top4", "topH");
    for (name, pattern) in patterns {
        let sat = |topo| {
            run_point(bench_config(topo), pattern, 1.0, windows, 31)
                .expect("runs")
                .throughput
        };
        println!(
            "{name:>12} {:>10.3} {:>10.3} {:>10.3}",
            sat(Topology::Top1),
            sat(Topology::Top4),
            sat(Topology::TopH)
        );
    }
    println!("(permutations concentrate paths inside the butterflies; the hotspot");
    println!(" serializes at one tile's 16 banks regardless of topology)");
}
