//! Criterion benchmark of the serial vs. tile-parallel cluster engine
//! (`Cluster::set_workers`): host time per simulated cycle on the
//! 64-core small and 256-core paper configurations, per topology. These
//! complement the offline `mempool-run --bench-json` harness (which needs
//! no registry access) with statistically rigorous Criterion runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mempool::{Cluster, ClusterConfig, Topology};
use mempool_riscv::assemble;
use mempool_snitch::SnitchCore;
use std::hint::black_box;

/// Same steady-state workload as `mempool_suite::bench`: every core
/// hammers its own 16-word slice forever.
fn workload() -> mempool_riscv::Program {
    assemble(
        "csrr t0, mhartid\n\
         li   t2, 0x10000\n\
         slli t3, t0, 6\n\
         add  t3, t3, t2\n\
         forever:\n\
         mv   t6, t3\n\
         li   t4, 16\n\
         loop:\n\
         sw   t0, 0(t6)\n\
         lw   t5, 0(t6)\n\
         add  t0, t0, t5\n\
         addi t6, t6, 4\n\
         addi t4, t4, -1\n\
         bnez t4, loop\n\
         csrr t0, mhartid\n\
         j    forever\n",
    )
    .expect("workload assembles")
}

fn warmed_cluster(config: ClusterConfig, workers: usize) -> Cluster<SnitchCore> {
    let mut cluster = Cluster::snitch(config).expect("valid config");
    cluster.load_program(&workload()).expect("program loads");
    cluster.set_workers(workers);
    cluster.step_cycles(200);
    cluster
}

fn bench_engines(c: &mut Criterion) {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut group = c.benchmark_group("cluster_step_100");
    group.sample_size(10);
    for topology in [Topology::Ideal, Topology::Top4, Topology::TopH] {
        for (label, config) in [
            ("64c", ClusterConfig::small(topology)),
            ("256c", ClusterConfig::paper(topology)),
        ] {
            let mut serial = warmed_cluster(config, 0);
            group.bench_function(BenchmarkId::new(format!("serial_{label}"), topology), |b| {
                b.iter(|| {
                    serial.step_cycles(100);
                    black_box(serial.now())
                })
            });
            let mut parallel = warmed_cluster(config, workers);
            group.bench_function(
                BenchmarkId::new(format!("parallel{workers}_{label}"), topology),
                |b| {
                    b.iter(|| {
                        parallel.step_cycles(100);
                        black_box(parallel.now())
                    })
                },
            );
            assert_eq!(
                {
                    let mut a = warmed_cluster(config, 0);
                    a.step_cycles(300);
                    a.state_digest()
                },
                {
                    let mut b = warmed_cluster(config, workers);
                    b.step_cycles(300);
                    b.state_digest()
                },
                "engines diverged on {topology} {label}"
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
