//! Regenerates **Fig. 6** of the paper: TopH throughput (6a) and average
//! latency (6b) with the hybrid addressing scheme, sweeping the probability
//! `p_local` of a request targeting the local tile's sequential region.
//!
//! Paper reference: throughput rises monotonically with `p_local`; an
//! application with 25 % stack accesses "can gain up to 50 % in
//! performance … without changing the code".

use mempool::Topology;
use mempool_bench::{banner, bench_config, f, row};
use mempool_bench::plot::{save_figure, LinePlot, Series};
use mempool_traffic::{run_sweep, Pattern, Windows};

fn main() {
    banner(
        "Fig. 6",
        "TopH with the hybrid addressing scheme, p_local sweep",
    );
    // Sweep past Top_H's uniform-traffic saturation so the locality gain
    // is visible (fully local traffic approaches 1 req/core/cycle).
    let loads: Vec<f64> = (1..=25).map(|i| i as f64 * 0.04).collect();
    let p_locals = [0.0, 0.25, 0.5, 0.75, 1.0];
    let windows = if mempool_bench::full_scale() {
        Windows {
            warmup: 1_000,
            measure: 8_000,
            drain: 100_000,
        }
    } else {
        Windows::default()
    };

    let mut sweeps = Vec::new();
    for &p_local in &p_locals {
        let sweep = run_sweep(
            bench_config(Topology::TopH),
            Pattern::PLocal { p_local },
            &loads,
            windows,
            42,
        )
        .into_complete()
        .expect("sweep completes");
        sweeps.push(sweep);
    }

    let header = || {
        let mut cells = vec!["load".to_owned()];
        cells.extend(p_locals.iter().map(|p| format!("p={p}")));
        row(&cells);
    };

    println!("\n--- Fig. 6a: accepted throughput [req/core/cycle] ---");
    header();
    for (i, &load) in loads.iter().enumerate() {
        let mut cells = vec![f(load)];
        cells.extend(sweeps.iter().map(|s| f(s[i].throughput)));
        row(&cells);
    }

    println!("\n--- Fig. 6b: average round-trip latency [cycles] ---");
    header();
    for (i, &load) in loads.iter().enumerate() {
        let mut cells = vec![f(load)];
        cells.extend(sweeps.iter().map(|s| f(s[i].avg_latency())));
        row(&cells);
    }

    println!("\n--- summary (paper reference in brackets) ---");
    let sat = |idx: usize| {
        sweeps[idx]
            .iter()
            .map(|p| p.throughput)
            .fold(0.0f64, f64::max)
    };
    for (i, &p) in p_locals.iter().enumerate() {
        println!("saturation throughput at p_local={p}: {:.3}", sat(i));
    }
    let gain = (sat(1) / sat(0) - 1.0) * 100.0;
    println!(
        "saturation gain of p_local=0.25 over 0.00: {gain:.0} % [paper: up to 50 % \
         performance for an application with 25 % stack accesses]"
    );

    let series = |metric: &dyn Fn(&mempool_traffic::SweepPoint) -> f64| -> Vec<Series> {
        sweeps
            .iter()
            .zip(&p_locals)
            .map(|(sweep, p)| Series {
                name: format!("p_local={p}"),
                points: sweep
                    .iter()
                    .map(|pt| (pt.offered_load, metric(pt)))
                    .collect(),
            })
            .collect()
    };
    let fig6a = LinePlot {
        title: "Fig. 6a: TopH throughput with hybrid addressing".into(),
        x_label: "injected load [req/core/cycle]".into(),
        y_label: "throughput [req/core/cycle]".into(),
        series: series(&|p| p.throughput),
        log_y: false,
    };
    let fig6b = LinePlot {
        title: "Fig. 6b: TopH latency with hybrid addressing".into(),
        x_label: "injected load [req/core/cycle]".into(),
        y_label: "latency [cycles]".into(),
        series: series(&|p| p.avg_latency()),
        log_y: true,
    };
    for (name, plot) in [("fig6a", fig6a), ("fig6b", fig6b)] {
        match save_figure(name, &plot.to_svg()) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {name}: {e}"),
        }
    }
}
