//! A unidirectional ring network — the "low-overhead refill network" the
//! paper connects the tiles' I-cache AXI ports to (§III-B).
//!
//! The ring has one stop per participant; each link carries at most one
//! packet per cycle. A packet injected at stop *s* travels one stop per
//! cycle until it reaches its destination, where it is ejected into the
//! stop's output. Injection needs a free outgoing slot (packets already on
//! the ring have priority — the classic bufferless ring rule).

use std::collections::VecDeque;

/// A packet riding the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Flit<T> {
    dest: usize,
    payload: T,
}

/// A bufferless unidirectional ring with per-stop ejection queues.
///
/// # Examples
///
/// ```
/// use mempool_noc::Ring;
///
/// let mut ring = Ring::new(4);
/// assert!(ring.try_inject(0, 2, "hello"));
/// ring.advance(); // 0 -> 1
/// ring.advance(); // 1 -> 2, ejected
/// assert_eq!(ring.eject(2), Some("hello"));
/// ```
#[derive(Debug, Clone)]
pub struct Ring<T> {
    /// `slots[i]` is the packet currently on the link leaving stop `i`.
    slots: Vec<Option<Flit<T>>>,
    /// Ejected packets waiting to be consumed at each stop.
    outputs: Vec<VecDeque<T>>,
    /// Lifetime count of accepted injections (observability counter; part
    /// of the checkpointed state).
    injected: u64,
    /// Lifetime count of ejections into a stop's output queue.
    ejected: u64,
}

impl<T> Ring<T> {
    /// Creates a ring with `stops` stops.
    ///
    /// # Panics
    ///
    /// Panics if `stops` is zero.
    pub fn new(stops: usize) -> Self {
        assert!(stops > 0, "ring needs at least one stop");
        Ring {
            slots: (0..stops).map(|_| None).collect(),
            outputs: (0..stops).map(|_| VecDeque::new()).collect(),
            injected: 0,
            ejected: 0,
        }
    }

    /// Number of stops.
    pub fn stops(&self) -> usize {
        self.slots.len()
    }

    /// Number of packets currently riding the ring.
    pub fn in_flight(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Attempts to inject a packet at `stop` towards `dest`; fails when the
    /// outgoing link is occupied (on-ring traffic has priority).
    ///
    /// A packet destined for its own stop is ejected immediately.
    ///
    /// # Panics
    ///
    /// Panics if `stop` or `dest` is out of range.
    pub fn try_inject(&mut self, stop: usize, dest: usize, payload: T) -> bool {
        assert!(stop < self.stops(), "stop out of range");
        assert!(dest < self.stops(), "dest out of range");
        if dest == stop {
            self.injected += 1;
            self.ejected += 1;
            self.outputs[stop].push_back(payload);
            return true;
        }
        if self.slots[stop].is_some() {
            return false;
        }
        self.injected += 1;
        self.slots[stop] = Some(Flit { dest, payload });
        true
    }

    /// Advances all packets by one stop, ejecting arrivals.
    pub fn advance(&mut self) {
        // Every packet moves from stop i to stop i+1 simultaneously: a
        // rotation of the slot vector.
        self.slots.rotate_right(1);
        for i in 0..self.stops() {
            if self.slots[i].as_ref().is_some_and(|f| f.dest == i) {
                let flit = self.slots[i].take().expect("checked above");
                self.ejected += 1;
                self.outputs[i].push_back(flit.payload);
            }
        }
    }

    /// Takes the oldest ejected packet at `stop`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `stop` is out of range.
    pub fn eject(&mut self, stop: usize) -> Option<T> {
        self.outputs[stop].pop_front()
    }

    /// Fault injection: removes the packet riding the link that leaves
    /// `slot`, if any, and returns its payload (a lost flit).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn drop_in_flight(&mut self, slot: usize) -> Option<T> {
        assert!(slot < self.stops(), "slot out of range");
        self.slots[slot].take().map(|f| f.payload)
    }

    /// Number of ejected packets waiting at `stop`.
    pub fn pending(&self, stop: usize) -> usize {
        self.outputs[stop].len()
    }

    /// Lifetime count of accepted injections (observability counter).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Lifetime count of ejections into a stop's output queue.
    pub fn ejected(&self) -> u64 {
        self.ejected
    }

    /// Restores the injection/ejection counters from a checkpoint.
    pub fn set_counters(&mut self, injected: u64, ejected: u64) {
        self.injected = injected;
        self.ejected = ejected;
    }

    /// The packet on each outgoing link as `(dest, payload)`, one entry per
    /// stop (checkpointing).
    pub fn slots(&self) -> impl Iterator<Item = Option<(usize, &T)>> {
        self.slots
            .iter()
            .map(|s| s.as_ref().map(|f| (f.dest, &f.payload)))
    }

    /// The ejected-but-unconsumed packets at `stop`, oldest first
    /// (checkpointing).
    ///
    /// # Panics
    ///
    /// Panics if `stop` is out of range.
    pub fn output(&self, stop: usize) -> impl Iterator<Item = &T> {
        self.outputs[stop].iter()
    }

    /// Restores the ring from a checkpoint: one optional `(dest, payload)`
    /// per link slot and the ejection queue of every stop. The stop count is
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if either iterator's length disagrees with the stop count or a
    /// destination is out of range.
    pub fn load(
        &mut self,
        slots: impl IntoIterator<Item = Option<(usize, T)>>,
        outputs: impl IntoIterator<Item = Vec<T>>,
    ) {
        let stops = self.stops();
        let slots: Vec<Option<Flit<T>>> = slots
            .into_iter()
            .map(|s| {
                s.map(|(dest, payload)| {
                    assert!(dest < stops, "dest out of range");
                    Flit { dest, payload }
                })
            })
            .collect();
        assert_eq!(slots.len(), stops, "slot count mismatch");
        let outputs: Vec<VecDeque<T>> =
            outputs.into_iter().map(VecDeque::from).collect();
        assert_eq!(outputs.len(), stops, "output count mismatch");
        self.slots = slots;
        self.outputs = outputs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_travels_one_stop_per_cycle() {
        let mut ring = Ring::new(8);
        assert!(ring.try_inject(1, 5, 42u32));
        for _ in 0..3 {
            ring.advance();
            assert_eq!(ring.eject(5), None);
        }
        ring.advance(); // fourth hop: 1 -> 2 -> 3 -> 4 -> 5
        assert_eq!(ring.eject(5), Some(42));
        assert_eq!(ring.in_flight(), 0);
    }

    #[test]
    fn wraps_around() {
        let mut ring = Ring::new(4);
        assert!(ring.try_inject(3, 1, 7u32));
        ring.advance();
        ring.advance();
        assert_eq!(ring.eject(1), Some(7));
    }

    #[test]
    fn self_destined_packet_ejects_immediately() {
        let mut ring = Ring::new(4);
        assert!(ring.try_inject(2, 2, 9u32));
        assert_eq!(ring.eject(2), Some(9));
        assert_eq!(ring.in_flight(), 0);
    }

    #[test]
    fn injection_blocked_by_occupied_link() {
        let mut ring = Ring::new(4);
        assert!(ring.try_inject(0, 2, 1u32));
        assert!(!ring.try_inject(0, 3, 2u32), "link already carries a packet");
        ring.advance();
        assert!(ring.try_inject(0, 3, 2u32), "link freed after advance");
    }

    #[test]
    fn pipeline_full_throughput() {
        // Inject one packet per cycle from stop 0 to stop 2; after warmup,
        // one packet per cycle arrives.
        let mut ring = Ring::new(4);
        let mut delivered = 0;
        for i in 0..20u32 {
            assert!(ring.try_inject(0, 2, i));
            ring.advance();
            while ring.eject(2).is_some() {
                delivered += 1;
            }
        }
        assert!(delivered >= 18, "delivered {delivered}");
    }

    #[test]
    fn order_preserved_per_flow() {
        let mut ring = Ring::new(6);
        let mut got = Vec::new();
        for i in 0..10u32 {
            assert!(ring.try_inject(1, 4, i));
            ring.advance();
            while let Some(v) = ring.eject(4) {
                got.push(v);
            }
        }
        for _ in 0..10 {
            ring.advance();
            while let Some(v) = ring.eject(4) {
                got.push(v);
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn counters_track_injections_and_ejections() {
        let mut ring = Ring::new(4);
        assert!(ring.try_inject(0, 2, 1u32));
        assert!(!ring.try_inject(0, 3, 2u32)); // refused: not counted
        assert!(ring.try_inject(1, 1, 3u32)); // self-destined: both counted
        ring.advance();
        ring.advance();
        assert_eq!(ring.injected(), 2);
        assert_eq!(ring.ejected(), 2);
        ring.set_counters(5, 4);
        assert_eq!((ring.injected(), ring.ejected()), (5, 4));
    }

    #[test]
    fn no_packet_lost_under_contention() {
        // Two stops inject toward the same destination; everything arrives.
        let mut ring = Ring::new(8);
        let mut sent = 0;
        let mut received = 0;
        for i in 0..100u32 {
            if ring.try_inject(0, 4, i) {
                sent += 1;
            }
            if ring.try_inject(6, 4, 1000 + i) {
                sent += 1;
            }
            ring.advance();
            while ring.eject(4).is_some() {
                received += 1;
            }
        }
        for _ in 0..16 {
            ring.advance();
            while ring.eject(4).is_some() {
                received += 1;
            }
        }
        assert_eq!(sent, received);
        assert_eq!(ring.in_flight(), 0);
    }
}
