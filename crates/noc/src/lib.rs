//! # mempool-noc
//!
//! Cycle-accurate building blocks for the MemPool processor-to-L1-memory
//! interconnect (DATE 2021): elastic (skid) buffers, round-robin arbiters,
//! and combinational switching fabrics — fully-connected crossbars and
//! radix-r butterfly networks with configurable pipeline-register placement.
//!
//! The model follows the paper's §III-A: single-stage m×n crossbar switches
//! with round-robin arbitration per output, optional elastic buffers to
//! break combinational paths, oblivious routing (a single path per
//! master/slave pair), no transaction ordering, no virtual channels.
//!
//! # Cycle discipline
//!
//! Packets rest in [`ElasticBuffer`] register stages. Each cycle, the owner
//! of a network presents the buffer heads (plus any freshly generated
//! packets) to a [`Fabric`] as [`Offer`]s; `Fabric::resolve` applies
//! round-robin arbitration at every switch output and terminal readiness,
//! and tells the caller which packets move this cycle. Buffers make staged
//! arrivals visible only at the end-of-cycle [`ElasticBuffer::commit`], so a
//! packet crosses exactly one register boundary per cycle — which is what
//! makes the zero-load latencies of the paper (1/3/5 cycles) drop out of the
//! structure instead of being hard-coded.
//!
//! # Examples
//!
//! Two stages of a pipelined 64×64 radix-4 butterfly (the paper's Top1
//! global interconnect):
//!
//! ```
//! use mempool_noc::{ElasticBuffer, Fabric, Offer};
//!
//! let mut stage_a = Fabric::butterfly_segment(64, 4, 0, 2)?;
//! let stage_b = Fabric::butterfly_segment(64, 4, 2, 3)?;
//! let mut mid: Vec<ElasticBuffer<u32>> = (0..64).map(|_| ElasticBuffer::new(2)).collect();
//!
//! // Cycle t: a packet at input 5 destined for output 42 wins stage A and
//! // lands in the mid-stage register row.
//! let offers = [Offer { input: 5, dest: 42 }];
//! let granted = stage_a.resolve(&offers, &mut |port| mid[port].can_push());
//! assert!(granted[0]);
//! let landing = stage_a.output_port(5, 42);
//! mid[landing].push(42);
//! mid.iter_mut().for_each(ElasticBuffer::commit);
//!
//! // Cycle t+1: the register head continues through stage B to output 42.
//! assert_eq!(stage_b.output_port(landing, 42), 42);
//! # Ok::<(), mempool_noc::BuildFabricError>(())
//! ```

#![warn(missing_docs)]

mod arbiter;
mod elastic;
mod fabric;
mod ring;

pub use arbiter::RoundRobin;
pub use elastic::ElasticBuffer;
pub use fabric::{BuildFabricError, Fabric, Hop, Offer};
pub use ring::Ring;
