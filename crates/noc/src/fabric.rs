//! Combinational switching fabrics with per-output round-robin arbitration.
//!
//! A [`Fabric`] is everything between two register boundaries of the MemPool
//! interconnect: one or more layers of single-stage switches that a packet
//! traverses *within a single cycle*, provided it wins arbitration at every
//! switch output along its (unique, oblivious) path and the terminal is
//! ready. The paper's building blocks map onto fabrics as:
//!
//! * an *m×n fully-connected crossbar* — one layer, one arbiter per output;
//! * a *radix-4 butterfly* — `log4(n)` layers of 4×4 switches (this crate
//!   uses the omega wiring, a topologically equivalent delta network);
//! * a *pipelined butterfly* — two fabrics produced by
//!   [`Fabric::butterfly_segment`], joined by a row of
//!   [`ElasticBuffer`](crate::ElasticBuffer) registers.

use crate::RoundRobin;
use std::fmt;

/// One switch-output traversal on a packet's path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Layer index within the fabric.
    pub layer: u16,
    /// Layer-global input port the packet arrives on.
    pub in_port: u32,
    /// Layer-global output port the packet leaves on (the arbitrated
    /// resource).
    pub out_port: u32,
}

/// A packet presented to [`Fabric::resolve`]: which fabric input it sits on
/// and which fabric output it wants to reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Offer {
    /// Fabric input port (0..`n_in`).
    pub input: usize,
    /// Fabric output port (0..`n_out`).
    pub dest: usize,
}

/// Error returned by fabric constructors on invalid geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildFabricError {
    msg: String,
}

impl fmt::Display for BuildFabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for BuildFabricError {}

fn build_err(msg: impl Into<String>) -> BuildFabricError {
    BuildFabricError { msg: msg.into() }
}

/// A combinational multi-layer switching fabric.
///
/// Paths are precomputed per `(input, dest)` pair — routing is oblivious
/// (single path per master/slave pair, as in the paper). Arbitration state
/// is one [`RoundRobin`] per `(layer, output port)`.
///
/// # Examples
///
/// A 4×2 crossbar where two inputs contend for output 0:
///
/// ```
/// use mempool_noc::{Fabric, Offer};
///
/// let mut xbar = Fabric::crossbar(4, 2)?;
/// let offers = [Offer { input: 0, dest: 0 }, Offer { input: 3, dest: 0 }];
/// let granted = xbar.resolve(&offers, &mut |_out| true);
/// assert_eq!(granted.iter().filter(|&&g| g).count(), 1);
/// # Ok::<(), mempool_noc::BuildFabricError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    n_in: usize,
    n_out: usize,
    n_layers: usize,
    /// `paths[input * n_out + dest]` — one hop per layer.
    paths: Vec<Vec<Hop>>,
    /// `arbiters[layer][out_port]`.
    arbiters: Vec<Vec<RoundRobin>>,
    /// Scratch: contenders per (layer-local) out port, reused across calls.
    scratch_contenders: Vec<Vec<(usize, u32)>>,
    scratch_touched: Vec<u32>,
    /// Interior butterfly segments land on the *shuffled* final out port
    /// (the next layer's input row); see [`Fabric::butterfly_segment`].
    shuffled_terminal: bool,
    radix: usize,
}

impl Fabric {
    /// Builds a fully-connected `m`×`n` crossbar (one layer).
    ///
    /// # Errors
    ///
    /// Returns an error if `m` or `n` is zero.
    pub fn crossbar(m: usize, n: usize) -> Result<Fabric, BuildFabricError> {
        if m == 0 || n == 0 {
            return Err(build_err("crossbar dimensions must be nonzero"));
        }
        let mut paths = Vec::with_capacity(m * n);
        for input in 0..m {
            for dest in 0..n {
                paths.push(vec![Hop {
                    layer: 0,
                    in_port: input as u32,
                    out_port: dest as u32,
                }]);
            }
        }
        Ok(Fabric::from_parts(m, n, vec![n], paths))
    }

    /// Builds an `ports`×`ports` radix-`radix` butterfly (omega wiring,
    /// destination-digit routing), fully combinational.
    ///
    /// # Errors
    ///
    /// Returns an error unless `ports` is a power of `radix` with at least
    /// one layer and `radix >= 2`.
    pub fn butterfly(ports: usize, radix: usize) -> Result<Fabric, BuildFabricError> {
        let layers = butterfly_layers(ports, radix)?;
        Fabric::butterfly_segment(ports, radix, 0, layers)
    }

    /// Builds layers `first..last` of a `ports`×`ports` radix-`radix`
    /// butterfly.
    ///
    /// Splitting a butterfly into segments and joining them with a register
    /// row models the paper's "single pipeline stage midway through its
    /// `log4(64) = 3` layers". The segment's inputs are the layer-`first`
    /// switch inputs; its outputs are the layer-`last` inputs (or the final
    /// destinations when `last` is the layer count).
    ///
    /// # Errors
    ///
    /// Returns an error on invalid geometry or an empty/out-of-range layer
    /// range.
    pub fn butterfly_segment(
        ports: usize,
        radix: usize,
        first: usize,
        last: usize,
    ) -> Result<Fabric, BuildFabricError> {
        let total_layers = butterfly_layers(ports, radix)?;
        if first >= last || last > total_layers {
            return Err(build_err(format!(
                "invalid butterfly segment {first}..{last} of {total_layers} layers"
            )));
        }
        let k = total_layers;
        let mut paths = Vec::with_capacity(ports * ports);
        for entry in 0..ports {
            for dest in 0..ports {
                let mut hops = Vec::with_capacity(last - first);
                let mut in_port = entry;
                for layer in first..last {
                    let digit_index = k - 1 - layer;
                    let digit = (dest / radix.pow(digit_index as u32)) % radix;
                    let out_port = (in_port / radix) * radix + digit;
                    hops.push(Hop {
                        layer: (layer - first) as u16,
                        in_port: in_port as u32,
                        out_port: out_port as u32,
                    });
                    in_port = shuffle(out_port, ports, radix);
                }
                paths.push(hops);
            }
        }
        let layer_outs = vec![ports; last - first];
        let mut fabric = Fabric::from_parts(ports, ports, layer_outs, paths);
        // The final segment delivers on the last layer's out ports directly;
        // earlier segments deliver on the *next layer's in ports* (the
        // register row), i.e. the shuffled final out port. `output_port`
        // applies the shuffle on demand.
        if last < total_layers {
            fabric.shuffled_terminal = true;
            fabric.radix = radix;
        }
        Ok(fabric)
    }

    fn from_parts(
        n_in: usize,
        n_out: usize,
        layer_outs: Vec<usize>,
        paths: Vec<Vec<Hop>>,
    ) -> Fabric {
        let n_layers = layer_outs.len();
        let arbiters = layer_outs
            .iter()
            .map(|&outs| (0..outs).map(|_| RoundRobin::new(n_in.max(outs))).collect())
            .collect();
        let max_outs = layer_outs.iter().copied().max().unwrap_or(0);
        Fabric {
            n_in,
            n_out,
            n_layers,
            paths,
            arbiters,
            scratch_contenders: (0..max_outs).map(|_| Vec::new()).collect(),
            scratch_touched: Vec::new(),
            shuffled_terminal: false,
            radix: 0,
        }
    }

    /// Number of fabric input ports.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of fabric output ports.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Number of switch layers a packet traverses.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// The path for a given input/destination pair.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `dest` is out of range.
    pub fn path(&self, input: usize, dest: usize) -> &[Hop] {
        assert!(input < self.n_in && dest < self.n_out, "port out of range");
        &self.paths[input * self.n_out + dest]
    }

    /// The fabric output port where a packet entering at `input` with
    /// destination `dest` lands. For interior butterfly segments this is the
    /// register-row index feeding the next segment.
    pub fn output_port(&self, input: usize, dest: usize) -> usize {
        let last = self
            .path(input, dest)
            .last()
            .expect("paths have at least one hop");
        let out = last.out_port as usize;
        if self.shuffled_terminal {
            shuffle(out, self.n_out, self.radix)
        } else {
            out
        }
    }

    /// Resolves one cycle of offered packets.
    ///
    /// Each offer either wins arbitration at *every* switch output along its
    /// path **and** finds its terminal ready (via `out_ready`, called with
    /// the landing port from [`output_port`](Fabric::output_port)) — in
    /// which case its slot in the returned vector is `true` and the caller
    /// must move the packet — or it stays put (`false`). Losing at an
    /// internal switch blocks the packet even if the winner itself later
    /// stalls, matching non-reselecting combinational arbitration.
    ///
    /// Round-robin pointers advance only on committed transfers.
    ///
    /// # Panics
    ///
    /// Panics if an offer's ports are out of range, or if two offers share
    /// the same input port.
    pub fn resolve(
        &mut self,
        offers: &[Offer],
        out_ready: &mut dyn FnMut(usize) -> bool,
    ) -> Vec<bool> {
        let mut alive = vec![true; offers.len()];
        debug_assert!(
            {
                let mut seen = vec![false; self.n_in];
                offers.iter().all(|o| !std::mem::replace(&mut seen[o.input], true))
            },
            "two offers share an input port"
        );
        for layer in 0..self.n_layers {
            self.scratch_touched.clear();
            for (idx, offer) in offers.iter().enumerate() {
                if !alive[idx] {
                    continue;
                }
                let hop = self.paths[offer.input * self.n_out + offer.dest][layer];
                debug_assert_eq!(hop.layer as usize, layer);
                let port = hop.out_port as usize;
                if self.scratch_contenders[port].is_empty() {
                    self.scratch_touched.push(hop.out_port);
                }
                self.scratch_contenders[port].push((idx, hop.in_port));
            }
            for t in 0..self.scratch_touched.len() {
                let port = self.scratch_touched[t] as usize;
                let contenders = &mut self.scratch_contenders[port];
                if contenders.len() > 1 {
                    let requests: Vec<usize> =
                        contenders.iter().map(|&(_, inp)| inp as usize).collect();
                    let winner_in = self.arbiters[layer][port]
                        .peek(&requests)
                        .expect("nonempty contenders");
                    for &(idx, inp) in contenders.iter() {
                        if inp as usize != winner_in {
                            alive[idx] = false;
                        }
                    }
                }
                contenders.clear();
            }
        }
        // Terminal readiness.
        for (idx, offer) in offers.iter().enumerate() {
            if !alive[idx] {
                continue;
            }
            let landing = self.output_port(offer.input, offer.dest);
            if !out_ready(landing) {
                alive[idx] = false;
            }
        }
        // Advance round-robin pointers for committed packets.
        for (idx, offer) in offers.iter().enumerate() {
            if !alive[idx] {
                continue;
            }
            for hop in &self.paths[offer.input * self.n_out + offer.dest] {
                self.arbiters[hop.layer as usize][hop.out_port as usize]
                    .advance_past(hop.in_port as usize);
            }
        }
        alive
    }

    /// The round-robin pointer of every arbiter, flattened layer-by-layer
    /// then output-port order (checkpointing).
    pub fn arbiter_pointers(&self) -> Vec<usize> {
        self.arbiters
            .iter()
            .flat_map(|layer| layer.iter().map(RoundRobin::pointer))
            .collect()
    }

    /// Restores all arbiter pointers from
    /// [`arbiter_pointers`](Fabric::arbiter_pointers).
    ///
    /// # Panics
    ///
    /// Panics if the slice length disagrees with the arbiter count or any
    /// pointer is out of range.
    pub fn set_arbiter_pointers(&mut self, pointers: &[usize]) {
        let total: usize = self.arbiters.iter().map(Vec::len).sum();
        assert_eq!(pointers.len(), total, "arbiter pointer count mismatch");
        let mut it = pointers.iter();
        for layer in &mut self.arbiters {
            for arb in layer {
                arb.set_pointer(*it.next().expect("length checked"));
            }
        }
    }

    /// The grant counter of every arbiter, in
    /// [`arbiter_pointers`](Fabric::arbiter_pointers) order (checkpointing
    /// and observability).
    pub fn arbiter_grants(&self) -> Vec<u64> {
        self.arbiters
            .iter()
            .flat_map(|layer| layer.iter().map(RoundRobin::grants))
            .collect()
    }

    /// Restores all arbiter grant counters from
    /// [`arbiter_grants`](Fabric::arbiter_grants).
    ///
    /// # Panics
    ///
    /// Panics if the slice length disagrees with the arbiter count.
    pub fn set_arbiter_grants(&mut self, grants: &[u64]) {
        let total: usize = self.arbiters.iter().map(Vec::len).sum();
        assert_eq!(grants.len(), total, "arbiter grant count mismatch");
        let mut it = grants.iter();
        for layer in &mut self.arbiters {
            for arb in layer {
                arb.set_grants(*it.next().expect("length checked"));
            }
        }
    }

    /// Total committed switch-output traversals across all arbiters — the
    /// fabric-utilization counter of the observability layer.
    pub fn total_grants(&self) -> u64 {
        self.arbiters
            .iter()
            .flat_map(|layer| layer.iter().map(RoundRobin::grants))
            .sum()
    }
}

/// Validates butterfly geometry and returns the layer count `log_radix(ports)`.
fn butterfly_layers(ports: usize, radix: usize) -> Result<usize, BuildFabricError> {
    if radix < 2 {
        return Err(build_err("butterfly radix must be at least 2"));
    }
    let mut p = ports;
    let mut layers = 0;
    while p > 1 {
        if !p.is_multiple_of(radix) {
            return Err(build_err(format!(
                "{ports} ports is not a power of radix {radix}"
            )));
        }
        p /= radix;
        layers += 1;
    }
    if layers == 0 {
        return Err(build_err("butterfly needs at least one layer"));
    }
    Ok(layers)
}

/// Perfect shuffle: rotate the base-`radix` representation of `port` left by
/// one digit (the inter-layer wiring of an omega network).
pub(crate) fn shuffle(port: usize, ports: usize, radix: usize) -> usize {
    (port * radix) % ports + (port * radix) / ports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_routes_everywhere() {
        let mut xbar = Fabric::crossbar(4, 16).unwrap();
        for input in 0..4 {
            for dest in 0..16 {
                let granted = xbar.resolve(&[Offer { input, dest }], &mut |p| {
                    assert_eq!(p, dest);
                    true
                });
                assert_eq!(granted, vec![true]);
            }
        }
    }

    #[test]
    fn butterfly_all_pairs_reach_destination() {
        for (ports, radix) in [(16, 4), (64, 4), (16, 2), (8, 2)] {
            let mut net = Fabric::butterfly(ports, radix).unwrap();
            for src in 0..ports {
                for dest in 0..ports {
                    assert_eq!(
                        net.output_port(src, dest),
                        dest,
                        "{ports}x{ports} radix-{radix}, {src}->{dest}"
                    );
                    let granted = net.resolve(&[Offer { input: src, dest }], &mut |_| true);
                    assert!(granted[0]);
                }
            }
        }
    }

    #[test]
    fn butterfly_layer_count() {
        assert_eq!(Fabric::butterfly(64, 4).unwrap().n_layers(), 3);
        assert_eq!(Fabric::butterfly(16, 4).unwrap().n_layers(), 2);
        assert_eq!(Fabric::butterfly(16, 2).unwrap().n_layers(), 4);
        assert!(Fabric::butterfly(12, 4).is_err());
        assert!(Fabric::butterfly(16, 1).is_err());
    }

    #[test]
    fn butterfly_segments_compose() {
        // Splitting 64x64 radix-4 after layer 2 and chaining segment outputs
        // into segment inputs must reach the same destination as the full
        // network, for all pairs.
        let seg_a = Fabric::butterfly_segment(64, 4, 0, 2).unwrap();
        let seg_b = Fabric::butterfly_segment(64, 4, 2, 3).unwrap();
        for src in 0..64 {
            for dest in 0..64 {
                let mid = seg_a.output_port(src, dest);
                assert_eq!(seg_b.output_port(mid, dest), dest, "{src}->{dest} via {mid}");
            }
        }
    }

    #[test]
    fn conflicting_offers_grant_exactly_one() {
        let mut net = Fabric::butterfly(16, 4).unwrap();
        // All sixteen inputs target output 0: exactly one can win.
        let offers: Vec<Offer> = (0..16).map(|input| Offer { input, dest: 0 }).collect();
        let granted = net.resolve(&offers, &mut |_| true);
        assert_eq!(granted.iter().filter(|&&g| g).count(), 1);
    }

    #[test]
    fn distinct_destinations_all_grant_in_crossbar() {
        // A full crossbar is non-blocking: a permutation commits entirely.
        let mut xbar = Fabric::crossbar(8, 8).unwrap();
        let offers: Vec<Offer> = (0..8)
            .map(|input| Offer {
                input,
                dest: (input + 3) % 8,
            })
            .collect();
        let granted = xbar.resolve(&offers, &mut |_| true);
        assert!(granted.iter().all(|&g| g));
    }

    #[test]
    fn butterfly_blocks_some_permutations() {
        // A butterfly is blocking: the bit-reversal-like permutation causes
        // internal conflicts, so not every offer can commit in one cycle.
        let mut net = Fabric::butterfly(16, 4).unwrap();
        // Identity permutation: inputs 0..4 share the first layer-0 switch
        // and all target destinations with high digit 0, so they contend for
        // the same layer-0 output port.
        let offers: Vec<Offer> = (0..16).map(|input| Offer { input, dest: input }).collect();
        let granted = net.resolve(&offers, &mut |_| true);
        let wins = granted.iter().filter(|&&g| g).count();
        assert!(wins < 16, "blocking network granted a hard permutation fully");
        assert!(wins >= 1);
    }

    #[test]
    fn terminal_backpressure_blocks() {
        let mut xbar = Fabric::crossbar(2, 2).unwrap();
        let granted = xbar.resolve(&[Offer { input: 0, dest: 1 }], &mut |_| false);
        assert_eq!(granted, vec![false]);
    }

    #[test]
    fn round_robin_alternates_between_contenders() {
        let mut xbar = Fabric::crossbar(2, 1).unwrap();
        let offers = [Offer { input: 0, dest: 0 }, Offer { input: 1, dest: 0 }];
        let mut winners = Vec::new();
        for _ in 0..4 {
            let granted = xbar.resolve(&offers, &mut |_| true);
            winners.push(granted.iter().position(|&g| g).unwrap());
        }
        assert_eq!(winners, vec![0, 1, 0, 1]);
    }

    #[test]
    fn loser_blocked_even_if_winner_stalls() {
        // Input 0 wins arbitration for output 0 but the terminal is not
        // ready; input 1 must not sneak through (non-reselecting grant).
        let mut xbar = Fabric::crossbar(2, 1).unwrap();
        let offers = [Offer { input: 0, dest: 0 }, Offer { input: 1, dest: 0 }];
        let granted = xbar.resolve(&offers, &mut |_| false);
        assert_eq!(granted, vec![false, false]);
    }
}
