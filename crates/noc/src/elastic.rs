//! Elastic (skid) buffers: the register boundaries of the MemPool
//! interconnect.

use std::collections::VecDeque;

/// A register stage with elastic-buffer flow control.
///
/// This models the register + elastic buffer pairs of
/// Michelogiannakis et al. ("Elastic-buffer flow control for on-chip
/// networks", HPCA 2009), which the MemPool paper inserts "at each output of
/// the switch … to break any combinational paths crossing the switch".
///
/// The buffer separates *arrivals* (pushed during the current cycle) from
/// *stored* items: a value pushed at cycle *t* only becomes visible at the
/// head from cycle *t + 1*, after [`ElasticBuffer::commit`] is called at the
/// end of the cycle. Pops during cycle *t* free space that same cycle, so a
/// full-throughput pipeline needs capacity 2 (the classic two-slot skid
/// buffer): one slot holds the in-flight item, the second absorbs the push
/// that was already decided when backpressure arrived.
///
/// # Examples
///
/// ```
/// use mempool_noc::ElasticBuffer;
///
/// let mut reg = ElasticBuffer::new(2);
/// reg.push(7u32);
/// assert_eq!(reg.head(), None); // not visible until commit
/// reg.commit();
/// assert_eq!(reg.head(), Some(&7));
/// assert_eq!(reg.pop(), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct ElasticBuffer<T> {
    stored: VecDeque<T>,
    arrivals: VecDeque<T>,
    capacity: usize,
    /// Fault-injection gate: while set, the register neither presents a
    /// head nor accepts pushes (valid/ready forced low), modeling a
    /// transient link stall. Contents are preserved.
    stalled: bool,
    /// Lifetime count of accepted pushes — the per-link traffic counter of
    /// the observability layer. Deterministic (one increment per accepted
    /// push) and part of the checkpointed state.
    pushes: u64,
}

impl<T> ElasticBuffer<T> {
    /// Creates a buffer holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "elastic buffer capacity must be nonzero");
        ElasticBuffer {
            stored: VecDeque::with_capacity(capacity),
            arrivals: VecDeque::with_capacity(capacity),
            capacity,
            stalled: false,
            pushes: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently stored or staged.
    pub fn len(&self) -> usize {
        self.stored.len() + self.arrivals.len()
    }

    /// Whether the buffer holds no items at all (stored or staged).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a push would be accepted this cycle.
    pub fn can_push(&self) -> bool {
        !self.stalled && self.len() < self.capacity
    }

    /// Stages an item for arrival; it becomes visible after [`commit`].
    ///
    /// [`commit`]: ElasticBuffer::commit
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full ([`can_push`] is `false`) — callers must
    /// check readiness first, as a hardware producer would sample `ready`.
    ///
    /// [`can_push`]: ElasticBuffer::can_push
    pub fn push(&mut self, item: T) {
        assert!(self.can_push(), "push into full elastic buffer");
        self.pushes += 1;
        self.arrivals.push_back(item);
    }

    /// Lifetime count of accepted pushes (the observability layer's
    /// per-link traffic counter). Survives [`clear`](ElasticBuffer::clear).
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Restores the push counter from a checkpoint.
    pub fn set_pushes(&mut self, pushes: u64) {
        self.pushes = pushes;
    }

    /// The oldest *visible* item, if any (`None` while stalled).
    pub fn head(&self) -> Option<&T> {
        if self.stalled {
            return None;
        }
        self.stored.front()
    }

    /// Removes and returns the oldest visible item (`None` while stalled).
    pub fn pop(&mut self) -> Option<T> {
        if self.stalled {
            return None;
        }
        self.stored.pop_front()
    }

    /// Fault injection: gates the register's valid/ready handshake for the
    /// current cycle. Re-assert or clear every cycle; contents survive.
    pub fn set_stalled(&mut self, stalled: bool) {
        self.stalled = stalled;
    }

    /// Whether the register is currently stall-gated.
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Fault injection: silently discards the oldest stored item (a lost
    /// flit), bypassing the stall gate. Returns the dropped item.
    pub fn drop_head(&mut self) -> Option<T> {
        self.stored.pop_front()
    }

    /// Fault injection: mutable access to the oldest stored item, for
    /// payload corruption. Bypasses the stall gate.
    pub fn head_mut(&mut self) -> Option<&mut T> {
        self.stored.front_mut()
    }

    /// End-of-cycle commit: staged arrivals become visible.
    pub fn commit(&mut self) {
        self.stored.append(&mut self.arrivals);
        debug_assert!(self.stored.len() <= self.capacity);
    }

    /// Drops all contents (stored and staged) and clears any stall gate.
    pub fn clear(&mut self) {
        self.stored.clear();
        self.arrivals.clear();
        self.stalled = false;
    }

    /// Iterates over the visible items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.stored.iter()
    }

    /// Iterates over the staged (pushed-but-uncommitted) items, oldest
    /// first (checkpointing).
    pub fn iter_arrivals(&self) -> impl Iterator<Item = &T> {
        self.arrivals.iter()
    }

    /// Restores the full buffer state from a checkpoint: stored items,
    /// staged arrivals, and the stall gate. The capacity is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the combined item count exceeds the capacity.
    pub fn load(
        &mut self,
        stored: impl IntoIterator<Item = T>,
        arrivals: impl IntoIterator<Item = T>,
        stalled: bool,
    ) {
        self.stored.clear();
        self.stored.extend(stored);
        self.arrivals.clear();
        self.arrivals.extend(arrivals);
        assert!(
            self.stored.len() + self.arrivals.len() <= self.capacity,
            "loaded state exceeds buffer capacity"
        );
        self.stalled = stalled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_invisible_until_commit() {
        let mut b = ElasticBuffer::new(2);
        b.push(1);
        assert!(b.head().is_none());
        assert_eq!(b.len(), 1);
        b.commit();
        assert_eq!(b.head(), Some(&1));
    }

    #[test]
    fn fifo_order() {
        let mut b = ElasticBuffer::new(4);
        b.push(1);
        b.push(2);
        b.commit();
        b.push(3);
        b.commit();
        assert_eq!(b.pop(), Some(1));
        assert_eq!(b.pop(), Some(2));
        assert_eq!(b.pop(), Some(3));
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn capacity_counts_staged_items() {
        let mut b = ElasticBuffer::new(2);
        b.push(1);
        b.push(2);
        assert!(!b.can_push());
        b.commit();
        assert!(!b.can_push());
        b.pop();
        assert!(b.can_push());
    }

    #[test]
    fn full_throughput_with_same_cycle_drain() {
        // Depth-2 buffer sustains one item per cycle when drained every
        // cycle: pop happens before push within a cycle.
        let mut b = ElasticBuffer::new(2);
        b.push(0u32);
        b.commit();
        for i in 1..100u32 {
            let got = b.pop().expect("one item per cycle");
            assert_eq!(got, i - 1);
            assert!(b.can_push());
            b.push(i);
            b.commit();
        }
    }

    #[test]
    #[should_panic(expected = "full elastic buffer")]
    fn push_when_full_panics() {
        let mut b = ElasticBuffer::new(1);
        b.push(1);
        b.push(2);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _ = ElasticBuffer::<u32>::new(0);
    }

    #[test]
    fn push_counter_is_cumulative() {
        let mut b = ElasticBuffer::new(2);
        assert_eq!(b.pushes(), 0);
        b.push(1);
        b.commit();
        b.pop();
        b.push(2);
        b.clear();
        b.push(3);
        assert_eq!(b.pushes(), 3, "clear must not reset the traffic counter");
        b.set_pushes(7);
        assert_eq!(b.pushes(), 7);
    }

    #[test]
    fn clear_empties_everything() {
        let mut b = ElasticBuffer::new(2);
        b.push(1);
        b.commit();
        b.push(2);
        b.clear();
        assert!(b.is_empty());
        b.commit();
        assert!(b.pop().is_none());
    }
}
