//! Round-robin arbitration, as used at every switch output of the MemPool
//! interconnect.

/// A round-robin arbiter over `n` request lines.
///
/// The pointer marks the highest-priority requester; after a successful
/// grant it moves to the line *after* the winner, giving each requester a
/// bounded wait (work-conserving, starvation-free).
///
/// # Examples
///
/// ```
/// use mempool_noc::RoundRobin;
///
/// let mut arb = RoundRobin::new(4);
/// assert_eq!(arb.peek(&[1, 3]), Some(1));
/// arb.advance_past(1);
/// assert_eq!(arb.peek(&[1, 3]), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobin {
    pointer: usize,
    n: usize,
    /// Lifetime count of committed grants (pointer advances) — the
    /// observability layer's per-arbiter utilization counter. Part of the
    /// checkpointed state.
    grants: u64,
}

impl RoundRobin {
    /// Creates an arbiter over `n` request lines with the pointer at line 0.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one request line");
        RoundRobin {
            pointer: 0,
            n,
            grants: 0,
        }
    }

    /// Number of request lines.
    pub fn lines(&self) -> usize {
        self.n
    }

    /// Selects the winner among `requests` (sorted or not) without moving
    /// the pointer. Returns `None` when `requests` is empty.
    ///
    /// # Panics
    ///
    /// Panics if any request line is out of range.
    pub fn peek(&self, requests: &[usize]) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (distance, line)
        for &line in requests {
            assert!(line < self.n, "request line {line} out of range");
            let distance = (line + self.n - self.pointer) % self.n;
            match best {
                Some((d, _)) if d <= distance => {}
                _ => best = Some((distance, line)),
            }
        }
        best.map(|(_, line)| line)
    }

    /// Moves the pointer to the line after `winner` (called on a completed
    /// transfer).
    ///
    /// # Panics
    ///
    /// Panics if `winner` is out of range.
    pub fn advance_past(&mut self, winner: usize) {
        assert!(winner < self.n, "winner line {winner} out of range");
        self.pointer = (winner + 1) % self.n;
        self.grants += 1;
    }

    /// Lifetime count of committed grants (observability counter).
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Restores the grant counter from a checkpoint.
    pub fn set_grants(&mut self, grants: u64) {
        self.grants = grants;
    }

    /// Combined [`peek`](RoundRobin::peek) + pointer advance.
    pub fn grant(&mut self, requests: &[usize]) -> Option<usize> {
        let winner = self.peek(requests)?;
        self.advance_past(winner);
        Some(winner)
    }

    /// The current highest-priority line (checkpointing).
    pub fn pointer(&self) -> usize {
        self.pointer
    }

    /// Restores a previously saved pointer position.
    ///
    /// # Panics
    ///
    /// Panics if `pointer` is out of range.
    pub fn set_pointer(&mut self, pointer: usize) {
        assert!(pointer < self.n, "pointer {pointer} out of range");
        self.pointer = pointer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_requester_always_wins() {
        let mut arb = RoundRobin::new(4);
        for _ in 0..8 {
            assert_eq!(arb.grant(&[2]), Some(2));
        }
    }

    #[test]
    fn fair_rotation_under_full_load() {
        let mut arb = RoundRobin::new(3);
        let all = [0, 1, 2];
        let seq: Vec<usize> = (0..6).map(|_| arb.grant(&all).unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn pointer_wraps() {
        let mut arb = RoundRobin::new(4);
        arb.advance_past(3);
        assert_eq!(arb.peek(&[0, 3]), Some(0));
    }

    #[test]
    fn empty_requests_yield_none() {
        let mut arb = RoundRobin::new(2);
        assert_eq!(arb.grant(&[]), None);
    }

    #[test]
    fn no_starvation_under_asymmetric_load() {
        // Line 0 requests every cycle, line 1 every cycle too: each must win
        // exactly half the grants over any long window.
        let mut arb = RoundRobin::new(8);
        let mut wins = [0u32; 2];
        for _ in 0..100 {
            let w = arb.grant(&[0, 1]).unwrap();
            wins[w] += 1;
        }
        assert_eq!(wins[0], 50);
        assert_eq!(wins[1], 50);
    }

    #[test]
    fn grants_count_committed_transfers() {
        let mut arb = RoundRobin::new(4);
        assert_eq!(arb.grants(), 0);
        let _ = arb.peek(&[0, 1]); // peeking commits nothing
        assert_eq!(arb.grants(), 0);
        arb.grant(&[0, 1]);
        arb.advance_past(2);
        assert_eq!(arb.grants(), 2);
        arb.set_grants(9);
        assert_eq!(arb.grants(), 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_request_panics() {
        let arb = RoundRobin::new(2);
        let _ = arb.peek(&[5]);
    }
}
