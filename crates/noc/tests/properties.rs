//! Property tests for the interconnect substrate.

use mempool_noc::{ElasticBuffer, Fabric, Offer};
use proptest::prelude::*;

proptest! {
    /// An elastic buffer is a FIFO: any interleaving of pushes/pops/commits
    /// preserves order and never loses or duplicates items.
    #[test]
    fn elastic_buffer_is_fifo(ops in proptest::collection::vec(0u8..3, 1..200)) {
        let mut buf = ElasticBuffer::new(2);
        let mut reference: Vec<u32> = Vec::new();
        let mut next = 0u32;
        let mut popped = Vec::new();
        let mut ref_popped = Vec::new();
        for op in ops {
            match op {
                0 => {
                    if buf.can_push() {
                        buf.push(next);
                        reference.push(next);
                        next += 1;
                    }
                }
                1 => {
                    if let Some(v) = buf.pop() {
                        popped.push(v);
                        ref_popped.push(reference.remove(0));
                    }
                }
                _ => buf.commit(),
            }
        }
        prop_assert_eq!(popped, ref_popped);
    }

    /// Fabric conservation: over any random offered pattern, each committed
    /// packet lands on its own output port and no two committed packets
    /// share an output.
    #[test]
    fn fabric_grants_are_conflict_free(
        dests in proptest::collection::vec(0usize..64, 64),
        mask in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let mut net = Fabric::butterfly(64, 4).unwrap();
        let offers: Vec<Offer> = dests
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask[i])
            .map(|(input, &dest)| Offer { input, dest })
            .collect();
        let granted = net.resolve(&offers, &mut |_| true);
        let mut used = [false; 64];
        for (offer, &g) in offers.iter().zip(&granted) {
            if g {
                let port = net.output_port(offer.input, offer.dest);
                prop_assert_eq!(port, offer.dest);
                prop_assert!(!used[port], "two grants on output {}", port);
                used[port] = true;
            }
        }
    }

    /// Work conservation on a crossbar: if all offered destinations are
    /// distinct and ready, every offer commits (full crossbars are
    /// non-blocking).
    #[test]
    fn crossbar_is_non_blocking(perm in proptest::sample::subsequence((0..16usize).collect::<Vec<_>>(), 1..16)) {
        let mut xbar = Fabric::crossbar(16, 16).unwrap();
        let offers: Vec<Offer> = perm
            .iter()
            .enumerate()
            .map(|(input, &dest)| Offer { input, dest })
            .collect();
        let granted = xbar.resolve(&offers, &mut |_| true);
        prop_assert!(granted.iter().all(|&g| g));
    }

    /// At most one packet per contended destination commits per cycle, and
    /// at least one does when terminals are ready (the fabric never
    /// deadlocks an uncontended resource).
    #[test]
    fn contended_output_progress(n in 2usize..16) {
        let mut net = Fabric::butterfly(16, 4).unwrap();
        let offers: Vec<Offer> = (0..n).map(|input| Offer { input, dest: 7 }).collect();
        let granted = net.resolve(&offers, &mut |_| true);
        prop_assert_eq!(granted.iter().filter(|&&g| g).count(), 1);
    }

    /// Butterfly segments compose to the full network for random splits.
    #[test]
    fn butterfly_split_composes(split in 1usize..3, src in 0usize..64, dest in 0usize..64) {
        let seg_a = Fabric::butterfly_segment(64, 4, 0, split).unwrap();
        let seg_b = Fabric::butterfly_segment(64, 4, split, 3).unwrap();
        let full = Fabric::butterfly(64, 4).unwrap();
        let mid = seg_a.output_port(src, dest);
        prop_assert_eq!(seg_b.output_port(mid, dest), dest);
        prop_assert_eq!(full.output_port(src, dest), dest);
    }
}

/// Long-run fairness: every input contending for one hot output gets served
/// within a bounded number of cycles (round-robin, non-starving).
#[test]
fn hot_spot_fairness() {
    let mut net = Fabric::butterfly(16, 4).unwrap();
    let mut wins = [0u32; 16];
    // All inputs contend for output 3 every cycle.
    let offers: Vec<Offer> = (0..16).map(|input| Offer { input, dest: 3 }).collect();
    for _ in 0..160 {
        let granted = net.resolve(&offers, &mut |_| true);
        for (o, g) in offers.iter().zip(&granted) {
            if *g {
                wins[o.input] += 1;
            }
        }
    }
    // 160 grants over 16 inputs: round-robin at each layer gives each input
    // a bounded share; nobody is starved and nobody hogs.
    assert_eq!(wins.iter().sum::<u32>(), 160);
    for (input, &w) in wins.iter().enumerate() {
        assert!(w >= 5, "input {input} starved: {wins:?}");
        assert!(w <= 20, "input {input} hogged: {wins:?}");
    }
}

proptest! {
    /// Bounded wait: an input that keeps requesting the same destination is
    /// served within (number of contenders) grants of that output, no
    /// matter what the other inputs do — round-robin starvation freedom.
    #[test]
    fn fabric_bounded_wait(dests in proptest::collection::vec(0usize..16, 16)) {
        let mut net = Fabric::butterfly(16, 4).unwrap();
        // Input 0 persistently wants destination 5; others follow `dests`.
        let mut offers: Vec<Offer> = vec![Offer { input: 0, dest: 5 }];
        for (input, &dest) in dests.iter().enumerate().skip(1) {
            offers.push(Offer { input, dest });
        }
        let mut waited = 0;
        loop {
            let granted = net.resolve(&offers, &mut |_| true);
            if granted[0] {
                break;
            }
            waited += 1;
            prop_assert!(waited <= 32, "input 0 starved for {} cycles", waited);
        }
    }
}
