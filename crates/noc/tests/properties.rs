//! Property tests for the interconnect substrate, driven by a seeded PRNG
//! so every case is deterministic and replayable from its iteration index.

use mempool_noc::{ElasticBuffer, Fabric, Offer};
use mempool_rng::{Rng, SeedableRng, StdRng};

/// An elastic buffer is a FIFO: any interleaving of pushes/pops/commits
/// preserves order and never loses or duplicates items.
#[test]
fn elastic_buffer_is_fifo() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xe1a5_7100 ^ case);
        let mut buf = ElasticBuffer::new(2);
        let mut reference: Vec<u32> = Vec::new();
        let mut next = 0u32;
        let mut popped = Vec::new();
        let mut ref_popped = Vec::new();
        for _ in 0..rng.gen_range(1usize..200) {
            match rng.gen_range(0u8..3) {
                0 => {
                    if buf.can_push() {
                        buf.push(next);
                        reference.push(next);
                        next += 1;
                    }
                }
                1 => {
                    if let Some(v) = buf.pop() {
                        popped.push(v);
                        ref_popped.push(reference.remove(0));
                    }
                }
                _ => buf.commit(),
            }
        }
        assert_eq!(popped, ref_popped, "case {case}");
    }
}

/// Fabric conservation: over any random offered pattern, each committed
/// packet lands on its own output port and no two committed packets share
/// an output.
#[test]
fn fabric_grants_are_conflict_free() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xfab1_c000 ^ case);
        let mut net = Fabric::butterfly(64, 4).unwrap();
        let mut offers: Vec<Offer> = Vec::new();
        for input in 0..64 {
            if rng.gen::<bool>() {
                offers.push(Offer {
                    input,
                    dest: rng.gen_range(0usize..64),
                });
            }
        }
        let granted = net.resolve(&offers, &mut |_| true);
        let mut used = [false; 64];
        for (offer, &g) in offers.iter().zip(&granted) {
            if g {
                let port = net.output_port(offer.input, offer.dest);
                assert_eq!(port, offer.dest, "case {case}");
                assert!(!used[port], "case {case}: two grants on output {port}");
                used[port] = true;
            }
        }
    }
}

/// Work conservation on a crossbar: if all offered destinations are
/// distinct and ready, every offer commits (full crossbars are
/// non-blocking).
#[test]
fn crossbar_is_non_blocking() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xc105_5ba2 ^ case);
        // Random subsequence of the destinations 0..16, offered in order
        // from consecutive inputs: all distinct by construction.
        let perm: Vec<usize> = (0..16usize).filter(|_| rng.gen::<bool>()).collect();
        if perm.is_empty() {
            continue;
        }
        let mut xbar = Fabric::crossbar(16, 16).unwrap();
        let offers: Vec<Offer> = perm
            .iter()
            .enumerate()
            .map(|(input, &dest)| Offer { input, dest })
            .collect();
        let granted = xbar.resolve(&offers, &mut |_| true);
        assert!(granted.iter().all(|&g| g), "case {case}");
    }
}

/// At most one packet per contended destination commits per cycle, and at
/// least one does when terminals are ready (the fabric never deadlocks an
/// uncontended resource).
#[test]
fn contended_output_progress() {
    for n in 2usize..16 {
        let mut net = Fabric::butterfly(16, 4).unwrap();
        let offers: Vec<Offer> = (0..n).map(|input| Offer { input, dest: 7 }).collect();
        let granted = net.resolve(&offers, &mut |_| true);
        assert_eq!(granted.iter().filter(|&&g| g).count(), 1, "{n} contenders");
    }
}

/// Butterfly segments compose to the full network for random splits.
#[test]
fn butterfly_split_composes() {
    let mut rng = StdRng::seed_from_u64(0x5e99_9e57);
    for case in 0..128 {
        let split = rng.gen_range(1usize..3);
        let src = rng.gen_range(0usize..64);
        let dest = rng.gen_range(0usize..64);
        let seg_a = Fabric::butterfly_segment(64, 4, 0, split).unwrap();
        let seg_b = Fabric::butterfly_segment(64, 4, split, 3).unwrap();
        let full = Fabric::butterfly(64, 4).unwrap();
        let mid = seg_a.output_port(src, dest);
        assert_eq!(seg_b.output_port(mid, dest), dest, "case {case}");
        assert_eq!(full.output_port(src, dest), dest, "case {case}");
    }
}

/// Long-run fairness: every input contending for one hot output gets served
/// within a bounded number of cycles (round-robin, non-starving).
#[test]
fn hot_spot_fairness() {
    let mut net = Fabric::butterfly(16, 4).unwrap();
    let mut wins = [0u32; 16];
    // All inputs contend for output 3 every cycle.
    let offers: Vec<Offer> = (0..16).map(|input| Offer { input, dest: 3 }).collect();
    for _ in 0..160 {
        let granted = net.resolve(&offers, &mut |_| true);
        for (o, g) in offers.iter().zip(&granted) {
            if *g {
                wins[o.input] += 1;
            }
        }
    }
    // 160 grants over 16 inputs: round-robin at each layer gives each input
    // a bounded share; nobody is starved and nobody hogs.
    assert_eq!(wins.iter().sum::<u32>(), 160);
    for (input, &w) in wins.iter().enumerate() {
        assert!(w >= 5, "input {input} starved: {wins:?}");
        assert!(w <= 20, "input {input} hogged: {wins:?}");
    }
}

/// Bounded wait: an input that keeps requesting the same destination is
/// served within (number of contenders) grants of that output, no matter
/// what the other inputs do — round-robin starvation freedom.
#[test]
fn fabric_bounded_wait() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xb0b0_0000 ^ case);
        let mut net = Fabric::butterfly(16, 4).unwrap();
        // Input 0 persistently wants destination 5; others are random.
        let mut offers: Vec<Offer> = vec![Offer { input: 0, dest: 5 }];
        for input in 1..16 {
            offers.push(Offer {
                input,
                dest: rng.gen_range(0usize..16),
            });
        }
        let mut waited = 0;
        loop {
            let granted = net.resolve(&offers, &mut |_| true);
            if granted[0] {
                break;
            }
            waited += 1;
            assert!(
                waited <= 32,
                "case {case}: input 0 starved for {waited} cycles"
            );
        }
    }
}
