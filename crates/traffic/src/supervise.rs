//! Shared process-supervision primitives: failure classification, seeded
//! retry/backoff policy, the flat JSON-line codec every worker protocol in
//! the suite speaks, and the opaque cluster-config spec exchanged between
//! supervisors and workers.
//!
//! The campaign [`Executor`](crate::Executor) introduced these pieces for
//! crash-isolated fault campaigns; `mempool-serve` reuses them to supervise
//! arbitrary run/bench/campaign jobs. They live here — below both — so the
//! two supervisors classify, back off, and quarantine identically.

use mempool::{ClusterConfig, Topology};
use mempool_rng::{Rng, SeedableRng, StdRng};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// How a supervised attempt failed, in the classification the executor
/// contract names: `panic|signal|timeout|oom|exit`, plus the sanitizer
/// class the campaign layer adds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The job (or its worker process) panicked.
    Panic,
    /// The worker process died on a signal other than `SIGKILL`.
    Signal(i32),
    /// The wall-clock deadline or sim-cycle budget tripped.
    Timeout,
    /// The worker process was `SIGKILL`ed without the supervisor asking —
    /// the kernel OOM killer's signature (or an outside `kill -9`).
    Oom,
    /// The worker process exited with a nonzero code.
    Exit(i32),
    /// The invariant sanitizer recorded violations during the job.
    Sanitizer,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panic => write!(f, "panic"),
            FailureKind::Signal(sig) => write!(f, "signal({sig})"),
            FailureKind::Timeout => write!(f, "timeout"),
            FailureKind::Oom => write!(f, "oom"),
            FailureKind::Exit(code) => write!(f, "exit({code})"),
            FailureKind::Sanitizer => write!(f, "sanitizer"),
        }
    }
}

/// One failed attempt of a supervised job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFailure {
    /// 1-based attempt number that failed.
    pub attempt: u32,
    /// The failure classification.
    pub kind: FailureKind,
    /// Human-readable detail (panic message, signal, cancel cause, ...).
    pub detail: String,
}

/// The seeded retry policy every supervisor in the suite applies: capped
/// exponential backoff with deterministic jitter, an attempt budget, and
/// the repeat-failure give-up rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per job before giving up (minimum 1, default 3).
    pub max_attempts: u32,
    /// Base of the exponential backoff between attempts, in milliseconds
    /// (`0` disables backoff entirely — used by tests).
    pub backoff_base_ms: u64,
    /// Upper bound of the exponential backoff, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed of the backoff jitter (deterministic per `(seed, attempt)`).
    pub backoff_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            backoff_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Seeded exponential backoff with jitter: `base * 2^(attempt-1)`
    /// capped at `backoff_cap_ms`, plus a jitter draw in `[0, base)` from
    /// a stream determined by `(backoff_seed, seed, attempt)`.
    pub fn delay(&self, seed: u64, attempt: u32) -> Duration {
        let base = self.backoff_base_ms;
        if base == 0 {
            return Duration::ZERO;
        }
        let shift = u64::from(attempt.saturating_sub(1)).min(16);
        let exp = base.saturating_mul(1u64 << shift);
        let capped = exp.min(self.backoff_cap_ms.max(base));
        let mut rng = StdRng::seed_from_u64(
            self.backoff_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ seed.rotate_left(17)
                ^ u64::from(attempt),
        );
        Duration::from_millis(capped + rng.gen_range(0..base))
    }

    /// Give up once the attempt budget is spent, or as soon as the same
    /// failure repeats — two consecutive identical failures mean the
    /// problem is deterministic and further retries are wasted work.
    pub fn give_up(&self, failures: &[TrialFailure]) -> bool {
        if failures.len() >= self.max_attempts.max(1) as usize {
            return true;
        }
        match failures {
            [.., a, b] => a.kind == b.kind && a.detail == b.detail,
            _ => false,
        }
    }
}

/// Classifies a worker process exit per the `panic|signal|timeout|oom|exit`
/// contract. `SIGKILL` without the supervisor having asked for it is the
/// OOM killer's signature (or an outside `kill -9`) — either way the work
/// is recoverable from the job checkpoint, so the classification only
/// matters for reporting and give-up matching.
pub fn classify_exit(
    status: std::process::ExitStatus,
    killed_for_deadline: bool,
) -> (FailureKind, String) {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            if killed_for_deadline {
                return (
                    FailureKind::Timeout,
                    "deadline exceeded (worker killed)".to_owned(),
                );
            }
            if sig == 9 {
                return (FailureKind::Oom, "worker SIGKILLed (possible OOM)".to_owned());
            }
            return (
                FailureKind::Signal(sig),
                format!("worker terminated by signal {sig}"),
            );
        }
    }
    match status.code() {
        // 101 is the Rust runtime's panic exit code.
        Some(101) => (FailureKind::Panic, "worker panicked".to_owned()),
        Some(code) => (
            FailureKind::Exit(code),
            format!("worker exited with code {code}"),
        ),
        None => (
            FailureKind::Signal(0),
            "worker ended without an exit code".to_owned(),
        ),
    }
}

// ---------------------------------------------------------------------------
// Flat JSON-line codec.
// ---------------------------------------------------------------------------

/// Escapes a string for embedding in a flat JSON line.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`json_escape`]; `None` on a malformed escape.
pub fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Parses a flat JSON object (string / number / bool / null values only)
/// into raw `key -> value` pairs; string values are unescaped, everything
/// else kept as its bare token.
pub fn parse_flat_json(s: &str) -> Option<BTreeMap<String, String>> {
    let s = s.trim();
    let body = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = BTreeMap::new();
    let mut rest = body.trim_start();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let key_end = rest.find('"')?;
        let key = rest[..key_end].to_owned();
        rest = rest[key_end + 1..].trim_start().strip_prefix(':')?.trim_start();
        let value;
        if let Some(after) = rest.strip_prefix('"') {
            // A string value: scan for the first unescaped quote.
            let mut end = None;
            let mut escaped = false;
            for (i, c) in after.char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end = end?;
            value = json_unescape(&after[..end])?;
            rest = after[end + 1..].trim_start();
        } else {
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            value = rest[..end].trim().to_owned();
            rest = &rest[end..];
        }
        fields.insert(key, value);
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else {
            break;
        }
    }
    Some(fields)
}

// ---------------------------------------------------------------------------
// The opaque cluster-config spec.
// ---------------------------------------------------------------------------

/// Renders the supervisor-relevant cluster configuration as the opaque
/// `config_spec` a worker receives ([`parse_config_spec`] reverses it).
pub fn render_config_spec(topology: Topology, small: bool, scramble: bool) -> String {
    format!("topology={topology},small={small},scramble={scramble}")
}

/// Parses [`render_config_spec`]'s output back into a [`ClusterConfig`]
/// with the standard resilience layer attached (workers must be able to
/// absorb injected faults; a fault-free job simply never exercises it).
///
/// # Errors
///
/// A description of the first malformed entry.
pub fn parse_config_spec(spec: &str) -> Result<ClusterConfig, String> {
    let mut topology = None;
    let mut small = false;
    let mut scramble = true;
    for part in spec.split(',') {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("bad config spec entry `{part}`"))?;
        match key {
            "topology" => {
                topology = Some(match value {
                    "ideal" => Topology::Ideal,
                    "top1" => Topology::Top1,
                    "top4" => Topology::Top4,
                    "topH" | "toph" => Topology::TopH,
                    other => return Err(format!("bad topology `{other}`")),
                })
            }
            "small" => small = value == "true",
            "scramble" => scramble = value == "true",
            other => return Err(format!("unknown config spec key `{other}`")),
        }
    }
    let topology = topology.ok_or_else(|| "config spec lacks a topology".to_owned())?;
    let mut config = if small {
        ClusterConfig::small(topology)
    } else {
        ClusterConfig::paper(topology)
    };
    if !scramble {
        config.seq_region_bytes = None;
    }
    config.resilience = mempool::ResilienceConfig::standard();
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_spec_round_trips() {
        for topology in [Topology::Ideal, Topology::Top1, Topology::Top4, Topology::TopH] {
            for small in [false, true] {
                for scramble in [false, true] {
                    let spec = render_config_spec(topology, small, scramble);
                    let config = parse_config_spec(&spec).expect("spec parses");
                    assert_eq!(config.topology, topology, "{spec}");
                    assert_eq!(config.seq_region_bytes.is_some(), scramble, "{spec}");
                }
            }
        }
        assert!(parse_config_spec("small=true").is_err(), "topology required");
        assert!(parse_config_spec("topology=weird").is_err());
        assert!(parse_config_spec("nonsense").is_err());
    }

    #[test]
    fn retry_policy_backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            backoff_base_ms: 50,
            backoff_cap_ms: 300,
            ..RetryPolicy::default()
        };
        let a = policy.delay(7, 1);
        assert_eq!(a, policy.delay(7, 1), "same (seed, attempt) -> same delay");
        assert!(a >= Duration::from_millis(50) && a < Duration::from_millis(100));
        let late = policy.delay(7, 10);
        assert!(late >= Duration::from_millis(300) && late < Duration::from_millis(350));
        let off = RetryPolicy {
            backoff_base_ms: 0,
            ..policy
        };
        assert_eq!(off.delay(7, 3), Duration::ZERO);
    }

    #[test]
    fn flat_json_rejects_malformed_documents() {
        assert!(parse_flat_json("{\"a\":1}").is_some());
        assert!(parse_flat_json("not json").is_none());
        assert!(parse_flat_json("{\"a\":\"unterminated}").is_none());
        assert!(parse_flat_json("{\"a\"}").is_none());
        let fields = parse_flat_json("{\"s\":\"a\\\"b\",\"n\":3,\"b\":true,\"z\":null}")
            .expect("parses");
        assert_eq!(fields["s"], "a\"b");
        assert_eq!(fields["n"], "3");
        assert_eq!(fields["b"], "true");
        assert_eq!(fields["z"], "null");
    }
}
