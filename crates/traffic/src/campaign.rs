//! Fault-injection campaigns: sweep one [`FaultSpec`] over many seeds and
//! classify how the cluster degrades.
//!
//! A campaign is the statistical complement of a single fault run: one
//! seed shows *a* failure, a campaign measures *how often* the cluster
//! completes, deadlocks, or times out under a given fault intensity, and
//! what the resilience layer (retries, quarantine, watchdog) absorbed
//! along the way. Every trial is driven by synthetic Poisson traffic (the
//! same generators as the §V-A experiments) and is fully determined by
//! `base_seed + trial index`, so a campaign line is replayable.

use crate::{AddressSpace, Pattern, TrafficGen, Windows};
use mempool::{
    Cluster, ClusterConfig, FaultPlan, FaultSpec, FaultStats, SimError, ValidateConfigError,
};

/// Parameters of one fault-injection campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Offered load per core (requests/core/cycle) of the driving traffic.
    pub load: f64,
    /// Destination pattern of the driving traffic.
    pub pattern: Pattern,
    /// Warmup/measure/drain windows of each trial.
    pub windows: Windows,
    /// The fault intensity under test.
    pub spec: FaultSpec,
    /// Number of independent trials (fault seeds).
    pub trials: u32,
    /// Seed of the first trial; trial `i` uses `base_seed + i` for both the
    /// traffic and the fault plan.
    pub base_seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            load: 0.05,
            pattern: Pattern::Uniform,
            windows: Windows::default(),
            spec: FaultSpec::default(),
            trials: 8,
            base_seed: 0,
        }
    }
}

/// How one campaign trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// All traffic drained within the drain budget.
    Completed {
        /// Cycles the drain phase took.
        drain_cycles: u64,
    },
    /// The watchdog detected a deadlock in the memory system.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
    },
    /// The drain budget expired with traffic still in flight.
    Timeout,
}

/// One trial of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// The seed driving this trial's traffic and faults.
    pub seed: u64,
    /// How the trial ended.
    pub outcome: TrialOutcome,
    /// Fault and resilience counters of the trial.
    pub faults: FaultStats,
    /// Banks quarantined by the end of the trial.
    pub quarantined_banks: usize,
    /// Responses delivered over the whole trial.
    pub delivered: u64,
}

/// Aggregated result of a fault-injection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The fault intensity that was swept.
    pub spec: FaultSpec,
    /// Every trial, in seed order.
    pub trials: Vec<Trial>,
}

impl CampaignReport {
    /// Fraction of trials that completed (drained all traffic).
    pub fn completion_rate(&self) -> f64 {
        if self.trials.is_empty() {
            return 1.0;
        }
        let done = self
            .trials
            .iter()
            .filter(|t| matches!(t.outcome, TrialOutcome::Completed { .. }))
            .count();
        done as f64 / self.trials.len() as f64
    }

    /// Number of trials the watchdog ended with a deadlock report.
    pub fn deadlocks(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| matches!(t.outcome, TrialOutcome::Deadlock { .. }))
            .count()
    }

    /// Fault and resilience counters summed over all trials.
    pub fn total_faults(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for t in &self.trials {
            total.merge(&t.faults);
        }
        total
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let total = self.total_faults();
        format!(
            "spec [{}]: {}/{} trials completed ({} deadlocked), {} faults injected, \
             {} retries, {} abandoned, {} banks quarantined",
            self.spec,
            self.trials.len() - self.deadlocks()
                - self
                    .trials
                    .iter()
                    .filter(|t| t.outcome == TrialOutcome::Timeout)
                    .count(),
            self.trials.len(),
            self.deadlocks(),
            total.total_injected(),
            total.request_retries,
            total.requests_abandoned,
            total.banks_quarantined,
        )
    }
}

/// Runs one fault-injection trial: a traffic-driven cluster with the fault
/// plan `FaultPlan::new(seed, spec)` installed, warmed up, measured, and
/// drained.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn run_trial(
    mut config: ClusterConfig,
    campaign: &CampaignConfig,
    seed: u64,
) -> Result<Trial, ValidateConfigError> {
    // Campaigns need the resilience layer: without retries a single dropped
    // flit is a guaranteed hang, and without the watchdog a deadlock burns
    // the whole drain budget.
    config.resilience = mempool::ResilienceConfig::standard();
    let map = config.address_map()?;
    let scrambler = config.scrambler()?;
    let l1_bytes = map.size_bytes() as u32;
    let load = campaign.load;
    let pattern = campaign.pattern;
    let mut cluster = Cluster::new(config, |loc| {
        let (seq_base, seq_bytes, seq_total) = match scrambler {
            Some(s) => (
                s.seq_base(loc.tile as u32),
                s.seq_bytes_per_tile(),
                s.seq_region_bytes() as u32,
            ),
            None => (0, 0, 0),
        };
        TrafficGen::new(
            load,
            pattern,
            AddressSpace {
                l1_bytes,
                seq_base,
                seq_bytes,
                seq_total,
                tile: loc.tile as u32,
                num_tiles: config.num_tiles as u32,
                banks_per_tile: config.banks_per_tile as u32,
            },
            64,
            seed.wrapping_mul(0x9e37_79b9).wrapping_add(loc.core as u64),
        )
    })?;
    cluster.set_fault_plan(Some(FaultPlan::new(seed, campaign.spec)));

    cluster.step_cycles(campaign.windows.warmup + campaign.windows.measure);
    for gen in cluster.cores_mut() {
        gen.stop();
    }
    let drain_start = cluster.now();
    let outcome = match cluster.run(campaign.windows.drain) {
        Ok(_) => TrialOutcome::Completed {
            drain_cycles: cluster.now() - drain_start,
        },
        Err(SimError::Deadlock(d)) => TrialOutcome::Deadlock { cycle: d.cycle },
        Err(SimError::Timeout(_)) => TrialOutcome::Timeout,
    };
    Ok(Trial {
        seed,
        outcome,
        faults: cluster.stats().faults,
        quarantined_banks: cluster.quarantined_banks(),
        delivered: cluster.stats().responses_delivered,
    })
}

/// Runs a whole campaign: [`CampaignConfig::trials`] independent trials
/// with consecutive seeds, in seed order.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn run_campaign(
    config: ClusterConfig,
    campaign: &CampaignConfig,
) -> Result<CampaignReport, ValidateConfigError> {
    let mut trials = Vec::with_capacity(campaign.trials as usize);
    for i in 0..campaign.trials {
        trials.push(run_trial(config, campaign, campaign.base_seed + u64::from(i))?);
    }
    Ok(CampaignReport {
        spec: campaign.spec,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool::Topology;

    fn small_windows() -> Windows {
        Windows {
            warmup: 100,
            measure: 400,
            drain: 50_000,
        }
    }

    #[test]
    fn fault_free_campaign_always_completes() {
        let campaign = CampaignConfig {
            windows: small_windows(),
            trials: 2,
            base_seed: 7,
            ..CampaignConfig::default()
        };
        let report =
            run_campaign(ClusterConfig::small(Topology::TopH), &campaign).expect("valid config");
        assert_eq!(report.completion_rate(), 1.0);
        assert_eq!(report.total_faults().total_injected(), 0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let campaign = CampaignConfig {
            spec: "bank_fail=2,link_drop=0.001,core_lockup=0.0005"
                .parse()
                .expect("valid spec"),
            windows: small_windows(),
            trials: 2,
            base_seed: 42,
            ..CampaignConfig::default()
        };
        let config = ClusterConfig::small(Topology::Top1);
        let a = run_campaign(config, &campaign).expect("valid config");
        let b = run_campaign(config, &campaign).expect("valid config");
        assert_eq!(a, b, "same seeds must reproduce the identical report");
        assert!(a.total_faults().total_injected() > 0, "{}", a.summary());
    }

    #[test]
    fn campaign_counts_resilience_actions_under_heavy_drops() {
        let campaign = CampaignConfig {
            spec: "link_drop=0.02".parse().expect("valid spec"),
            windows: small_windows(),
            trials: 1,
            base_seed: 3,
            ..CampaignConfig::default()
        };
        let report =
            run_campaign(ClusterConfig::small(Topology::Top1), &campaign).expect("valid config");
        let total = report.total_faults();
        assert!(total.link_drops > 0, "{}", report.summary());
    }
}
