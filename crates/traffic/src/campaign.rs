//! Fault-injection campaigns: sweep one [`FaultSpec`] over many seeds and
//! classify how the cluster degrades.
//!
//! A campaign is the statistical complement of a single fault run: one
//! seed shows *a* failure, a campaign measures *how often* the cluster
//! completes, deadlocks, or times out under a given fault intensity, and
//! what the resilience layer (retries, quarantine, watchdog) absorbed
//! along the way. Every trial is driven by synthetic Poisson traffic (the
//! same generators as the §V-A experiments) and is fully determined by
//! `base_seed + trial index`, so a campaign line is replayable.

use crate::{AddressSpace, Pattern, TrafficGen, Windows};
use mempool::snapshot::fnv64;
use mempool::{
    CancelCause, CancelToken, Cluster, ClusterConfig, ClusterSnapshot, FaultPlan, FaultSpec,
    FaultStats, SanitizerConfig, SimError, ValidateConfigError,
};
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

/// Parameters of one fault-injection campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Offered load per core (requests/core/cycle) of the driving traffic.
    pub load: f64,
    /// Destination pattern of the driving traffic.
    pub pattern: Pattern,
    /// Warmup/measure/drain windows of each trial.
    pub windows: Windows,
    /// The fault intensity under test.
    pub spec: FaultSpec,
    /// Number of independent trials (fault seeds).
    pub trials: u32,
    /// Seed of the first trial; trial `i` uses `base_seed + i` for both the
    /// traffic and the fault plan.
    pub base_seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            load: 0.05,
            pattern: Pattern::Uniform,
            windows: Windows::default(),
            spec: FaultSpec::default(),
            trials: 8,
            base_seed: 0,
        }
    }
}

/// How one campaign trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// All traffic drained within the drain budget.
    Completed {
        /// Cycles the drain phase took.
        drain_cycles: u64,
    },
    /// The watchdog detected a deadlock in the memory system.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
    },
    /// The drain budget expired with traffic still in flight.
    Timeout,
    /// The executor gave up on this trial after repeated failures and
    /// quarantined it with partial results (see
    /// [`Executor`](crate::exec::Executor)).
    Quarantined {
        /// Attempts the executor made before giving up.
        attempts: u64,
    },
}

/// One trial of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// The seed driving this trial's traffic and faults.
    pub seed: u64,
    /// How the trial ended.
    pub outcome: TrialOutcome,
    /// Fault and resilience counters of the trial.
    pub faults: FaultStats,
    /// Banks quarantined by the end of the trial.
    pub quarantined_banks: usize,
    /// Responses delivered over the whole trial.
    pub delivered: u64,
    /// The cluster's state digest at trial end (`0` for quarantined trials,
    /// which never reach a final state). Recorded in the manifest so
    /// interrupted-and-resumed campaigns can be compared bit-for-bit
    /// against uninterrupted ones.
    pub digest: u64,
}

impl Trial {
    /// A placeholder trial entry for a seed the executor quarantined:
    /// partial results only (no final state, no digest).
    pub fn quarantined(seed: u64, attempts: u64) -> Trial {
        Trial {
            seed,
            outcome: TrialOutcome::Quarantined { attempts },
            faults: FaultStats::default(),
            quarantined_banks: 0,
            delivered: 0,
            digest: 0,
        }
    }
}

/// Aggregated result of a fault-injection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The fault intensity that was swept.
    pub spec: FaultSpec,
    /// Every trial, in seed order.
    pub trials: Vec<Trial>,
}

impl CampaignReport {
    /// Fraction of trials that completed (drained all traffic).
    pub fn completion_rate(&self) -> f64 {
        if self.trials.is_empty() {
            return 1.0;
        }
        let done = self
            .trials
            .iter()
            .filter(|t| matches!(t.outcome, TrialOutcome::Completed { .. }))
            .count();
        done as f64 / self.trials.len() as f64
    }

    /// Number of trials the watchdog ended with a deadlock report.
    pub fn deadlocks(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| matches!(t.outcome, TrialOutcome::Deadlock { .. }))
            .count()
    }

    /// Number of trials the executor quarantined after repeated failures.
    pub fn quarantined(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| matches!(t.outcome, TrialOutcome::Quarantined { .. }))
            .count()
    }

    /// Fault and resilience counters summed over all trials.
    pub fn total_faults(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for t in &self.trials {
            total.merge(&t.faults);
        }
        total
    }

    /// Renders the report as deterministic, byte-stable JSON: two runs
    /// that produced identical trial results render identical bytes, no
    /// matter how many retries, interruptions, or resumes either run went
    /// through. The crash-isolation acceptance test diffs these bytes.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"mempool-campaign-report-v1\",\n");
        let _ = writeln!(out, "  \"spec\": \"{}\",", self.spec);
        let _ = writeln!(out, "  \"trials\": {},", self.trials.len());
        let _ = writeln!(out, "  \"completion_rate\": {:.6},", self.completion_rate());
        let _ = writeln!(out, "  \"deadlocks\": {},", self.deadlocks());
        let _ = writeln!(out, "  \"quarantined\": {},", self.quarantined());
        out.push_str("  \"trial_lines\": [\n");
        for (i, t) in self.trials.iter().enumerate() {
            let comma = if i + 1 == self.trials.len() { "" } else { "," };
            let _ = writeln!(out, "    \"{}\"{comma}", format_trial_line(t));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let total = self.total_faults();
        let completed = self
            .trials
            .iter()
            .filter(|t| matches!(t.outcome, TrialOutcome::Completed { .. }))
            .count();
        format!(
            "spec [{}]: {}/{} trials completed ({} deadlocked, {} quarantined), \
             {} faults injected, {} retries, {} abandoned, {} banks quarantined",
            self.spec,
            completed,
            self.trials.len(),
            self.deadlocks(),
            self.quarantined(),
            total.total_injected(),
            total.request_retries,
            total.requests_abandoned,
            total.banks_quarantined,
        )
    }
}

/// Builds the traffic-driven cluster one campaign trial runs: Poisson
/// generators at the campaign's load and pattern on every core, the
/// standard resilience layer, and `FaultPlan::new(seed, spec)` installed.
///
/// Exposed so checkpoint tooling and tests can reconstruct a trial's exact
/// starting state (e.g. to restore a snapshot into it, or to bisect a
/// divergent trial).
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn trial_cluster(
    mut config: ClusterConfig,
    campaign: &CampaignConfig,
    seed: u64,
) -> Result<Cluster<TrafficGen>, ValidateConfigError> {
    // Campaigns need the resilience layer: without retries a single dropped
    // flit is a guaranteed hang, and without the watchdog a deadlock burns
    // the whole drain budget.
    config.resilience = mempool::ResilienceConfig::standard();
    let map = config.address_map()?;
    let scrambler = config.scrambler()?;
    let l1_bytes = map.size_bytes() as u32;
    let load = campaign.load;
    let pattern = campaign.pattern;
    let mut cluster = Cluster::new(config, |loc| {
        let (seq_base, seq_bytes, seq_total) = match scrambler {
            Some(s) => (
                s.seq_base(loc.tile as u32),
                s.seq_bytes_per_tile(),
                s.seq_region_bytes() as u32,
            ),
            None => (0, 0, 0),
        };
        TrafficGen::new(
            load,
            pattern,
            AddressSpace {
                l1_bytes,
                seq_base,
                seq_bytes,
                seq_total,
                tile: loc.tile as u32,
                num_tiles: config.num_tiles as u32,
                banks_per_tile: config.banks_per_tile as u32,
            },
            64,
            seed.wrapping_mul(0x9e37_79b9).wrapping_add(loc.core as u64),
        )
    })?;
    cluster.install_fault_plan(Some(FaultPlan::new(seed, campaign.spec)));
    Ok(cluster)
}

/// Runs one fault-injection trial: a traffic-driven cluster with the fault
/// plan `FaultPlan::new(seed, spec)` installed, warmed up, measured, and
/// drained.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn run_trial(
    config: ClusterConfig,
    campaign: &CampaignConfig,
    seed: u64,
) -> Result<Trial, ValidateConfigError> {
    let mut cluster = trial_cluster(config, campaign, seed)?;
    cluster.step_cycles(campaign.windows.warmup + campaign.windows.measure);
    for gen in cluster.cores_mut() {
        gen.stop();
    }
    let drain_start = cluster.now();
    let outcome = match cluster.run(campaign.windows.drain) {
        Ok(_) => TrialOutcome::Completed {
            drain_cycles: cluster.now() - drain_start,
        },
        Err(SimError::Deadlock(d)) => TrialOutcome::Deadlock { cycle: d.cycle },
        Err(SimError::Timeout(_)) => TrialOutcome::Timeout,
        // No cancellation token is ever installed on this cluster.
        Err(SimError::Cancelled(c)) => unreachable!("unsupervised trial cancelled: {c}"),
    };
    Ok(finish_trial(&cluster, seed, outcome))
}

/// Collects a finished trial's counters and state digest off its cluster.
fn finish_trial(cluster: &Cluster<TrafficGen>, seed: u64, outcome: TrialOutcome) -> Trial {
    Trial {
        seed,
        outcome,
        faults: cluster.stats().faults,
        quarantined_banks: cluster.quarantined_banks(),
        delivered: cluster.stats().responses_delivered,
        digest: cluster.state_digest(),
    }
}

/// Runs a whole campaign: [`CampaignConfig::trials`] independent trials
/// with consecutive seeds, in seed order.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn run_campaign(
    config: ClusterConfig,
    campaign: &CampaignConfig,
) -> Result<CampaignReport, ValidateConfigError> {
    let mut trials = Vec::with_capacity(campaign.trials as usize);
    for i in 0..campaign.trials {
        trials.push(run_trial(config, campaign, campaign.base_seed + u64::from(i))?);
    }
    Ok(CampaignReport {
        spec: campaign.spec,
        trials,
    })
}

/// Error raised by the resumable campaign runner.
#[derive(Debug)]
pub enum CampaignError {
    /// The cluster configuration failed validation.
    Config(ValidateConfigError),
    /// A manifest or checkpoint file could not be read or written.
    Io(io::Error),
    /// The manifest belongs to a different campaign (config, spec, windows,
    /// load, pattern, or seeds differ).
    ManifestMismatch,
    /// The manifest is structurally invalid beyond a truncated final line.
    ManifestCorrupt(&'static str),
    /// The trial checkpoint does not belong to the trial being resumed.
    CheckpointMismatch,
    /// The trial checkpoint file is structurally invalid (truncated, bad
    /// magic, or a corrupt embedded snapshot).
    CheckpointCorrupt(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Config(e) => write!(f, "invalid cluster configuration: {e}"),
            CampaignError::Io(e) => write!(f, "campaign i/o error: {e}"),
            CampaignError::ManifestMismatch => {
                write!(f, "manifest belongs to a different campaign")
            }
            CampaignError::ManifestCorrupt(what) => write!(f, "corrupt manifest: {what}"),
            CampaignError::CheckpointMismatch => {
                write!(f, "checkpoint belongs to a different trial")
            }
            CampaignError::CheckpointCorrupt(what) => {
                write!(f, "corrupt trial checkpoint: {what}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ValidateConfigError> for CampaignError {
    fn from(e: ValidateConfigError) -> Self {
        CampaignError::Config(e)
    }
}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// Which window of a trial a checkpoint was taken in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialPhase {
    /// Warmup or measurement: generators still producing traffic.
    Generate,
    /// Drain: generators stopped, outstanding traffic flushing out.
    Drain {
        /// Cycle at which the drain window began.
        drain_start: u64,
    },
}

/// A mid-trial checkpoint: the trial's seed and phase plus a full cluster
/// snapshot, written atomically so a kill mid-trial loses at most one
/// checkpoint interval of work.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialCheckpoint {
    /// The seed of the trial being checkpointed.
    pub seed: u64,
    /// Which trial window the snapshot was taken in.
    pub phase: TrialPhase,
    /// The cluster state at the checkpoint.
    pub snapshot: ClusterSnapshot,
}

/// Trial checkpoint file magic: `"MPCK"` little-endian.
const CKPT_MAGIC: u32 = 0x4d50_434b;

impl TrialCheckpoint {
    /// Writes the checkpoint to `path` atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Any underlying I/O error.
    pub fn write_file(&self, path: &Path) -> io::Result<()> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        match self.phase {
            TrialPhase::Generate => {
                bytes.push(0);
                bytes.extend_from_slice(&0u64.to_le_bytes());
            }
            TrialPhase::Drain { drain_start } => {
                bytes.push(1);
                bytes.extend_from_slice(&drain_start.to_le_bytes());
            }
        }
        bytes.extend_from_slice(self.snapshot.as_bytes());
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)
    }

    /// Reads and validates a checkpoint from `path` (the embedded snapshot
    /// is digest-checked).
    ///
    /// # Errors
    ///
    /// I/O errors; invalid contents map to [`io::ErrorKind::InvalidData`].
    pub fn read_file(path: &Path) -> io::Result<TrialCheckpoint> {
        let bytes = std::fs::read(path)?;
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_owned());
        if bytes.len() < 21 {
            return Err(bad("truncated trial checkpoint"));
        }
        if u32::from_le_bytes(bytes[0..4].try_into().expect("length 4")) != CKPT_MAGIC {
            return Err(bad("not a trial checkpoint (bad magic)"));
        }
        let seed = u64::from_le_bytes(bytes[4..12].try_into().expect("length 8"));
        let drain_start = u64::from_le_bytes(bytes[13..21].try_into().expect("length 8"));
        let phase = match bytes[12] {
            0 => TrialPhase::Generate,
            1 => TrialPhase::Drain { drain_start },
            _ => return Err(bad("unknown trial phase")),
        };
        let snapshot = ClusterSnapshot::from_bytes(&bytes[21..])
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(TrialCheckpoint {
            seed,
            phase,
            snapshot,
        })
    }
}

/// Runs one trial with periodic checkpoints every `every` cycles, resuming
/// from `checkpoint` when a valid one for this `seed` is already on disk.
/// The checkpoint file is deleted once the trial completes, so a file left
/// behind always marks an interrupted trial. The result is bit-identical to
/// [`run_trial`] regardless of where (or whether) the trial was interrupted.
///
/// `every == 0` disables mid-trial checkpointing (the file is still
/// consumed if present from an earlier interrupted run).
///
/// # Errors
///
/// Configuration and I/O errors, and [`CampaignError::CheckpointMismatch`]
/// when the on-disk checkpoint belongs to a different trial.
pub fn run_trial_checkpointed(
    config: ClusterConfig,
    campaign: &CampaignConfig,
    seed: u64,
    checkpoint: &Path,
    every: u64,
) -> Result<Trial, CampaignError> {
    match run_trial_supervised(
        config,
        campaign,
        seed,
        checkpoint,
        every,
        TrialSupervision::default(),
    )? {
        Ok(trial) => Ok(trial),
        // With no token, interrupt flag, or sanitizer attached, a trial
        // can only finish — it has nothing to be stopped by.
        Err(stop) => unreachable!("unsupervised trial stopped: {stop:?}"),
    }
}

/// Why a supervised trial stopped before producing a [`Trial`]. The trial's
/// checkpoint (when checkpointing is on) has been flushed in every case, so
/// the trial can be resumed or retried from where it stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialStop {
    /// The supervision's interrupt flag was raised (e.g. by a SIGINT
    /// handler); resume is safe.
    Interrupted,
    /// The supervision's cancellation token tripped (wall-clock deadline or
    /// sim-cycle budget).
    Cancelled(CancelCause),
    /// The invariant sanitizer recorded violations during the trial. The
    /// string is the first violation plus a count. The checkpoint is
    /// *removed* so a retry replays the whole trial (a fresh sanitizer
    /// cannot re-check cycles hidden behind a checkpoint).
    Sanitizer(String),
}

impl fmt::Display for TrialStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrialStop::Interrupted => write!(f, "interrupted"),
            TrialStop::Cancelled(cause) => match cause {
                CancelCause::Requested => write!(f, "cancelled"),
                CancelCause::WallClock { limit_ms } => {
                    write!(f, "deadline of {limit_ms} ms exceeded")
                }
                CancelCause::CycleBudget { limit } => {
                    write!(f, "cycle budget of {limit} exhausted")
                }
            },
            TrialStop::Sanitizer(what) => write!(f, "sanitizer violation: {what}"),
        }
    }
}

/// Supervision hooks for [`run_trial_supervised`]; the default supervises
/// nothing (the trial always runs to an outcome).
#[derive(Default)]
pub struct TrialSupervision<'a> {
    /// Cooperative cancellation (deadline / cycle budget), checked by the
    /// cluster inside its step loop.
    pub cancel: Option<CancelToken>,
    /// Interrupt flag checked between chunks; when raised the trial
    /// checkpoints and stops with [`TrialStop::Interrupted`].
    pub interrupt: Option<&'a AtomicBool>,
    /// Called with the current cycle after every executed chunk (worker
    /// processes forward this as heartbeat lines).
    pub heartbeat: Option<&'a mut dyn FnMut(u64)>,
    /// Attaches the invariant sanitizer to the trial cluster; a dirty
    /// report at trial end stops the trial with [`TrialStop::Sanitizer`].
    pub sanitize: Option<SanitizerConfig>,
}

impl fmt::Debug for TrialSupervision<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrialSupervision")
            .field("cancel", &self.cancel)
            .field("interrupt", &self.interrupt.map(|i| i.load(Ordering::Relaxed)))
            .field("heartbeat", &self.heartbeat.is_some())
            .field("sanitize", &self.sanitize)
            .finish()
    }
}

/// [`run_trial_checkpointed`] with supervision: cooperative cancellation
/// (wall-clock deadline and sim-cycle budget), a between-chunks interrupt
/// flag, per-chunk heartbeats, and an optional invariant sanitizer.
///
/// The outer `Result` carries environment errors (config, I/O, bad
/// checkpoint); the inner one separates a finished [`Trial`] from a
/// [`TrialStop`] — a stop is not an error, it is the supervisor's own
/// policy looping back ([`Executor`](crate::exec::Executor) turns stops
/// into retries or quarantine).
///
/// # Errors
///
/// Configuration and I/O errors; [`CampaignError::CheckpointMismatch`] when
/// the on-disk checkpoint belongs to a different trial or campaign, and
/// [`CampaignError::CheckpointCorrupt`] when it is structurally invalid.
pub fn run_trial_supervised(
    config: ClusterConfig,
    campaign: &CampaignConfig,
    seed: u64,
    checkpoint: &Path,
    every: u64,
    mut sup: TrialSupervision<'_>,
) -> Result<Result<Trial, TrialStop>, CampaignError> {
    let mut cluster = trial_cluster(config, campaign, seed)?;
    if let Some(san) = sup.sanitize {
        cluster.enable_sanitizer(san);
    }
    let mut phase = TrialPhase::Generate;
    if checkpoint.exists() {
        let ckpt = match TrialCheckpoint::read_file(checkpoint) {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Err(CampaignError::CheckpointCorrupt(e.to_string()));
            }
            Err(e) => return Err(CampaignError::Io(e)),
        };
        if ckpt.seed != seed {
            return Err(CampaignError::CheckpointMismatch);
        }
        cluster
            .restore(&ckpt.snapshot)
            .map_err(|_| CampaignError::CheckpointMismatch)?;
        phase = ckpt.phase;
    }
    cluster.set_cancel_token(sup.cancel.clone());

    let save = |cluster: &Cluster<TrafficGen>, phase: TrialPhase| -> Result<(), CampaignError> {
        if every > 0 {
            TrialCheckpoint {
                seed,
                phase,
                snapshot: cluster.snapshot(),
            }
            .write_file(checkpoint)?;
        }
        Ok(())
    };
    let interrupted =
        |sup: &TrialSupervision<'_>| sup.interrupt.is_some_and(|i| i.load(Ordering::SeqCst));

    let gen_end = campaign.windows.warmup + campaign.windows.measure;
    if phase == TrialPhase::Generate {
        while cluster.now() < gen_end {
            let chunk = match every {
                0 => gen_end - cluster.now(),
                n => n.min(gen_end - cluster.now()),
            };
            match cluster.try_step_cycles(chunk) {
                Ok(_) => {}
                Err(SimError::Cancelled(c)) => {
                    save(&cluster, TrialPhase::Generate)?;
                    return Ok(Err(TrialStop::Cancelled(c.cause)));
                }
                Err(e) => unreachable!("step_cycles cannot fail otherwise: {e}"),
            }
            if let Some(beat) = sup.heartbeat.as_deref_mut() {
                beat(cluster.now());
            }
            if interrupted(&sup) {
                save(&cluster, TrialPhase::Generate)?;
                return Ok(Err(TrialStop::Interrupted));
            }
            if cluster.now() < gen_end {
                save(&cluster, TrialPhase::Generate)?;
            }
        }
        for gen in cluster.cores_mut() {
            gen.stop();
        }
        phase = TrialPhase::Drain {
            drain_start: cluster.now(),
        };
        save(&cluster, phase)?;
    }

    let TrialPhase::Drain { drain_start } = phase else {
        unreachable!("generate phase always transitions to drain");
    };
    let outcome = loop {
        let spent = cluster.now() - drain_start;
        if spent >= campaign.windows.drain {
            break TrialOutcome::Timeout;
        }
        let remaining = campaign.windows.drain - spent;
        let chunk = match every {
            0 => remaining,
            n => n.min(remaining),
        };
        let step = cluster.run(chunk);
        if let Some(beat) = sup.heartbeat.as_deref_mut() {
            beat(cluster.now());
        }
        match step {
            Ok(_) => {
                break TrialOutcome::Completed {
                    drain_cycles: cluster.now() - drain_start,
                }
            }
            Err(SimError::Deadlock(d)) => break TrialOutcome::Deadlock { cycle: d.cycle },
            Err(SimError::Cancelled(c)) => {
                save(&cluster, phase)?;
                return Ok(Err(TrialStop::Cancelled(c.cause)));
            }
            Err(SimError::Timeout(_)) if chunk < remaining => {
                // Only the checkpoint chunk expired, not the drain budget.
                save(&cluster, phase)?;
                if interrupted(&sup) {
                    return Ok(Err(TrialStop::Interrupted));
                }
            }
            Err(SimError::Timeout(_)) => break TrialOutcome::Timeout,
        }
    };
    if let Some(report) = cluster.sanitizer_report() {
        if !report.is_clean() {
            // A retry must replay the whole trial: a fresh sanitizer cannot
            // re-check the cycles hidden behind the checkpoint.
            if checkpoint.exists() {
                std::fs::remove_file(checkpoint)?;
            }
            let first = report
                .violations
                .first()
                .map(|v| v.to_string())
                .unwrap_or_default();
            return Ok(Err(TrialStop::Sanitizer(format!(
                "{} violation(s); first: {first}",
                report.total_violations()
            ))));
        }
    }
    let trial = finish_trial(&cluster, seed, outcome);
    if checkpoint.exists() {
        std::fs::remove_file(checkpoint)?;
    }
    Ok(Ok(trial))
}

/// Progress of a resumable campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignProgress {
    /// The (complete) campaign report, trials in seed order.
    pub report: CampaignReport,
    /// Trials recovered from the manifest rather than re-run.
    pub resumed_trials: u32,
    /// Trials executed by this invocation.
    pub new_trials: u32,
}

pub(crate) const MANIFEST_HEADER: &str = "mempool-campaign-manifest v2";

/// Digest identifying a campaign: configuration plus every campaign
/// parameter, so a manifest is only ever resumed against the exact campaign
/// that produced it.
pub(crate) fn campaign_digest(config: &ClusterConfig, campaign: &CampaignConfig) -> u64 {
    fnv64(format!("{config:?}|{campaign:?}").as_bytes())
}

pub(crate) fn format_trial_line(trial: &Trial) -> String {
    let (kind, value) = match trial.outcome {
        TrialOutcome::Completed { drain_cycles } => ("completed", drain_cycles),
        TrialOutcome::Deadlock { cycle } => ("deadlock", cycle),
        TrialOutcome::Timeout => ("timeout", 0),
        TrialOutcome::Quarantined { attempts } => ("quarantined", attempts),
    };
    let f = &trial.faults;
    format!(
        "trial {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {:016x}",
        trial.seed,
        kind,
        value,
        f.bank_stalls,
        f.banks_failed,
        f.banks_quarantined,
        f.quarantine_remaps,
        f.requests_dropped,
        f.link_stalls,
        f.link_drops,
        f.link_corruptions,
        f.ring_stalls,
        f.ring_drops,
        f.core_lockups,
        f.spurious_retires,
        f.request_timeouts,
        f.request_retries,
        f.requests_abandoned,
        f.stale_responses,
        trial.quarantined_banks,
        trial.delivered,
        trial.digest,
    )
}

/// Parses one manifest trial line; `None` means the line is unusable (e.g.
/// the tail of a write cut short by a kill) and parsing should stop there.
pub(crate) fn parse_trial_line(line: &str) -> Option<Trial> {
    let mut it = line.split_whitespace();
    if it.next()? != "trial" {
        return None;
    }
    let seed = it.next()?.parse().ok()?;
    let kind = it.next()?;
    let value: u64 = it.next()?.parse().ok()?;
    let outcome = match kind {
        "completed" => TrialOutcome::Completed {
            drain_cycles: value,
        },
        "deadlock" => TrialOutcome::Deadlock { cycle: value },
        "timeout" => TrialOutcome::Timeout,
        "quarantined" => TrialOutcome::Quarantined { attempts: value },
        _ => return None,
    };
    let mut counters = [0u64; 18];
    for c in &mut counters {
        *c = it.next()?.parse().ok()?;
    }
    let digest = u64::from_str_radix(it.next()?, 16).ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(Trial {
        seed,
        outcome,
        faults: FaultStats {
            bank_stalls: counters[0],
            banks_failed: counters[1],
            banks_quarantined: counters[2],
            quarantine_remaps: counters[3],
            requests_dropped: counters[4],
            link_stalls: counters[5],
            link_drops: counters[6],
            link_corruptions: counters[7],
            ring_stalls: counters[8],
            ring_drops: counters[9],
            core_lockups: counters[10],
            spurious_retires: counters[11],
            request_timeouts: counters[12],
            request_retries: counters[13],
            requests_abandoned: counters[14],
            stale_responses: counters[15],
        },
        quarantined_banks: counters[16] as usize,
        delivered: counters[17],
        digest,
    })
}

/// Reads completed trials back from a manifest. A final line cut short by a
/// kill is dropped (that trial simply re-runs); anything else malformed is
/// an error.
fn read_manifest(
    path: &Path,
    digest: u64,
    campaign: &CampaignConfig,
) -> Result<Vec<Trial>, CampaignError> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(CampaignError::ManifestCorrupt("missing header"));
    }
    let Some(digest_line) = lines.next() else {
        return Err(CampaignError::ManifestCorrupt("missing campaign digest"));
    };
    if digest_line.strip_prefix("campaign ") != Some(format!("{digest:016x}").as_str()) {
        return Err(CampaignError::ManifestMismatch);
    }
    let mut trials = Vec::new();
    let mut lines = lines.peekable();
    while let Some(line) = lines.next() {
        match parse_trial_line(line) {
            Some(trial) => trials.push(trial),
            // Tolerate exactly a truncated *final* line.
            None if lines.peek().is_none() => break,
            None => return Err(CampaignError::ManifestCorrupt("malformed trial line")),
        }
    }
    if trials.len() > campaign.trials as usize {
        return Err(CampaignError::ManifestMismatch);
    }
    for (i, trial) in trials.iter().enumerate() {
        if trial.seed != campaign.base_seed + i as u64 {
            return Err(CampaignError::ManifestMismatch);
        }
    }
    Ok(trials)
}

/// `path` with `suffix` appended to its final component.
pub(crate) fn sibling_path(path: &Path, suffix: &str) -> std::path::PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(suffix);
    std::path::PathBuf::from(s)
}

/// Loads (or creates) a campaign manifest: reads recorded trials back,
/// atomically rewrites the file from the parsed trials (so a final line
/// truncated by a kill never collides with the next append), and returns
/// the recorded trials plus the manifest opened for appending.
///
/// Exposed so external supervisors (`mempool-serve` campaign workers) can
/// drive the trial loop themselves while keeping the manifest as the
/// single source of truth.
///
/// # Errors
///
/// I/O errors and [`CampaignError::ManifestMismatch`] when the manifest on
/// disk belongs to a different campaign.
pub fn open_manifest(
    config: &ClusterConfig,
    campaign: &CampaignConfig,
    manifest: &Path,
) -> Result<(Vec<Trial>, std::fs::File), CampaignError> {
    let digest = campaign_digest(config, campaign);
    let trials = if manifest.exists() {
        read_manifest(manifest, digest, campaign)?
    } else {
        Vec::new()
    };
    let mut content = format!("{MANIFEST_HEADER}\ncampaign {digest:016x}\n");
    for trial in &trials {
        content.push_str(&format_trial_line(trial));
        content.push('\n');
    }
    let tmp = sibling_path(manifest, ".tmp");
    std::fs::write(&tmp, &content)?;
    std::fs::rename(&tmp, manifest)?;
    let file = std::fs::OpenOptions::new().append(true).open(manifest)?;
    Ok((trials, file))
}

/// Appends one trial line to the open manifest and syncs it to disk.
///
/// # Errors
///
/// The underlying write or sync failure.
pub fn append_trial(file: &mut std::fs::File, trial: &Trial) -> io::Result<()> {
    writeln!(file, "{}", format_trial_line(trial))?;
    file.sync_all()
}

/// Runs a campaign resumably: completed trials are recorded in a text
/// manifest at `manifest` (one line per trial, flushed as each trial ends),
/// and the in-progress trial checkpoints to `<manifest>.ckpt` every
/// `checkpoint_every` cycles. Re-invoking after a kill — even a `SIGKILL`
/// mid-trial — skips the recorded trials, resumes the interrupted one from
/// its checkpoint, and produces the identical [`CampaignReport`] an
/// uninterrupted [`run_campaign`] would have.
///
/// `max_new_trials` caps how many trials this invocation executes (useful
/// for time-boxed batches); `None` runs to campaign completion. The
/// returned [`CampaignProgress::report`] contains only the trials recorded
/// so far.
///
/// # Errors
///
/// Configuration and I/O errors; [`CampaignError::ManifestMismatch`] when
/// the manifest on disk belongs to a different campaign.
pub fn run_campaign_resumable(
    config: ClusterConfig,
    campaign: &CampaignConfig,
    manifest: &Path,
    checkpoint_every: u64,
    max_new_trials: Option<u32>,
) -> Result<CampaignProgress, CampaignError> {
    let (mut trials, mut file) = open_manifest(&config, campaign, manifest)?;
    let resumed = trials.len() as u32;

    let ckpt = sibling_path(manifest, ".ckpt");
    let mut new_trials = 0u32;
    while trials.len() < campaign.trials as usize {
        if max_new_trials.is_some_and(|cap| new_trials >= cap) {
            break;
        }
        let seed = campaign.base_seed + trials.len() as u64;
        let trial = run_trial_checkpointed(config, campaign, seed, &ckpt, checkpoint_every)?;
        append_trial(&mut file, &trial)?;
        trials.push(trial);
        new_trials += 1;
    }
    Ok(CampaignProgress {
        report: CampaignReport {
            spec: campaign.spec,
            trials,
        },
        resumed_trials: resumed,
        new_trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool::Topology;

    fn small_windows() -> Windows {
        Windows {
            warmup: 100,
            measure: 400,
            drain: 50_000,
        }
    }

    #[test]
    fn fault_free_campaign_always_completes() {
        let campaign = CampaignConfig {
            windows: small_windows(),
            trials: 2,
            base_seed: 7,
            ..CampaignConfig::default()
        };
        let report =
            run_campaign(ClusterConfig::small(Topology::TopH), &campaign).expect("valid config");
        assert_eq!(report.completion_rate(), 1.0);
        assert_eq!(report.total_faults().total_injected(), 0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let campaign = CampaignConfig {
            spec: "bank_fail=2,link_drop=0.001,core_lockup=0.0005"
                .parse()
                .expect("valid spec"),
            windows: small_windows(),
            trials: 2,
            base_seed: 42,
            ..CampaignConfig::default()
        };
        let config = ClusterConfig::small(Topology::Top1);
        let a = run_campaign(config, &campaign).expect("valid config");
        let b = run_campaign(config, &campaign).expect("valid config");
        assert_eq!(a, b, "same seeds must reproduce the identical report");
        assert!(a.total_faults().total_injected() > 0, "{}", a.summary());
    }

    #[test]
    fn campaign_counts_resilience_actions_under_heavy_drops() {
        let campaign = CampaignConfig {
            spec: "link_drop=0.02".parse().expect("valid spec"),
            windows: small_windows(),
            trials: 1,
            base_seed: 3,
            ..CampaignConfig::default()
        };
        let report =
            run_campaign(ClusterConfig::small(Topology::Top1), &campaign).expect("valid config");
        let total = report.total_faults();
        assert!(total.link_drops > 0, "{}", report.summary());
    }
}
