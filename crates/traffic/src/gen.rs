//! The synthetic traffic generator of §V-A: each core is replaced by a
//! generator producing new requests following a Poisson process, with
//! uniformly distributed destination banks (optionally biased into the
//! local tile's sequential region, §V-B).

use mempool::{Core, LatencyStats};
use mempool_riscv::LoadOp;
use mempool_snitch::{DataRequest, DataRequestKind, DataResponse, Fetch};
use mempool_rng::StdRng;
use mempool_rng::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Destination distribution of generated requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Uniformly distributed over all banks of the cluster (Fig. 5).
    Uniform,
    /// With probability `p_local`, uniform within the generator's own
    /// tile's sequential region; otherwise uniform over the interleaved
    /// remainder of L1 (Fig. 6).
    PLocal {
        /// Probability of targeting the local sequential region.
        p_local: f64,
    },
    /// All requests target one tile's banks — the classic hot-spot pattern
    /// that collapses any blocking network far below its uniform
    /// saturation.
    HotSpot {
        /// Byte address range `[base, base + bytes)` all requests land in
        /// (typically one tile's worth of interleaved words).
        base: u32,
        /// Size of the hot region in bytes.
        bytes: u32,
    },
    /// A fixed tile-level permutation (Dally & Towles' adversarial
    /// patterns): every request targets a uniform bank inside the tile the
    /// permutation maps this generator's tile to.
    Permutation(Permutation),
}

impl Pattern {
    /// Renders the pattern as its canonical spec string
    /// (`uniform`, `plocal=<p>`, `hotspot=<base>:<bytes>`,
    /// `perm=bitcomp|tornado|transpose`) — the format accepted by
    /// [`parse_spec`](Pattern::parse_spec), used by the CLI and by worker
    /// job specs.
    pub fn to_spec(self) -> String {
        match self {
            Pattern::Uniform => "uniform".to_owned(),
            Pattern::PLocal { p_local } => format!("plocal={p_local}"),
            Pattern::HotSpot { base, bytes } => format!("hotspot={base}:{bytes}"),
            Pattern::Permutation(p) => match p {
                Permutation::BitComplement => "perm=bitcomp".to_owned(),
                Permutation::Tornado => "perm=tornado".to_owned(),
                Permutation::TileTranspose => "perm=transpose".to_owned(),
            },
        }
    }

    /// Parses a spec string produced by [`to_spec`](Pattern::to_spec).
    /// `None` when the string is not a valid pattern spec (unknown form,
    /// unparsable number, or a `plocal` probability outside `[0, 1]`).
    pub fn parse_spec(spec: &str) -> Option<Pattern> {
        if spec == "uniform" {
            return Some(Pattern::Uniform);
        }
        if let Some(p) = spec.strip_prefix("plocal=") {
            let p_local: f64 = p.parse().ok()?;
            if !(0.0..=1.0).contains(&p_local) {
                return None;
            }
            return Some(Pattern::PLocal { p_local });
        }
        if let Some(rest) = spec.strip_prefix("hotspot=") {
            let (base, bytes) = rest.split_once(':')?;
            return Some(Pattern::HotSpot {
                base: base.parse().ok()?,
                bytes: bytes.parse().ok()?,
            });
        }
        if let Some(perm) = spec.strip_prefix("perm=") {
            let p = match perm {
                "bitcomp" => Permutation::BitComplement,
                "tornado" => Permutation::Tornado,
                "transpose" => Permutation::TileTranspose,
                _ => return None,
            };
            return Some(Pattern::Permutation(p));
        }
        None
    }
}

/// Tile-level permutation patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Permutation {
    /// Destination tile = bitwise complement of the source tile — the
    /// classic adversary for log-networks (paths concentrate maximally).
    BitComplement,
    /// Destination tile = source + tiles/2 (mod tiles).
    Tornado,
    /// Destination tile with its high and low tile-index bit halves
    /// swapped (matrix-transpose communication).
    TileTranspose,
}

impl Permutation {
    /// Applies the permutation over `tiles` tiles (a power of two).
    pub fn dest_tile(self, tile: u32, tiles: u32) -> u32 {
        debug_assert!(tiles.is_power_of_two());
        match self {
            Permutation::BitComplement => !tile & (tiles - 1),
            Permutation::Tornado => (tile + tiles / 2) % tiles,
            Permutation::TileTranspose => {
                let bits = tiles.trailing_zeros();
                let lo_bits = bits / 2;
                let hi_bits = bits - lo_bits;
                let lo = tile & ((1 << lo_bits) - 1);
                let hi = tile >> lo_bits;
                (lo << hi_bits) | hi
            }
        }
    }
}

/// Geometry the generator needs to synthesize addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSpace {
    /// Total L1 bytes.
    pub l1_bytes: u32,
    /// Start of this core's tile's sequential region (programmer view).
    pub seq_base: u32,
    /// Bytes per tile sequential region (0 disables the local pattern).
    pub seq_bytes: u32,
    /// Total bytes covered by all sequential regions.
    pub seq_total: u32,
    /// This generator's tile index (permutation patterns).
    pub tile: u32,
    /// Number of tiles in the cluster (permutation patterns).
    pub num_tiles: u32,
    /// Banks per tile (permutation patterns).
    pub banks_per_tile: u32,
}

/// Statistics collected by one generator.
#[derive(Debug, Clone, Default)]
pub struct GenStats {
    /// Requests generated (arrivals of the Poisson process).
    pub generated: u64,
    /// Requests injected into the network.
    pub injected: u64,
    /// Responses received.
    pub completed: u64,
    /// Round-trip latency (generation → response), measured only for
    /// requests generated after [`TrafficGen::start_measuring`].
    pub latency: LatencyStats,
}

/// A Poisson traffic source implementing [`Core`].
///
/// # Examples
///
/// ```
/// use mempool_traffic::{AddressSpace, Pattern, TrafficGen};
///
/// let space = AddressSpace {
///     l1_bytes: 1 << 20,
///     seq_base: 0,
///     seq_bytes: 1024,
///     seq_total: 64 << 10,
///     tile: 0,
///     num_tiles: 64,
///     banks_per_tile: 16,
/// };
/// let mut gen = TrafficGen::new(0.25, Pattern::Uniform, space, 64, 7);
/// gen.start_measuring();
/// # let _ = gen;
/// ```
#[derive(Debug, Clone)]
pub struct TrafficGen {
    rate: f64,
    pattern: Pattern,
    space: AddressSpace,
    rng: StdRng,
    /// Generated-but-not-injected requests: (generation cycle, address).
    queue: VecDeque<(u64, u32)>,
    /// In-flight generation timestamps per tag.
    tags: Vec<Option<u64>>,
    in_flight: usize,
    clock: u64,
    measure_from: Option<u64>,
    stopped: bool,
    stats: GenStats,
}

impl TrafficGen {
    /// Creates a generator with injection `rate` (requests/cycle, ≥ 0),
    /// the given destination pattern and address space, `outstanding`
    /// request tags, and an RNG `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `outstanding` is 0 or exceeds 256, or `rate` is negative.
    pub fn new(
        rate: f64,
        pattern: Pattern,
        space: AddressSpace,
        outstanding: usize,
        seed: u64,
    ) -> Self {
        assert!((1..=256).contains(&outstanding), "outstanding in 1..=256");
        assert!(rate >= 0.0, "rate must be non-negative");
        TrafficGen {
            rate,
            pattern,
            space,
            rng: StdRng::seed_from_u64(seed),
            queue: VecDeque::new(),
            tags: vec![None; outstanding],
            in_flight: 0,
            clock: 0,
            measure_from: None,
            stopped: false,
            stats: GenStats::default(),
        }
    }

    /// Starts recording latencies for requests generated from now on.
    pub fn start_measuring(&mut self) {
        self.measure_from = Some(self.clock);
    }

    /// Stops generating new requests (existing ones drain).
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Collected statistics.
    pub fn stats(&self) -> &GenStats {
        &self.stats
    }

    /// Requests waiting in the source queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Samples the number of Poisson arrivals this cycle (Knuth's method —
    /// rates of interest are well below 1).
    fn arrivals(&mut self) -> u32 {
        if self.rate <= 0.0 || self.stopped {
            return 0;
        }
        let l = (-self.rate).exp();
        let mut k = 0;
        let mut p = 1.0;
        loop {
            p *= self.rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    fn pick_address(&mut self) -> u32 {
        let word = match self.pattern {
            Pattern::Uniform => self.rng.gen_range(0..self.space.l1_bytes / 4),
            Pattern::PLocal { p_local } => {
                if self.space.seq_bytes > 0 && self.rng.gen::<f64>() < p_local {
                    let off = self.rng.gen_range(0..self.space.seq_bytes / 4);
                    return self.space.seq_base + off * 4;
                }
                // Outside the sequential regions: uniform over the
                // interleaved remainder.
                let lo = self.space.seq_total / 4;
                let hi = self.space.l1_bytes / 4;
                self.rng.gen_range(lo..hi)
            }
            Pattern::HotSpot { base, bytes } => {
                let off = self.rng.gen_range(0..bytes.max(4) / 4);
                return base + off * 4;
            }
            Pattern::Permutation(perm) => {
                // A uniform word inside the destination tile under the
                // interleaved map: word = (row * tiles + dest) * banks + bank.
                let dest = perm.dest_tile(self.space.tile, self.space.num_tiles);
                let banks = self.space.banks_per_tile;
                let rows = self.space.l1_bytes / 4 / self.space.num_tiles / banks;
                let row = self.rng.gen_range(0..rows);
                let bank = self.rng.gen_range(0..banks);
                (row * self.space.num_tiles + dest) * banks + bank
            }
        };
        word * 4
    }
}

impl mempool::CoreState for TrafficGen {
    fn encode_state(&self, out: &mut dyn mempool::StateSink) {
        out.put_u64(self.rng.state());
        out.put_u64(self.queue.len() as u64);
        for &(cycle, addr) in &self.queue {
            out.put_u64(cycle);
            out.put_u32(addr);
        }
        out.put_u64(self.tags.len() as u64);
        for tag in &self.tags {
            match tag {
                None => out.put_bool(false),
                Some(gen_time) => {
                    out.put_bool(true);
                    out.put_u64(*gen_time);
                }
            }
        }
        out.put_u64(self.in_flight as u64);
        out.put_u64(self.clock);
        match self.measure_from {
            None => out.put_bool(false),
            Some(from) => {
                out.put_bool(true);
                out.put_u64(from);
            }
        }
        out.put_bool(self.stopped);
        out.put_u64(self.stats.generated);
        out.put_u64(self.stats.injected);
        out.put_u64(self.stats.completed);
        self.stats.latency.save_state(out);
    }

    fn decode_state(
        &mut self,
        r: &mut mempool::ByteReader<'_>,
    ) -> Result<(), mempool::SnapshotError> {
        use mempool::SnapshotError;
        self.rng = StdRng::seed_from_u64(r.take_u64()?);
        let nq = r.take_u64()? as usize;
        self.queue.clear();
        for _ in 0..nq {
            let cycle = r.take_u64()?;
            let addr = r.take_u32()?;
            self.queue.push_back((cycle, addr));
        }
        let nt = r.take_u64()? as usize;
        if nt != self.tags.len() {
            return Err(SnapshotError::Corrupt("outstanding tag count"));
        }
        for tag in &mut self.tags {
            *tag = if r.take_bool()? { Some(r.take_u64()?) } else { None };
        }
        self.in_flight = r.take_u64()? as usize;
        if self.in_flight != self.tags.iter().filter(|t| t.is_some()).count() {
            return Err(SnapshotError::Corrupt("in-flight count"));
        }
        self.clock = r.take_u64()?;
        self.measure_from = if r.take_bool()? { Some(r.take_u64()?) } else { None };
        self.stopped = r.take_bool()?;
        self.stats.generated = r.take_u64()?;
        self.stats.injected = r.take_u64()?;
        self.stats.completed = r.take_u64()?;
        self.stats.latency.load_state(r)?;
        Ok(())
    }
}

impl Core for TrafficGen {
    fn deliver(&mut self, response: DataResponse) {
        let gen_time = self.tags[response.tag as usize]
            .take()
            .expect("response matches an in-flight tag");
        self.in_flight -= 1;
        self.stats.completed += 1;
        if self.measure_from.is_some_and(|from| gen_time >= from) {
            // Deliveries happen at the start of a cycle, before `step`
            // advances the local clock — the response belongs to cycle
            // `clock + 1`.
            self.stats.latency.record(self.clock + 1 - gen_time);
        }
    }

    fn step(
        &mut self,
        _fetch: &mut dyn FnMut(u32) -> Fetch,
        request_ready: bool,
    ) -> Option<DataRequest> {
        self.clock += 1;
        let n = self.arrivals();
        for _ in 0..n {
            let addr = self.pick_address();
            self.queue.push_back((self.clock, addr));
            self.stats.generated += 1;
        }
        if !request_ready || self.queue.is_empty() {
            return None;
        }
        let tag = self.tags.iter().position(Option::is_none)?;
        let (gen_time, addr) = self.queue.pop_front().expect("nonempty");
        self.tags[tag] = Some(gen_time);
        self.in_flight += 1;
        self.stats.injected += 1;
        Some(DataRequest {
            tag: tag as u8,
            addr,
            kind: DataRequestKind::Load(LoadOp::Lw),
        })
    }

    fn done(&self) -> bool {
        self.stopped && self.queue.is_empty() && self.in_flight == 0
    }

    fn metric_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("generated", self.stats.generated),
            ("injected", self.stats.injected),
            ("completed", self.stats.completed),
            ("queue_len", self.queue.len() as u64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace {
            l1_bytes: 1 << 16,
            seq_base: 1024,
            seq_bytes: 256,
            seq_total: 16 * 256,
            tile: 4,
            num_tiles: 16,
            banks_per_tile: 16,
        }
    }

    #[test]
    fn permutation_definitions() {
        assert_eq!(Permutation::BitComplement.dest_tile(0, 16), 15);
        assert_eq!(Permutation::BitComplement.dest_tile(5, 16), 10);
        assert_eq!(Permutation::Tornado.dest_tile(3, 16), 11);
        assert_eq!(Permutation::Tornado.dest_tile(12, 16), 4);
        assert_eq!(Permutation::TileTranspose.dest_tile(0b0111, 16), 0b1101);
        // Permutations are bijections.
        for perm in [
            Permutation::BitComplement,
            Permutation::Tornado,
            Permutation::TileTranspose,
        ] {
            let mut seen = [false; 64];
            for t in 0..64 {
                let d = perm.dest_tile(t, 64) as usize;
                assert!(!seen[d], "{perm:?} collides at {d}");
                seen[d] = true;
            }
        }
    }

    #[test]
    fn permutation_addresses_land_in_the_destination_tile() {
        let mut gen = TrafficGen::new(
            1.0,
            Pattern::Permutation(Permutation::BitComplement),
            space(),
            64,
            9,
        );
        // Source tile 4 of 16 -> destination tile 11; interleaved map has
        // tile bits at [6..10) for 16 banks.
        for _ in 0..200 {
            let addr = gen.pick_address();
            assert_eq!((addr >> 6) & 15, 11, "addr {addr:#x}");
        }
    }

    fn drive(gen: &mut TrafficGen, cycles: u64, respond_after: u64) {
        // Immediate-memory harness with fixed latency.
        let mut pending: Vec<(u64, u8)> = Vec::new();
        for now in 1..=cycles {
            let mut i = 0;
            while i < pending.len() {
                if pending[i].0 <= now {
                    let (_, tag) = pending.remove(i);
                    gen.deliver(DataResponse { tag, data: 0 });
                } else {
                    i += 1;
                }
            }
            if let Some(req) = gen.step(&mut |_| Fetch::Stall, true) {
                pending.push((now + respond_after, req.tag));
            }
        }
    }

    #[test]
    fn generation_rate_matches_lambda() {
        let mut gen = TrafficGen::new(0.25, Pattern::Uniform, space(), 64, 1);
        drive(&mut gen, 40_000, 2);
        let rate = gen.stats().generated as f64 / 40_000.0;
        assert!((rate - 0.25).abs() < 0.02, "measured rate {rate}");
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let mut gen = TrafficGen::new(0.0, Pattern::Uniform, space(), 8, 1);
        drive(&mut gen, 1000, 1);
        assert_eq!(gen.stats().generated, 0);
    }

    #[test]
    fn latency_includes_queueing_delay() {
        let mut gen = TrafficGen::new(0.5, Pattern::Uniform, space(), 1, 2);
        gen.start_measuring();
        // One outstanding tag + 10-cycle memory: the effective service rate
        // is 0.1 req/cycle, well below 0.5 — queueing delay must dominate.
        drive(&mut gen, 5_000, 10);
        let mean = gen.stats().latency.mean();
        assert!(mean > 50.0, "queueing not reflected: mean {mean}");
    }

    #[test]
    fn p_local_targets_own_region() {
        let mut gen = TrafficGen::new(1.0, Pattern::PLocal { p_local: 1.0 }, space(), 64, 3);
        let mut in_region = 0;
        for _ in 0..1000 {
            let addr = gen.pick_address();
            if (space().seq_base..space().seq_base + space().seq_bytes).contains(&addr) {
                in_region += 1;
            }
        }
        assert_eq!(in_region, 1000);
    }

    #[test]
    fn p_local_zero_avoids_sequential_regions() {
        let mut gen = TrafficGen::new(1.0, Pattern::PLocal { p_local: 0.0 }, space(), 64, 4);
        for _ in 0..1000 {
            let addr = gen.pick_address();
            assert!(addr >= space().seq_total);
        }
    }

    #[test]
    fn addresses_are_word_aligned_and_in_range() {
        let mut gen = TrafficGen::new(1.0, Pattern::Uniform, space(), 64, 5);
        for _ in 0..1000 {
            let addr = gen.pick_address();
            assert_eq!(addr % 4, 0);
            assert!(addr < space().l1_bytes);
        }
    }

    #[test]
    fn stop_then_drain_reaches_done() {
        let mut gen = TrafficGen::new(0.3, Pattern::Uniform, space(), 16, 6);
        let mut pending: Vec<(u64, u8)> = Vec::new();
        for now in 1..=1100u64 {
            if now == 100 {
                gen.stop();
            }
            let mut i = 0;
            while i < pending.len() {
                if pending[i].0 <= now {
                    let (_, tag) = pending.remove(i);
                    gen.deliver(DataResponse { tag, data: 0 });
                } else {
                    i += 1;
                }
            }
            if let Some(req) = gen.step(&mut |_| Fetch::Stall, true) {
                pending.push((now + 3, req.tag));
            }
        }
        assert!(gen.done());
        assert_eq!(gen.stats().injected, gen.stats().completed);
    }

    #[test]
    fn backpressure_defers_injection() {
        let mut gen = TrafficGen::new(1.0, Pattern::Uniform, space(), 8, 7);
        for _ in 0..100 {
            let req = gen.step(&mut |_| Fetch::Stall, false);
            assert!(req.is_none());
        }
        assert!(gen.stats().generated > 50);
        assert_eq!(gen.stats().injected, 0);
        assert!(gen.queue_len() > 50);
    }
}
