//! # mempool-traffic
//!
//! Synthetic traffic generation and the network-analysis experiments of the
//! MemPool paper (§V-A, §V-B): Poisson injectors with uniform or
//! locality-biased destinations, plugged into the cycle-accurate cluster in
//! place of the Snitch cores, plus the load-sweep harness that regenerates
//! Fig. 5 (topology comparison) and Fig. 6 (hybrid addressing scheme).
//!
//! # Examples
//!
//! Measure one point of the Fig. 5 sweep on a reduced cluster:
//!
//! ```
//! use mempool::{ClusterConfig, Topology};
//! use mempool_traffic::{run_point, Pattern, Windows};
//!
//! let windows = Windows { warmup: 200, measure: 1_000, drain: 10_000 };
//! let config = ClusterConfig::small(Topology::TopH);
//! let point = run_point(config, Pattern::Uniform, 0.05, windows, 42)?;
//! assert!(point.throughput > 0.03); // well below saturation: all delivered
//! assert!(point.avg_latency() >= 1.0);
//! # Ok::<(), mempool::ValidateConfigError>(())
//! ```

#![warn(missing_docs)]

mod campaign;
mod exec;
mod experiment;
mod gen;
mod replay;
mod supervise;

pub use campaign::{
    append_trial, open_manifest, run_campaign, run_campaign_resumable, run_trial,
    run_trial_checkpointed, run_trial_supervised, trial_cluster, CampaignConfig, CampaignError,
    CampaignProgress, CampaignReport, Trial, TrialCheckpoint, TrialOutcome, TrialPhase, TrialStop,
    TrialSupervision,
};
pub use exec::{
    run_trial_worker, Executor, ExecutorConfig, ExecutorReport, QuarantinedTrial, WorkerJob,
};
pub use supervise::{
    classify_exit, json_escape, json_unescape, parse_config_spec, parse_flat_json,
    render_config_spec, FailureKind, RetryPolicy, TrialFailure,
};
pub use experiment::{
    md1_latency, run_point, run_point_with_metrics, run_sweep, saturation_throughput,
    MeteredPoint, SweepPoint, SweepPointError, SweepReport, Windows,
};
pub use gen::{AddressSpace, GenStats, Pattern, Permutation, TrafficGen};
pub use replay::{replay_trace, ReplayCore, ReplayTiming};
