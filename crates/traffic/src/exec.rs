//! The supervised campaign executor: crash isolation, deadlines, seeded
//! retry/backoff, and quarantine-with-partial-results.
//!
//! [`run_campaign_resumable`](crate::run_campaign_resumable) survives kills
//! *between* invocations; the [`Executor`] hardens the invocation itself.
//! Every trial runs as a supervised job bounded by a wall-clock deadline
//! and a sim-cycle budget (a cooperative [`CancelToken`] checked inside the
//! cluster's step loop). A trial that fails — cancellation, a panic, a
//! sanitizer violation, or (in isolation mode) a crashed worker process —
//! is retried from its last checkpoint with seeded exponential backoff;
//! a trial that fails deterministically (two consecutive identical
//! failures, or the attempt budget) is *quarantined*: the campaign records
//! a placeholder outcome and keeps going instead of aborting, so a
//! multi-hour campaign always produces a complete manifest.
//!
//! With [`ExecutorConfig::isolate`] set, trials run in child worker
//! processes (`mempool-run trial-worker`): a JSON job spec goes in on
//! stdin, heartbeat and result lines come back on stdout, and a panic,
//! abort, OOM-kill, or stray `SIGKILL` in one trial is classified
//! (`panic|signal|timeout|oom|exit`) without taking down the campaign.
//! `N` workers shard trials in parallel; the manifest stays the single
//! source of truth, appended strictly in seed order.

use crate::campaign::{
    append_trial, format_trial_line, open_manifest, parse_trial_line, run_trial_supervised,
    sibling_path, CampaignConfig, CampaignError, CampaignReport, Trial, TrialStop,
    TrialSupervision,
};
use crate::supervise::{classify_exit, json_escape, parse_flat_json, RetryPolicy};
use crate::{FailureKind, Pattern, TrialFailure, Windows};
use mempool::{CancelToken, ClusterConfig, SanitizerConfig};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A trial the executor gave up on, with its full failure history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedTrial {
    /// The quarantined trial's seed.
    pub seed: u64,
    /// Every failed attempt, in order.
    pub failures: Vec<TrialFailure>,
}

/// Supervision policy of the [`Executor`].
#[derive(Clone)]
pub struct ExecutorConfig {
    /// Wall-clock deadline per trial attempt (`None` = unbounded). In
    /// isolation mode the parent enforces it by killing the worker; in
    /// process the cancellation token trips cooperatively.
    pub deadline: Option<Duration>,
    /// Absolute sim-cycle budget per trial (`None` = unbounded). Enforced
    /// cooperatively in both modes; deterministic, so a budget overrun
    /// quarantines after two attempts.
    pub cycle_budget: Option<u64>,
    /// Attempts per trial before quarantine (minimum 1, default 3).
    pub max_attempts: u32,
    /// Base of the exponential backoff between attempts, in milliseconds
    /// (`0` disables backoff entirely — used by tests).
    pub backoff_base_ms: u64,
    /// Upper bound of the exponential backoff, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed of the backoff jitter (deterministic per `(seed, attempt)`).
    pub backoff_seed: u64,
    /// Mid-trial checkpoint interval in cycles (`0` disables, so every
    /// retry replays the trial from the start).
    pub checkpoint_every: u64,
    /// `Some(n)`: run each trial in a child worker process, `n` at a time.
    /// `None`: run trials in this process, sequentially.
    pub isolate: Option<usize>,
    /// Worker binary for isolation mode (`None` = this executable, which
    /// must understand the `trial-worker` subcommand).
    pub worker_cmd: Option<PathBuf>,
    /// Opaque cluster-config spec passed verbatim to workers in the job
    /// spec; the binary hosting the worker subcommand interprets it.
    pub config_spec: String,
    /// Attach the invariant sanitizer to every trial; a dirty report is a
    /// retryable (then quarantinable) failure.
    pub sanitize: Option<SanitizerConfig>,
    /// Test hook: pre-attempt fault injection. `f(seed, attempt)` returning
    /// `true` fails that attempt as a synthetic panic without running it.
    #[doc(hidden)]
    pub inject_failure: Option<fn(u64, u32) -> bool>,
}

impl fmt::Debug for ExecutorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutorConfig")
            .field("deadline", &self.deadline)
            .field("cycle_budget", &self.cycle_budget)
            .field("max_attempts", &self.max_attempts)
            .field("backoff_base_ms", &self.backoff_base_ms)
            .field("backoff_cap_ms", &self.backoff_cap_ms)
            .field("backoff_seed", &self.backoff_seed)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("isolate", &self.isolate)
            .field("worker_cmd", &self.worker_cmd)
            .field("config_spec", &self.config_spec)
            .field("sanitize", &self.sanitize)
            .field("inject_failure", &self.inject_failure.is_some())
            .finish()
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            deadline: None,
            cycle_budget: None,
            max_attempts: 3,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            backoff_seed: 0,
            checkpoint_every: 4_096,
            isolate: None,
            worker_cmd: None,
            config_spec: String::new(),
            sanitize: None,
            inject_failure: None,
        }
    }
}

/// Result of a supervised campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorReport {
    /// The campaign report (quarantined trials appear as
    /// [`TrialOutcome::Quarantined`](crate::TrialOutcome::Quarantined)
    /// placeholders).
    pub report: CampaignReport,
    /// Trials recovered from the manifest rather than re-run.
    pub resumed_trials: u32,
    /// Trials recorded by this invocation (completed or quarantined).
    pub new_trials: u32,
    /// Failed attempts that were retried (quarantines not included).
    pub retries: u64,
    /// Full failure history of every quarantined trial.
    pub quarantined: Vec<QuarantinedTrial>,
    /// The run stopped early on the interrupt flag (manifest and
    /// checkpoint flushed; re-running resumes exactly where it stopped).
    pub interrupted: bool,
}

/// The supervised campaign executor. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct Executor {
    /// Cluster configuration of every trial.
    pub config: ClusterConfig,
    /// The campaign being executed.
    pub campaign: CampaignConfig,
    /// Supervision policy.
    pub exec: ExecutorConfig,
}

impl Executor {
    /// Creates an executor over `config`/`campaign` with policy `exec`.
    pub fn new(config: ClusterConfig, campaign: CampaignConfig, exec: ExecutorConfig) -> Executor {
        Executor {
            config,
            campaign,
            exec,
        }
    }

    /// Runs (or resumes) the campaign against `manifest`. `interrupt` is an
    /// optional flag (typically raised by a SIGINT/SIGTERM handler): when
    /// set, the executor flushes the current trial checkpoint and manifest
    /// line and returns with [`ExecutorReport::interrupted`].
    ///
    /// # Errors
    ///
    /// Configuration, I/O, and manifest errors. Trial failures are *not*
    /// errors — they are retried or quarantined.
    pub fn run(
        &self,
        manifest: &Path,
        interrupt: Option<&AtomicBool>,
    ) -> Result<ExecutorReport, CampaignError> {
        match self.exec.isolate {
            Some(workers) => self.run_isolated(manifest, workers.max(1), interrupt),
            None => self.run_in_process(manifest, interrupt),
        }
    }

    fn token(&self) -> Option<CancelToken> {
        if self.exec.deadline.is_none() && self.exec.cycle_budget.is_none() {
            return None;
        }
        let mut t = CancelToken::new();
        if let Some(d) = self.exec.deadline {
            t = t.with_wall_limit(d);
        }
        if let Some(b) = self.exec.cycle_budget {
            t = t.with_cycle_limit(b);
        }
        Some(t)
    }

    /// The shared retry policy this executor's knobs configure.
    fn policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: self.exec.max_attempts,
            backoff_base_ms: self.exec.backoff_base_ms,
            backoff_cap_ms: self.exec.backoff_cap_ms,
            backoff_seed: self.exec.backoff_seed,
        }
    }

    /// Seeded exponential backoff with jitter (see [`RetryPolicy::delay`]).
    fn backoff_delay(&self, seed: u64, attempt: u32) -> Duration {
        self.policy().delay(seed, attempt)
    }

    /// Quarantine once the attempt budget is spent, or as soon as the same
    /// failure repeats (see [`RetryPolicy::give_up`]).
    fn quarantine_due(&self, failures: &[TrialFailure]) -> bool {
        self.policy().give_up(failures)
    }

    // -- in-process mode ---------------------------------------------------

    fn run_in_process(
        &self,
        manifest: &Path,
        interrupt: Option<&AtomicBool>,
    ) -> Result<ExecutorReport, CampaignError> {
        let (mut trials, mut file) = open_manifest(&self.config, &self.campaign, manifest)?;
        let resumed = trials.len() as u32;
        let ckpt = sibling_path(manifest, ".ckpt");
        let mut quarantined = Vec::new();
        let mut retries = 0u64;
        let mut new_trials = 0u32;
        let mut interrupted = false;
        let is_set = |i: Option<&AtomicBool>| i.is_some_and(|f| f.load(Ordering::SeqCst));

        'trials: while trials.len() < self.campaign.trials as usize {
            if is_set(interrupt) {
                interrupted = true;
                break;
            }
            let seed = self.campaign.base_seed + trials.len() as u64;
            let mut failures: Vec<TrialFailure> = Vec::new();
            let finished = loop {
                let attempt = failures.len() as u32 + 1;
                if is_set(interrupt) {
                    interrupted = true;
                    break 'trials;
                }
                let failure = if self.exec.inject_failure.is_some_and(|f| f(seed, attempt)) {
                    TrialFailure {
                        attempt,
                        kind: FailureKind::Panic,
                        detail: "injected failure".to_owned(),
                    }
                } else {
                    match self.attempt_in_process(seed, &ckpt, interrupt) {
                    Ok(Ok(Ok(trial))) => break Some(trial),
                    Ok(Ok(Err(TrialStop::Interrupted))) => {
                        interrupted = true;
                        break 'trials;
                    }
                    Ok(Ok(Err(TrialStop::Cancelled(cause)))) => TrialFailure {
                        attempt,
                        kind: FailureKind::Timeout,
                        detail: TrialStop::Cancelled(cause).to_string(),
                    },
                    Ok(Ok(Err(TrialStop::Sanitizer(what)))) => TrialFailure {
                        attempt,
                        kind: FailureKind::Sanitizer,
                        detail: what,
                    },
                    Ok(Err(
                        e @ (CampaignError::CheckpointCorrupt(_)
                        | CampaignError::CheckpointMismatch),
                    )) => {
                        // Self-heal: a bad checkpoint (e.g. left behind by
                        // a crashed attempt) costs a replay, not the
                        // campaign.
                        let _ = std::fs::remove_file(&ckpt);
                        TrialFailure {
                            attempt,
                            kind: FailureKind::Exit(1),
                            detail: e.to_string(),
                        }
                    }
                    Ok(Err(e)) => return Err(e),
                    Err(panic) => TrialFailure {
                        attempt,
                        kind: FailureKind::Panic,
                        detail: panic,
                    },
                    }
                };
                failures.push(failure);
                if self.quarantine_due(&failures) {
                    break None;
                }
                retries += 1;
                let delay = self.backoff_delay(seed, attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            };
            let trial = match finished {
                Some(t) => t,
                None => {
                    let _ = std::fs::remove_file(&ckpt);
                    let attempts = failures.len() as u64;
                    quarantined.push(QuarantinedTrial { seed, failures });
                    Trial::quarantined(seed, attempts)
                }
            };
            append_trial(&mut file, &trial)?;
            trials.push(trial);
            new_trials += 1;
        }
        Ok(ExecutorReport {
            report: CampaignReport {
                spec: self.campaign.spec,
                trials,
            },
            resumed_trials: resumed,
            new_trials,
            retries,
            quarantined,
            interrupted,
        })
    }

    /// One in-process attempt; the outer `Err` is a caught panic message.
    #[allow(clippy::type_complexity)]
    fn attempt_in_process(
        &self,
        seed: u64,
        ckpt: &Path,
        interrupt: Option<&AtomicBool>,
    ) -> Result<Result<Result<Trial, TrialStop>, CampaignError>, String> {
        let sup = TrialSupervision {
            cancel: self.token(),
            interrupt,
            heartbeat: None,
            sanitize: self.exec.sanitize,
        };
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_trial_supervised(
                self.config,
                &self.campaign,
                seed,
                ckpt,
                self.exec.checkpoint_every,
                sup,
            )
        }))
        .map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "opaque panic payload".to_owned()
            }
        })
    }

    // -- isolation mode ----------------------------------------------------

    fn job(&self, seed: u64, checkpoint: &Path) -> WorkerJob {
        WorkerJob {
            config_spec: self.exec.config_spec.clone(),
            load: self.campaign.load,
            pattern: self.campaign.pattern.to_spec(),
            faults: self.campaign.spec.to_string(),
            warmup: self.campaign.windows.warmup,
            measure: self.campaign.windows.measure,
            drain: self.campaign.windows.drain,
            trials: self.campaign.trials,
            base_seed: self.campaign.base_seed,
            seed,
            checkpoint: checkpoint.to_string_lossy().into_owned(),
            every: self.exec.checkpoint_every,
            cycle_budget: self.exec.cycle_budget,
            sanitize: self.exec.sanitize.is_some(),
        }
    }

    fn spawn_worker(&self, manifest: &Path, seed: u64, attempt: u32) -> io::Result<RunningTrial> {
        let ckpt = sibling_path(manifest, &format!(".ckpt.{seed}"));
        let cmd = match &self.exec.worker_cmd {
            Some(p) => p.clone(),
            None => std::env::current_exe()?,
        };
        let mut child = std::process::Command::new(cmd)
            .arg("trial-worker")
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()?;
        let mut stdin = child.stdin.take().expect("stdin was piped");
        let job = self.job(seed, &ckpt);
        // A worker that dies before reading its job spec must not kill the
        // campaign with a broken pipe; the exit classification covers it.
        let _ = writeln!(stdin, "{}", job.to_json());
        drop(stdin);
        let stdout = child.stdout.take().expect("stdout was piped");
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let reader = io::BufReader::new(stdout);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if tx.send(parse_worker_line(&line)).is_err() {
                    break;
                }
            }
        });
        Ok(RunningTrial {
            seed,
            attempt,
            child,
            rx,
            started: Instant::now(),
            killed_for_deadline: false,
            last_heartbeat: None,
            result: None,
            stop: None,
            error: None,
        })
    }

    fn run_isolated(
        &self,
        manifest: &Path,
        workers: usize,
        interrupt: Option<&AtomicBool>,
    ) -> Result<ExecutorReport, CampaignError> {
        let (mut trials, mut file) = open_manifest(&self.config, &self.campaign, manifest)?;
        let resumed = trials.len() as u32;
        let total = self.campaign.trials as usize;
        let base = self.campaign.base_seed;
        let mut next_fresh = trials.len();
        let mut ready: BTreeMap<u64, Trial> = BTreeMap::new();
        let mut failures_by_seed: BTreeMap<u64, Vec<TrialFailure>> = BTreeMap::new();
        let mut retry_at: Vec<(Instant, u64)> = Vec::new();
        let mut running: Vec<RunningTrial> = Vec::new();
        let mut quarantined: Vec<QuarantinedTrial> = Vec::new();
        let mut retries = 0u64;
        let mut new_trials = 0u32;
        let mut interrupted = false;
        let is_set = |i: Option<&AtomicBool>| i.is_some_and(|f| f.load(Ordering::SeqCst));

        while trials.len() < total {
            if is_set(interrupt) {
                interrupted = true;
                for r in &mut running {
                    let _ = r.child.kill();
                    let _ = r.child.wait();
                }
                break;
            }

            // Fill free worker slots: due retries first, then fresh seeds.
            while running.len() < workers {
                let now = Instant::now();
                if let Some(pos) = retry_at.iter().position(|(t, _)| *t <= now) {
                    let (_, seed) = retry_at.remove(pos);
                    let attempt = failures_by_seed.get(&seed).map_or(0, Vec::len) as u32 + 1;
                    running.push(self.spawn_worker(manifest, seed, attempt)?);
                    continue;
                }
                let scheduled = trials.len() + ready.len() + running.len() + retry_at.len();
                if next_fresh >= total || scheduled >= total {
                    break;
                }
                let seed = base + next_fresh as u64;
                next_fresh += 1;
                running.push(self.spawn_worker(manifest, seed, 1)?);
            }

            // Poll the fleet.
            let mut i = 0;
            while i < running.len() {
                running[i].drain_messages();
                if let Some(deadline) = self.exec.deadline {
                    let r = &mut running[i];
                    if !r.killed_for_deadline
                        && r.result.is_none()
                        && r.stop.is_none()
                        && r.started.elapsed() >= deadline
                    {
                        let _ = r.child.kill();
                        r.killed_for_deadline = true;
                    }
                }
                match running[i].child.try_wait() {
                    Ok(Some(status)) => {
                        let mut done = running.swap_remove(i);
                        // The reader thread may still be flushing the final
                        // lines; give it a bounded moment to drain.
                        let settle = Instant::now() + Duration::from_millis(500);
                        while done.result.is_none() && done.error.is_none() {
                            match done.rx.recv_timeout(Duration::from_millis(20)) {
                                Ok(msg) => done.apply(msg),
                                Err(_) if Instant::now() >= settle => break,
                                Err(mpsc::RecvTimeoutError::Disconnected) => break,
                                Err(mpsc::RecvTimeoutError::Timeout) => {}
                            }
                        }
                        done.drain_messages();
                        self.settle_worker(
                            done,
                            status,
                            manifest,
                            &mut ready,
                            &mut failures_by_seed,
                            &mut retry_at,
                            &mut quarantined,
                            &mut retries,
                        );
                    }
                    _ => i += 1,
                }
            }

            // Flush completed trials to the manifest strictly in seed order.
            while let Some(t) = ready.remove(&(base + trials.len() as u64)) {
                append_trial(&mut file, &t)?;
                trials.push(t);
                new_trials += 1;
            }
            if trials.len() < total {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        while let Some(t) = ready.remove(&(base + trials.len() as u64)) {
            append_trial(&mut file, &t)?;
            trials.push(t);
            new_trials += 1;
        }
        Ok(ExecutorReport {
            report: CampaignReport {
                spec: self.campaign.spec,
                trials,
            },
            resumed_trials: resumed,
            new_trials,
            retries,
            quarantined,
            interrupted,
        })
    }

    /// Folds one exited worker into the scheduling state: a clean result
    /// goes to the in-order buffer, anything else becomes a classified
    /// failure that is retried (with backoff) or quarantined.
    #[allow(clippy::too_many_arguments)]
    fn settle_worker(
        &self,
        done: RunningTrial,
        status: std::process::ExitStatus,
        manifest: &Path,
        ready: &mut BTreeMap<u64, Trial>,
        failures_by_seed: &mut BTreeMap<u64, Vec<TrialFailure>>,
        retry_at: &mut Vec<(Instant, u64)>,
        quarantined: &mut Vec<QuarantinedTrial>,
        retries: &mut u64,
    ) {
        let seed = done.seed;
        if status.success() {
            if let Some(trial) = done.result {
                ready.insert(seed, trial);
                failures_by_seed.remove(&seed);
                return;
            }
        }
        let (kind, detail) = if let Some((kind, detail)) = done.stop {
            // Cooperative stops carry a deterministic detail; keep it
            // verbatim so repeat-failure quarantine matching works.
            (kind, detail)
        } else if let Some(msg) = done.error {
            (FailureKind::Exit(1), msg)
        } else {
            let (kind, mut detail) = classify_exit(status, done.killed_for_deadline);
            if let Some(cycle) = done.last_heartbeat {
                detail.push_str(&format!(" (last heartbeat at cycle {cycle})"));
            }
            (kind, detail)
        };
        let failures = failures_by_seed.entry(seed).or_default();
        failures.push(TrialFailure {
            attempt: done.attempt,
            kind,
            detail,
        });
        if self.quarantine_due(failures) {
            let _ = std::fs::remove_file(sibling_path(manifest, &format!(".ckpt.{seed}")));
            let failures = failures_by_seed.remove(&seed).unwrap_or_default();
            ready.insert(seed, Trial::quarantined(seed, failures.len() as u64));
            quarantined.push(QuarantinedTrial { seed, failures });
        } else {
            *retries += 1;
            let delay = self.backoff_delay(seed, done.attempt);
            retry_at.push((Instant::now() + delay, seed));
        }
    }
}

/// A worker process the isolation-mode executor is supervising.
struct RunningTrial {
    seed: u64,
    attempt: u32,
    child: std::process::Child,
    rx: mpsc::Receiver<WorkerMsg>,
    started: Instant,
    killed_for_deadline: bool,
    /// Most recently reported sim cycle (diagnostic; a worker killed on
    /// deadline restarts from its last checkpoint at or before this).
    last_heartbeat: Option<u64>,
    result: Option<Trial>,
    stop: Option<(FailureKind, String)>,
    error: Option<String>,
}

impl RunningTrial {
    fn apply(&mut self, msg: WorkerMsg) {
        match msg {
            WorkerMsg::Heartbeat(cycle) => self.last_heartbeat = Some(cycle),
            WorkerMsg::Result(t) => self.result = Some(*t),
            WorkerMsg::Stopped(kind, detail) => self.stop = Some((kind, detail)),
            WorkerMsg::Error(e) => self.error = Some(e),
        }
    }

    fn drain_messages(&mut self) {
        while let Ok(msg) = self.rx.try_recv() {
            self.apply(msg);
        }
    }
}

/// One parsed line of worker stdout.
enum WorkerMsg {
    Heartbeat(u64),
    Result(Box<Trial>),
    Stopped(FailureKind, String),
    Error(String),
}

fn parse_worker_line(line: &str) -> WorkerMsg {
    if let Some(rest) = line.strip_prefix("heartbeat ") {
        if let Ok(cycle) = rest.trim().parse() {
            return WorkerMsg::Heartbeat(cycle);
        }
    }
    if let Some(rest) = line.strip_prefix("result ") {
        if let Some(trial) = parse_trial_line(rest) {
            return WorkerMsg::Result(Box::new(trial));
        }
        return WorkerMsg::Error(format!("unparsable result line: {rest}"));
    }
    if let Some(rest) = line.strip_prefix("stopped timeout ") {
        return WorkerMsg::Stopped(FailureKind::Timeout, rest.to_owned());
    }
    if let Some(rest) = line.strip_prefix("stopped sanitizer ") {
        return WorkerMsg::Stopped(FailureKind::Sanitizer, rest.to_owned());
    }
    if let Some(rest) = line.strip_prefix("error ") {
        return WorkerMsg::Error(rest.to_owned());
    }
    WorkerMsg::Error(format!("unknown worker line: {line}"))
}

// ---------------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------------

/// The job spec an isolation-mode worker reads as one JSON line on stdin.
///
/// `config_spec` is opaque to this crate: the binary hosting the
/// `trial-worker` subcommand both renders it (parent side, via
/// [`ExecutorConfig::config_spec`]) and parses it back into a
/// [`ClusterConfig`] (worker side).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerJob {
    /// Opaque cluster-config spec (see type docs).
    pub config_spec: String,
    /// Offered load per core.
    pub load: f64,
    /// Traffic pattern, in [`Pattern::to_spec`] form.
    pub pattern: String,
    /// Fault intensity, in [`FaultSpec`](mempool::FaultSpec) spec form.
    pub faults: String,
    /// Warmup window of the trial, in cycles.
    pub warmup: u64,
    /// Measurement window of the trial, in cycles.
    pub measure: u64,
    /// Drain budget of the trial, in cycles.
    pub drain: u64,
    /// Total trials of the campaign (digest context, not used by a worker).
    pub trials: u32,
    /// First seed of the campaign (digest context, not used by a worker).
    pub base_seed: u64,
    /// The seed of the one trial this job runs.
    pub seed: u64,
    /// Path of this trial's private checkpoint file.
    pub checkpoint: String,
    /// Mid-trial checkpoint interval in cycles (`0` disables).
    pub every: u64,
    /// Absolute sim-cycle budget (cooperatively enforced in the worker).
    pub cycle_budget: Option<u64>,
    /// Whether to attach the invariant sanitizer.
    pub sanitize: bool,
}

impl WorkerJob {
    /// Renders the job as a single JSON line.
    pub fn to_json(&self) -> String {
        let budget = match self.cycle_budget {
            Some(b) => b.to_string(),
            None => "null".to_owned(),
        };
        format!(
            "{{\"config_spec\":\"{}\",\"load\":{},\"pattern\":\"{}\",\"faults\":\"{}\",\
             \"warmup\":{},\"measure\":{},\"drain\":{},\"trials\":{},\"base_seed\":{},\
             \"seed\":{},\"checkpoint\":\"{}\",\"every\":{},\"cycle_budget\":{},\
             \"sanitize\":{}}}",
            json_escape(&self.config_spec),
            self.load,
            json_escape(&self.pattern),
            json_escape(&self.faults),
            self.warmup,
            self.measure,
            self.drain,
            self.trials,
            self.base_seed,
            self.seed,
            json_escape(&self.checkpoint),
            self.every,
            budget,
            self.sanitize,
        )
    }

    /// Parses a job from its JSON line form.
    ///
    /// # Errors
    ///
    /// A static description of the first malformed or missing field.
    pub fn from_json(s: &str) -> Result<WorkerJob, &'static str> {
        let fields = parse_flat_json(s).ok_or("malformed job spec JSON")?;
        let get = |k: &str| fields.get(k).ok_or("missing job spec field");
        let num = |k: &str| -> Result<u64, &'static str> {
            get(k)?.parse().map_err(|_| "non-numeric job spec field")
        };
        Ok(WorkerJob {
            config_spec: get("config_spec")?.clone(),
            load: get("load")?
                .parse()
                .map_err(|_| "non-numeric job spec field")?,
            pattern: get("pattern")?.clone(),
            faults: get("faults")?.clone(),
            warmup: num("warmup")?,
            measure: num("measure")?,
            drain: num("drain")?,
            trials: num("trials")? as u32,
            base_seed: num("base_seed")?,
            seed: num("seed")?,
            checkpoint: get("checkpoint")?.clone(),
            every: num("every")?,
            cycle_budget: match get("cycle_budget")?.as_str() {
                "null" => None,
                v => Some(v.parse().map_err(|_| "non-numeric job spec field")?),
            },
            sanitize: get("sanitize")? == "true",
        })
    }

    /// Reconstructs the campaign parameters this job's trial belongs to.
    ///
    /// # Errors
    ///
    /// A description of the unparsable pattern or fault spec.
    pub fn campaign(&self) -> Result<CampaignConfig, String> {
        Ok(CampaignConfig {
            load: self.load,
            pattern: Pattern::parse_spec(&self.pattern)
                .ok_or_else(|| format!("bad pattern spec `{}`", self.pattern))?,
            windows: Windows {
                warmup: self.warmup,
                measure: self.measure,
                drain: self.drain,
            },
            spec: self
                .faults
                .parse()
                .map_err(|e| format!("bad fault spec `{}`: {e}", self.faults))?,
            trials: self.trials,
            base_seed: self.base_seed,
        })
    }
}

/// Runs one trial as an isolation-mode worker: heartbeat lines stream to
/// stdout while the trial runs, then exactly one `result ...` or
/// `stopped ...` line. The caller (the `trial-worker` subcommand) parses
/// `job.config_spec` into `config` first.
///
/// # Errors
///
/// Configuration, I/O, and checkpoint errors (the parent classifies the
/// nonzero exit).
pub fn run_trial_worker(config: ClusterConfig, job: &WorkerJob) -> Result<(), CampaignError> {
    let campaign = job
        .campaign()
        .map_err(|e| CampaignError::Io(io::Error::new(io::ErrorKind::InvalidData, e)))?;
    let mut beat = |cycle: u64| {
        println!("heartbeat {cycle}");
        let _ = io::stdout().flush();
    };
    let sup = TrialSupervision {
        cancel: job
            .cycle_budget
            .map(|b| CancelToken::new().with_cycle_limit(b)),
        interrupt: None,
        heartbeat: Some(&mut beat),
        sanitize: job.sanitize.then(SanitizerConfig::default),
    };
    let outcome = run_trial_supervised(
        config,
        &campaign,
        job.seed,
        Path::new(&job.checkpoint),
        job.every,
        sup,
    )?;
    match outcome {
        Ok(trial) => println!("result {}", format_trial_line(&trial)),
        Err(TrialStop::Cancelled(cause)) => {
            println!("stopped timeout {}", TrialStop::Cancelled(cause))
        }
        Err(TrialStop::Sanitizer(what)) => println!("stopped sanitizer {what}"),
        Err(TrialStop::Interrupted) => unreachable!("workers install no interrupt flag"),
    }
    let _ = io::stdout().flush();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_job_json_round_trips() {
        let job = WorkerJob {
            config_spec: "topology=topH,small=true,scramble=false".to_owned(),
            load: 0.05,
            pattern: "plocal=0.8".to_owned(),
            faults: "bank_fail=2,link_drop=0.001".to_owned(),
            warmup: 100,
            measure: 400,
            drain: 50_000,
            trials: 4,
            base_seed: 11,
            seed: 13,
            checkpoint: "/tmp/weird \"path\"\\x.ckpt".to_owned(),
            every: 4_096,
            cycle_budget: Some(1_000_000),
            sanitize: true,
        };
        let round = WorkerJob::from_json(&job.to_json()).expect("round trip");
        assert_eq!(round, job);

        let none = WorkerJob {
            cycle_budget: None,
            sanitize: false,
            ..job
        };
        let round = WorkerJob::from_json(&none.to_json()).expect("round trip");
        assert_eq!(round, none);
        assert!(round.campaign().is_ok());
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let ex = Executor::new(
            mempool::ClusterConfig::small(mempool::Topology::Top1),
            CampaignConfig::default(),
            ExecutorConfig {
                backoff_base_ms: 50,
                backoff_cap_ms: 300,
                ..ExecutorConfig::default()
            },
        );
        let a = ex.backoff_delay(7, 1);
        assert_eq!(a, ex.backoff_delay(7, 1), "same (seed, attempt) -> same delay");
        assert!(a >= Duration::from_millis(50) && a < Duration::from_millis(100));
        // Attempt 10 is far past the cap: delay stays within cap + jitter.
        let late = ex.backoff_delay(7, 10);
        assert!(late >= Duration::from_millis(300) && late < Duration::from_millis(350));
        // Disabled backoff is exactly zero.
        let off = Executor {
            exec: ExecutorConfig {
                backoff_base_ms: 0,
                ..ex.exec.clone()
            },
            ..ex.clone()
        };
        assert_eq!(off.backoff_delay(7, 3), Duration::ZERO);
    }

    #[test]
    fn quarantine_rule_fires_on_repeat_or_exhaustion() {
        let ex = Executor::new(
            mempool::ClusterConfig::small(mempool::Topology::Top1),
            CampaignConfig::default(),
            ExecutorConfig {
                max_attempts: 3,
                ..ExecutorConfig::default()
            },
        );
        let f = |kind: FailureKind, detail: &str, attempt: u32| TrialFailure {
            attempt,
            kind,
            detail: detail.to_owned(),
        };
        // One failure: retry.
        assert!(!ex.quarantine_due(&[f(FailureKind::Panic, "x", 1)]));
        // Two different failures: still retry.
        assert!(!ex.quarantine_due(&[
            f(FailureKind::Panic, "x", 1),
            f(FailureKind::Timeout, "y", 2)
        ]));
        // Two consecutive identical failures: deterministic, quarantine.
        assert!(ex.quarantine_due(&[
            f(FailureKind::Panic, "x", 1),
            f(FailureKind::Panic, "x", 2)
        ]));
        // Attempt budget exhausted: quarantine regardless of variety.
        assert!(ex.quarantine_due(&[
            f(FailureKind::Panic, "x", 1),
            f(FailureKind::Timeout, "y", 2),
            f(FailureKind::Oom, "z", 3)
        ]));
    }

    #[test]
    fn worker_lines_parse() {
        assert!(matches!(
            parse_worker_line("heartbeat 512"),
            WorkerMsg::Heartbeat(512)
        ));
        assert!(matches!(
            parse_worker_line("stopped timeout cycle budget of 10 exhausted"),
            WorkerMsg::Stopped(FailureKind::Timeout, _)
        ));
        assert!(matches!(
            parse_worker_line("error no such config"),
            WorkerMsg::Error(_)
        ));
        assert!(matches!(
            parse_worker_line("garbage"),
            WorkerMsg::Error(_)
        ));
    }
}
