//! Load-sweep experiments: the methodology behind Fig. 5 and Fig. 6.

use crate::{AddressSpace, Pattern, TrafficGen};
use mempool::{Cluster, ClusterConfig, LatencyStats, ValidateConfigError};

/// Timing windows of one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Windows {
    /// Warm-up cycles before measurement starts.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Cycle cap for the drain phase after generation stops.
    pub drain: u64,
}

impl Default for Windows {
    fn default() -> Self {
        Windows {
            warmup: 1_000,
            measure: 8_000,
            drain: 50_000,
        }
    }
}

/// One point of a load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered load λ (requests/core/cycle).
    pub offered_load: f64,
    /// Delivered throughput (responses/core/cycle) over the measurement
    /// window.
    pub throughput: f64,
    /// Round-trip latency distribution (generation → response) of requests
    /// generated in the measurement window.
    pub latency: LatencyStats,
    /// Fraction of issued requests that stayed in the local tile.
    pub locality: f64,
    /// Mean fraction of occupied global-interconnect registers per cycle
    /// (buffer-occupancy congestion metric).
    pub net_occupancy: f64,
}

impl SweepPoint {
    /// Mean round-trip latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        self.latency.mean()
    }
}

/// Runs one (topology, pattern, load) experiment on `config` and returns
/// its sweep point.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn run_point(
    config: ClusterConfig,
    pattern: Pattern,
    load: f64,
    windows: Windows,
    seed: u64,
) -> Result<SweepPoint, ValidateConfigError> {
    let map = config.address_map()?;
    let scrambler = config.scrambler()?;
    let l1_bytes = map.size_bytes() as u32;
    let cores_per_tile = config.cores_per_tile;
    let mut cluster = Cluster::new(config, |loc| {
        let (seq_base, seq_bytes, seq_total) = match scrambler {
            Some(s) => (
                s.seq_base((loc.tile) as u32),
                s.seq_bytes_per_tile(),
                s.seq_region_bytes() as u32,
            ),
            None => (0, 0, 0),
        };
        let _ = cores_per_tile;
        TrafficGen::new(
            load,
            pattern,
            AddressSpace {
                l1_bytes,
                seq_base,
                seq_bytes,
                seq_total,
                tile: loc.tile as u32,
                num_tiles: config.num_tiles as u32,
                banks_per_tile: config.banks_per_tile as u32,
            },
            64,
            seed.wrapping_mul(0x9e37_79b9).wrapping_add(loc.core as u64),
        )
    })?;

    cluster.step_cycles(windows.warmup);
    for gen in cluster.cores_mut() {
        gen.start_measuring();
    }
    let delivered_before = cluster.stats().responses_delivered;
    cluster.step_cycles(windows.measure);
    let delivered = cluster.stats().responses_delivered - delivered_before;

    // Drain so every measured request completes and contributes latency.
    for gen in cluster.cores_mut() {
        gen.stop();
    }
    let _ = cluster.run(windows.drain);

    let mut latency = LatencyStats::new();
    for gen in cluster.cores() {
        latency.merge(&gen.stats().latency);
    }
    let num_cores = cluster.config().num_cores();
    Ok(SweepPoint {
        offered_load: load,
        throughput: delivered as f64 / (windows.measure as f64 * num_cores as f64),
        latency,
        locality: cluster.stats().locality(),
        net_occupancy: cluster.stats().net_occupancy(),
    })
}

/// Runs a full load sweep (one [`run_point`] per load), spreading the
/// points over worker threads — each point is an independent cluster.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn run_sweep(
    config: ClusterConfig,
    pattern: Pattern,
    loads: &[f64],
    windows: Windows,
    seed: u64,
) -> Result<Vec<SweepPoint>, ValidateConfigError> {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(loads.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<Result<SweepPoint, ValidateConfigError>>> =
        (0..loads.len()).map(|_| None).collect();
    let slots = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&load) = loads.get(i) else { break };
                let point = run_point(config, pattern, load, windows, seed);
                slots.lock().expect("no panics while holding the lock")[i] = Some(point);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index filled"))
        .collect()
}

/// Mean waiting-plus-service time of an M/D/1 queue with unit service time
/// at utilization `rho` — the analytical model of a single SPM bank under
/// Poisson traffic (service = the bank's one access per cycle).
///
/// Used to cross-validate the simulator: on the ideal (routing-free)
/// topology, the measured round-trip latency must approach
/// `md1_latency(rho)` at low-to-moderate loads.
///
/// # Panics
///
/// Panics unless `0 <= rho < 1`.
pub fn md1_latency(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "utilization must be in [0, 1)");
    1.0 + rho / (2.0 * (1.0 - rho))
}

/// Estimates the saturation throughput: the delivered rate at an offered
/// load far beyond any feasible acceptance rate.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn saturation_throughput(
    config: ClusterConfig,
    pattern: Pattern,
    windows: Windows,
    seed: u64,
) -> Result<f64, ValidateConfigError> {
    Ok(run_point(config, pattern, 1.0, windows, seed)?.throughput)
}
