//! Load-sweep experiments: the methodology behind Fig. 5 and Fig. 6.

use crate::{AddressSpace, Pattern, TrafficGen};
use mempool::{Cluster, ClusterConfig, LatencyStats, ValidateConfigError};

/// Timing windows of one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Windows {
    /// Warm-up cycles before measurement starts.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Cycle cap for the drain phase after generation stops.
    pub drain: u64,
}

impl Default for Windows {
    fn default() -> Self {
        Windows {
            warmup: 1_000,
            measure: 8_000,
            drain: 50_000,
        }
    }
}

/// One point of a load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Offered load λ (requests/core/cycle).
    pub offered_load: f64,
    /// Delivered throughput (responses/core/cycle) over the measurement
    /// window.
    pub throughput: f64,
    /// Round-trip latency distribution (generation → response) of requests
    /// generated in the measurement window.
    pub latency: LatencyStats,
    /// Fraction of issued requests that stayed in the local tile.
    pub locality: f64,
    /// Mean fraction of occupied global-interconnect registers per cycle
    /// (buffer-occupancy congestion metric).
    pub net_occupancy: f64,
}

impl SweepPoint {
    /// Mean round-trip latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        self.latency.mean()
    }
}

/// Runs one (topology, pattern, load) experiment on `config` and returns
/// its sweep point.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn run_point(
    config: ClusterConfig,
    pattern: Pattern,
    load: f64,
    windows: Windows,
    seed: u64,
) -> Result<SweepPoint, ValidateConfigError> {
    run_point_inner(config, pattern, load, windows, seed, None).map(|(point, _)| point)
}

/// A [`SweepPoint`] together with the observability artifacts captured
/// during its run: the full per-scope metrics registry and the sampled
/// timeline (empty unless the [`ObsConfig`](mempool::ObsConfig) enabled
/// trace sampling).
#[derive(Debug, Clone)]
pub struct MeteredPoint {
    /// The aggregate sweep measurements.
    pub point: SweepPoint,
    /// Per-scope counters and latency histograms after the drain phase.
    pub metrics: mempool::MetricsRegistry,
    /// Sampled request spans (Chrome-trace exportable).
    pub timeline: mempool::TimelineTrace,
}

/// [`run_point`] with the cluster's observability recorder attached:
/// additionally returns the full [`MetricsRegistry`](mempool::MetricsRegistry)
/// snapshot taken after the drain phase and the sampled timeline, so
/// sweeps can export per-scope latency histograms, NoC activity counters
/// and Chrome traces alongside the aggregate sweep point.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn run_point_with_metrics(
    config: ClusterConfig,
    pattern: Pattern,
    load: f64,
    windows: Windows,
    seed: u64,
    obs: mempool::ObsConfig,
) -> Result<MeteredPoint, ValidateConfigError> {
    run_point_inner(config, pattern, load, windows, seed, Some(obs)).map(|(point, extras)| {
        let (metrics, timeline) = extras.expect("observability was enabled");
        MeteredPoint { point, metrics, timeline }
    })
}

fn run_point_inner(
    config: ClusterConfig,
    pattern: Pattern,
    load: f64,
    windows: Windows,
    seed: u64,
    obs: Option<mempool::ObsConfig>,
) -> Result<
    (
        SweepPoint,
        Option<(mempool::MetricsRegistry, mempool::TimelineTrace)>,
    ),
    ValidateConfigError,
> {
    let map = config.address_map()?;
    let scrambler = config.scrambler()?;
    let l1_bytes = map.size_bytes() as u32;
    let cores_per_tile = config.cores_per_tile;
    let mut cluster = Cluster::new(config, |loc| {
        let (seq_base, seq_bytes, seq_total) = match scrambler {
            Some(s) => (
                s.seq_base((loc.tile) as u32),
                s.seq_bytes_per_tile(),
                s.seq_region_bytes() as u32,
            ),
            None => (0, 0, 0),
        };
        let _ = cores_per_tile;
        TrafficGen::new(
            load,
            pattern,
            AddressSpace {
                l1_bytes,
                seq_base,
                seq_bytes,
                seq_total,
                tile: loc.tile as u32,
                num_tiles: config.num_tiles as u32,
                banks_per_tile: config.banks_per_tile as u32,
            },
            64,
            seed.wrapping_mul(0x9e37_79b9).wrapping_add(loc.core as u64),
        )
    })?;
    if let Some(obs) = obs {
        cluster.enable_observability(obs);
    }

    cluster.step_cycles(windows.warmup);
    for gen in cluster.cores_mut() {
        gen.start_measuring();
    }
    let delivered_before = cluster.stats().responses_delivered;
    cluster.step_cycles(windows.measure);
    let delivered = cluster.stats().responses_delivered - delivered_before;

    // Drain so every measured request completes and contributes latency.
    for gen in cluster.cores_mut() {
        gen.stop();
    }
    let _ = cluster.run(windows.drain);

    let mut latency = LatencyStats::new();
    for gen in cluster.cores() {
        latency.merge(&gen.stats().latency);
    }
    let num_cores = cluster.config().num_cores();
    let point = SweepPoint {
        offered_load: load,
        throughput: delivered as f64 / (windows.measure as f64 * num_cores as f64),
        latency,
        locality: cluster.stats().locality(),
        net_occupancy: cluster.stats().net_occupancy(),
    };
    let extras = cluster.observability_enabled().then(|| {
        let timeline = cluster.timeline().expect("recorder is enabled");
        (cluster.metrics_registry(), timeline)
    });
    Ok((point, extras))
}

/// Why one sweep point produced no [`SweepPoint`].
#[derive(Debug, Clone, PartialEq)]
pub enum SweepPointError {
    /// The cluster configuration failed validation.
    Config(ValidateConfigError),
    /// The worker evaluating this point panicked; carries the panic
    /// message. The other points are unaffected.
    Panicked(String),
}

impl std::fmt::Display for SweepPointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepPointError::Config(e) => write!(f, "invalid configuration: {e}"),
            SweepPointError::Panicked(msg) => write!(f, "sweep worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for SweepPointError {}

/// The outcome of [`run_sweep`]: one slot per requested load, in input
/// order. A panicking or failing point occupies its slot as a typed error
/// instead of unwinding the whole sweep, so the surviving points remain
/// usable.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// `(offered_load, outcome)` per requested load, in input order.
    pub points: Vec<(f64, Result<SweepPoint, SweepPointError>)>,
}

impl SweepReport {
    /// The successful points, in load order.
    pub fn successes(&self) -> Vec<&SweepPoint> {
        self.points
            .iter()
            .filter_map(|(_, r)| r.as_ref().ok())
            .collect()
    }

    /// The loads that produced no point, with the reason for each.
    pub fn failures(&self) -> Vec<(f64, &SweepPointError)> {
        self.points
            .iter()
            .filter_map(|(load, r)| r.as_ref().err().map(|e| (*load, e)))
            .collect()
    }

    /// Unwraps a fully-successful sweep into its points (load order).
    ///
    /// # Errors
    ///
    /// The first failing load and its error, when any point failed.
    pub fn into_complete(self) -> Result<Vec<SweepPoint>, (f64, SweepPointError)> {
        self.points
            .into_iter()
            .map(|(load, r)| r.map_err(|e| (load, e)))
            .collect()
    }
}

/// Runs a full load sweep (one [`run_point`] per load), spreading the
/// points over worker threads — each point is an independent cluster.
///
/// A point that panics (or fails validation) fills its slot in the
/// returned [`SweepReport`] with a typed [`SweepPointError`]; the
/// remaining points still run to completion and are returned.
pub fn run_sweep(
    config: ClusterConfig,
    pattern: Pattern,
    loads: &[f64],
    windows: Windows,
    seed: u64,
) -> SweepReport {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(loads.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<Result<SweepPoint, SweepPointError>>> =
        (0..loads.len()).map(|_| None).collect();
    let slots = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&load) = loads.get(i) else { break };
                // The catch_unwind boundary keeps one bad point from
                // killing the worker (and poisoning the slot mutex for
                // everyone else). `run_point` takes everything by value
                // or shared reference, so no observable state survives an
                // unwind torn — AssertUnwindSafe is sound.
                let point = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_point(config, pattern, load, windows, seed)
                }))
                .map_err(|payload| SweepPointError::Panicked(panic_message(&*payload)))
                .and_then(|r| r.map_err(SweepPointError::Config));
                // Lock despite poison: a slot write is a plain assignment,
                // so a poisoned mutex only means some *other* slot is
                // still `None`, which its own error entry reports.
                let mut guard = match slots.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                guard[i] = Some(point);
            });
        }
    });
    SweepReport {
        points: loads
            .iter()
            .zip(results)
            .map(|(&load, slot)| {
                let outcome = slot.unwrap_or_else(|| {
                    Err(SweepPointError::Panicked(
                        "worker exited without reporting".to_string(),
                    ))
                });
                (load, outcome)
            })
            .collect(),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Mean waiting-plus-service time of an M/D/1 queue with unit service time
/// at utilization `rho` — the analytical model of a single SPM bank under
/// Poisson traffic (service = the bank's one access per cycle).
///
/// Used to cross-validate the simulator: on the ideal (routing-free)
/// topology, the measured round-trip latency must approach
/// `md1_latency(rho)` at low-to-moderate loads.
///
/// # Panics
///
/// Panics unless `0 <= rho < 1`.
pub fn md1_latency(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "utilization must be in [0, 1)");
    1.0 + rho / (2.0 * (1.0 - rho))
}

/// Estimates the saturation throughput: the delivered rate at an offered
/// load far beyond any feasible acceptance rate.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn saturation_throughput(
    config: ClusterConfig,
    pattern: Pattern,
    windows: Windows,
    seed: u64,
) -> Result<f64, ValidateConfigError> {
    Ok(run_point(config, pattern, 1.0, windows, seed)?.throughput)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool::Topology;

    fn quick_windows() -> Windows {
        Windows {
            warmup: 50,
            measure: 200,
            drain: 5_000,
        }
    }

    #[test]
    fn a_panicking_point_yields_partial_results() {
        // A negative load trips `TrafficGen::new`'s rate assertion inside
        // the worker — formerly this poisoned the slot mutex and unwound
        // the whole sweep through `expect("every index filled")`.
        let loads = [0.02, -1.0, 0.05];
        let report = run_sweep(
            ClusterConfig::small(Topology::Ideal),
            Pattern::Uniform,
            &loads,
            quick_windows(),
            7,
        );
        assert_eq!(report.points.len(), loads.len());
        let successes = report.successes();
        assert_eq!(successes.len(), 2);
        assert_eq!(successes[0].offered_load, 0.02);
        assert_eq!(successes[1].offered_load, 0.05);
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        let (load, err) = failures[0];
        assert_eq!(load, -1.0);
        match err {
            SweepPointError::Panicked(msg) => {
                assert!(msg.contains("rate must be non-negative"), "{msg}")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The aligned slots keep load order; `into_complete` names the
        // failing load.
        let (bad_load, _) = report.into_complete().expect_err("one point failed");
        assert_eq!(bad_load, -1.0);
    }

    #[test]
    fn an_invalid_config_is_a_typed_error_per_point() {
        let mut config = ClusterConfig::small(Topology::Top4);
        config.num_tiles = 3; // not a power of two: validation fails
        let report = run_sweep(config, Pattern::Uniform, &[0.1], quick_windows(), 7);
        assert!(report.successes().is_empty());
        assert!(matches!(
            report.points[0].1,
            Err(SweepPointError::Config(_))
        ));
    }

    #[test]
    fn a_clean_sweep_is_complete_and_ordered() {
        let loads = [0.01, 0.04];
        let report = run_sweep(
            ClusterConfig::small(Topology::Ideal),
            Pattern::Uniform,
            &loads,
            quick_windows(),
            7,
        );
        assert!(report.failures().is_empty());
        let points = report.into_complete().expect("no failures");
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].offered_load, 0.01);
        assert_eq!(points[1].offered_load, 0.04);
    }
}
