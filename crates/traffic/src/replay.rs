//! Trace-driven replay: feed a [`MemoryTrace`] captured from a real program
//! back into the network, with or without the original timing — the
//! standard NoC methodology for studying an application's traffic on
//! alternative topologies without re-executing its compute.

use mempool::{Core, LatencyStats, MemoryTrace};
use mempool_riscv::{LoadOp, StoreOp};
use mempool_snitch::{DataRequest, DataRequestKind, DataResponse, Fetch};
use std::sync::Arc;

/// How a replay source paces its requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayTiming {
    /// Respect the recorded issue cycles: a request is eligible no earlier
    /// than its original cycle (it may slip later under backpressure).
    AsRecorded,
    /// Ignore recorded timing and issue as fast as the network accepts —
    /// measures the pure network-limited duration of the traffic.
    Compressed,
}

/// A [`Core`] implementation replaying one core's slice of a
/// [`MemoryTrace`].
///
/// Loads and stores are replayed as word accesses at the recorded
/// addresses; responses retire in-flight slots exactly as the original
/// LSU's would.
#[derive(Debug, Clone)]
pub struct ReplayCore {
    trace: Arc<MemoryTrace>,
    core: usize,
    timing: ReplayTiming,
    pos: usize,
    clock: u64,
    tags: Vec<Option<u64>>, // issue cycle per in-flight tag
    in_flight: usize,
    completed: u64,
    latency: LatencyStats,
}

impl ReplayCore {
    /// Creates the replay source for `core`'s slice of `trace` with
    /// `outstanding` request slots.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of the trace's range or `outstanding` is not
    /// in `1..=256`.
    pub fn new(
        trace: Arc<MemoryTrace>,
        core: usize,
        timing: ReplayTiming,
        outstanding: usize,
    ) -> Self {
        assert!(core < trace.num_cores(), "core outside the trace");
        assert!((1..=256).contains(&outstanding), "outstanding in 1..=256");
        ReplayCore {
            trace,
            core,
            timing,
            pos: 0,
            clock: 0,
            tags: vec![None; outstanding],
            in_flight: 0,
            completed: 0,
            latency: LatencyStats::new(),
        }
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Round-trip latency distribution (issue → response).
    pub fn latency(&self) -> &LatencyStats {
        &self.latency
    }
}

impl Core for ReplayCore {
    fn deliver(&mut self, response: DataResponse) {
        let issued = self.tags[response.tag as usize]
            .take()
            .expect("response matches an in-flight tag");
        self.in_flight -= 1;
        self.completed += 1;
        self.latency.record(self.clock + 1 - issued);
    }

    fn step(
        &mut self,
        _fetch: &mut dyn FnMut(u32) -> Fetch,
        request_ready: bool,
    ) -> Option<DataRequest> {
        self.clock += 1;
        let events = self.trace.core(self.core);
        let event = events.get(self.pos)?;
        if self.timing == ReplayTiming::AsRecorded && event.cycle > self.clock {
            return None;
        }
        if !request_ready {
            return None;
        }
        let tag = self.tags.iter().position(Option::is_none)?;
        self.tags[tag] = Some(self.clock);
        self.in_flight += 1;
        self.pos += 1;
        let kind = if event.write {
            DataRequestKind::Store {
                op: StoreOp::Sw,
                data: 0,
            }
        } else {
            DataRequestKind::Load(LoadOp::Lw)
        };
        Some(DataRequest {
            tag: tag as u8,
            addr: event.addr & !3,
            kind,
        })
    }

    fn done(&self) -> bool {
        self.pos == self.trace.core(self.core).len() && self.in_flight == 0
    }
}

/// Replays `trace` on a fresh cluster built from `config` and returns the
/// cycles the replay took.
///
/// # Errors
///
/// Propagates configuration validation errors; returns the run error when
/// the replay does not drain within `max_cycles`.
///
/// # Panics
///
/// Panics if the trace's core count differs from the configuration's.
pub fn replay_trace(
    config: mempool::ClusterConfig,
    trace: &MemoryTrace,
    timing: ReplayTiming,
    max_cycles: u64,
) -> Result<u64, Box<dyn std::error::Error>> {
    assert_eq!(
        trace.num_cores(),
        config.num_cores(),
        "trace and configuration disagree on the core count"
    );
    let shared = Arc::new(trace.clone());
    let mut cluster = mempool::Cluster::new(config, |loc| {
        ReplayCore::new(Arc::clone(&shared), loc.core, timing, 8)
    })?;
    let cycles = cluster.run(max_cycles)?;
    Ok(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempool::TraceEvent;

    fn tiny_trace(cores: usize, events_per_core: usize) -> MemoryTrace {
        let mut trace = MemoryTrace::new(cores);
        for c in 0..cores {
            for i in 0..events_per_core {
                trace.record(
                    c,
                    TraceEvent {
                        cycle: (i as u64 + 1) * 3,
                        addr: ((c * events_per_core + i) * 4) as u32,
                        write: i % 2 == 0,
                    },
                );
            }
        }
        trace
    }

    fn drive(core: &mut ReplayCore, cycles: u64, respond_after: u64) {
        let mut pending: Vec<(u64, u8)> = Vec::new();
        for now in 1..=cycles {
            let mut i = 0;
            while i < pending.len() {
                if pending[i].0 <= now {
                    let (_, tag) = pending.remove(i);
                    core.deliver(DataResponse { tag, data: 0 });
                } else {
                    i += 1;
                }
            }
            if let Some(req) = core.step(&mut |_| Fetch::Stall, true) {
                pending.push((now + respond_after, req.tag));
            }
        }
    }

    #[test]
    fn replays_every_event_once() {
        let trace = Arc::new(tiny_trace(2, 10));
        let mut core = ReplayCore::new(Arc::clone(&trace), 0, ReplayTiming::Compressed, 4);
        drive(&mut core, 200, 2);
        assert!(core.done());
        assert_eq!(core.completed(), 10);
    }

    #[test]
    fn as_recorded_respects_issue_cycles() {
        let trace = Arc::new(tiny_trace(1, 5));
        let mut core = ReplayCore::new(Arc::clone(&trace), 0, ReplayTiming::AsRecorded, 8);
        // At cycle 2 nothing may issue yet (first event is at cycle 3).
        assert!(core.step(&mut |_| Fetch::Stall, true).is_none());
        assert!(core.step(&mut |_| Fetch::Stall, true).is_none());
        assert!(core.step(&mut |_| Fetch::Stall, true).is_some());
    }

    #[test]
    fn compressed_issues_back_to_back() {
        let trace = Arc::new(tiny_trace(1, 5));
        let mut core = ReplayCore::new(Arc::clone(&trace), 0, ReplayTiming::Compressed, 8);
        for _ in 0..5 {
            assert!(core.step(&mut |_| Fetch::Stall, true).is_some());
        }
        assert!(core.step(&mut |_| Fetch::Stall, true).is_none());
    }

    #[test]
    fn backpressure_stalls_replay() {
        let trace = Arc::new(tiny_trace(1, 3));
        let mut core = ReplayCore::new(Arc::clone(&trace), 0, ReplayTiming::Compressed, 8);
        assert!(core.step(&mut |_| Fetch::Stall, false).is_none());
        assert!(!core.done());
    }
}
