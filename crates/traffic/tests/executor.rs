//! Supervised-executor contract tests: clean runs match the plain
//! campaign runner bit-for-bit, transient failures are retried with the
//! result unchanged, deterministic failures quarantine with partial
//! results, cycle budgets become typed timeouts, corrupt checkpoints are
//! typed errors (and the executor self-heals them), and an interrupted
//! campaign resumed to completion serializes byte-identically to an
//! uninterrupted one.

use mempool::{ClusterConfig, Topology};
use mempool_traffic::{
    run_campaign, run_trial_supervised, trial_cluster, CampaignConfig, CampaignError, Executor,
    ExecutorConfig, FailureKind, TrialCheckpoint, TrialOutcome, TrialPhase, TrialSupervision,
    Windows,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

fn campaign() -> CampaignConfig {
    CampaignConfig {
        spec: "bank_fail=1,link_drop=0.001".parse().expect("valid spec"),
        windows: Windows {
            warmup: 100,
            measure: 400,
            drain: 50_000,
        },
        trials: 3,
        base_seed: 11,
        ..CampaignConfig::default()
    }
}

fn config() -> ClusterConfig {
    ClusterConfig::small(Topology::Top1)
}

/// Executor policy for tests: no backoff sleeps, small checkpoints.
fn exec() -> ExecutorConfig {
    ExecutorConfig {
        backoff_base_ms: 0,
        checkpoint_every: 64,
        ..ExecutorConfig::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("mempool-exec-{name}-{}", std::process::id()));
    for suffix in ["", ".ckpt", ".tmp", ".ckpt.tmp"] {
        let mut p = path.as_os_str().to_owned();
        p.push(suffix);
        std::fs::remove_file(PathBuf::from(p)).ok();
    }
    path
}

#[test]
fn clean_executor_run_matches_plain_campaign() {
    let manifest = scratch("clean");
    let plain = run_campaign(config(), &campaign()).expect("valid config");
    let report = Executor::new(config(), campaign(), exec())
        .run(&manifest, None)
        .expect("campaign runs");
    assert_eq!(report.report, plain, "supervision must not perturb trials");
    assert_eq!(report.retries, 0);
    assert_eq!(report.new_trials, 3);
    assert_eq!(report.resumed_trials, 0);
    assert!(report.quarantined.is_empty());
    assert!(!report.interrupted);
    std::fs::remove_file(&manifest).ok();
}

/// Fails the first attempt of the first trial only (a transient fault).
fn fail_first_attempt_of_first_trial(seed: u64, attempt: u32) -> bool {
    seed == 11 && attempt == 1
}

#[test]
fn transient_failure_is_retried_without_perturbing_results() {
    let manifest = scratch("transient");
    let plain = run_campaign(config(), &campaign()).expect("valid config");
    let mut policy = exec();
    policy.inject_failure = Some(fail_first_attempt_of_first_trial);
    let report = Executor::new(config(), campaign(), policy)
        .run(&manifest, None)
        .expect("campaign runs");
    assert_eq!(report.retries, 1, "exactly one attempt was retried");
    assert!(report.quarantined.is_empty(), "a transient never quarantines");
    assert_eq!(
        report.report, plain,
        "the retried trial must be bit-identical to an undisturbed one"
    );
    std::fs::remove_file(&manifest).ok();
}

/// Fails every attempt of the second trial (a deterministic fault).
fn fail_second_trial_always(seed: u64, _attempt: u32) -> bool {
    seed == 12
}

#[test]
fn deterministic_failure_quarantines_with_partial_results() {
    let manifest = scratch("quarantine");
    let mut policy = exec();
    policy.inject_failure = Some(fail_second_trial_always);
    let report = Executor::new(config(), campaign(), policy)
        .run(&manifest, None)
        .expect("campaign completes despite the bad trial");

    // The campaign finished: all three trials are recorded, one of them
    // as a quarantine placeholder carrying its failure history.
    assert_eq!(report.report.trials.len(), 3);
    assert_eq!(report.quarantined.len(), 1);
    let q = &report.quarantined[0];
    assert_eq!(q.seed, 12);
    // Two identical failures prove determinism; no third attempt is made.
    assert_eq!(q.failures.len(), 2, "identical repeat short-circuits retries");
    assert!(q.failures.iter().all(|f| f.kind == FailureKind::Panic));
    assert!(matches!(
        report.report.trials[1].outcome,
        TrialOutcome::Quarantined { attempts: 2 }
    ));
    // The healthy trials are untouched.
    let plain = run_campaign(config(), &campaign()).expect("valid config");
    assert_eq!(report.report.trials[0], plain.trials[0]);
    assert_eq!(report.report.trials[2], plain.trials[2]);

    // Resuming the finished campaign re-runs nothing and keeps the
    // quarantine line.
    let resumed = Executor::new(config(), campaign(), exec())
        .run(&manifest, None)
        .expect("resume is a no-op");
    assert_eq!(resumed.resumed_trials, 3);
    assert_eq!(resumed.new_trials, 0);
    assert_eq!(resumed.report, report.report);
    std::fs::remove_file(&manifest).ok();
}

#[test]
fn cycle_budget_overrun_is_a_typed_timeout_and_quarantines() {
    let manifest = scratch("budget");
    let mut policy = exec();
    policy.cycle_budget = Some(50); // far below warmup + measure
    let report = Executor::new(config(), campaign(), policy)
        .run(&manifest, None)
        .expect("campaign completes by quarantining every trial");
    assert_eq!(report.quarantined.len(), 3, "no trial fits in 50 cycles");
    for q in &report.quarantined {
        assert_eq!(q.failures.len(), 2, "deterministic overrun repeats once");
        for f in &q.failures {
            assert_eq!(f.kind, FailureKind::Timeout, "{f:?}");
            assert!(f.detail.contains("cycle"), "{f:?}");
        }
    }
    assert_eq!(report.report.quarantined(), 3);
    std::fs::remove_file(&manifest).ok();
}

/// Satellite regression: a corrupt or mismatched `<manifest>.ckpt` is a
/// typed [`CampaignError`], never a panic or a silent misresume.
#[test]
fn corrupt_checkpoint_is_a_typed_error() {
    let campaign = campaign();
    let seed = campaign.base_seed;
    let sup = || TrialSupervision::default();

    // Garbage bytes: bad magic.
    let ckpt = scratch("ckpt-garbage");
    std::fs::write(&ckpt, b"not a checkpoint at all").expect("writable");
    let err = run_trial_supervised(config(), &campaign, seed, &ckpt, 64, sup())
        .expect_err("garbage must not resume");
    assert!(matches!(err, CampaignError::CheckpointCorrupt(_)), "{err:?}");

    // Truncation below the fixed header.
    std::fs::write(&ckpt, [0u8; 7]).expect("writable");
    let err = run_trial_supervised(config(), &campaign, seed, &ckpt, 64, sup())
        .expect_err("truncated must not resume");
    assert!(matches!(err, CampaignError::CheckpointCorrupt(_)), "{err:?}");

    // A structurally valid checkpoint for a *different* trial.
    let cluster = trial_cluster(config(), &campaign, seed + 1).expect("valid config");
    TrialCheckpoint {
        seed: seed + 1,
        phase: TrialPhase::Generate,
        snapshot: cluster.snapshot(),
    }
    .write_file(&ckpt)
    .expect("writable");
    let err = run_trial_supervised(config(), &campaign, seed, &ckpt, 64, sup())
        .expect_err("foreign checkpoint must not resume");
    assert!(matches!(err, CampaignError::CheckpointMismatch), "{err:?}");

    // A bit-flip inside a real checkpoint: the embedded snapshot digest
    // catches it.
    let cluster = trial_cluster(config(), &campaign, seed).expect("valid config");
    TrialCheckpoint {
        seed,
        phase: TrialPhase::Generate,
        snapshot: cluster.snapshot(),
    }
    .write_file(&ckpt)
    .expect("writable");
    let mut bytes = std::fs::read(&ckpt).expect("readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&ckpt, &bytes).expect("writable");
    let err = run_trial_supervised(config(), &campaign, seed, &ckpt, 64, sup())
        .expect_err("bit-flipped must not resume");
    assert!(matches!(err, CampaignError::CheckpointCorrupt(_)), "{err:?}");

    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn executor_self_heals_a_corrupt_checkpoint() {
    let manifest = scratch("heal");
    let mut ckpt = manifest.as_os_str().to_owned();
    ckpt.push(".ckpt");
    let ckpt = PathBuf::from(ckpt);
    std::fs::write(&ckpt, b"garbage left by a crashed attempt").expect("writable");

    let plain = run_campaign(config(), &campaign()).expect("valid config");
    let report = Executor::new(config(), campaign(), exec())
        .run(&manifest, None)
        .expect("campaign survives the bad checkpoint");
    assert_eq!(report.retries, 1, "the poisoned attempt is retried once");
    assert!(report.quarantined.is_empty());
    assert_eq!(report.report, plain, "results are unperturbed after healing");
    assert!(!ckpt.exists(), "the bad checkpoint was removed");
    std::fs::remove_file(&manifest).ok();
}

#[test]
fn interrupted_campaign_resumes_to_identical_json() {
    let baseline_manifest = scratch("json-baseline");
    let baseline = Executor::new(config(), campaign(), exec())
        .run(&baseline_manifest, None)
        .expect("baseline runs");

    // An interrupt flag that is already raised stops before any trial.
    let manifest = scratch("json-resume");
    let flag = AtomicBool::new(true);
    let stopped = Executor::new(config(), campaign(), exec())
        .run(&manifest, Some(&flag))
        .expect("interrupt is clean");
    assert!(stopped.interrupted);
    assert_eq!(stopped.new_trials, 0);

    // Resuming runs the whole campaign; the serialized report is
    // byte-identical to the uninterrupted baseline.
    flag.store(false, Ordering::SeqCst);
    let resumed = Executor::new(config(), campaign(), exec())
        .run(&manifest, Some(&flag))
        .expect("resume completes");
    assert!(!resumed.interrupted);
    assert_eq!(
        resumed.report.to_json(),
        baseline.report.to_json(),
        "resume must serialize bit-identically"
    );
    std::fs::remove_file(&baseline_manifest).ok();
    std::fs::remove_file(&manifest).ok();
}
