//! Shape assertions from §V of the paper, on a reduced cluster (16 tiles /
//! 64 cores) so the tests stay fast. The full-size sweeps live in the bench
//! harness (`cargo bench -p mempool-bench --bench fig5/fig6`).

use mempool::{ClusterConfig, Topology};
use mempool_traffic::{run_point, Pattern, Windows};

fn windows() -> Windows {
    Windows {
        warmup: 500,
        measure: 3_000,
        drain: 60_000,
    }
}

#[test]
fn below_saturation_everything_is_delivered() {
    for topo in [Topology::Top1, Topology::Top4, Topology::TopH, Topology::Ideal] {
        let p = run_point(ClusterConfig::small(topo), Pattern::Uniform, 0.02, windows(), 1)
            .unwrap();
        assert!(
            (p.throughput - 0.02).abs() < 0.005,
            "{topo}: throughput {} at load 0.02",
            p.throughput
        );
    }
}

#[test]
fn top1_saturates_far_below_top4_and_toph() {
    // §V-A: "At a load of 0.10, Top1 becomes congested, while Top4 and TopH
    // support almost four times that load."
    let sat = |topo| {
        run_point(ClusterConfig::small(topo), Pattern::Uniform, 1.0, windows(), 2)
            .unwrap()
            .throughput
    };
    let top1 = sat(Topology::Top1);
    let top4 = sat(Topology::Top4);
    let toph = sat(Topology::TopH);
    assert!(
        top4 > 2.0 * top1,
        "Top4 saturation {top4} not well above Top1 {top1}"
    );
    assert!(
        toph > 2.0 * top1,
        "TopH saturation {toph} not well above Top1 {top1}"
    );
    assert!(
        toph >= top4 * 0.9,
        "TopH {toph} should be at least comparable to Top4 {top4}"
    );
}

#[test]
fn latency_explodes_beyond_saturation() {
    // §V-A Fig. 5b: average latency blows up past the congestion point.
    let low = run_point(
        ClusterConfig::small(Topology::Top1),
        Pattern::Uniform,
        0.02,
        windows(),
        3,
    )
    .unwrap();
    let high = run_point(
        ClusterConfig::small(Topology::Top1),
        Pattern::Uniform,
        0.30,
        windows(),
        3,
    )
    .unwrap();
    assert!(low.avg_latency() < 15.0, "zero-ish load latency {}", low.avg_latency());
    assert!(
        high.avg_latency() > 4.0 * low.avg_latency(),
        "no explosion: {} vs {}",
        high.avg_latency(),
        low.avg_latency()
    );
}

#[test]
fn toph_low_load_latency_beats_top4() {
    // §V-A: "Due to TopH's three-cycle latency to a local group, it
    // achieves a smaller average latency than Top4."
    let toph = run_point(
        ClusterConfig::small(Topology::TopH),
        Pattern::Uniform,
        0.05,
        windows(),
        4,
    )
    .unwrap();
    let top4 = run_point(
        ClusterConfig::small(Topology::Top4),
        Pattern::Uniform,
        0.05,
        windows(),
        4,
    )
    .unwrap();
    assert!(
        toph.avg_latency() < top4.avg_latency(),
        "TopH {} not below Top4 {}",
        toph.avg_latency(),
        top4.avg_latency()
    );
}

#[test]
fn higher_p_local_raises_throughput_and_lowers_latency() {
    // §V-B Fig. 6: locality monotonically improves both metrics.
    let cfg = ClusterConfig::small(Topology::TopH);
    let at = |p_local: f64| {
        run_point(cfg, Pattern::PLocal { p_local }, 1.0, windows(), 5).unwrap()
    };
    let p00 = at(0.0);
    let p50 = at(0.5);
    let p100 = at(1.0);
    assert!(
        p50.throughput > p00.throughput && p100.throughput > p50.throughput,
        "throughput not monotone: {} {} {}",
        p00.throughput,
        p50.throughput,
        p100.throughput
    );
    // Fully local traffic approaches one request per core per cycle.
    assert!(p100.throughput > 0.8, "local throughput {}", p100.throughput);
    let low_load = |p_local: f64| {
        run_point(cfg, Pattern::PLocal { p_local }, 0.1, windows(), 6)
            .unwrap()
            .avg_latency()
    };
    assert!(low_load(1.0) < low_load(0.0));
}

#[test]
fn locality_counter_tracks_pattern() {
    let cfg = ClusterConfig::small(Topology::TopH);
    let all_local = run_point(cfg, Pattern::PLocal { p_local: 1.0 }, 0.2, windows(), 7).unwrap();
    assert!(all_local.locality > 0.99, "locality {}", all_local.locality);
    let uniform = run_point(cfg, Pattern::Uniform, 0.2, windows(), 7).unwrap();
    assert!(uniform.locality < 0.2, "locality {}", uniform.locality);
}

#[test]
fn buffer_occupancy_tracks_congestion() {
    // The buffer-occupancy congestion metric: near-empty registers below
    // saturation, heavily occupied beyond it.
    let cfg = ClusterConfig::small(Topology::Top1);
    let low = run_point(cfg, Pattern::Uniform, 0.02, windows(), 9).unwrap();
    let high = run_point(cfg, Pattern::Uniform, 0.30, windows(), 9).unwrap();
    assert!(low.net_occupancy < 0.2, "low-load occupancy {}", low.net_occupancy);
    assert!(
        high.net_occupancy > 3.0 * low.net_occupancy,
        "occupancy did not grow with congestion: {} vs {}",
        high.net_occupancy,
        low.net_occupancy
    );
}

#[test]
fn hotspot_collapses_every_topology() {
    // All 64 cores hammer one tile's 16 banks: the aggregate service rate
    // is 16 accesses/cycle -> 0.25 req/core/cycle upper bound, and the
    // response path concentration pushes real throughput well below the
    // uniform saturation for Top4/TopH.
    let hot = Pattern::HotSpot {
        base: 0x10000,
        bytes: 64, // one word per bank of one tile
    };
    for topo in [Topology::Top4, Topology::TopH] {
        let uniform = run_point(ClusterConfig::small(topo), Pattern::Uniform, 1.0, windows(), 11)
            .unwrap()
            .throughput;
        let hotspot = run_point(ClusterConfig::small(topo), hot, 1.0, windows(), 11)
            .unwrap()
            .throughput;
        assert!(
            hotspot < 0.6 * uniform,
            "{topo}: hotspot {hotspot} not below uniform {uniform}"
        );
        assert!(hotspot > 0.0, "{topo}: hotspot deadlocked");
    }
}

#[test]
fn tile_heat_identifies_the_hotspot() {
    // HotSpot traffic at address 0x10000: with 4 KiB sequential regions on
    // the small cluster, 0x10000 = 64 KiB sits in the interleaved region;
    // its 64-byte window maps to one tile's 16 banks.
    let cfg = ClusterConfig::small(Topology::TopH);
    let map = cfg.address_map().unwrap();
    let scr = cfg.scrambler().unwrap().unwrap();
    let hot_tile = map.decode(scr.scramble(0x10000)).unwrap().tile as usize;

    let pattern = Pattern::HotSpot { base: 0x10000, bytes: 64 };
    // Build a cluster directly so we can inspect per-tile counters.
    let point = run_point(cfg, pattern, 0.2, windows(), 13).unwrap();
    let _ = point; // throughput sanity is covered elsewhere

    let mut cluster = mempool::Cluster::new(cfg, |loc| {
        mempool_traffic::TrafficGen::new(
            0.2,
            pattern,
            mempool_traffic::AddressSpace {
                l1_bytes: map.size_bytes() as u32,
                seq_base: 0,
                seq_bytes: 0,
                seq_total: 0,
                tile: loc.tile as u32,
                num_tiles: cfg.num_tiles as u32,
                banks_per_tile: cfg.banks_per_tile as u32,
            },
            64,
            loc.core as u64,
        )
    })
    .unwrap();
    cluster.step_cycles(2_000);
    let (tile, share) = cluster.stats().hottest_tile().expect("accesses happened");
    assert_eq!(tile, hot_tile);
    assert!(share > 0.99, "hot tile share {share}");
}

#[test]
fn ideal_topology_matches_md1_queueing_theory() {
    // On the ideal crossbar the only *network-side* latency source is bank
    // conflicts: each bank approximates an M/D/1 queue with unit service.
    // The cluster-side latency (request issue to response delivery, i.e.
    // excluding the generator's own source queue) must track
    // 1 + rho/(2(1-rho)).
    use mempool_traffic::{md1_latency, AddressSpace, TrafficGen};
    let cfg = ClusterConfig::small(Topology::Ideal); // 64 cores, 256 banks
    let l1_bytes = cfg.address_map().unwrap().size_bytes() as u32;
    for load in [0.2f64, 0.5, 0.8] {
        let rho = load * cfg.num_cores() as f64 / cfg.num_banks() as f64;
        let analytic = md1_latency(rho);
        let mut cluster = mempool::Cluster::new(cfg, |loc| {
            TrafficGen::new(
                load,
                Pattern::Uniform,
                AddressSpace {
                    l1_bytes,
                    seq_base: 0,
                    seq_bytes: 0,
                    seq_total: 0,
                    tile: loc.tile as u32,
                    num_tiles: cfg.num_tiles as u32,
                    banks_per_tile: cfg.banks_per_tile as u32,
                },
                64,
                1000 + loc.core as u64,
            )
        })
        .unwrap();
        cluster.step_cycles(6_000);
        let measured = cluster.stats().latency.mean();
        assert!(
            (measured - analytic).abs() < 0.05 + 0.12 * analytic,
            "load {load}: simulated {measured:.3} vs M/D/1 {analytic:.3}"
        );
    }
}

#[test]
fn trace_replay_reproduces_topology_ordering() {
    // Record matmul's memory schedule once on TopH, then replay the
    // identical traffic on Top1 and TopH (compressed): the network-limited
    // replay must show the same topology ordering as the real runs.
    use mempool_kernels::{Geometry, Kernel, Matmul};
    use mempool_traffic::{replay_trace, ReplayTiming};

    let cfg = ClusterConfig::small(Topology::TopH);
    let geom = Geometry::from_config(&cfg, 4096);
    let kernel = Matmul::new(geom, 32).unwrap();
    let program = mempool_riscv::assemble(&kernel.source()).unwrap();
    let mut cluster = mempool::Cluster::snitch(cfg).unwrap();
    cluster.load_program(&program).unwrap();
    kernel.init(&mut cluster, 2021);
    cluster.begin_trace();
    let original = cluster.run(50_000_000).unwrap();
    let trace = cluster.take_trace().expect("trace recorded");
    assert!(trace.len() > 10_000, "trace too small: {}", trace.len());

    let toph = replay_trace(cfg, &trace, ReplayTiming::Compressed, 50_000_000).unwrap();
    let top1 = replay_trace(
        ClusterConfig::small(Topology::Top1),
        &trace,
        ReplayTiming::Compressed,
        50_000_000,
    )
    .unwrap();
    assert!(
        top1 > 2 * toph,
        "replay did not expose Top1's bottleneck: {top1} vs {toph}"
    );
    // The as-recorded replay on the original topology cannot beat the
    // recorded schedule and should not be wildly slower either.
    let as_rec = replay_trace(cfg, &trace, ReplayTiming::AsRecorded, 50_000_000).unwrap();
    assert!(as_rec + 16 >= original.min(as_rec + 16), "sanity");
    assert!(
        (as_rec as f64) < 1.3 * original as f64,
        "as-recorded replay {as_rec} strayed from original {original}"
    );
}

#[test]
fn adversarial_permutations_hurt_butterflies_more_than_uniform() {
    // Bit-complement concentrates paths in log-networks; a fully-connected
    // crossbar (the TopH local group or the ideal net) shrugs it off. The
    // global butterflies of Top4 must lose more throughput than the ideal
    // baseline does when switching from uniform to bit-complement.
    use mempool_traffic::Permutation;
    let pattern = Pattern::Permutation(Permutation::BitComplement);
    let sat = |topo, pat| {
        run_point(ClusterConfig::small(topo), pat, 1.0, windows(), 23)
            .unwrap()
            .throughput
    };
    let top4_uniform = sat(Topology::Top4, Pattern::Uniform);
    let top4_adv = sat(Topology::Top4, pattern);
    let ideal_uniform = sat(Topology::Ideal, Pattern::Uniform);
    let ideal_adv = sat(Topology::Ideal, pattern);
    let top4_loss = top4_adv / top4_uniform;
    let ideal_loss = ideal_adv / ideal_uniform;
    assert!(
        top4_loss < ideal_loss,
        "butterfly loss {top4_loss:.2} not worse than ideal loss {ideal_loss:.2}"
    );
}
