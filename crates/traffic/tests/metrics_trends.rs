//! Paper-trend assertions (Fig. 5 topology comparison, Fig. 6 hybrid
//! addressing) expressed against the observability layer's latency
//! histograms instead of the sweep aggregates, plus the determinism
//! contract of the metered sweep entry point.

use mempool::{ClusterConfig, ObsConfig, Topology};
use mempool_traffic::{run_point_with_metrics, MeteredPoint, Pattern, Windows};

fn windows() -> Windows {
    Windows {
        warmup: 500,
        measure: 3_000,
        drain: 60_000,
    }
}

fn metered(topo: Topology, pattern: Pattern, load: f64, seed: u64) -> MeteredPoint {
    run_point_with_metrics(
        ClusterConfig::small(topo),
        pattern,
        load,
        windows(),
        seed,
        ObsConfig::with_trace(16),
    )
    .expect("valid config")
}

/// Mean of a registry latency histogram, in cycles.
fn hist_mean(m: &MeteredPoint, path: &str) -> f64 {
    let h = m.metrics.histogram(path, "latency").expect("histogram exists");
    assert!(h.count > 0, "{path}: empty histogram");
    h.sum as f64 / h.count as f64
}

#[test]
fn registry_reproduces_fig5_toph_vs_top4_latency() {
    // §V-A: at low uniform load TopH's three-cycle local-group path gives
    // it a lower latency than Top4 — visible in the cluster-scope
    // histogram's mean and p99, not just the sweep aggregate.
    let toph = metered(Topology::TopH, Pattern::Uniform, 0.05, 4);
    let top4 = metered(Topology::Top4, Pattern::Uniform, 0.05, 4);
    assert!(
        hist_mean(&toph, "cluster") < hist_mean(&top4, "cluster"),
        "TopH mean {} not below Top4 {}",
        hist_mean(&toph, "cluster"),
        hist_mean(&top4, "cluster")
    );
    let (h, f) = (
        toph.metrics.histogram("cluster", "latency").unwrap(),
        top4.metrics.histogram("cluster", "latency").unwrap(),
    );
    assert!(
        h.p99 <= f.p99,
        "TopH p99 {} above Top4 p99 {}",
        h.p99,
        f.p99
    );
}

#[test]
fn registry_reproduces_fig6_locality_latency_drop() {
    // §V-B: fully tile-local traffic completes in the tile's local
    // interconnect — p50 and mean collapse relative to uniform traffic.
    let local = metered(Topology::TopH, Pattern::PLocal { p_local: 1.0 }, 0.10, 6);
    let uniform = metered(Topology::TopH, Pattern::Uniform, 0.10, 6);
    let (l, u) = (
        local.metrics.histogram("cluster", "latency").unwrap(),
        uniform.metrics.histogram("cluster", "latency").unwrap(),
    );
    assert!(
        l.p50 < u.p50,
        "local p50 {} not below uniform p50 {}",
        l.p50,
        u.p50
    );
    assert!(
        hist_mean(&local, "cluster") < hist_mean(&uniform, "cluster"),
        "local mean not below uniform mean"
    );
    // Cross-check against the always-on cluster counters: fully local
    // traffic must be counted as local there too.
    let local_reqs = local.metrics.counter("cluster", "local_requests").unwrap();
    let remote_reqs = local.metrics.counter("cluster", "remote_requests").unwrap();
    assert!(
        local_reqs > 99 * remote_reqs.max(1) / 100,
        "locality counters disagree: {local_reqs} local vs {remote_reqs} remote"
    );
}

#[test]
fn per_tile_histograms_cover_every_tile_under_uniform_load() {
    let m = metered(Topology::TopH, Pattern::Uniform, 0.10, 8);
    let tiles = m.metrics.num_tiles();
    for t in 0..tiles {
        let h = m
            .metrics
            .histogram(&format!("cluster/tile{t}"), "latency")
            .expect("per-tile histogram exists");
        assert!(h.count > 0, "tile {t} recorded no deliveries");
    }
    // The per-tile histograms partition the cluster-wide one.
    let cluster = m.metrics.histogram("cluster", "latency").unwrap();
    let tile_sum: u64 = (0..tiles)
        .map(|t| {
            m.metrics
                .histogram(&format!("cluster/tile{t}"), "latency")
                .unwrap()
                .count
        })
        .sum();
    assert_eq!(tile_sum, cluster.count, "per-tile counts do not partition");
}

#[test]
fn metered_sweep_is_deterministic() {
    let a = metered(Topology::Top4, Pattern::Uniform, 0.10, 42);
    let b = metered(Topology::Top4, Pattern::Uniform, 0.10, 42);
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    assert_eq!(a.timeline, b.timeline);
    assert_eq!(a.point.throughput, b.point.throughput);
    // A different seed must actually change something.
    let c = metered(Topology::Top4, Pattern::Uniform, 0.10, 43);
    assert_ne!(
        a.metrics.to_json(),
        c.metrics.to_json(),
        "seed does not reach the traffic generators"
    );
}
