//! Resumable-campaign contract tests: a campaign killed between (or in the
//! middle of) trials and restarted from its manifest produces the identical
//! aggregate report an uninterrupted run would have, mid-trial checkpoints
//! resume bit-identically, and traffic-driven clusters digest/roundtrip
//! deterministically.

use mempool_traffic::{
    run_campaign, run_campaign_resumable, run_trial, run_trial_checkpointed, trial_cluster,
    CampaignConfig, TrialCheckpoint, TrialPhase, Windows,
};
use mempool::{ClusterConfig, Topology};
use std::path::PathBuf;

fn campaign() -> CampaignConfig {
    CampaignConfig {
        spec: "bank_fail=2,link_drop=0.001,core_lockup=0.0005"
            .parse()
            .expect("valid spec"),
        windows: Windows {
            warmup: 100,
            measure: 400,
            drain: 50_000,
        },
        trials: 3,
        base_seed: 11,
        ..CampaignConfig::default()
    }
}

fn config() -> ClusterConfig {
    ClusterConfig::small(Topology::Top1)
}

fn scratch(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("mempool-{name}-{}", std::process::id()));
    std::fs::remove_file(&path).ok();
    let mut ckpt = path.as_os_str().to_owned();
    ckpt.push(".ckpt");
    std::fs::remove_file(PathBuf::from(ckpt)).ok();
    path
}

#[test]
fn checkpointed_trial_matches_plain_trial() {
    let campaign = campaign();
    let seed = campaign.base_seed;
    let plain = run_trial(config(), &campaign, seed).expect("valid config");
    let ckpt = scratch("trial-ckpt");
    let chunked =
        run_trial_checkpointed(config(), &campaign, seed, &ckpt, 64).expect("trial runs");
    assert_eq!(chunked, plain, "chunked execution must not perturb the trial");
    assert!(!ckpt.exists(), "checkpoint is deleted on completion");
}

#[test]
fn interrupted_trial_resumes_bit_identically() {
    let campaign = campaign();
    let seed = campaign.base_seed + 1;
    let plain = run_trial(config(), &campaign, seed).expect("valid config");

    // Simulate a kill partway through the generation window: leave a
    // mid-warmup checkpoint on disk exactly as the periodic writer would.
    let mut cluster = trial_cluster(config(), &campaign, seed).expect("valid config");
    cluster.step_cycles(137);
    let ckpt = scratch("trial-resume");
    TrialCheckpoint {
        seed,
        phase: TrialPhase::Generate,
        snapshot: cluster.snapshot(),
    }
    .write_file(&ckpt)
    .expect("checkpoint writes");

    let resumed =
        run_trial_checkpointed(config(), &campaign, seed, &ckpt, 128).expect("trial resumes");
    assert_eq!(resumed, plain, "resumed trial must reproduce the uninterrupted one");
    assert!(!ckpt.exists());
}

#[test]
fn killed_campaign_resumes_from_manifest_with_identical_results() {
    let campaign = campaign();
    let uninterrupted = run_campaign(config(), &campaign).expect("valid config");

    let manifest = scratch("campaign-manifest");
    // First invocation gets through one trial, then "dies".
    let first = run_campaign_resumable(config(), &campaign, &manifest, 256, Some(1))
        .expect("campaign starts");
    assert_eq!(first.resumed_trials, 0);
    assert_eq!(first.new_trials, 1);

    // Simulate the kill also truncating the manifest mid-line: the partial
    // final line must be dropped and its trial re-run.
    let text = std::fs::read_to_string(&manifest).expect("manifest exists");
    std::fs::write(&manifest, format!("{text}trial 12 comp")).expect("manifest writable");

    let second = run_campaign_resumable(config(), &campaign, &manifest, 256, None)
        .expect("campaign resumes");
    assert_eq!(second.resumed_trials, 1);
    assert_eq!(second.new_trials, 2);
    assert_eq!(
        second.report, uninterrupted,
        "resumed campaign must aggregate to the uninterrupted report"
    );

    // A third invocation finds everything done.
    let third = run_campaign_resumable(config(), &campaign, &manifest, 256, None)
        .expect("campaign reloads");
    assert_eq!(third.resumed_trials, 3);
    assert_eq!(third.new_trials, 0);
    assert_eq!(third.report, uninterrupted);
    std::fs::remove_file(&manifest).ok();
}

#[test]
fn manifest_from_different_campaign_is_rejected() {
    let manifest = scratch("campaign-mismatch");
    run_campaign_resumable(config(), &campaign(), &manifest, 0, Some(1)).expect("first campaign");
    let mut other = campaign();
    other.base_seed += 1;
    let err = run_campaign_resumable(config(), &other, &manifest, 0, None)
        .expect_err("different campaign must not consume the manifest");
    assert!(matches!(
        err,
        mempool_traffic::CampaignError::ManifestMismatch
    ));
    std::fs::remove_file(&manifest).ok();
}

/// Snapshot/restore roundtrips bit-identically for traffic-driven clusters
/// under random fault plans — the generator's RNG, source queue, and tag
/// table all survive the checkpoint.
#[test]
fn traffic_cluster_roundtrip_under_random_fault_plans() {
    let campaign = campaign();
    for seed in [3u64, 17, 91] {
        let mid = 150 + seed * 7;
        let total = 1_200;

        let mut uninterrupted = trial_cluster(config(), &campaign, seed).expect("valid config");
        uninterrupted.step_cycles(total);

        let mut original = trial_cluster(config(), &campaign, seed).expect("valid config");
        original.step_cycles(mid);
        let snap = original.snapshot();

        // Fresh cluster, different seed everywhere: restore must overwrite
        // every generator's RNG state, queue, and tags.
        let mut restored = trial_cluster(config(), &campaign, seed + 1000).expect("valid config");
        restored.restore(&snap).expect("snapshot restores");
        restored.step_cycles(total - mid);

        assert_eq!(restored.state_digest(), uninterrupted.state_digest());
        assert_eq!(restored.stats(), uninterrupted.stats());
    }
}

/// Two identical traffic runs agree on every probed digest.
#[test]
fn traffic_digest_is_stable_across_identical_runs() {
    let campaign = campaign();
    let run = || {
        let mut cluster = trial_cluster(config(), &campaign, 5).expect("valid config");
        let mut digests = Vec::new();
        for _ in 0..6 {
            cluster.step_cycles(200);
            digests.push(cluster.state_digest());
        }
        digests
    };
    assert_eq!(run(), run());
}
