//! Machine-code decoder for RV32IMA.

use crate::{AluOp, AmoOp, BranchOp, CsrOp, Instr, LoadOp, MulOp, Reg, StoreOp};
use std::fmt;

/// Error returned when a 32-bit word is not a valid RV32IMA instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    word: u32,
}

impl DecodeError {
    /// The raw instruction word that failed to decode.
    pub fn word(self) -> u32 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rv32ima instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn rd(word: u32) -> Reg {
    Reg::from_field(word >> 7)
}

fn rs1(word: u32) -> Reg {
    Reg::from_field(word >> 15)
}

fn rs2(word: u32) -> Reg {
    Reg::from_field(word >> 20)
}

fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

fn funct7(word: u32) -> u32 {
    word >> 25
}

fn imm_i(word: u32) -> i32 {
    (word as i32) >> 20
}

fn imm_s(word: u32) -> i32 {
    (((word as i32) >> 25) << 5) | (((word >> 7) & 0x1f) as i32)
}

fn imm_b(word: u32) -> i32 {
    let sign = (word as i32) >> 31; // bit 12
    let b11 = ((word >> 7) & 1) as i32;
    let b10_5 = ((word >> 25) & 0x3f) as i32;
    let b4_1 = ((word >> 8) & 0xf) as i32;
    (sign << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1)
}

fn imm_j(word: u32) -> i32 {
    let sign = (word as i32) >> 31; // bit 20
    let b19_12 = ((word >> 12) & 0xff) as i32;
    let b11 = ((word >> 20) & 1) as i32;
    let b10_1 = ((word >> 21) & 0x3ff) as i32;
    (sign << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1)
}

/// Decodes one 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] when the word does not encode an RV32IMA
/// instruction (unknown opcode, funct field, or malformed compressed
/// encoding — the C extension is not supported).
///
/// # Examples
///
/// ```
/// use mempool_riscv::{decode, Instr, Reg, AluOp};
///
/// // addi a0, a1, 3
/// let instr = decode(0x0035_8513)?;
/// assert_eq!(instr, Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, imm: 3 });
/// # Ok::<(), mempool_riscv::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let err = Err(DecodeError { word });
    let opcode = word & 0x7f;
    match opcode {
        0x37 => Ok(Instr::Lui {
            rd: rd(word),
            imm: word & 0xffff_f000,
        }),
        0x17 => Ok(Instr::Auipc {
            rd: rd(word),
            imm: word & 0xffff_f000,
        }),
        0x6f => Ok(Instr::Jal {
            rd: rd(word),
            offset: imm_j(word),
        }),
        0x67 => {
            if funct3(word) != 0 {
                return err;
            }
            Ok(Instr::Jalr {
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        0x63 => {
            let op = match funct3(word) {
                0b000 => BranchOp::Beq,
                0b001 => BranchOp::Bne,
                0b100 => BranchOp::Blt,
                0b101 => BranchOp::Bge,
                0b110 => BranchOp::Bltu,
                0b111 => BranchOp::Bgeu,
                _ => return err,
            };
            Ok(Instr::Branch {
                op,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_b(word),
            })
        }
        0x03 => {
            let op = match funct3(word) {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                _ => return err,
            };
            Ok(Instr::Load {
                op,
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        0x23 => {
            let op = match funct3(word) {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                _ => return err,
            };
            Ok(Instr::Store {
                op,
                rs2: rs2(word),
                rs1: rs1(word),
                offset: imm_s(word),
            })
        }
        0x13 => {
            let f3 = funct3(word);
            let op = match f3 {
                0b000 => AluOp::Add,
                0b010 => AluOp::Slt,
                0b011 => AluOp::Sltu,
                0b100 => AluOp::Xor,
                0b110 => AluOp::Or,
                0b111 => AluOp::And,
                0b001 => AluOp::Sll,
                0b101 => {
                    if funct7(word) == 0b0100000 {
                        AluOp::Sra
                    } else if funct7(word) == 0 {
                        AluOp::Srl
                    } else {
                        return err;
                    }
                }
                _ => unreachable!(),
            };
            let imm = if op.is_shift() {
                if f3 == 0b001 && funct7(word) != 0 {
                    return err;
                }
                ((word >> 20) & 0x1f) as i32
            } else {
                imm_i(word)
            };
            Ok(Instr::OpImm {
                op,
                rd: rd(word),
                rs1: rs1(word),
                imm,
            })
        }
        0x33 => {
            let f3 = funct3(word);
            let f7 = funct7(word);
            if f7 == 0b0000001 {
                let op = match f3 {
                    0b000 => MulOp::Mul,
                    0b001 => MulOp::Mulh,
                    0b010 => MulOp::Mulhsu,
                    0b011 => MulOp::Mulhu,
                    0b100 => MulOp::Div,
                    0b101 => MulOp::Divu,
                    0b110 => MulOp::Rem,
                    0b111 => MulOp::Remu,
                    _ => unreachable!(),
                };
                return Ok(Instr::MulDiv {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                });
            }
            let op = match (f3, f7) {
                (0b000, 0b0000000) => AluOp::Add,
                (0b000, 0b0100000) => AluOp::Sub,
                (0b001, 0b0000000) => AluOp::Sll,
                (0b010, 0b0000000) => AluOp::Slt,
                (0b011, 0b0000000) => AluOp::Sltu,
                (0b100, 0b0000000) => AluOp::Xor,
                (0b101, 0b0000000) => AluOp::Srl,
                (0b101, 0b0100000) => AluOp::Sra,
                (0b110, 0b0000000) => AluOp::Or,
                (0b111, 0b0000000) => AluOp::And,
                _ => return err,
            };
            Ok(Instr::Op {
                op,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            })
        }
        0x2f => {
            if funct3(word) != 0b010 {
                return err;
            }
            let funct5 = word >> 27;
            match funct5 {
                0b00010 => {
                    if !rs2(word).is_zero() {
                        return err;
                    }
                    Ok(Instr::LrW {
                        rd: rd(word),
                        rs1: rs1(word),
                    })
                }
                0b00011 => Ok(Instr::ScW {
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                }),
                _ => {
                    let op = match funct5 {
                        0b00001 => AmoOp::Swap,
                        0b00000 => AmoOp::Add,
                        0b00100 => AmoOp::Xor,
                        0b01100 => AmoOp::And,
                        0b01000 => AmoOp::Or,
                        0b10000 => AmoOp::Min,
                        0b10100 => AmoOp::Max,
                        0b11000 => AmoOp::Minu,
                        0b11100 => AmoOp::Maxu,
                        _ => return err,
                    };
                    Ok(Instr::Amo {
                        op,
                        rd: rd(word),
                        rs1: rs1(word),
                        rs2: rs2(word),
                    })
                }
            }
        }
        0x0f => match funct3(word) {
            0b000 => Ok(Instr::Fence),
            0b001 => Ok(Instr::FenceI),
            _ => err,
        },
        0x73 => {
            let f3 = funct3(word);
            let csr = (word >> 20) as u16;
            match f3 {
                0b000 => match word {
                    0x0000_0073 => Ok(Instr::Ecall),
                    0x0010_0073 => Ok(Instr::Ebreak),
                    0x1050_0073 => Ok(Instr::Wfi),
                    _ => err,
                },
                0b001..=0b011 => {
                    let op = match f3 {
                        0b001 => CsrOp::Rw,
                        0b010 => CsrOp::Rs,
                        _ => CsrOp::Rc,
                    };
                    Ok(Instr::Csr {
                        op,
                        rd: rd(word),
                        rs1: rs1(word),
                        csr,
                    })
                }
                0b101..=0b111 => {
                    let op = match f3 {
                        0b101 => CsrOp::Rw,
                        0b110 => CsrOp::Rs,
                        _ => CsrOp::Rc,
                    };
                    Ok(Instr::CsrImm {
                        op,
                        rd: rd(word),
                        imm: ((word >> 15) & 0x1f) as u8,
                        csr,
                    })
                }
                _ => err,
            }
        }
        _ => err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    // Golden encodings cross-checked against the RISC-V spec / GNU as output.
    #[test]
    fn golden_rv32i() {
        let cases: &[(u32, &str)] = &[
            (0x0035_8513, "addi a0, a1, 3"),
            (0x0000_0013, "addi zero, zero, 0"),
            (0x40b5_0533, "sub a0, a0, a1"),
            (0x0000_00b7, "lui ra, 0x0"),
            (0xdead_b0b7, "lui ra, 0xdeadb"),
            (0x0000_0517, "auipc a0, 0x0"),
            (0x0080_006f, "jal zero, 8"),
            (0xff9f_f0ef, "jal ra, -8"),
            (0x0005_8067, "jalr zero, 0(a1)"),
            (0xfe05_0ee3, "beq a0, zero, -4"),
            (0x00b5_4463, "blt a0, a1, 8"),
            (0xfec4_2a83, "lw s5, -20(s0)"),
            (0x0155_2a23, "sw s5, 20(a0)"),
            (0x0015_1513, "slli a0, a0, 1"),
            (0x4015_5513, "srai a0, a0, 1"),
            (0x0015_5513, "srli a0, a0, 1"),
            (0x02b5_0533, "mul a0, a0, a1"),
            (0x02b5_4533, "div a0, a0, a1"),
            (0x1005_252f, "lr.w a0, (a0)"),
            (0x18b5_252f, "sc.w a0, a1, (a0)"),
            (0x00b5_2a2f, "amoadd.w s4, a1, (a0)"),
            (0x08b5_2a2f, "amoswap.w s4, a1, (a0)"),
            (0xf140_2573, "csrrs a0, 0xf14, zero"),
            (0x0000_0073, "ecall"),
            (0x0010_0073, "ebreak"),
            (0x1050_0073, "wfi"),
        ];
        for &(word, text) in cases {
            let instr = decode(word).unwrap_or_else(|e| panic!("{e} (expected `{text}`)"));
            assert_eq!(instr.to_string(), text, "word {word:#010x}");
        }
    }

    #[test]
    fn fence_forms() {
        assert_eq!(decode(0x0ff0_000f).unwrap(), Instr::Fence);
        assert_eq!(decode(0x0000_100f).unwrap(), Instr::FenceI);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
        // Compressed instructions are not supported.
        assert!(decode(0x0000_4501).is_err());
    }

    #[test]
    fn branch_offset_sign() {
        // beq a0, zero, -4 -> negative B immediate
        match decode(0xfe05_0ee3).unwrap() {
            Instr::Branch { offset, .. } => assert_eq!(offset, -4),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn jal_offset_range() {
        // jal ra, -8
        match decode(0xff9f_f0ef).unwrap() {
            Instr::Jal { rd, offset } => {
                assert_eq!(rd, Reg::RA);
                assert_eq!(offset, -8);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
