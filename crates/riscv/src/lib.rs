//! # mempool-riscv
//!
//! The RV32IMA instruction set, as used by the [MemPool] many-core cluster's
//! Snitch cores: a structured instruction type, machine-code
//! decoder/encoder, disassembler ([`Instr`]'s `Display`), and a small
//! two-pass assembler.
//!
//! This crate is a *substrate* of the MemPool reproduction: the paper's
//! benchmarks (`matmul`, `2dconv`, `dct`) are written in RV32IMA assembly and
//! executed on the cycle-accurate core model in `mempool-snitch`.
//!
//! [MemPool]: https://doi.org/10.23919/DATE51398.2021.9474087
//!
//! # Examples
//!
//! Assemble, inspect, and disassemble a tiny program:
//!
//! ```
//! use mempool_riscv::{assemble, decode};
//!
//! let program = assemble("li a0, 7\nslli a0, a0, 2\necall\n")?;
//! let listing: Vec<String> = program
//!     .words()
//!     .iter()
//!     .map(|&w| decode(w).unwrap().to_string())
//!     .collect();
//! assert_eq!(listing, ["addi a0, zero, 7", "slli a0, a0, 2", "ecall"]);
//! # Ok::<(), mempool_riscv::AsmError>(())
//! ```

#![warn(missing_docs)]

mod asm;
mod decode;
mod encode;
mod instr;
mod reg;

pub use asm::{assemble, assemble_at, AsmError, Program};
pub use decode::{decode, DecodeError};
pub use encode::{encode, EncodeError};
pub use instr::{csr, AluOp, AmoOp, BranchOp, CsrOp, Instr, LoadOp, MulOp, StoreOp};
pub use reg::{ParseRegError, Reg};
