//! Integer register file names for RV32.

use std::fmt;
use std::str::FromStr;

/// One of the 32 RV32 integer registers, `x0`–`x31`.
///
/// `Reg` is a validated newtype: it can only hold values 0–31, so downstream
/// code (encoder, core model) never needs to bounds-check.
///
/// # Examples
///
/// ```
/// use mempool_riscv::Reg;
///
/// let a0 = Reg::A0;
/// assert_eq!(a0.index(), 10);
/// assert_eq!(a0.to_string(), "a0");
/// assert_eq!("sp".parse::<Reg>()?, Reg::SP);
/// # Ok::<(), mempool_riscv::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return address, `x1`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer, `x2`.
    pub const SP: Reg = Reg(2);
    /// Global pointer, `x3`.
    pub const GP: Reg = Reg(3);
    /// Thread pointer, `x4`.
    pub const TP: Reg = Reg(4);
    /// Temporary `t0` (`x5`).
    pub const T0: Reg = Reg(5);
    /// Temporary `t1` (`x6`).
    pub const T1: Reg = Reg(6);
    /// Temporary `t2` (`x7`).
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer `s0` (`x8`).
    pub const S0: Reg = Reg(8);
    /// Saved register `s1` (`x9`).
    pub const S1: Reg = Reg(9);
    /// Argument / return value `a0` (`x10`).
    pub const A0: Reg = Reg(10);
    /// Argument / return value `a1` (`x11`).
    pub const A1: Reg = Reg(11);
    /// Argument `a2` (`x12`).
    pub const A2: Reg = Reg(12);
    /// Argument `a3` (`x13`).
    pub const A3: Reg = Reg(13);
    /// Argument `a4` (`x14`).
    pub const A4: Reg = Reg(14);
    /// Argument `a5` (`x15`).
    pub const A5: Reg = Reg(15);
    /// Argument `a6` (`x16`).
    pub const A6: Reg = Reg(16);
    /// Argument `a7` (`x17`).
    pub const A7: Reg = Reg(17);
    /// Saved register `s2` (`x18`).
    pub const S2: Reg = Reg(18);
    /// Saved register `s3` (`x19`).
    pub const S3: Reg = Reg(19);
    /// Saved register `s4` (`x20`).
    pub const S4: Reg = Reg(20);
    /// Saved register `s5` (`x21`).
    pub const S5: Reg = Reg(21);
    /// Saved register `s6` (`x22`).
    pub const S6: Reg = Reg(22);
    /// Saved register `s7` (`x23`).
    pub const S7: Reg = Reg(23);
    /// Saved register `s8` (`x24`).
    pub const S8: Reg = Reg(24);
    /// Saved register `s9` (`x25`).
    pub const S9: Reg = Reg(25);
    /// Saved register `s10` (`x26`).
    pub const S10: Reg = Reg(26);
    /// Saved register `s11` (`x27`).
    pub const S11: Reg = Reg(27);
    /// Temporary `t3` (`x28`).
    pub const T3: Reg = Reg(28);
    /// Temporary `t4` (`x29`).
    pub const T4: Reg = Reg(29);
    /// Temporary `t5` (`x30`).
    pub const T5: Reg = Reg(30);
    /// Temporary `t6` (`x31`).
    pub const T6: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// Returns `None` if `index >= 32`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mempool_riscv::Reg;
    /// assert_eq!(Reg::new(2), Some(Reg::SP));
    /// assert_eq!(Reg::new(32), None);
    /// ```
    pub fn new(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// Creates a register from the low 5 bits of an encoded field.
    pub(crate) fn from_field(bits: u32) -> Reg {
        Reg((bits & 0x1f) as u8)
    }

    /// The register index, 0–31.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The ABI mnemonic (`zero`, `ra`, `sp`, …).
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

impl Default for Reg {
    fn default() -> Self {
        Reg::ZERO
    }
}

const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// Error returned when a register name fails to parse.
///
/// # Examples
///
/// ```
/// use mempool_riscv::Reg;
/// assert!("x99".parse::<Reg>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    name: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.name)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(pos) = ABI_NAMES.iter().position(|&n| n == s) {
            return Ok(Reg(pos as u8));
        }
        if s == "fp" {
            return Ok(Reg::S0);
        }
        if let Some(num) = s.strip_prefix('x') {
            if let Ok(idx) = num.parse::<u8>() {
                if let Some(reg) = Reg::new(idx) {
                    return Ok(reg);
                }
            }
        }
        Err(ParseRegError {
            name: s.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_round_trip() {
        for reg in Reg::all() {
            let parsed: Reg = reg.abi_name().parse().expect("abi name parses");
            assert_eq!(parsed, reg);
        }
    }

    #[test]
    fn numeric_names_parse() {
        for i in 0..32u8 {
            let parsed: Reg = format!("x{i}").parse().expect("xN parses");
            assert_eq!(parsed.index(), i);
        }
    }

    #[test]
    fn fp_is_s0() {
        assert_eq!("fp".parse::<Reg>().unwrap(), Reg::S0);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Reg::new(32).is_none());
        assert!("x32".parse::<Reg>().is_err());
        assert!("q7".parse::<Reg>().is_err());
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::RA.is_zero());
    }
}
