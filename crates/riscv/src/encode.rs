//! Machine-code encoder for RV32IMA.

use crate::{AluOp, AmoOp, BranchOp, CsrOp, Instr, LoadOp, MulOp, StoreOp};
use std::fmt;

/// Error returned when an [`Instr`] cannot be encoded (immediate or offset
/// out of range, or an unencodable combination such as `subi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeError {
    instr: Instr,
    reason: &'static str,
}

impl EncodeError {
    /// The instruction that failed to encode.
    pub fn instr(self) -> Instr {
        self.instr
    }
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot encode `{}`: {}", self.instr, self.reason)
    }
}

impl std::error::Error for EncodeError {}

fn fits_i12(v: i32) -> bool {
    (-2048..=2047).contains(&v)
}

fn r_type(f7: u32, rs2: u32, rs1: u32, f3: u32, rd: u32, opcode: u32) -> u32 {
    (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opcode
}

fn i_type(imm: i32, rs1: u32, f3: u32, rd: u32, opcode: u32) -> u32 {
    (((imm as u32) & 0xfff) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opcode
}

fn s_type(imm: i32, rs2: u32, rs1: u32, f3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7f) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | ((imm & 0x1f) << 7) | opcode
}

fn b_type(offset: i32, rs2: u32, rs1: u32, f3: u32, opcode: u32) -> u32 {
    let imm = offset as u32;
    let b12 = (imm >> 12) & 1;
    let b11 = (imm >> 11) & 1;
    let b10_5 = (imm >> 5) & 0x3f;
    let b4_1 = (imm >> 1) & 0xf;
    (b12 << 31) | (b10_5 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (b4_1 << 8) | (b11 << 7) | opcode
}

fn j_type(offset: i32, rd: u32, opcode: u32) -> u32 {
    let imm = offset as u32;
    let b20 = (imm >> 20) & 1;
    let b19_12 = (imm >> 12) & 0xff;
    let b11 = (imm >> 11) & 1;
    let b10_1 = (imm >> 1) & 0x3ff;
    (b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) | (rd << 7) | opcode
}

fn alu_funct3(op: AluOp) -> u32 {
    match op {
        AluOp::Add | AluOp::Sub => 0b000,
        AluOp::Sll => 0b001,
        AluOp::Slt => 0b010,
        AluOp::Sltu => 0b011,
        AluOp::Xor => 0b100,
        AluOp::Srl | AluOp::Sra => 0b101,
        AluOp::Or => 0b110,
        AluOp::And => 0b111,
    }
}

fn mul_funct3(op: MulOp) -> u32 {
    match op {
        MulOp::Mul => 0b000,
        MulOp::Mulh => 0b001,
        MulOp::Mulhsu => 0b010,
        MulOp::Mulhu => 0b011,
        MulOp::Div => 0b100,
        MulOp::Divu => 0b101,
        MulOp::Rem => 0b110,
        MulOp::Remu => 0b111,
    }
}

fn branch_funct3(op: BranchOp) -> u32 {
    match op {
        BranchOp::Beq => 0b000,
        BranchOp::Bne => 0b001,
        BranchOp::Blt => 0b100,
        BranchOp::Bge => 0b101,
        BranchOp::Bltu => 0b110,
        BranchOp::Bgeu => 0b111,
    }
}

fn amo_funct5(op: AmoOp) -> u32 {
    match op {
        AmoOp::Swap => 0b00001,
        AmoOp::Add => 0b00000,
        AmoOp::Xor => 0b00100,
        AmoOp::And => 0b01100,
        AmoOp::Or => 0b01000,
        AmoOp::Min => 0b10000,
        AmoOp::Max => 0b10100,
        AmoOp::Minu => 0b11000,
        AmoOp::Maxu => 0b11100,
    }
}

/// Encodes an instruction into its 32-bit machine-code word.
///
/// # Errors
///
/// Returns [`EncodeError`] if an immediate or offset is out of range, a
/// branch/jump offset is odd, or a LUI/AUIPC immediate has nonzero low bits.
///
/// # Examples
///
/// ```
/// use mempool_riscv::{encode, decode, Instr, Reg, AluOp};
///
/// let instr = Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, imm: 3 };
/// let word = encode(instr)?;
/// assert_eq!(decode(word).unwrap(), instr);
/// # Ok::<(), mempool_riscv::EncodeError>(())
/// ```
pub fn encode(instr: Instr) -> Result<u32, EncodeError> {
    let fail = |reason| EncodeError { instr, reason };
    match instr {
        Instr::Lui { rd, imm } => {
            if imm & 0xfff != 0 {
                return Err(fail("lui immediate has nonzero low 12 bits"));
            }
            Ok(imm | ((rd.index() as u32) << 7) | 0x37)
        }
        Instr::Auipc { rd, imm } => {
            if imm & 0xfff != 0 {
                return Err(fail("auipc immediate has nonzero low 12 bits"));
            }
            Ok(imm | ((rd.index() as u32) << 7) | 0x17)
        }
        Instr::Jal { rd, offset } => {
            if offset % 2 != 0 {
                return Err(fail("jal offset is odd"));
            }
            if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                return Err(fail("jal offset exceeds ±1 MiB"));
            }
            Ok(j_type(offset, rd.index() as u32, 0x6f))
        }
        Instr::Jalr { rd, rs1, offset } => {
            if !fits_i12(offset) {
                return Err(fail("jalr offset exceeds 12 bits"));
            }
            Ok(i_type(offset, rs1.index() as u32, 0, rd.index() as u32, 0x67))
        }
        Instr::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            if offset % 2 != 0 {
                return Err(fail("branch offset is odd"));
            }
            if !(-(1 << 12)..(1 << 12)).contains(&offset) {
                return Err(fail("branch offset exceeds ±4 KiB"));
            }
            Ok(b_type(
                offset,
                rs2.index() as u32,
                rs1.index() as u32,
                branch_funct3(op),
                0x63,
            ))
        }
        Instr::Load {
            op,
            rd,
            rs1,
            offset,
        } => {
            if !fits_i12(offset) {
                return Err(fail("load offset exceeds 12 bits"));
            }
            let f3 = match op {
                LoadOp::Lb => 0b000,
                LoadOp::Lh => 0b001,
                LoadOp::Lw => 0b010,
                LoadOp::Lbu => 0b100,
                LoadOp::Lhu => 0b101,
            };
            Ok(i_type(offset, rs1.index() as u32, f3, rd.index() as u32, 0x03))
        }
        Instr::Store {
            op,
            rs2,
            rs1,
            offset,
        } => {
            if !fits_i12(offset) {
                return Err(fail("store offset exceeds 12 bits"));
            }
            let f3 = match op {
                StoreOp::Sb => 0b000,
                StoreOp::Sh => 0b001,
                StoreOp::Sw => 0b010,
            };
            Ok(s_type(offset, rs2.index() as u32, rs1.index() as u32, f3, 0x23))
        }
        Instr::OpImm { op, rd, rs1, imm } => {
            if !op.has_imm_form() {
                return Err(fail("sub has no immediate form"));
            }
            if op.is_shift() {
                if !(0..32).contains(&imm) {
                    return Err(fail("shift amount exceeds 5 bits"));
                }
                let f7 = if op == AluOp::Sra { 0b0100000 } else { 0 };
                Ok(r_type(
                    f7,
                    imm as u32,
                    rs1.index() as u32,
                    alu_funct3(op),
                    rd.index() as u32,
                    0x13,
                ))
            } else {
                if !fits_i12(imm) {
                    return Err(fail("immediate exceeds 12 bits"));
                }
                Ok(i_type(
                    imm,
                    rs1.index() as u32,
                    alu_funct3(op),
                    rd.index() as u32,
                    0x13,
                ))
            }
        }
        Instr::Op { op, rd, rs1, rs2 } => {
            let f7 = match op {
                AluOp::Sub | AluOp::Sra => 0b0100000,
                _ => 0,
            };
            Ok(r_type(
                f7,
                rs2.index() as u32,
                rs1.index() as u32,
                alu_funct3(op),
                rd.index() as u32,
                0x33,
            ))
        }
        Instr::MulDiv { op, rd, rs1, rs2 } => Ok(r_type(
            0b0000001,
            rs2.index() as u32,
            rs1.index() as u32,
            mul_funct3(op),
            rd.index() as u32,
            0x33,
        )),
        Instr::LrW { rd, rs1 } => Ok(r_type(
            0b00010 << 2,
            0,
            rs1.index() as u32,
            0b010,
            rd.index() as u32,
            0x2f,
        )),
        Instr::ScW { rd, rs1, rs2 } => Ok(r_type(
            0b00011 << 2,
            rs2.index() as u32,
            rs1.index() as u32,
            0b010,
            rd.index() as u32,
            0x2f,
        )),
        Instr::Amo { op, rd, rs1, rs2 } => Ok(r_type(
            amo_funct5(op) << 2,
            rs2.index() as u32,
            rs1.index() as u32,
            0b010,
            rd.index() as u32,
            0x2f,
        )),
        Instr::Csr { op, rd, rs1, csr } => {
            if csr > 0xfff {
                return Err(fail("csr address exceeds 12 bits"));
            }
            let f3 = match op {
                CsrOp::Rw => 0b001,
                CsrOp::Rs => 0b010,
                CsrOp::Rc => 0b011,
            };
            Ok(((csr as u32) << 20)
                | ((rs1.index() as u32) << 15)
                | (f3 << 12)
                | ((rd.index() as u32) << 7)
                | 0x73)
        }
        Instr::CsrImm { op, rd, imm, csr } => {
            if csr > 0xfff {
                return Err(fail("csr address exceeds 12 bits"));
            }
            if imm > 31 {
                return Err(fail("csr immediate exceeds 5 bits"));
            }
            let f3 = match op {
                CsrOp::Rw => 0b101,
                CsrOp::Rs => 0b110,
                CsrOp::Rc => 0b111,
            };
            Ok(((csr as u32) << 20)
                | ((imm as u32) << 15)
                | (f3 << 12)
                | ((rd.index() as u32) << 7)
                | 0x73)
        }
        Instr::Fence => Ok(0x0ff0_000f),
        Instr::FenceI => Ok(0x0000_100f),
        Instr::Ecall => Ok(0x0000_0073),
        Instr::Ebreak => Ok(0x0010_0073),
        Instr::Wfi => Ok(0x1050_0073),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, Reg};

    #[test]
    fn golden_round_trip() {
        let words = [
            0x0035_8513u32,
            0x40b5_0533,
            0xdead_b0b7,
            0x0080_006f,
            0xff9f_f0ef,
            0xfe05_0ee3,
            0xfec4_2a83,
            0x0155_2a23,
            0x4015_5513,
            0x02b5_0533,
            0x0000_0073,
        ];
        for word in words {
            let instr = decode(word).expect("golden word decodes");
            assert_eq!(encode(instr).expect("re-encodes"), word, "{instr}");
        }
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(encode(Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 4096
        })
        .is_err());
        assert!(encode(Instr::OpImm {
            op: AluOp::Sub,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 0
        })
        .is_err());
        assert!(encode(Instr::OpImm {
            op: AluOp::Sll,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 32
        })
        .is_err());
        assert!(encode(Instr::Jal {
            rd: Reg::ZERO,
            offset: 3
        })
        .is_err());
        assert!(encode(Instr::Lui {
            rd: Reg::A0,
            imm: 0x123
        })
        .is_err());
        assert!(encode(Instr::Branch {
            op: BranchOp::Beq,
            rs1: Reg::A0,
            rs2: Reg::A0,
            offset: 1 << 13
        })
        .is_err());
    }
}
