//! The RV32IMA instruction set, as a structured enum.

use crate::Reg;
use std::fmt;

/// Integer register–register / register–immediate ALU operations (RV32I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`); subtraction is [`AluOp::Sub`].
    Add,
    /// Subtraction (register form only).
    Sub,
    /// Logical left shift.
    Sll,
    /// Set if less than, signed.
    Slt,
    /// Set if less than, unsigned.
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
}

impl AluOp {
    /// The mnemonic for the register–register form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
        }
    }

    /// Whether an immediate (`-i` suffixed) form of this operation exists.
    ///
    /// `sub` has no immediate form in RV32I (use `addi` with a negated
    /// immediate instead).
    pub fn has_imm_form(self) -> bool {
        !matches!(self, AluOp::Sub)
    }

    /// Whether the immediate form takes a 5-bit shift amount rather than a
    /// 12-bit signed immediate.
    pub fn is_shift(self) -> bool {
        matches!(self, AluOp::Sll | AluOp::Srl | AluOp::Sra)
    }
}

/// RV32M multiply/divide operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulOp {
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of the signed×signed product.
    Mulh,
    /// High 32 bits of the signed×unsigned product.
    Mulhsu,
    /// High 32 bits of the unsigned×unsigned product.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

impl MulOp {
    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MulOp::Mul => "mul",
            MulOp::Mulh => "mulh",
            MulOp::Mulhsu => "mulhsu",
            MulOp::Mulhu => "mulhu",
            MulOp::Div => "div",
            MulOp::Divu => "divu",
            MulOp::Rem => "rem",
            MulOp::Remu => "remu",
        }
    }

    /// Whether this operation uses the (multi-cycle) divider rather than the
    /// multiplier.
    pub fn is_division(self) -> bool {
        matches!(self, MulOp::Div | MulOp::Divu | MulOp::Rem | MulOp::Remu)
    }
}

/// Conditional branch comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch if equal.
    Beq,
    /// Branch if not equal.
    Bne,
    /// Branch if less than, signed.
    Blt,
    /// Branch if greater or equal, signed.
    Bge,
    /// Branch if less than, unsigned.
    Bltu,
    /// Branch if greater or equal, unsigned.
    Bgeu,
}

impl BranchOp {
    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Beq => "beq",
            BranchOp::Bne => "bne",
            BranchOp::Blt => "blt",
            BranchOp::Bge => "bge",
            BranchOp::Bltu => "bltu",
            BranchOp::Bgeu => "bgeu",
        }
    }

    /// Evaluates the branch condition on two operand values.
    pub fn taken(self, a: u32, b: u32) -> bool {
        match self {
            BranchOp::Beq => a == b,
            BranchOp::Bne => a != b,
            BranchOp::Blt => (a as i32) < (b as i32),
            BranchOp::Bge => (a as i32) >= (b as i32),
            BranchOp::Bltu => a < b,
            BranchOp::Bgeu => a >= b,
        }
    }
}

/// Load widths and signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// Load byte, sign-extended.
    Lb,
    /// Load half-word, sign-extended.
    Lh,
    /// Load word.
    Lw,
    /// Load byte, zero-extended.
    Lbu,
    /// Load half-word, zero-extended.
    Lhu,
}

impl LoadOp {
    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            LoadOp::Lb => "lb",
            LoadOp::Lh => "lh",
            LoadOp::Lw => "lw",
            LoadOp::Lbu => "lbu",
            LoadOp::Lhu => "lhu",
        }
    }

    /// Access size in bytes.
    pub fn size(self) -> u32 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw => 4,
        }
    }

    /// Extracts and extends the loaded value from a full word read at the
    /// access-aligned address, given the byte offset within the word.
    pub fn extract(self, word: u32, byte_offset: u32) -> u32 {
        match self {
            LoadOp::Lw => word,
            LoadOp::Lb => ((word >> (8 * byte_offset)) as u8) as i8 as i32 as u32,
            LoadOp::Lbu => ((word >> (8 * byte_offset)) as u8) as u32,
            LoadOp::Lh => ((word >> (8 * byte_offset)) as u16) as i16 as i32 as u32,
            LoadOp::Lhu => ((word >> (8 * byte_offset)) as u16) as u32,
        }
    }
}

/// Store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// Store byte.
    Sb,
    /// Store half-word.
    Sh,
    /// Store word.
    Sw,
}

impl StoreOp {
    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            StoreOp::Sb => "sb",
            StoreOp::Sh => "sh",
            StoreOp::Sw => "sw",
        }
    }

    /// Access size in bytes.
    pub fn size(self) -> u32 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
        }
    }

    /// Byte-enable mask and shifted data for a read-modify-write of the
    /// containing word.
    pub fn merge(self, old_word: u32, value: u32, byte_offset: u32) -> u32 {
        match self {
            StoreOp::Sw => value,
            StoreOp::Sb => {
                let shift = 8 * byte_offset;
                (old_word & !(0xff << shift)) | ((value & 0xff) << shift)
            }
            StoreOp::Sh => {
                let shift = 8 * byte_offset;
                (old_word & !(0xffff << shift)) | ((value & 0xffff) << shift)
            }
        }
    }
}

/// RV32A atomic memory operations (excluding LR/SC, which have their own
/// instruction variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// Atomic swap.
    Swap,
    /// Atomic add.
    Add,
    /// Atomic exclusive or.
    Xor,
    /// Atomic and.
    And,
    /// Atomic or.
    Or,
    /// Atomic signed minimum.
    Min,
    /// Atomic signed maximum.
    Max,
    /// Atomic unsigned minimum.
    Minu,
    /// Atomic unsigned maximum.
    Maxu,
}

impl AmoOp {
    /// The assembly mnemonic (including the `.w` size suffix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AmoOp::Swap => "amoswap.w",
            AmoOp::Add => "amoadd.w",
            AmoOp::Xor => "amoxor.w",
            AmoOp::And => "amoand.w",
            AmoOp::Or => "amoor.w",
            AmoOp::Min => "amomin.w",
            AmoOp::Max => "amomax.w",
            AmoOp::Minu => "amominu.w",
            AmoOp::Maxu => "amomaxu.w",
        }
    }

    /// Applies the operation: returns the new memory value given the old
    /// memory value and the source operand.
    pub fn apply(self, old: u32, src: u32) -> u32 {
        match self {
            AmoOp::Swap => src,
            AmoOp::Add => old.wrapping_add(src),
            AmoOp::Xor => old ^ src,
            AmoOp::And => old & src,
            AmoOp::Or => old | src,
            AmoOp::Min => (old as i32).min(src as i32) as u32,
            AmoOp::Max => (old as i32).max(src as i32) as u32,
            AmoOp::Minu => old.min(src),
            AmoOp::Maxu => old.max(src),
        }
    }
}

/// CSR access operations (Zicsr).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// Atomic read/write.
    Rw,
    /// Atomic read and set bits.
    Rs,
    /// Atomic read and clear bits.
    Rc,
}

impl CsrOp {
    fn mnemonic(self, imm: bool) -> &'static str {
        match (self, imm) {
            (CsrOp::Rw, false) => "csrrw",
            (CsrOp::Rs, false) => "csrrs",
            (CsrOp::Rc, false) => "csrrc",
            (CsrOp::Rw, true) => "csrrwi",
            (CsrOp::Rs, true) => "csrrsi",
            (CsrOp::Rc, true) => "csrrci",
        }
    }
}

/// A decoded RV32IMA instruction.
///
/// Offsets for branches and jumps are byte offsets relative to the address of
/// the instruction itself (as in the encoded form).
///
/// # Examples
///
/// ```
/// use mempool_riscv::{Instr, Reg, AluOp};
///
/// let add = Instr::Op { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
/// assert_eq!(add.to_string(), "add a0, a1, a2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Load upper immediate. `imm` holds the full 32-bit result (low 12 bits
    /// zero).
    Lui {
        /// Destination register.
        rd: Reg,
        /// Value placed in `rd`; low 12 bits must be zero.
        imm: u32,
    },
    /// Add upper immediate to PC. `imm` as in [`Instr::Lui`].
    Auipc {
        /// Destination register.
        rd: Reg,
        /// Offset added to the PC; low 12 bits must be zero.
        imm: u32,
    },
    /// Jump and link.
    Jal {
        /// Link register (receives PC+4).
        rd: Reg,
        /// Signed byte offset from this instruction; ±1 MiB, even.
        offset: i32,
    },
    /// Indirect jump and link.
    Jalr {
        /// Link register (receives PC+4).
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Comparison performed.
        op: BranchOp,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
        /// Signed byte offset from this instruction; ±4 KiB, even.
        offset: i32,
    },
    /// Memory load.
    Load {
        /// Width/signedness.
        op: LoadOp,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Memory store.
    Store {
        /// Width.
        op: StoreOp,
        /// Source data register.
        rs2: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Register–immediate ALU operation (`addi`, `slti`, shifts, …).
    OpImm {
        /// Operation; [`AluOp::Sub`] is not representable here.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Signed 12-bit immediate, or 5-bit shift amount for shifts.
        imm: i32,
    },
    /// Register–register ALU operation.
    Op {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// RV32M multiply/divide.
    MulDiv {
        /// Operation.
        op: MulOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// RV32A load-reserved word.
    LrW {
        /// Destination register.
        rd: Reg,
        /// Address register.
        rs1: Reg,
    },
    /// RV32A store-conditional word. `rd` receives 0 on success, 1 on
    /// failure.
    ScW {
        /// Status destination register.
        rd: Reg,
        /// Address register.
        rs1: Reg,
        /// Data register.
        rs2: Reg,
    },
    /// RV32A atomic memory operation on a word.
    Amo {
        /// Read-modify-write operation.
        op: AmoOp,
        /// Destination register (receives the old memory value).
        rd: Reg,
        /// Address register.
        rs1: Reg,
        /// Source operand register.
        rs2: Reg,
    },
    /// CSR access with a register source.
    Csr {
        /// Access kind.
        op: CsrOp,
        /// Destination register (receives the old CSR value).
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// CSR address (12 bits).
        csr: u16,
    },
    /// CSR access with a 5-bit zero-extended immediate source.
    CsrImm {
        /// Access kind.
        op: CsrOp,
        /// Destination register (receives the old CSR value).
        rd: Reg,
        /// Zero-extended 5-bit immediate.
        imm: u8,
        /// CSR address (12 bits).
        csr: u16,
    },
    /// Memory fence. In the MemPool core model this drains all outstanding
    /// memory requests before the next instruction issues.
    Fence,
    /// Instruction fence (treated as a pipeline flush / no-op in this model).
    FenceI,
    /// Environment call. The core model treats it as a halt request.
    Ecall,
    /// Breakpoint. The core model treats it as a halt request.
    Ebreak,
    /// Wait for interrupt. The MemPool core model uses it to park a core.
    Wfi,
}

impl Instr {
    /// A canonical no-op (`addi x0, x0, 0`).
    pub const NOP: Instr = Instr::OpImm {
        op: AluOp::Add,
        rd: Reg::ZERO,
        rs1: Reg::ZERO,
        imm: 0,
    };

    /// The destination register written by this instruction, if any.
    ///
    /// `x0` destinations are reported as `None` since the write has no
    /// architectural effect.
    pub fn dest(self) -> Option<Reg> {
        let rd = match self {
            Instr::Lui { rd, .. }
            | Instr::Auipc { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::OpImm { rd, .. }
            | Instr::Op { rd, .. }
            | Instr::MulDiv { rd, .. }
            | Instr::LrW { rd, .. }
            | Instr::ScW { rd, .. }
            | Instr::Amo { rd, .. }
            | Instr::Csr { rd, .. }
            | Instr::CsrImm { rd, .. } => rd,
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// The source registers read by this instruction (up to two).
    pub fn sources(self) -> [Option<Reg>; 2] {
        match self {
            Instr::Jalr { rs1, .. }
            | Instr::Load { rs1, .. }
            | Instr::OpImm { rs1, .. }
            | Instr::LrW { rs1, .. }
            | Instr::Csr { rs1, .. } => [Some(rs1), None],
            Instr::Branch { rs1, rs2, .. }
            | Instr::Store { rs1, rs2, .. }
            | Instr::Op { rs1, rs2, .. }
            | Instr::MulDiv { rs1, rs2, .. }
            | Instr::ScW { rs1, rs2, .. }
            | Instr::Amo { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            _ => [None, None],
        }
    }

    /// Whether this instruction accesses data memory (loads, stores,
    /// atomics).
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::LrW { .. }
                | Instr::ScW { .. }
                | Instr::Amo { .. }
        )
    }

    /// Whether this instruction can redirect control flow.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm >> 12),
            Instr::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", imm >> 12),
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs1}, {rs2}, {offset}", op.mnemonic()),
            Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => write!(f, "{} {rd}, {offset}({rs1})", op.mnemonic()),
            Instr::Store {
                op,
                rs2,
                rs1,
                offset,
            } => write!(f, "{} {rs2}, {offset}({rs1})", op.mnemonic()),
            Instr::OpImm { op, rd, rs1, imm } => {
                // The immediate form of `sltu` is spelled `sltiu`, not `sltui`.
                match op {
                    AluOp::Sltu => write!(f, "sltiu {rd}, {rs1}, {imm}"),
                    _ => write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic()),
                }
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::LrW { rd, rs1 } => write!(f, "lr.w {rd}, ({rs1})"),
            Instr::ScW { rd, rs1, rs2 } => write!(f, "sc.w {rd}, {rs2}, ({rs1})"),
            Instr::Amo { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs2}, ({rs1})", op.mnemonic())
            }
            Instr::Csr { op, rd, rs1, csr } => {
                write!(f, "{} {rd}, {:#x}, {rs1}", op.mnemonic(false), csr)
            }
            Instr::CsrImm { op, rd, imm, csr } => {
                write!(f, "{} {rd}, {:#x}, {imm}", op.mnemonic(true), csr)
            }
            Instr::Fence => f.write_str("fence"),
            Instr::FenceI => f.write_str("fence.i"),
            Instr::Ecall => f.write_str("ecall"),
            Instr::Ebreak => f.write_str("ebreak"),
            Instr::Wfi => f.write_str("wfi"),
        }
    }
}

/// Well-known CSR addresses used by the MemPool runtime.
pub mod csr {
    /// Hart (core) ID, read-only.
    pub const MHARTID: u16 = 0xf14;
    /// Machine cycle counter, low 32 bits.
    pub const MCYCLE: u16 = 0xb00;
    /// Machine cycle counter, high 32 bits.
    pub const MCYCLEH: u16 = 0xb80;
    /// Machine retired-instruction counter, low 32 bits.
    pub const MINSTRET: u16 = 0xb02;
    /// Machine retired-instruction counter, high 32 bits.
    pub const MINSTRETH: u16 = 0xb82;
    /// Machine scratch register.
    pub const MSCRATCH: u16 = 0x340;
    /// MemPool profiler region marker (custom machine-mode CSR).
    ///
    /// Kernels write a region ID here to tag the following instructions
    /// with a program phase (init/compute/barrier/writeback); the profiler
    /// attributes cycles to whatever region is current when they retire.
    pub const MREGION: u16 = 0x7c0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_skips_x0() {
        let i = Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::A0,
            imm: 1,
        };
        assert_eq!(i.dest(), None);
        let i = Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A1,
            rs1: Reg::A0,
            imm: 1,
        };
        assert_eq!(i.dest(), Some(Reg::A1));
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchOp::Blt.taken(-1i32 as u32, 0));
        assert!(!BranchOp::Bltu.taken(-1i32 as u32, 0));
        assert!(BranchOp::Bgeu.taken(-1i32 as u32, 0));
        assert!(BranchOp::Beq.taken(7, 7));
        assert!(BranchOp::Bne.taken(7, 8));
        assert!(BranchOp::Bge.taken(0, -5i32 as u32));
    }

    #[test]
    fn amo_semantics() {
        assert_eq!(AmoOp::Add.apply(5, 7), 12);
        assert_eq!(AmoOp::Swap.apply(5, 7), 7);
        assert_eq!(AmoOp::Min.apply(-3i32 as u32, 2), -3i32 as u32);
        assert_eq!(AmoOp::Minu.apply(-3i32 as u32, 2), 2);
        assert_eq!(AmoOp::Max.apply(-3i32 as u32, 2), 2);
        assert_eq!(AmoOp::Maxu.apply(-3i32 as u32, 2), -3i32 as u32);
        assert_eq!(AmoOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AmoOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AmoOp::Or.apply(0b1100, 0b1010), 0b1110);
    }

    #[test]
    fn load_extract() {
        let word = 0x8070_ff80;
        assert_eq!(LoadOp::Lb.extract(word, 0), 0xffff_ff80);
        assert_eq!(LoadOp::Lbu.extract(word, 0), 0x80);
        assert_eq!(LoadOp::Lh.extract(word, 0), 0xffff_ff80);
        assert_eq!(LoadOp::Lhu.extract(word, 2), 0x8070);
        assert_eq!(LoadOp::Lw.extract(word, 0), word);
    }

    #[test]
    fn store_merge() {
        assert_eq!(StoreOp::Sb.merge(0xaabb_ccdd, 0x11, 1), 0xaabb_11dd);
        assert_eq!(StoreOp::Sh.merge(0xaabb_ccdd, 0x1122, 2), 0x1122_ccdd);
        assert_eq!(StoreOp::Sw.merge(0xaabb_ccdd, 0x1, 0), 1);
    }

    #[test]
    fn display_forms() {
        let l = Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::A0,
            rs1: Reg::SP,
            offset: -4,
        };
        assert_eq!(l.to_string(), "lw a0, -4(sp)");
        assert_eq!(Instr::NOP.to_string(), "addi zero, zero, 0");
    }

    #[test]
    fn memory_classification() {
        assert!(Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0
        }
        .is_memory());
        assert!(!Instr::NOP.is_memory());
        assert!(Instr::Jal {
            rd: Reg::ZERO,
            offset: 8
        }
        .is_control());
    }
}
