//! A two-pass RV32IMA assembler.
//!
//! Supports labels, the common pseudo-instructions (`li`, `la`, `mv`, `j`,
//! `call`, `ret`, `beqz`, …), CSR names, constant expressions with
//! `+`/`-`/`*` and `%hi()`/`%lo()`, text macros (`.macro`/`.endm` with
//! `\param` substitution and `\@` unique-label counters), and the
//! directives `.word`, `.half`, `.byte`, `.ascii`/`.asciz`, `.space`,
//! `.align`, `.equ`/`.set` (section directives are accepted and ignored —
//! the output is a single flat image).
//!
//! # Examples
//!
//! ```
//! use mempool_riscv::assemble;
//!
//! let program = assemble(
//!     r#"
//!     start:
//!         li   a0, 10
//!         li   a1, 0
//!     loop:
//!         add  a1, a1, a0
//!         addi a0, a0, -1
//!         bnez a0, loop
//!         ecall
//!     "#,
//! )?;
//! assert_eq!(program.words().len(), 6);
//! assert_eq!(program.symbol("loop"), Some(8));
//! # Ok::<(), mempool_riscv::AsmError>(())
//! ```

use crate::{encode, AluOp, AmoOp, BranchOp, CsrOp, Instr, LoadOp, MulOp, Reg, StoreOp};
use std::collections::HashMap;
use std::fmt;

/// An assembled flat memory image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    base: u32,
    words: Vec<u32>,
    symbols: HashMap<String, u32>,
}

impl Program {
    /// The load address of the first word.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The image as 32-bit little-endian words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Size of the image in bytes.
    pub fn size(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Looks up a label or `.equ` symbol.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All defined symbols.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// An objdump-style listing: one `address: word  disassembly` line per
    /// word (undecodable words print as `.word`).
    ///
    /// # Examples
    ///
    /// ```
    /// use mempool_riscv::assemble;
    ///
    /// let p = assemble("nop\necall\n")?;
    /// let listing = p.listing();
    /// assert!(listing.lines().next().unwrap().contains("addi zero, zero, 0"));
    /// # Ok::<(), mempool_riscv::AsmError>(())
    /// ```
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, &word) in self.words.iter().enumerate() {
            let addr = self.base + 4 * i as u32;
            match crate::decode(word) {
                Ok(instr) => {
                    let _ = writeln!(out, "{addr:08x}:  {word:08x}  {instr}");
                }
                Err(_) => {
                    let _ = writeln!(out, "{addr:08x}:  {word:08x}  .word");
                }
            }
        }
        out
    }
}

/// Error produced while assembling, with a 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    msg: String,
}

impl AsmError {
    fn new(line: usize, msg: impl Into<String>) -> Self {
        AsmError {
            line,
            msg: msg.into(),
        }
    }

    /// The 1-based source line the error refers to.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Assembles `source` at base address 0.
///
/// # Errors
///
/// Returns [`AsmError`] on syntax errors, undefined or duplicate symbols, and
/// out-of-range immediates.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_at(source, 0)
}

/// Assembles `source` with the first byte placed at `base`.
///
/// # Errors
///
/// Returns [`AsmError`] on syntax errors, undefined or duplicate symbols,
/// out-of-range immediates, or a misaligned `base`.
pub fn assemble_at(source: &str, base: u32) -> Result<Program, AsmError> {
    if !base.is_multiple_of(4) {
        return Err(AsmError::new(0, "base address must be 4-byte aligned"));
    }
    let items = parse(source, base)?;
    let mut symbols = HashMap::new();
    // Pass 1 already assigned addresses; collect symbols.
    for item in &items {
        if let ItemKind::Label(name) = &item.kind {
            if symbols.insert(name.clone(), item.addr).is_some() {
                return Err(AsmError::new(item.line, format!("duplicate label `{name}`")));
            }
        }
        if let ItemKind::Equ(name, value) = &item.kind {
            if symbols.insert(name.clone(), *value).is_some() {
                return Err(AsmError::new(
                    item.line,
                    format!("duplicate symbol `{name}`"),
                ));
            }
        }
    }
    // Pass 2: emit into a byte image (directives may be byte-granular).
    let mut end = base;
    for item in &items {
        end = end.max(item.addr + item.size);
    }
    let mut bytes = vec![0u8; (end - base).next_multiple_of(4) as usize];
    for item in &items {
        let at = (item.addr - base) as usize;
        match &item.kind {
            ItemKind::Label(_) | ItemKind::Equ(..) | ItemKind::Space => {}
            ItemKind::Words(exprs) => {
                for (i, e) in exprs.iter().enumerate() {
                    let v = eval(e, &symbols).map_err(|m| AsmError::new(item.line, m))? as u32;
                    bytes[at + 4 * i..at + 4 * i + 4].copy_from_slice(&v.to_le_bytes());
                }
            }
            ItemKind::Bytes(exprs, elem) => {
                for (i, e) in exprs.iter().enumerate() {
                    let v = eval(e, &symbols).map_err(|m| AsmError::new(item.line, m))? as u32;
                    let off = at + (*elem as usize) * i;
                    bytes[off..off + *elem as usize]
                        .copy_from_slice(&v.to_le_bytes()[..*elem as usize]);
                }
            }
            ItemKind::Ascii(data) => {
                bytes[at..at + data.len()].copy_from_slice(data);
            }
            ItemKind::Instr(text) => {
                let instrs = lower(text, item.addr, item.size, &symbols)
                    .map_err(|m| AsmError::new(item.line, m))?;
                debug_assert_eq!(instrs.len() * 4, item.size as usize, "size mismatch: {text}");
                for (i, instr) in instrs.into_iter().enumerate() {
                    let w = encode(instr).map_err(|e| AsmError::new(item.line, e.to_string()))?;
                    bytes[at + 4 * i..at + 4 * i + 4].copy_from_slice(&w.to_le_bytes());
                }
            }
        }
    }
    let words = bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(Program {
        base,
        words,
        symbols,
    })
}

#[derive(Debug)]
struct Item {
    line: usize,
    addr: u32,
    size: u32,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    Label(String),
    Equ(String, u32),
    Words(Vec<String>),
    /// Byte-granular data: (expressions, bytes per element) for `.byte` /
    /// `.half`, or literal bytes for `.ascii`/`.asciz`.
    Bytes(Vec<String>, u32),
    Ascii(Vec<u8>),
    Space,
    Instr(String),
}

fn strip_comment(line: &str) -> &str {
    let mut cut = line.len();
    for pat in ["#", "//", ";"] {
        if let Some(idx) = line.find(pat) {
            cut = cut.min(idx);
        }
    }
    &line[..cut]
}

/// Pass 1: split into items and assign addresses.
/// Macro preprocessor: collects `.macro name [p1, p2, ...]` … `.endm`
/// definitions and expands invocations textually. `\param` substitutes an
/// argument; `\@` substitutes a per-expansion counter (for unique labels).
fn preprocess(source: &str) -> Result<Vec<(usize, String)>, AsmError> {
    struct MacroDef {
        params: Vec<String>,
        body: Vec<(usize, String)>,
    }
    let mut macros: HashMap<String, MacroDef> = HashMap::new();
    let mut stream: Vec<(usize, String)> = Vec::new();
    let mut current: Option<(String, MacroDef)> = None;
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let text = strip_comment(raw).trim();
        if let Some(rest) = text.strip_prefix(".macro") {
            if current.is_some() {
                return Err(AsmError::new(line_no, "nested .macro definitions"));
            }
            let mut parts = rest.trim().splitn(2, char::is_whitespace);
            let name = parts.next().unwrap_or("").trim().to_owned();
            if !is_ident(&name) {
                return Err(AsmError::new(line_no, ".macro needs a name"));
            }
            let params: Vec<String> = parts
                .next()
                .unwrap_or("")
                .split(',')
                .map(|p| p.trim().to_owned())
                .filter(|p| !p.is_empty())
                .collect();
            current = Some((
                name,
                MacroDef {
                    params,
                    body: Vec::new(),
                },
            ));
            continue;
        }
        if text == ".endm" {
            let Some((name, def)) = current.take() else {
                return Err(AsmError::new(line_no, ".endm without .macro"));
            };
            if macros.insert(name.clone(), def).is_some() {
                return Err(AsmError::new(line_no, format!("duplicate macro `{name}`")));
            }
            continue;
        }
        match &mut current {
            Some((_, def)) => def.body.push((line_no, raw.to_owned())),
            None => stream.push((line_no, raw.to_owned())),
        }
    }
    if let Some((name, _)) = current {
        return Err(AsmError::new(0, format!("unterminated .macro `{name}`")));
    }
    if macros.is_empty() {
        return Ok(stream);
    }
    // Expand until fixpoint (depth-limited).
    let mut counter = 0usize;
    for _depth in 0..16 {
        let mut expanded = Vec::with_capacity(stream.len());
        let mut changed = false;
        for (line_no, raw) in &stream {
            let text = strip_comment(raw).trim();
            let (mnemonic, rest) = split_mnemonic(text);
            if let Some(def) = macros.get(mnemonic) {
                let args = split_operands(rest);
                if args.len() != def.params.len() {
                    return Err(AsmError::new(
                        *line_no,
                        format!(
                            "macro `{mnemonic}` expects {} arguments, got {}",
                            def.params.len(),
                            args.len()
                        ),
                    ));
                }
                counter += 1;
                changed = true;
                for (body_line, body_raw) in &def.body {
                    let mut out = body_raw.clone();
                    for (param, arg) in def.params.iter().zip(&args) {
                        out = out.replace(&format!("\\{param}"), arg);
                    }
                    out = out.replace("\\@", &counter.to_string());
                    let _ = body_line;
                    expanded.push((*line_no, out));
                }
            } else {
                expanded.push((*line_no, raw.clone()));
            }
        }
        stream = expanded;
        if !changed {
            return Ok(stream);
        }
    }
    Err(AsmError::new(0, "macro expansion exceeded depth 16 (recursive?)"))
}

fn parse(source: &str, base: u32) -> Result<Vec<Item>, AsmError> {
    let mut items = Vec::new();
    let mut pc = base;
    // .equ constants usable in later size computations (e.g. li).
    let mut consts: HashMap<String, u32> = HashMap::new();
    for (line_no, raw) in preprocess(source)? {
        let mut text = strip_comment(&raw).trim();
        // Leading labels.
        while let Some(colon) = text.find(':') {
            let (head, rest) = text.split_at(colon);
            let name = head.trim();
            if name.is_empty() || !is_ident(name) {
                break;
            }
            items.push(Item {
                line: line_no,
                addr: pc,
                size: 0,
                kind: ItemKind::Label(name.to_owned()),
            });
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix('.') {
            let (dir, args) = match rest.find(char::is_whitespace) {
                Some(i) => (&rest[..i], rest[i..].trim()),
                None => (rest, ""),
            };
            match dir {
                "word" => {
                    let exprs: Vec<String> =
                        args.split(',').map(|s| s.trim().to_owned()).collect();
                    if exprs.iter().any(|e| e.is_empty()) {
                        return Err(AsmError::new(line_no, "empty .word operand"));
                    }
                    let n = exprs.len() as u32;
                    items.push(Item {
                        line: line_no,
                        addr: pc,
                        size: 4 * n,
                        kind: ItemKind::Words(exprs),
                    });
                    pc += 4 * n;
                }
                "byte" | "half" => {
                    let elem: u32 = if dir == "byte" { 1 } else { 2 };
                    let exprs: Vec<String> =
                        args.split(',').map(|e| e.trim().to_owned()).collect();
                    if exprs.iter().any(|e| e.is_empty()) {
                        return Err(AsmError::new(line_no, format!("empty .{dir} operand")));
                    }
                    let n = exprs.len() as u32;
                    items.push(Item {
                        line: line_no,
                        addr: pc,
                        size: elem * n,
                        kind: ItemKind::Bytes(exprs, elem),
                    });
                    pc += elem * n;
                }
                "ascii" | "asciz" => {
                    let text = args.trim();
                    let inner = text
                        .strip_prefix('"')
                        .and_then(|t| t.strip_suffix('"'))
                        .ok_or_else(|| {
                            AsmError::new(line_no, format!(".{dir} expects a quoted string"))
                        })?;
                    let mut data = unescape(inner)
                        .map_err(|m| AsmError::new(line_no, m))?;
                    if dir == "asciz" {
                        data.push(0);
                    }
                    let n = data.len() as u32;
                    items.push(Item {
                        line: line_no,
                        addr: pc,
                        size: n,
                        kind: ItemKind::Ascii(data),
                    });
                    pc += n;
                }
                "space" | "zero" => {
                    let n = eval(args, &consts)
                        .map_err(|m| AsmError::new(line_no, m))? as u32;
                    items.push(Item {
                        line: line_no,
                        addr: pc,
                        size: n,
                        kind: ItemKind::Space,
                    });
                    pc += n;
                }
                "align" => {
                    let p = eval(args, &consts)
                        .map_err(|m| AsmError::new(line_no, m))?;
                    let alignment = 1u32 << p;
                    let aligned = pc.next_multiple_of(alignment.max(4));
                    let pad = aligned - pc;
                    if pad > 0 {
                        items.push(Item {
                            line: line_no,
                            addr: pc,
                            size: pad,
                            kind: ItemKind::Space,
                        });
                    }
                    pc = aligned;
                }
                "equ" | "set" => {
                    let (name, value) = args
                        .split_once(',')
                        .ok_or_else(|| AsmError::new(line_no, ".equ needs `name, value`"))?;
                    let name = name.trim().to_owned();
                    if !is_ident(&name) {
                        return Err(AsmError::new(line_no, "invalid .equ symbol name"));
                    }
                    let value = eval(value.trim(), &consts)
                        .map_err(|m| AsmError::new(line_no, m))? as u32;
                    consts.insert(name.clone(), value);
                    items.push(Item {
                        line: line_no,
                        addr: pc,
                        size: 0,
                        kind: ItemKind::Equ(name, value),
                    });
                }
                "text" | "data" | "section" | "globl" | "global" | "option" => {}
                other => {
                    return Err(AsmError::new(line_no, format!("unknown directive `.{other}`")));
                }
            }
            continue;
        }
        // Instruction (real or pseudo). Size from mnemonic.
        if !pc.is_multiple_of(4) {
            return Err(AsmError::new(
                line_no,
                "instruction is not word-aligned (add `.align 2` after byte data)",
            ));
        }
        let size = instr_size(text, &consts).map_err(|m| AsmError::new(line_no, m))?;
        items.push(Item {
            line: line_no,
            addr: pc,
            size,
            kind: ItemKind::Instr(text.to_owned()),
        });
        pc += size;
    }
    Ok(items)
}

/// Resolves the escape sequences of an `.ascii` string literal.
fn unescape(text: &str) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        match chars.next() {
            Some('n') => out.push(b'\n'),
            Some('t') => out.push(b'\t'),
            Some('r') => out.push(b'\r'),
            Some('0') => out.push(0),
            Some('\\') => out.push(b'\\'),
            Some('"') => out.push(b'"'),
            other => return Err(format!("unknown escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

fn split_mnemonic(text: &str) -> (&str, &str) {
    match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    }
}

/// How many bytes an instruction line occupies (pseudos may expand to 2).
fn instr_size(text: &str, consts: &HashMap<String, u32>) -> Result<u32, String> {
    let (mnemonic, rest) = split_mnemonic(text);
    Ok(match mnemonic {
        "li" => {
            let ops = split_operands(rest);
            if ops.len() != 2 {
                return Err("li needs `rd, imm`".into());
            }
            let v = eval(&ops[1], consts)
                .map_err(|_| "li immediate must be a constant expression".to_string())?
                as i32;
            if fits_i12(v) || (v & 0xfff) == 0 {
                4
            } else {
                8
            }
        }
        "la" => 8,
        _ => 4,
    })
}

fn fits_i12(v: i32) -> bool {
    (-2048..=2047).contains(&v)
}

fn split_operands(rest: &str) -> Vec<String> {
    // Split on commas at paren depth 0 (no nesting in practice, but `%hi(x)`
    // contains parens).
    let mut ops = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in rest.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                ops.push(cur.trim().to_owned());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        ops.push(cur.trim().to_owned());
    }
    ops
}

/// Evaluates an integer expression: literals, symbols, `+`/`-`/`*`
/// (with `*` binding tighter), `%hi()`, `%lo()`.
fn eval(expr: &str, symbols: &HashMap<String, u32>) -> Result<i64, String> {
    let expr = expr.trim();
    if expr.is_empty() {
        return Err("empty expression".into());
    }
    if let Some(inner) = expr
        .strip_prefix("%hi(")
        .and_then(|s| s.strip_suffix(')'))
    {
        let v = eval(inner, symbols)? as u32;
        return Ok(((v.wrapping_add(0x800)) >> 12) as i64);
    }
    if let Some(inner) = expr
        .strip_prefix("%lo(")
        .and_then(|s| s.strip_suffix(')'))
    {
        let v = eval(inner, symbols)? as u32;
        return Ok(i64::from(((v & 0xfff) as i32) << 20 >> 20));
    }
    // Tokenize +/- at top level (no parens other than %hi/%lo which were
    // handled whole-expression), with `*` binding tighter than `+`/`-`.
    let mut total: i64 = 0;
    let mut sign: i64 = 1;
    let mut term = String::new();
    let mut first = true;
    let flush = |term: &mut String, sign: i64, total: &mut i64| -> Result<(), String> {
        if term.trim().is_empty() {
            return Err("malformed expression".into());
        }
        *total += sign * eval_product(term.trim(), symbols)?;
        term.clear();
        Ok(())
    };
    for c in expr.chars() {
        match c {
            '+' if !term.trim().is_empty() => {
                flush(&mut term, sign, &mut total)?;
                sign = 1;
            }
            '-' if !term.trim().is_empty() => {
                flush(&mut term, sign, &mut total)?;
                sign = -1;
            }
            '-' if first && term.is_empty() => {
                sign = -1;
            }
            _ => term.push(c),
        }
        first = false;
    }
    flush(&mut term, sign, &mut total)?;
    Ok(total)
}

/// Evaluates a `*`-separated product of simple terms.
fn eval_product(product: &str, symbols: &HashMap<String, u32>) -> Result<i64, String> {
    let mut result: i64 = 1;
    for factor in product.split('*') {
        let factor = factor.trim();
        if factor.is_empty() {
            return Err(format!("malformed product `{product}`"));
        }
        result = result.wrapping_mul(eval_term(factor, symbols)?);
    }
    Ok(result)
}

fn eval_term(term: &str, symbols: &HashMap<String, u32>) -> Result<i64, String> {
    if let Some(hex) = term.strip_prefix("0x").or_else(|| term.strip_prefix("0X")) {
        return i64::from_str_radix(&hex.replace('_', ""), 16)
            .map_err(|_| format!("invalid hex literal `{term}`"));
    }
    if let Some(bin) = term.strip_prefix("0b").or_else(|| term.strip_prefix("0B")) {
        return i64::from_str_radix(&bin.replace('_', ""), 2)
            .map_err(|_| format!("invalid binary literal `{term}`"));
    }
    if term.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return term
            .replace('_', "")
            .parse::<i64>()
            .map_err(|_| format!("invalid literal `{term}`"));
    }
    symbols
        .get(term)
        .map(|&v| v as i64)
        .ok_or_else(|| format!("undefined symbol `{term}`"))
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    s.parse::<Reg>().map_err(|e| e.to_string())
}

/// Parses `offset(reg)` (offset may be empty).
fn parse_mem(s: &str, symbols: &HashMap<String, u32>) -> Result<(i32, Reg), String> {
    let open = s.find('(').ok_or_else(|| format!("expected `off(reg)`, got `{s}`"))?;
    let close = s.rfind(')').ok_or_else(|| format!("missing `)` in `{s}`"))?;
    let off_str = s[..open].trim();
    let reg = parse_reg(s[open + 1..close].trim())?;
    let off = if off_str.is_empty() {
        0
    } else {
        eval(off_str, symbols)? as i32
    };
    Ok((off, reg))
}

fn csr_addr(s: &str, symbols: &HashMap<String, u32>) -> Result<u16, String> {
    let named = match s {
        "mhartid" => Some(crate::csr::MHARTID),
        "mcycle" => Some(crate::csr::MCYCLE),
        "mcycleh" => Some(crate::csr::MCYCLEH),
        "minstret" => Some(crate::csr::MINSTRET),
        "minstreth" => Some(crate::csr::MINSTRETH),
        "mscratch" => Some(crate::csr::MSCRATCH),
        "mregion" => Some(crate::csr::MREGION),
        _ => None,
    };
    if let Some(addr) = named {
        return Ok(addr);
    }
    let v = eval(s, symbols)?;
    if !(0..=0xfff).contains(&v) {
        return Err(format!("csr address `{s}` out of range"));
    }
    Ok(v as u16)
}

/// Resolves a branch/jump target: label or absolute numeric address.
fn target_offset(s: &str, addr: u32, symbols: &HashMap<String, u32>) -> Result<i32, String> {
    let v = eval(s, symbols)? as u32;
    Ok(v.wrapping_sub(addr) as i32)
}

/// Pass 2 lowering: one source line to one or two instructions.
fn lower(
    text: &str,
    addr: u32,
    size: u32,
    symbols: &HashMap<String, u32>,
) -> Result<Vec<Instr>, String> {
    let (mnemonic, rest) = split_mnemonic(text);
    let ops = split_operands(rest);
    let want = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!("`{mnemonic}` expects {n} operands, got {}", ops.len()))
        }
    };
    let reg = |i: usize| parse_reg(&ops[i]);
    let imm = |i: usize| -> Result<i32, String> { Ok(eval(&ops[i], symbols)? as i32) };

    let alu_rr = |op: AluOp| -> Result<Vec<Instr>, String> {
        want(3)?;
        Ok(vec![Instr::Op {
            op,
            rd: reg(0)?,
            rs1: reg(1)?,
            rs2: reg(2)?,
        }])
    };
    let alu_ri = |op: AluOp| -> Result<Vec<Instr>, String> {
        want(3)?;
        Ok(vec![Instr::OpImm {
            op,
            rd: reg(0)?,
            rs1: reg(1)?,
            imm: imm(2)?,
        }])
    };
    let muldiv = |op: MulOp| -> Result<Vec<Instr>, String> {
        want(3)?;
        Ok(vec![Instr::MulDiv {
            op,
            rd: reg(0)?,
            rs1: reg(1)?,
            rs2: reg(2)?,
        }])
    };
    let load = |op: LoadOp| -> Result<Vec<Instr>, String> {
        want(2)?;
        let (offset, rs1) = parse_mem(&ops[1], symbols)?;
        Ok(vec![Instr::Load {
            op,
            rd: reg(0)?,
            rs1,
            offset,
        }])
    };
    let store = |op: StoreOp| -> Result<Vec<Instr>, String> {
        want(2)?;
        let (offset, rs1) = parse_mem(&ops[1], symbols)?;
        Ok(vec![Instr::Store {
            op,
            rs2: reg(0)?,
            rs1,
            offset,
        }])
    };
    let branch = |op: BranchOp| -> Result<Vec<Instr>, String> {
        want(3)?;
        Ok(vec![Instr::Branch {
            op,
            rs1: reg(0)?,
            rs2: reg(1)?,
            offset: target_offset(&ops[2], addr, symbols)?,
        }])
    };
    // Branch pseudo with swapped operands (bgt/ble/bgtu/bleu).
    let branch_swapped = |op: BranchOp| -> Result<Vec<Instr>, String> {
        want(3)?;
        Ok(vec![Instr::Branch {
            op,
            rs1: reg(1)?,
            rs2: reg(0)?,
            offset: target_offset(&ops[2], addr, symbols)?,
        }])
    };
    let branch_zero = |op: BranchOp, swap: bool| -> Result<Vec<Instr>, String> {
        want(2)?;
        let r = reg(0)?;
        let (rs1, rs2) = if swap { (Reg::ZERO, r) } else { (r, Reg::ZERO) };
        Ok(vec![Instr::Branch {
            op,
            rs1,
            rs2,
            offset: target_offset(&ops[1], addr, symbols)?,
        }])
    };
    let amo = |op: AmoOp| -> Result<Vec<Instr>, String> {
        want(3)?;
        let (off, rs1) = parse_mem(&ops[2], symbols)?;
        if off != 0 {
            return Err("atomic operations take a plain `(reg)` address".into());
        }
        Ok(vec![Instr::Amo {
            op,
            rd: reg(0)?,
            rs1,
            rs2: reg(1)?,
        }])
    };
    let csr_rr = |op: CsrOp| -> Result<Vec<Instr>, String> {
        want(3)?;
        Ok(vec![Instr::Csr {
            op,
            rd: reg(0)?,
            csr: csr_addr(&ops[1], symbols)?,
            rs1: reg(2)?,
        }])
    };

    match mnemonic {
        // RV32I register-register.
        "add" => alu_rr(AluOp::Add),
        "sub" => alu_rr(AluOp::Sub),
        "sll" => alu_rr(AluOp::Sll),
        "slt" => alu_rr(AluOp::Slt),
        "sltu" => alu_rr(AluOp::Sltu),
        "xor" => alu_rr(AluOp::Xor),
        "srl" => alu_rr(AluOp::Srl),
        "sra" => alu_rr(AluOp::Sra),
        "or" => alu_rr(AluOp::Or),
        "and" => alu_rr(AluOp::And),
        // RV32I register-immediate.
        "addi" => alu_ri(AluOp::Add),
        "slti" => alu_ri(AluOp::Slt),
        "sltiu" => alu_ri(AluOp::Sltu),
        "xori" => alu_ri(AluOp::Xor),
        "ori" => alu_ri(AluOp::Or),
        "andi" => alu_ri(AluOp::And),
        "slli" => alu_ri(AluOp::Sll),
        "srli" => alu_ri(AluOp::Srl),
        "srai" => alu_ri(AluOp::Sra),
        // RV32M.
        "mul" => muldiv(MulOp::Mul),
        "mulh" => muldiv(MulOp::Mulh),
        "mulhsu" => muldiv(MulOp::Mulhsu),
        "mulhu" => muldiv(MulOp::Mulhu),
        "div" => muldiv(MulOp::Div),
        "divu" => muldiv(MulOp::Divu),
        "rem" => muldiv(MulOp::Rem),
        "remu" => muldiv(MulOp::Remu),
        // Loads/stores.
        "lb" => load(LoadOp::Lb),
        "lh" => load(LoadOp::Lh),
        "lw" => load(LoadOp::Lw),
        "lbu" => load(LoadOp::Lbu),
        "lhu" => load(LoadOp::Lhu),
        "sb" => store(StoreOp::Sb),
        "sh" => store(StoreOp::Sh),
        "sw" => store(StoreOp::Sw),
        // Branches.
        "beq" => branch(BranchOp::Beq),
        "bne" => branch(BranchOp::Bne),
        "blt" => branch(BranchOp::Blt),
        "bge" => branch(BranchOp::Bge),
        "bltu" => branch(BranchOp::Bltu),
        "bgeu" => branch(BranchOp::Bgeu),
        "bgt" => branch_swapped(BranchOp::Blt),
        "ble" => branch_swapped(BranchOp::Bge),
        "bgtu" => branch_swapped(BranchOp::Bltu),
        "bleu" => branch_swapped(BranchOp::Bgeu),
        "beqz" => branch_zero(BranchOp::Beq, false),
        "bnez" => branch_zero(BranchOp::Bne, false),
        "bltz" => branch_zero(BranchOp::Blt, false),
        "bgez" => branch_zero(BranchOp::Bge, false),
        "blez" => branch_zero(BranchOp::Bge, true),
        "bgtz" => branch_zero(BranchOp::Blt, true),
        // Jumps.
        "jal" => match ops.len() {
            1 => Ok(vec![Instr::Jal {
                rd: Reg::RA,
                offset: target_offset(&ops[0], addr, symbols)?,
            }]),
            2 => Ok(vec![Instr::Jal {
                rd: reg(0)?,
                offset: target_offset(&ops[1], addr, symbols)?,
            }]),
            n => Err(format!("`jal` expects 1 or 2 operands, got {n}")),
        },
        "jalr" => match ops.len() {
            1 => Ok(vec![Instr::Jalr {
                rd: Reg::RA,
                rs1: reg(0)?,
                offset: 0,
            }]),
            2 => {
                let (offset, rs1) = parse_mem(&ops[1], symbols)?;
                Ok(vec![Instr::Jalr {
                    rd: reg(0)?,
                    rs1,
                    offset,
                }])
            }
            n => Err(format!("`jalr` expects 1 or 2 operands, got {n}")),
        },
        "j" => {
            want(1)?;
            Ok(vec![Instr::Jal {
                rd: Reg::ZERO,
                offset: target_offset(&ops[0], addr, symbols)?,
            }])
        }
        "jr" => {
            want(1)?;
            Ok(vec![Instr::Jalr {
                rd: Reg::ZERO,
                rs1: reg(0)?,
                offset: 0,
            }])
        }
        "call" => {
            want(1)?;
            Ok(vec![Instr::Jal {
                rd: Reg::RA,
                offset: target_offset(&ops[0], addr, symbols)?,
            }])
        }
        "ret" => {
            want(0)?;
            Ok(vec![Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            }])
        }
        // U-type.
        "lui" => {
            want(2)?;
            let v = imm(1)? as u32;
            if v > 0xfffff {
                return Err("lui immediate exceeds 20 bits".into());
            }
            Ok(vec![Instr::Lui {
                rd: reg(0)?,
                imm: v << 12,
            }])
        }
        "auipc" => {
            want(2)?;
            let v = imm(1)? as u32;
            if v > 0xfffff {
                return Err("auipc immediate exceeds 20 bits".into());
            }
            Ok(vec![Instr::Auipc {
                rd: reg(0)?,
                imm: v << 12,
            }])
        }
        // Pseudo-instructions.
        "nop" => {
            want(0)?;
            Ok(vec![Instr::NOP])
        }
        "mv" => {
            want(2)?;
            Ok(vec![Instr::OpImm {
                op: AluOp::Add,
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: 0,
            }])
        }
        "not" => {
            want(2)?;
            Ok(vec![Instr::OpImm {
                op: AluOp::Xor,
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: -1,
            }])
        }
        "neg" => {
            want(2)?;
            Ok(vec![Instr::Op {
                op: AluOp::Sub,
                rd: reg(0)?,
                rs1: Reg::ZERO,
                rs2: reg(1)?,
            }])
        }
        "seqz" => {
            want(2)?;
            Ok(vec![Instr::OpImm {
                op: AluOp::Sltu,
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: 1,
            }])
        }
        "snez" => {
            want(2)?;
            Ok(vec![Instr::Op {
                op: AluOp::Sltu,
                rd: reg(0)?,
                rs1: Reg::ZERO,
                rs2: reg(1)?,
            }])
        }
        "li" => {
            want(2)?;
            let rd = reg(0)?;
            let v = imm(1)?;
            let mut out = Vec::new();
            if fits_i12(v) {
                out.push(Instr::OpImm {
                    op: AluOp::Add,
                    rd,
                    rs1: Reg::ZERO,
                    imm: v,
                });
            } else {
                let lo = (v << 20) >> 20;
                let hi = (v as u32).wrapping_add(0x800) & 0xffff_f000;
                out.push(Instr::Lui { rd, imm: hi });
                if lo != 0 {
                    out.push(Instr::OpImm {
                        op: AluOp::Add,
                        rd,
                        rs1: rd,
                        imm: lo,
                    });
                }
            }
            debug_assert_eq!(out.len() * 4, size as usize);
            Ok(out)
        }
        "la" => {
            want(2)?;
            let rd = reg(0)?;
            let v = eval(&ops[1], symbols)? as u32;
            let lo = ((v & 0xfff) as i32) << 20 >> 20;
            let hi = v.wrapping_add(0x800) & 0xffff_f000;
            Ok(vec![
                Instr::Lui { rd, imm: hi },
                Instr::OpImm {
                    op: AluOp::Add,
                    rd,
                    rs1: rd,
                    imm: lo,
                },
            ])
        }
        // Atomics.
        "lr.w" => {
            want(2)?;
            let (off, rs1) = parse_mem(&ops[1], symbols)?;
            if off != 0 {
                return Err("lr.w takes a plain `(reg)` address".into());
            }
            Ok(vec![Instr::LrW { rd: reg(0)?, rs1 }])
        }
        "sc.w" => {
            want(3)?;
            let (off, rs1) = parse_mem(&ops[2], symbols)?;
            if off != 0 {
                return Err("sc.w takes a plain `(reg)` address".into());
            }
            Ok(vec![Instr::ScW {
                rd: reg(0)?,
                rs1,
                rs2: reg(1)?,
            }])
        }
        "amoswap.w" => amo(AmoOp::Swap),
        "amoadd.w" => amo(AmoOp::Add),
        "amoxor.w" => amo(AmoOp::Xor),
        "amoand.w" => amo(AmoOp::And),
        "amoor.w" => amo(AmoOp::Or),
        "amomin.w" => amo(AmoOp::Min),
        "amomax.w" => amo(AmoOp::Max),
        "amominu.w" => amo(AmoOp::Minu),
        "amomaxu.w" => amo(AmoOp::Maxu),
        // CSR.
        "csrrw" => csr_rr(CsrOp::Rw),
        "csrrs" => csr_rr(CsrOp::Rs),
        "csrrc" => csr_rr(CsrOp::Rc),
        "csrr" => {
            want(2)?;
            Ok(vec![Instr::Csr {
                op: CsrOp::Rs,
                rd: reg(0)?,
                csr: csr_addr(&ops[1], symbols)?,
                rs1: Reg::ZERO,
            }])
        }
        "csrw" => {
            want(2)?;
            Ok(vec![Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg::ZERO,
                csr: csr_addr(&ops[0], symbols)?,
                rs1: reg(1)?,
            }])
        }
        // System.
        "fence" => Ok(vec![Instr::Fence]),
        "fence.i" => Ok(vec![Instr::FenceI]),
        "ecall" => Ok(vec![Instr::Ecall]),
        "ebreak" => Ok(vec![Instr::Ebreak]),
        "wfi" => Ok(vec![Instr::Wfi]),
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    fn asm(src: &str) -> Program {
        assemble(src).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"))
    }

    #[test]
    fn simple_loop() {
        let p = asm("start: addi a0, zero, 5\nloop: addi a0, a0, -1\n bnez a0, loop\n ecall\n");
        assert_eq!(p.words().len(), 4);
        assert_eq!(p.symbol("start"), Some(0));
        assert_eq!(p.symbol("loop"), Some(4));
        // bnez a0, loop => bne a0, zero, -4
        match decode(p.words()[2]).unwrap() {
            Instr::Branch { op, offset, .. } => {
                assert_eq!(op, BranchOp::Bne);
                assert_eq!(offset, -4);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn li_expansion() {
        let p = asm("li a0, 42\nli a1, 0x12345678\nli a2, -1\nli a3, 0x1000\nli a4, 0xfffff800");
        // 42 -> 1 instr; 0x12345678 -> 2; -1 -> 1; 0x1000 -> lui only (1); 0xfffff800 -> addi only (1)
        assert_eq!(p.words().len(), 1 + 2 + 1 + 1 + 1);
        // Execute mentally: check li a1 produces the right constant.
        let i0 = decode(p.words()[1]).unwrap();
        let i1 = decode(p.words()[2]).unwrap();
        match (i0, i1) {
            (Instr::Lui { imm, .. }, Instr::OpImm { imm: lo, .. }) => {
                assert_eq!(imm.wrapping_add(lo as u32), 0x1234_5678);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn la_matches_label_address() {
        let p = asm(".space 4096\ntarget: .word 7\ncode: la a0, target\n");
        let lui = decode(p.words()[1024 + 1]).unwrap();
        let addi = decode(p.words()[1024 + 2]).unwrap();
        match (lui, addi) {
            (Instr::Lui { imm, .. }, Instr::OpImm { imm: lo, .. }) => {
                assert_eq!(imm.wrapping_add(lo as u32), 4096);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn equ_and_expressions() {
        let p = asm(".equ N, 64\nli a0, N*1\n".replace("N*1", "N").as_str());
        match decode(p.words()[0]).unwrap() {
            Instr::OpImm { imm, .. } => assert_eq!(imm, 64),
            other => panic!("wrong: {other:?}"),
        }
        let p = asm(".equ BASE, 0x100\nli a0, BASE+8\nli a1, BASE-0x10\n");
        match decode(p.words()[0]).unwrap() {
            Instr::OpImm { imm, .. } => assert_eq!(imm, 0x108),
            other => panic!("wrong: {other:?}"),
        }
        match decode(p.words()[1]).unwrap() {
            Instr::OpImm { imm, .. } => assert_eq!(imm, 0xf0),
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn word_and_align() {
        let p = asm(".word 1, 2, 3\n.align 4\ntab: .word 0xdeadbeef\n");
        assert_eq!(p.symbol("tab"), Some(16));
        assert_eq!(p.words()[4], 0xdead_beef);
        assert_eq!(&p.words()[..3], &[1, 2, 3]);
    }

    #[test]
    fn memory_operands() {
        let p = asm("lw a0, 8(sp)\nsw a0, -4(s0)\nlw a1, (a2)\n");
        assert_eq!(decode(p.words()[0]).unwrap().to_string(), "lw a0, 8(sp)");
        assert_eq!(decode(p.words()[1]).unwrap().to_string(), "sw a0, -4(s0)");
        assert_eq!(decode(p.words()[2]).unwrap().to_string(), "lw a1, 0(a2)");
    }

    #[test]
    fn atomics_and_csr() {
        let p = asm("amoadd.w a0, a1, (a2)\nlr.w t0, (a0)\nsc.w t1, t2, (a0)\ncsrr a0, mhartid\ncsrw mscratch, a1\n");
        assert_eq!(
            decode(p.words()[0]).unwrap().to_string(),
            "amoadd.w a0, a1, (a2)"
        );
        assert!(matches!(decode(p.words()[1]).unwrap(), Instr::LrW { .. }));
        assert!(matches!(decode(p.words()[2]).unwrap(), Instr::ScW { .. }));
        assert!(matches!(
            decode(p.words()[3]).unwrap(),
            Instr::Csr {
                op: CsrOp::Rs,
                csr: 0xf14,
                ..
            }
        ));
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = asm("# full line\n  addi a0, zero, 1 # trailing\n\n// c++ style\n  nop ; semicolon\n");
        assert_eq!(p.words().len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus a0\n").unwrap_err();
        assert_eq!(err.line(), 2);
        let err = assemble("lw a0, 8[sp]\n").unwrap_err();
        assert_eq!(err.line(), 1);
        let err = assemble("j nowhere\n").unwrap_err();
        assert!(err.to_string().contains("undefined symbol"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        assert!(assemble("a: nop\na: nop\n").is_err());
    }

    #[test]
    fn base_address_offsets_labels() {
        let p = assemble_at("x: j x\n", 0x400).unwrap();
        assert_eq!(p.symbol("x"), Some(0x400));
        match decode(p.words()[0]).unwrap() {
            Instr::Jal { offset, .. } => assert_eq!(offset, 0),
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn branch_swapped_pseudos() {
        let p = asm("top: bgt a0, a1, top\nble a0, a1, top\n");
        assert_eq!(decode(p.words()[0]).unwrap().to_string(), "blt a1, a0, 0");
        assert_eq!(decode(p.words()[1]).unwrap().to_string(), "bge a1, a0, -4");
    }

    #[test]
    fn macros_expand_with_params_and_unique_labels() {
        let p = asm(
            ".macro push reg\n             addi sp, sp, -4\n             sw \\reg, (sp)\n             .endm\n             li sp, 256\n             li a0, 7\n             push a0\n             push a0\n             ecall\n",
        );
        // 2 li + 2 expansions of 2 instructions + ecall.
        assert_eq!(p.words().len(), 2 + 4 + 1);
        // Unique-label macro: a delay loop used twice must not collide.
        let p = asm(
            ".macro delay n\n             li t0, \\n\n             d\\@:\n             addi t0, t0, -1\n             bnez t0, d\\@\n             .endm\n             delay 3\n             delay 5\n             ecall\n",
        );
        assert_eq!(p.words().len(), 3 + 3 + 1);
    }

    #[test]
    fn macro_errors_are_reported() {
        assert!(assemble(".macro a\nnop\n").is_err(), "unterminated");
        assert!(assemble(".endm\n").is_err(), "stray endm");
        let err = assemble(".macro two a, b\nnop\n.endm\ntwo 1\n").unwrap_err();
        assert!(err.to_string().contains("expects 2 arguments"), "{err}");
        // Recursive macros hit the depth limit instead of hanging.
        assert!(assemble(".macro r\nr\n.endm\nr\n").is_err());
    }

    #[test]
    fn byte_and_half_directives_pack_little_endian() {
        let p = asm(".byte 1, 2, 3, 4\n.half 0x1234, 0x5678\n");
        assert_eq!(p.words()[0], 0x0403_0201);
        assert_eq!(p.words()[1], 0x5678_1234);
    }

    #[test]
    fn ascii_and_asciz_strings() {
        let p = asm(".ascii \"AB\"\n.asciz \"C\"\n");
        // 'A' 'B' 'C' 0 packed into one word, little endian.
        assert_eq!(p.words()[0], u32::from_le_bytes(*b"ABC\0"));
        let p = asm(".asciz \"a\\n\"\n");
        assert_eq!(p.words()[0] & 0xffff, u32::from_le_bytes([b'a', b'\n', 0, 0]) & 0xffff);
    }

    #[test]
    fn misaligned_instruction_rejected() {
        let err = assemble(".byte 1\nnop\n").unwrap_err();
        assert!(err.to_string().contains("word-aligned"), "{err}");
        // With realignment it works.
        assert!(assemble(".byte 1\n.align 2\nnop\n").is_ok());
    }

    #[test]
    fn odd_space_allowed_for_data() {
        let p = asm(".space 3\n.byte 9\n");
        assert_eq!(p.words()[0], 0x0900_0000);
    }

    #[test]
    fn expression_products() {
        let p = asm(".equ N, 12\nli a0, N*4\nli a1, 2+3*4\nli a2, N*N-N\nli a3, -2*8\n");
        let imms: Vec<i32> = p
            .words()
            .iter()
            .map(|&w| match decode(w).unwrap() {
                Instr::OpImm { imm, .. } => imm,
                other => panic!("wrong: {other:?}"),
            })
            .collect();
        assert_eq!(imms, vec![48, 14, 132, -16]);
    }

    #[test]
    fn hi_lo_relocations() {
        let p = asm(".equ ADDR, 0x12345678\nlui a0, %hi(ADDR)\naddi a0, a0, %lo(ADDR)\n");
        let lui = decode(p.words()[0]).unwrap();
        let addi = decode(p.words()[1]).unwrap();
        match (lui, addi) {
            (Instr::Lui { imm, .. }, Instr::OpImm { imm: lo, .. }) => {
                assert_eq!(imm.wrapping_add(lo as u32), 0x1234_5678);
            }
            other => panic!("wrong: {other:?}"),
        }
    }
}
