//! Property tests: the encoder and decoder are exact inverses over the whole
//! representable instruction space, and the disassembler output re-assembles
//! to the same word.

use mempool_riscv::{
    assemble, decode, encode, AluOp, AmoOp, BranchOp, CsrOp, Instr, LoadOp, MulOp, Reg, StoreOp,
};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).unwrap())
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn any_instr() -> impl Strategy<Value = Instr> {
    let mul_op = prop_oneof![
        Just(MulOp::Mul),
        Just(MulOp::Mulh),
        Just(MulOp::Mulhsu),
        Just(MulOp::Mulhu),
        Just(MulOp::Div),
        Just(MulOp::Divu),
        Just(MulOp::Rem),
        Just(MulOp::Remu),
    ];
    let branch_op = prop_oneof![
        Just(BranchOp::Beq),
        Just(BranchOp::Bne),
        Just(BranchOp::Blt),
        Just(BranchOp::Bge),
        Just(BranchOp::Bltu),
        Just(BranchOp::Bgeu),
    ];
    let load_op = prop_oneof![
        Just(LoadOp::Lb),
        Just(LoadOp::Lh),
        Just(LoadOp::Lw),
        Just(LoadOp::Lbu),
        Just(LoadOp::Lhu),
    ];
    let store_op = prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)];
    let amo_op = prop_oneof![
        Just(AmoOp::Swap),
        Just(AmoOp::Add),
        Just(AmoOp::Xor),
        Just(AmoOp::And),
        Just(AmoOp::Or),
        Just(AmoOp::Min),
        Just(AmoOp::Max),
        Just(AmoOp::Minu),
        Just(AmoOp::Maxu),
    ];
    let csr_op = prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)];
    prop_oneof![
        (any_reg(), 0u32..0x10_0000)
            .prop_map(|(rd, imm)| Instr::Lui { rd, imm: imm << 12 }),
        (any_reg(), 0u32..0x10_0000)
            .prop_map(|(rd, imm)| Instr::Auipc { rd, imm: imm << 12 }),
        (any_reg(), -(1i32 << 19)..(1 << 19))
            .prop_map(|(rd, half)| Instr::Jal { rd, offset: half * 2 }),
        (any_reg(), any_reg(), -2048i32..2048)
            .prop_map(|(rd, rs1, offset)| Instr::Jalr { rd, rs1, offset }),
        (branch_op, any_reg(), any_reg(), -(1i32 << 11)..(1 << 11)).prop_map(
            |(op, rs1, rs2, half)| Instr::Branch {
                op,
                rs1,
                rs2,
                offset: half * 2
            }
        ),
        (load_op, any_reg(), any_reg(), -2048i32..2048).prop_map(|(op, rd, rs1, offset)| {
            Instr::Load {
                op,
                rd,
                rs1,
                offset,
            }
        }),
        (store_op, any_reg(), any_reg(), -2048i32..2048).prop_map(|(op, rs2, rs1, offset)| {
            Instr::Store {
                op,
                rs2,
                rs1,
                offset,
            }
        }),
        (any_alu_op(), any_reg(), any_reg(), -2048i32..2048).prop_filter_map(
            "imm form exists",
            |(op, rd, rs1, imm)| {
                if !op.has_imm_form() {
                    return None;
                }
                let imm = if op.is_shift() { imm.rem_euclid(32) } else { imm };
                Some(Instr::OpImm { op, rd, rs1, imm })
            }
        ),
        (any_alu_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op { op, rd, rs1, rs2 }),
        (mul_op, any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::MulDiv { op, rd, rs1, rs2 }),
        (any_reg(), any_reg()).prop_map(|(rd, rs1)| Instr::LrW { rd, rs1 }),
        (any_reg(), any_reg(), any_reg())
            .prop_map(|(rd, rs1, rs2)| Instr::ScW { rd, rs1, rs2 }),
        (amo_op, any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Amo { op, rd, rs1, rs2 }),
        (csr_op.clone(), any_reg(), any_reg(), 0u16..0x1000)
            .prop_map(|(op, rd, rs1, csr)| Instr::Csr { op, rd, rs1, csr }),
        (csr_op, any_reg(), 0u8..32, 0u16..0x1000)
            .prop_map(|(op, rd, imm, csr)| Instr::CsrImm { op, rd, imm, csr }),
        Just(Instr::Fence),
        Just(Instr::FenceI),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
        Just(Instr::Wfi),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// encode ∘ decode = id over all representable instructions.
    #[test]
    fn encode_decode_roundtrip(instr in any_instr()) {
        let word = encode(instr).expect("generated instruction encodes");
        let back = decode(word).expect("encoded word decodes");
        prop_assert_eq!(instr, back);
    }

    /// decode ∘ encode = id over all words that decode at all.
    #[test]
    fn decode_encode_roundtrip(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            let re = encode(instr).expect("decoded instruction re-encodes");
            // Canonicalization: fence and fence.i carry ignored fields, so
            // compare through a second decode instead of bit equality.
            let instr2 = decode(re).expect("re-encoded word decodes");
            prop_assert_eq!(instr, instr2);
        }
    }

    /// The disassembly of ALU/load/store/branch forms re-assembles to the
    /// same instruction (smoke-level: covers the formatting of offsets and
    /// register names).
    #[test]
    fn disasm_reassembles(instr in any_instr()) {
        // Branch/jump offsets print as relative numbers; reassembling them as
        // absolute targets only works when the offset lands in the program.
        // CSR immediates and U-type immediates also print in a spelled-out
        // form the assembler reads differently, so skip those classes rather
        // than reject (rejecting most of the space trips proptest's global
        // reject limit).
        if instr.is_control()
            || matches!(
                instr,
                Instr::Csr { .. } | Instr::CsrImm { .. } | Instr::Lui { .. } | Instr::Auipc { .. }
            )
        {
            return Ok(());
        }
        let text = instr.to_string();
        let program = assemble(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
        prop_assert_eq!(program.words().len(), 1, "`{}`", text);
        let back = decode(program.words()[0]).unwrap();
        prop_assert_eq!(instr, back, "`{}`", text);
    }
}
