//! Property tests: the encoder and decoder are exact inverses over the whole
//! representable instruction space, and the disassembler output re-assembles
//! to the same word. Cases come from a seeded PRNG so failures replay.

use mempool_riscv::{
    assemble, decode, encode, AluOp, AmoOp, BranchOp, CsrOp, Instr, LoadOp, MulOp, Reg, StoreOp,
};
use mempool_rng::{Rng, SeedableRng, StdRng};

const ALU_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
];
const MUL_OPS: [MulOp; 8] = [
    MulOp::Mul,
    MulOp::Mulh,
    MulOp::Mulhsu,
    MulOp::Mulhu,
    MulOp::Div,
    MulOp::Divu,
    MulOp::Rem,
    MulOp::Remu,
];
const BRANCH_OPS: [BranchOp; 6] = [
    BranchOp::Beq,
    BranchOp::Bne,
    BranchOp::Blt,
    BranchOp::Bge,
    BranchOp::Bltu,
    BranchOp::Bgeu,
];
const LOAD_OPS: [LoadOp; 5] = [LoadOp::Lb, LoadOp::Lh, LoadOp::Lw, LoadOp::Lbu, LoadOp::Lhu];
const STORE_OPS: [StoreOp; 3] = [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw];
const AMO_OPS: [AmoOp; 9] = [
    AmoOp::Swap,
    AmoOp::Add,
    AmoOp::Xor,
    AmoOp::And,
    AmoOp::Or,
    AmoOp::Min,
    AmoOp::Max,
    AmoOp::Minu,
    AmoOp::Maxu,
];
const CSR_OPS: [CsrOp; 3] = [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc];

fn any_reg(rng: &mut StdRng) -> Reg {
    Reg::new(rng.gen_range(0u8..32)).unwrap()
}

fn pick<T: Copy>(rng: &mut StdRng, options: &[T]) -> T {
    options[rng.gen_range(0usize..options.len())]
}

/// Uniform draw over every representable instruction form (the old
/// proptest `any_instr` strategy, enumerated by variant index).
fn any_instr(rng: &mut StdRng) -> Instr {
    match rng.gen_range(0u8..19) {
        0 => Instr::Lui {
            rd: any_reg(rng),
            imm: rng.gen_range(0u32..0x10_0000) << 12,
        },
        1 => Instr::Auipc {
            rd: any_reg(rng),
            imm: rng.gen_range(0u32..0x10_0000) << 12,
        },
        2 => Instr::Jal {
            rd: any_reg(rng),
            offset: rng.gen_range(-(1i32 << 19)..(1 << 19)) * 2,
        },
        3 => Instr::Jalr {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: rng.gen_range(-2048i32..2048),
        },
        4 => Instr::Branch {
            op: pick(rng, &BRANCH_OPS),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: rng.gen_range(-(1i32 << 11)..(1 << 11)) * 2,
        },
        5 => Instr::Load {
            op: pick(rng, &LOAD_OPS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: rng.gen_range(-2048i32..2048),
        },
        6 => Instr::Store {
            op: pick(rng, &STORE_OPS),
            rs2: any_reg(rng),
            rs1: any_reg(rng),
            offset: rng.gen_range(-2048i32..2048),
        },
        7 => {
            let op = loop {
                let op = pick(rng, &ALU_OPS);
                if op.has_imm_form() {
                    break op;
                }
            };
            let imm = rng.gen_range(-2048i32..2048);
            let imm = if op.is_shift() { imm.rem_euclid(32) } else { imm };
            Instr::OpImm {
                op,
                rd: any_reg(rng),
                rs1: any_reg(rng),
                imm,
            }
        }
        8 => Instr::Op {
            op: pick(rng, &ALU_OPS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        9 => Instr::MulDiv {
            op: pick(rng, &MUL_OPS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        10 => Instr::LrW {
            rd: any_reg(rng),
            rs1: any_reg(rng),
        },
        11 => Instr::ScW {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        12 => Instr::Amo {
            op: pick(rng, &AMO_OPS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        13 => Instr::Csr {
            op: pick(rng, &CSR_OPS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            csr: rng.gen_range(0u16..0x1000),
        },
        14 => Instr::CsrImm {
            op: pick(rng, &CSR_OPS),
            rd: any_reg(rng),
            imm: rng.gen_range(0u8..32),
            csr: rng.gen_range(0u16..0x1000),
        },
        15 => Instr::Fence,
        16 => Instr::FenceI,
        17 => Instr::Ecall,
        18 => Instr::Ebreak,
        _ => Instr::Wfi,
    }
}

/// encode ∘ decode = id over all representable instructions.
#[test]
fn encode_decode_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xe4c0_de00);
    for case in 0..2048 {
        let instr = any_instr(&mut rng);
        let word = encode(instr).expect("generated instruction encodes");
        let back = decode(word).expect("encoded word decodes");
        assert_eq!(instr, back, "case {case}");
    }
}

/// decode ∘ encode = id over all words that decode at all.
#[test]
fn decode_encode_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xdec0_de00);
    for case in 0..2048 {
        let word = rng.gen::<u32>();
        if let Ok(instr) = decode(word) {
            let re = encode(instr).expect("decoded instruction re-encodes");
            // Canonicalization: fence and fence.i carry ignored fields, so
            // compare through a second decode instead of bit equality.
            let instr2 = decode(re).expect("re-encoded word decodes");
            assert_eq!(instr, instr2, "case {case} word {word:#010x}");
        }
    }
}

/// The disassembly of ALU/load/store forms re-assembles to the same
/// instruction (smoke-level: covers the formatting of offsets and register
/// names).
#[test]
fn disasm_reassembles() {
    let mut rng = StdRng::seed_from_u64(0xd15a_5a00);
    for case in 0..2048 {
        let instr = any_instr(&mut rng);
        // Branch/jump offsets print as relative numbers; reassembling them as
        // absolute targets only works when the offset lands in the program.
        // CSR immediates and U-type immediates also print in a spelled-out
        // form the assembler reads differently, so skip those classes.
        if instr.is_control()
            || matches!(
                instr,
                Instr::Csr { .. } | Instr::CsrImm { .. } | Instr::Lui { .. } | Instr::Auipc { .. }
            )
        {
            continue;
        }
        let text = instr.to_string();
        let program = assemble(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
        assert_eq!(program.words().len(), 1, "case {case} `{text}`");
        let back = decode(program.words()[0]).unwrap();
        assert_eq!(instr, back, "case {case} `{text}`");
    }
}
